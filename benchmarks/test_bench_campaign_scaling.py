"""Campaign scaling bench: run-level parallelism over a seeds x methods grid.

Not a paper artefact but the scaling baseline of the campaign
orchestrator (the run-level complement of
``test_bench_engine_throughput.py``, which measures parallelism *inside*
one run). Records the wall-clock of a small Fig.-5-style grid --
seeds x {random-forest, fnn-mbrl} on the suite pool -- executed

- sequentially (``workers=0``, the reference semantics), and
- fanned out over a process pool (``workers=min(4, cores)``),

asserts the two produce identical per-seed CPI values (placement must
never change results), and reports the speedup. Honours
``REPRO_CACHE_DIR`` so CI can point both passes at a persistent
evaluation cache; the two passes use separate sub-directories to keep
the comparison fair.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import scale
from repro.core.mfrl import ExplorerConfig
from repro.experiments import fig5_reduce, fig5_specs
from repro.campaign import CampaignScheduler


def _grid():
    return fig5_specs(
        seeds=tuple(range(scale(2, 5))),
        baseline_budget=6,
        our_budget=5,
        baselines=("random-forest",),
        explorer_config=ExplorerConfig(
            lf_episodes=scale(40, 260), hf_budget=5, hf_seed_designs=1
        ),
        scale=scale(0.1, 1.0),
    )


def _cache_dir(tag):
    root = os.environ.get("REPRO_CACHE_DIR")
    return os.path.join(root, f"campaign-bench-{tag}") if root else None


def test_bench_campaign_scaling(benchmark, report):
    specs = _grid()
    cores = os.cpu_count() or 1
    workers = min(cores, 4)

    def run():
        out = {}
        start = time.perf_counter()
        sequential = CampaignScheduler(
            workers=0, cache_dir=_cache_dir("seq")
        ).run(specs)
        out["sequential_s"] = time.perf_counter() - start
        start = time.perf_counter()
        parallel = CampaignScheduler(
            workers=workers, cache_dir=_cache_dir("par")
        ).run(specs)
        out["parallel_s"] = time.perf_counter() - start
        out["sequential"] = fig5_reduce(specs, sequential.records)
        out["parallel"] = fig5_reduce(specs, parallel.records)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = result["sequential_s"] / max(result["parallel_s"], 1e-9)

    report.append(
        f"Campaign scaling ({len(specs)} runs: "
        f"{len({s.seed for s in specs})} seeds x 2 methods):"
    )
    report.append(
        f"  sequential {result['sequential_s']:>6.1f}s   "
        f"workers={workers} {result['parallel_s']:>6.1f}s   "
        f"speedup {speedup:.2f}x  ({cores} cores)"
    )

    # Placement must never change values.
    assert result["parallel"].per_seed_cpi == result["sequential"].per_seed_cpi

    computed_hf = result["sequential"].engine_counters.get(
        "engine_computed_high", 0
    )
    if computed_hf == 0:
        # Warm persistent cache (CI artifact): both passes replay cached
        # metrics, so wall-clock is process overhead, not simulation --
        # a speedup assertion would be noise.
        report.append("  (cache-warm run: speedup not asserted)")
    elif cores >= 2:
        assert speedup > 1.1, f"campaign fan-out only {speedup:.2f}x"
    else:
        assert speedup > 0.4, f"campaign fan-out collapsed to {speedup:.2f}x"
