"""Design-batched simulator kernel: evals/s vs batch size.

The scaling curve of :mod:`repro.simulator.batched`: one lockstep trace
walk advancing N designs pays a ~flat numpy dispatch cost per
instruction, so throughput grows with the batch while the serial kernel
is flat. This bench records the curve (batch sizes 1, 4, 16, 64) plus
the serial reference, and the derived speedups feed the CI baseline gate
(``benchmarks/compare_baseline.py``): speedups are machine-relative, so
they hold across runner generations where absolute evals/s do not.

The lockstep walk is forced on every size here (``min_designs=1``) to
expose the full curve, including the small-batch region where it loses
badly -- that region is exactly why the production path
(``OutOfOrderSimulator.run_batch``) falls back to the serial kernel
below ``BATCH_MIN_DESIGNS``.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import scale
from repro.designspace import default_design_space
from repro.simulator import OutOfOrderSimulator
from repro.simulator.batched import BATCH_MIN_DESIGNS, run_batch
from repro.workloads import get_workload

#: The reported curve (powers of four up to the production chunk
#: width ``BATCH_MAX_DESIGNS`` -- the width real wide batches run at).
BATCH_SIZES = (1, 4, 16, 64, 256)


def _distinct_configs(space, count, seed=0):
    rng = np.random.default_rng(seed)
    seen, configs = set(), []
    while len(configs) < count:
        levels = space.sample(rng)
        key = space.flat_index(levels)
        if key not in seen:
            seen.add(key)
            configs.append(space.config(levels))
    return configs


def test_bench_simulator_batched(benchmark, report):
    space = default_design_space()
    workload = get_workload("mm", data_size=scale(14, None))
    trace = workload.trace
    sim = OutOfOrderSimulator()

    serial_configs = _distinct_configs(space, max(BATCH_SIZES), seed=1)
    per_size = {n: _distinct_configs(space, n, seed=100 + n) for n in BATCH_SIZES}

    # Warm the pre-pass memo so the curve measures the kernels, not
    # phase-1 builds (a campaign is warm after its first design).
    for config in serial_configs:
        sim.run(trace, config)
    for configs in per_size.values():
        run_batch(sim, trace, configs, min_designs=1)

    def run():
        out = {}
        start = time.perf_counter()
        for config in serial_configs:
            sim.run(trace, config)
        out["serial"] = len(serial_configs) / (time.perf_counter() - start)
        for n, configs in per_size.items():
            start = time.perf_counter()
            run_batch(sim, trace, configs, min_designs=1)
            out[n] = n / (time.perf_counter() - start)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = rates["serial"]
    benchmark.extra_info["serial_evals_per_sec"] = serial
    report.append(
        "Design-batched simulator kernel (mm, "
        f"{trace.num_instructions} instructions/trace):"
    )
    report.append(f"  serial       {serial:>8.1f} evals/s  (1.00x)")
    for n in BATCH_SIZES:
        speedup = rates[n] / serial
        benchmark.extra_info[f"batched_evals_per_sec_{n}"] = rates[n]
        benchmark.extra_info[f"batched_speedup_{n}"] = speedup
        report.append(
            f"  batch {n:>4d}   {rates[n]:>8.1f} evals/s  ({speedup:.2f}x)"
        )
    report.append(
        f"  production crossover: run_batch engages at >= "
        f"{BATCH_MIN_DESIGNS} designs"
    )

    # The curve must rise: wider walks amortise the per-step dispatch
    # cost over more lanes. (The 64-vs-16 gap is ~3x locally, so this
    # holds through CI noise.)
    assert rates[64] > rates[16], (
        f"batched kernel curve inverted: {rates[64]:.1f}/s at 64 vs "
        f"{rates[16]:.1f}/s at 16"
    )
    assert rates[256] > rates[64], (
        f"batched kernel curve inverted: {rates[256]:.1f}/s at 256 vs "
        f"{rates[64]:.1f}/s at 64"
    )
    # In-bench asserts are coarse catastrophe nets only (a walk that
    # stops beating serial at all); the committed baseline gate
    # (BENCH_baseline.json via compare_baseline.py) owns the precise
    # tolerance bands, so its floors sit ABOVE these.
    assert rates[64] > 0.8 * serial, (
        f"batched kernel at 64 lanes collapsed to "
        f"{rates[64] / serial:.2f}x serial"
    )
    assert rates[256] > 1.3 * serial, (
        f"batched kernel at 256 lanes collapsed to "
        f"{rates[256] / serial:.2f}x serial"
    )
