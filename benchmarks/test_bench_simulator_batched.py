"""Design-batched simulator kernel: evals/s vs batch size.

Two lanes, now that the serial floor is usually the compiled C kernel:

- **Production lane** (``batched_*`` metrics): ``run_batch`` with its
  default policy on the auto-selected kernel, vs the same simulator's
  serial rate. With the compiled kernel active the policy routes every
  width to the serial path (the lockstep walk never beats the C loop),
  so these speedups must sit near 1.0x at *every* width -- the old
  sub-1.0x small-batch region is exactly what the policy exists to
  eliminate. With only the Python kernel the wide widths engage the
  walk and win.
- **Lockstep lane** (``lockstep_*`` metrics): the numpy lockstep walk
  forced on every size (``min_designs=1``) on a Python-kernel
  simulator, vs the Python serial rate -- the walk's own scaling curve
  (batch sizes 1..256), preserved because the walk remains the fallback
  floor on hosts that cannot build the extension.

The derived speedups feed the CI baseline gate
(``benchmarks/compare_baseline.py``): speedups are machine-relative, so
they hold across runner generations where absolute evals/s do not.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import scale
from repro.designspace import default_design_space
from repro.simulator import OutOfOrderSimulator
from repro.simulator.batched import BATCH_MIN_DESIGNS, run_batch
from repro.simulator.kernels import KERNEL_PYTHON
from repro.workloads import get_workload

#: The reported curve (powers of four up to the production chunk
#: width ``BATCH_MAX_DESIGNS`` -- the width real wide batches run at).
BATCH_SIZES = (1, 4, 16, 64, 256)


def _distinct_configs(space, count, seed=0):
    rng = np.random.default_rng(seed)
    seen, configs = set(), []
    while len(configs) < count:
        levels = space.sample(rng)
        key = space.flat_index(levels)
        if key not in seen:
            seen.add(key)
            configs.append(space.config(levels))
    return configs


def test_bench_simulator_batched(benchmark, report):
    space = default_design_space()
    workload = get_workload("mm", data_size=scale(14, None))
    trace = workload.trace
    sim = OutOfOrderSimulator()  # auto kernel: the production floor
    sim_py = OutOfOrderSimulator(kernel=KERNEL_PYTHON)

    serial_configs = _distinct_configs(space, max(BATCH_SIZES), seed=1)
    per_size = {n: _distinct_configs(space, n, seed=100 + n) for n in BATCH_SIZES}

    # Warm the pre-pass memos so the curves measure the kernels, not
    # phase-1 builds (a campaign is warm after its first design).
    for simulator in (sim, sim_py):
        for config in serial_configs:
            simulator.run(trace, config)
        for configs in per_size.values():
            run_batch(simulator, trace, configs, min_designs=1)

    def run():
        out = {}
        start = time.perf_counter()
        for config in serial_configs:
            sim.run(trace, config)
        out["serial"] = len(serial_configs) / (time.perf_counter() - start)
        start = time.perf_counter()
        for config in serial_configs:
            sim_py.run(trace, config)
        out["serial_python"] = len(serial_configs) / (
            time.perf_counter() - start
        )
        for n, configs in per_size.items():
            # Every speedup is measured against a serial loop over the
            # SAME configs: per-design simulation cost varies with the
            # design, so cross-set ratios would be design-mix noise.
            # Small widths are repeated so the compiled-kernel lanes
            # (sub-millisecond per batch) aren't pure timer jitter.
            reps = max(1, 64 // n)
            start = time.perf_counter()
            for __ in range(reps):
                for config in configs:
                    sim.run(trace, config)
            out[("prod_ref", n)] = n * reps / (time.perf_counter() - start)
            # Production policy: whatever run_batch decides (serial
            # path under the compiled kernel, lockstep when wide enough
            # over the Python one).
            start = time.perf_counter()
            for __ in range(reps):
                run_batch(sim, trace, configs)
            out[("prod", n)] = n * reps / (time.perf_counter() - start)
            start = time.perf_counter()
            for config in configs:
                sim_py.run(trace, config)
            out[("py_ref", n)] = n / (time.perf_counter() - start)
            # Forced lockstep walk over the Python-kernel simulator.
            start = time.perf_counter()
            run_batch(sim_py, trace, configs, min_designs=1)
            out[("lockstep", n)] = n / (time.perf_counter() - start)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = rates["serial"]
    serial_py = rates["serial_python"]
    benchmark.extra_info["serial_evals_per_sec"] = serial
    benchmark.extra_info["serial_python_evals_per_sec"] = serial_py
    report.append(
        "Design-batched simulator kernel (mm, "
        f"{trace.num_instructions} instructions/trace):"
    )
    report.append(
        f"  serial (auto kernel)   {serial:>8.1f} evals/s  (1.00x)   "
        f"serial (python) {serial_py:>8.1f} evals/s"
    )
    for n in BATCH_SIZES:
        prod = rates[("prod", n)]
        lockstep = rates[("lockstep", n)]
        prod_speedup = prod / rates[("prod_ref", n)]
        lockstep_speedup = lockstep / rates[("py_ref", n)]
        benchmark.extra_info[f"batched_evals_per_sec_{n}"] = prod
        benchmark.extra_info[f"batched_speedup_{n}"] = prod_speedup
        benchmark.extra_info[f"lockstep_evals_per_sec_{n}"] = lockstep
        benchmark.extra_info[f"lockstep_speedup_{n}"] = lockstep_speedup
        report.append(
            f"  batch {n:>4d}   policy {prod:>8.1f} evals/s "
            f"({prod_speedup:.2f}x)   lockstep {lockstep:>8.1f} evals/s "
            f"({lockstep_speedup:.2f}x vs python serial)"
        )
    report.append(
        f"  production crossover: run_batch engages the walk at >= "
        f"{BATCH_MIN_DESIGNS} designs over the python kernel (never over "
        "the compiled one)"
    )

    # The lockstep curve must rise: wider walks amortise the per-step
    # dispatch cost over more lanes. (The 64-vs-16 gap is ~3x locally,
    # so this holds through CI noise.)
    assert rates[("lockstep", 64)] > rates[("lockstep", 16)], (
        f"lockstep curve inverted: {rates[('lockstep', 64)]:.1f}/s at 64 "
        f"vs {rates[('lockstep', 16)]:.1f}/s at 16"
    )
    assert rates[("lockstep", 256)] > rates[("lockstep", 64)], (
        f"lockstep curve inverted: {rates[('lockstep', 256)]:.1f}/s at 256 "
        f"vs {rates[('lockstep', 64)]:.1f}/s at 64"
    )
    # In-bench asserts are coarse catastrophe nets only; the committed
    # baseline gate (BENCH_baseline.json via compare_baseline.py) owns
    # the precise tolerance bands, so its floors sit ABOVE these.
    assert rates[("lockstep", 64)] > 0.8 * rates[("py_ref", 64)], (
        f"lockstep walk at 64 lanes collapsed to "
        f"{rates[('lockstep', 64)] / rates[('py_ref', 64)]:.2f}x python serial"
    )
    assert rates[("lockstep", 256)] > 1.3 * rates[("py_ref", 256)], (
        f"lockstep walk at 256 lanes collapsed to "
        f"{rates[('lockstep', 256)] / rates[('py_ref', 256)]:.2f}x "
        "python serial"
    )
    # The production policy must never lose badly to serial at ANY
    # width: below-crossover batches (and every batch, when compiled)
    # run the serial kernel itself, so anything far below parity means
    # the routing broke.
    for n in BATCH_SIZES:
        assert rates[("prod", n)] > 0.6 * rates[("prod_ref", n)], (
            f"production batch policy at {n} lanes fell to "
            f"{rates[('prod', n)] / rates[('prod_ref', n)]:.2f}x serial"
        )
