"""Fidelity-gap bench: the multi-fidelity premise, quantified per kernel.

Not a paper artefact but the reproduction's load-bearing assumption: the
analytical model must correlate with the simulator on compute-bound
kernels while disagreeing in structured ways on memory-bound ones
(Sec. 3's motivation, Sec. 4.3's bias discussion). This bench prints the
per-workload LF-vs-HF report and asserts the premise.
"""

import numpy as np
import pytest

from benchmarks.conftest import scale
from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, SimulationProxy, measure_fidelity_gap
from repro.workloads import get_workload

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


SIZES = {
    "dijkstra": 96,
    "mm": 14,
    "fp-vvadd": 768,
    "quicksort": 192,
    "fft": 128,
    "ss": 768,
}


def test_bench_fidelity_gap(benchmark, report):
    space = default_design_space()

    def run():
        reports = {}
        for name, ci_size in SIZES.items():
            workload = get_workload(name, data_size=scale(ci_size, None))
            analytical = AnalyticalModel(workload.profile, space)
            proxy = SimulationProxy(workload, space)
            reports[name] = measure_fidelity_gap(
                analytical, proxy, space, np.random.default_rng(0),
                num_designs=scale(20, 60), mask_probes=scale(4, 10),
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("Fidelity gap (LF analytical vs HF simulator):")
    for name, gap in reports.items():
        report.append("  " + gap.render())

    # compute-bound kernels must correlate clearly
    for name in ("mm", "fft", "quicksort"):
        assert reports[name].rank_correlation > 0.3, name
    # the LF mask must be trustworthy as a *direction* on average
    precisions = [g.mask_precision for g in reports.values()]
    assert float(np.mean(precisions)) > 0.6
    # and at least one kernel must show a material gap (the HF phase's
    # reason to exist)
    assert max(g.mean_absolute_error for g in reports.values()) > 0.2
