#!/usr/bin/env python
"""Gate a bench-smoke JSON against the committed performance baseline.

CI records every run's ``BENCH_smoke.json`` as an artifact, but an
artifact trail nobody diffs lets regressions land silently. This script
makes the trajectory a gate: it compares the smoke JSON's
``extra_info`` metrics against ``BENCH_baseline.json`` and exits
non-zero when any gated metric falls below its tolerance band.

Gated metrics are chosen to be *machine-relative* where possible
(speedup ratios: vectorised-vs-scalar, batched-vs-serial), because CI
runners are slower and noisier than the machines baselines are recorded
on; the one absolute metric (simulator MIPS) carries a very wide band
and only catches catastrophic regressions (e.g. losing the pre-pass
memo). Bands are per-metric ``min_fraction`` values in the baseline
file: a metric fails when ``current < value * min_fraction``.

Usage::

    python benchmarks/compare_baseline.py BENCH_smoke.json BENCH_baseline.json
    python benchmarks/compare_baseline.py BENCH_smoke.json BENCH_baseline.json --update

``--update`` rewrites the baseline's ``value`` fields from the smoke
JSON (keeping each metric's band) -- run it on a quiet machine when a
deliberate perf change moves the numbers, and commit the result.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List


def extra_info_by_bench(bench_json: dict) -> Dict[str, dict]:
    """``{benchmark name: extra_info}`` from a pytest-benchmark JSON."""
    out: Dict[str, dict] = {}
    for bench in bench_json.get("benchmarks", []):
        name = str(bench.get("name", "")).split("[")[0]
        out[name] = bench.get("extra_info", {}) or {}
    return out


def compare(smoke: dict, baseline: dict) -> List[str]:
    """Failure messages for every gated metric out of band (empty = pass)."""
    failures: List[str] = []
    info = extra_info_by_bench(smoke)
    for key, gate in baseline.get("metrics", {}).items():
        bench_name, _, metric = key.partition(":")
        bench = info.get(bench_name)
        if bench is None:
            # A missing benchmark must fail: a silently-skipped bench
            # would otherwise pass the gate forever.
            failures.append(f"{key}: benchmark {bench_name!r} not in smoke JSON")
            continue
        value = bench.get(metric)
        if not isinstance(value, (int, float)):
            failures.append(f"{key}: metric missing from extra_info")
            continue
        floor = float(gate["value"]) * float(gate["min_fraction"])
        if value < floor:
            failures.append(
                f"{key}: {value:.3f} below floor {floor:.3f} "
                f"(baseline {gate['value']:.3f} x band {gate['min_fraction']})"
            )
    return failures


def update_baseline(smoke: dict, baseline: dict) -> dict:
    """The baseline with ``value`` fields refreshed from ``smoke``."""
    info = extra_info_by_bench(smoke)
    updated = json.loads(json.dumps(baseline))  # deep copy
    for key, gate in updated.get("metrics", {}).items():
        bench_name, _, metric = key.partition(":")
        value = info.get(bench_name, {}).get(metric)
        if isinstance(value, (int, float)):
            gate["value"] = round(float(value), 4)
    return updated


def main(argv: List[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    if len(argv) == 3 and argv[2] != "--update":
        # A mistyped flag must not silently run gate mode: a maintainer
        # who meant to refresh the baseline would believe it was saved.
        print(f"unknown argument {argv[2]!r} (did you mean --update?)")
        return 2
    smoke_path, baseline_path = argv[0], argv[1]
    update = len(argv) == 3
    with open(smoke_path) as fh:
        smoke = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    if update:
        refreshed = update_baseline(smoke, baseline)
        with open(baseline_path, "w") as fh:
            json.dump(refreshed, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline {baseline_path} refreshed from {smoke_path}")
        return 0

    info = extra_info_by_bench(smoke)
    for key, gate in baseline.get("metrics", {}).items():
        bench_name, _, metric = key.partition(":")
        value = info.get(bench_name, {}).get(metric)
        shown = f"{value:.3f}" if isinstance(value, (int, float)) else "MISSING"
        print(
            f"  {key}: {shown}  (baseline {gate['value']:.3f}, "
            f"band {gate['min_fraction']})"
        )
    failures = compare(smoke, baseline)
    if failures:
        print("\nPERF GATE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
