"""Fig. 7: embedding the decode-width-4 preference on fp-vvadd.

The shape to reproduce: with the preference the decode-width trajectory
settles at 4; without it, at a smaller width.
"""

import pytest

from benchmarks.conftest import scale
from repro.experiments.fig7 import render_fig7, run_fig7

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


def test_bench_fig7(benchmark, report):
    def run():
        return run_fig7(
            episodes=scale(80, 250),
            seed=0,
            target_decode=4,
            data_size=scale(1024, None),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("Fig. 7 (regenerated):")
    report.append(render_fig7(result))

    with_pref = result.final_decode_width(True)
    without = result.final_decode_width(False)
    assert with_pref == 4, "preference failed to teach decode width 4"
    # unaided, fp-vvadd settles elsewhere (the paper's run converged to 3;
    # on this substrate the LF model favours 5 -- see EXPERIMENTS.md).
    # The claim under test is that the preference *changed* the outcome
    # to exactly the requested width.
    assert without != 4, "preference experiment is vacuous: unaided run already at 4"
