"""Substrate-sensitivity bench: the headline shape must survive
perturbations of the simulated machine's fixed constants.

The reproduction's central claim (Table 2: the HF phase improves on the
LF result) must not hinge on the particular DRAM latency or prefetcher
setting we picked for the simulator. This bench re-runs the mm
experiment across a DRAM-latency sweep and with the next-line prefetcher
enabled, asserting the LF->HF improvement each time.
"""

import pytest

from benchmarks.conftest import scale
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy
from repro.simulator import SimulatorParams
from repro.workloads import get_workload

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


VARIANTS = {
    "mem=45c": SimulatorParams(mem_cycles=45),
    "mem=90c (default)": SimulatorParams(),
    "mem=180c": SimulatorParams(mem_cycles=180),
    "next-line prefetch": SimulatorParams(next_line_prefetch=True),
}


def _run(params: SimulatorParams, seed: int):
    space = default_design_space()
    workload = get_workload("mm", data_size=scale(14, 22))
    pool = ProxyPool(
        space,
        AnalyticalModel(workload.profile, space),
        SimulationProxy(workload, space, params=params),
        area_limit_mm2=7.5,
    )
    explorer = MultiFidelityExplorer(
        pool,
        config=ExplorerConfig(
            lf_episodes=scale(80, 200), lf_min_episodes=scale(40, 120),
            hf_budget=7, hf_seed_designs=2,
        ),
        seed=seed,
    )
    return explorer.explore()


def test_bench_sensitivity(benchmark, report):
    def run():
        return {name: _run(params, seed=0) for name, params in VARIANTS.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("Substrate sensitivity (mm, LF vs HF CPI):")
    for name, result in results.items():
        report.append(
            f"  {name:<20} LF {result.lf_hf_cpi:.4f} -> "
            f"HF {result.best_hf_cpi:.4f}"
        )

    # the multi-fidelity improvement must hold under every variant
    for name, result in results.items():
        assert result.best_hf_cpi <= result.lf_hf_cpi + 1e-9, name
