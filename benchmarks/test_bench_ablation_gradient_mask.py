"""Ablation: gradient-*masked* actions vs unmasked LF training.

DESIGN.md Sec. 5 / paper Sec. 3.1: classic MBRL would weight actions by
gradient magnitude; the paper argues the analytical model's gradients
are only trustworthy as *directions* and uses them as an action mask.

Measurement note: on the LF metric alone an unmasked policy always looks
better, because the analytical model is monotone-ish and unmasked
episodes simply fill the whole area budget. The mask's value is
end-to-end -- it stops the LF phase at the model's believed optimum,
leaving area headroom that the HF phase can spend where the simulator
(not the model) says it pays. So this ablation runs the *complete*
multi-fidelity flow with and without the mask at the same HF budget and
compares final HF CPI.
"""

import numpy as np
import pytest

from benchmarks.conftest import scale
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.experiments.common import build_pool

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


def _explore(use_mask: bool, episodes: int, seed: int) -> float:
    pool = build_pool("mm", data_size=scale(14, None))
    explorer = MultiFidelityExplorer(
        pool,
        config=ExplorerConfig(
            lf_episodes=episodes,
            lf_min_episodes=min(episodes, 60),
            hf_budget=6,
            hf_seed_designs=2,
        ),
        seed=seed,
    )
    explorer._lf_env.use_gradient_mask = use_mask
    return explorer.explore().best_hf_cpi


def test_bench_ablation_gradient_mask(benchmark, report):
    episodes = scale(60, 200)
    seeds = range(scale(2, 5))

    def run():
        masked = [_explore(True, episodes, s) for s in seeds]
        unmasked = [_explore(False, episodes, s) for s in seeds]
        return masked, unmasked

    masked, unmasked = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_masked = float(np.mean(masked))
    mean_unmasked = float(np.mean(unmasked))
    report.append("Ablation -- gradient mask (end-to-end best HF CPI):")
    report.append(f"  with mask (paper):  {mean_masked:.4f}")
    report.append(f"  without mask:       {mean_unmasked:.4f}")

    # the masked flow must be competitive end-to-end (usually better:
    # the saved area headroom is spent by the HF phase where it pays)
    assert mean_masked <= mean_unmasked * 1.10
