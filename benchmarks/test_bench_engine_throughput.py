"""Engine throughput bench: serial vs parallel HF evaluations per second.

Not a paper artefact but the scaling baseline for the evaluation engine:
every future batching/parallelism PR should move these numbers and can
cite this bench. Records, for one batch of distinct valid designs on the
``mm`` workload:

- ``SerialBackend`` HF evaluations/sec (the reference, on the auto
  kernel -- compiled when available) and the derived simulator
  throughput in MIPS (simulated instructions/sec / 1e6), the perf
  trajectory of the two-phase simulator across PRs,
- the same serial lane pinned to the pure-Python kernel (the
  end-to-end cold-start cost of losing the extension), plus a
  warm-memo simulator-level pair of lanes whose ratio is
  ``compiled_kernel_speedup`` -- the C extension's win on the serial
  HF evaluation path once pre-passes are memoised (every evaluation
  after a geometry's first; 1.0x when the extension is absent),
- ``ProcessPoolBackend`` evaluations/sec and its speedup,
- ``BatchBackend`` HF evaluations/sec (the single-process default: the
  design-batched kernel above the crossover, serial semantics below),
- ``BatchBackend`` LF evaluations/sec vs the scalar LF loop,
- ``SearchLoop`` end-to-end evaluations/sec at propose-batch 1 vs 8
  (random search through a full proxy pool: loop + dedup + constraint +
  archive + engine dispatch -- the search layer's own overhead lane).

The >1.5x parallel-speedup assertion only applies on multi-core runners;
single-core machines still record both numbers (speedup ~1x, by design:
the backend short-circuits to serial when it cannot win).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import scale
from repro.designspace import default_design_space
from repro.engine import (
    BatchBackend,
    EvaluationEngine,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.experiments.common import run_search
from repro.proxies import AnalyticalModel, Fidelity, ProxyPool, SimulationProxy
from repro.simulator import OutOfOrderSimulator
from repro.simulator.kernels import (
    KERNEL_PYTHON,
    _force_python,
    compiled_available,
)
from repro.workloads import get_workload


def _distinct_batch(space, count, seed=0):
    rng = np.random.default_rng(seed)
    seen = set()
    batch = []
    while len(batch) < count:
        levels = space.sample(rng)
        key = space.flat_index(levels)
        if key not in seen:
            seen.add(key)
            batch.append(levels)
    return batch


def _throughput(engine, batch, fidelity):
    start = time.perf_counter()
    engine.evaluate_many(batch, fidelity)
    elapsed = time.perf_counter() - start
    return len(batch) / elapsed, elapsed


def test_bench_engine_throughput(benchmark, report):
    space = default_design_space()
    workload = get_workload("mm", data_size=scale(14, None))
    analytical = AnalyticalModel(workload.profile, space)
    hf_batch = _distinct_batch(space, scale(24, 96))
    lf_batch = _distinct_batch(space, scale(2000, 20000), seed=1)
    cores = os.cpu_count() or 1
    workers = min(cores, 4)

    def build(backend, kernel=None):
        return EvaluationEngine(
            space,
            analytical=analytical,
            high_fidelity=SimulationProxy(workload, space, kernel=kernel),
            backend=backend,
        )

    def run():
        out = {}
        out["hf_serial"], __ = _throughput(
            build(SerialBackend()), hf_batch, Fidelity.HIGH
        )
        # Same lane pinned to the pure-Python kernel: the end-to-end
        # cold-start cost of losing the extension (pre-pass builds and
        # engine dispatch dilute the kernel's own win here).
        out["hf_serial_python"], __ = _throughput(
            build(SerialBackend(), kernel=KERNEL_PYTHON), hf_batch, Fidelity.HIGH
        )
        # Kernel-level lanes: same designs, warm pre-pass memos, so the
        # ratio isolates the timing-kernel swap -- the cost every
        # evaluation after a geometry's first actually pays.
        configs = [space.config(levels) for levels in hf_batch]
        for name, kernel in (("kernel_auto", None),
                             ("kernel_python", KERNEL_PYTHON)):
            simulator = OutOfOrderSimulator(kernel=kernel)
            for config in configs:
                simulator.run(workload.trace, config)  # warm the memo
            start = time.perf_counter()
            for config in configs:
                simulator.run(workload.trace, config)
            out[name] = len(configs) / (time.perf_counter() - start)
        # The single-process default backend: HF batches ride the
        # design-batched kernel when wide enough (the CI-scale batch sits
        # below the crossover and must transparently match serial).
        out["hf_batched"], __ = _throughput(
            build(BatchBackend()), hf_batch, Fidelity.HIGH
        )
        out["hf_parallel"], __ = _throughput(
            build(ProcessPoolBackend(workers=workers)), hf_batch, Fidelity.HIGH
        )
        out["lf_scalar"], __ = _throughput(
            build(SerialBackend()), lf_batch, Fidelity.LOW
        )
        out["lf_vector"], __ = _throughput(
            build(BatchBackend()), lf_batch, Fidelity.LOW
        )

        # Search-loop lane: the whole stack (loop bookkeeping, dedup,
        # batched constraint filter, archive, engine dispatch) at q=1
        # vs q=8. Fresh pool per run so nothing is served from a warm
        # archive.
        def search_rate(q):
            pool = ProxyPool(
                space,
                analytical,
                SimulationProxy(workload, space),
                area_limit_mm2=7.5,
            )
            budget = scale(16, 64)
            start = time.perf_counter()
            run_search(
                pool, "random-search", budget,
                rng=np.random.default_rng(3), propose_batch=q,
            )
            return budget / (time.perf_counter() - start)

        out["search_q1"] = search_rate(1)
        out["search_q8"] = search_rate(8)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    compiled_active = compiled_available() and not _force_python()
    hf_speedup = rates["hf_parallel"] / rates["hf_serial"]
    hf_batched_speedup = rates["hf_batched"] / rates["hf_serial"]
    compiled_kernel_speedup = rates["kernel_auto"] / rates["kernel_python"]
    hf_cold_python_speedup = rates["hf_serial"] / rates["hf_serial_python"]
    lf_speedup = rates["lf_vector"] / rates["lf_scalar"]
    # Simulator throughput: every serial HF evaluation replays the whole
    # trace, so evals/sec x trace length = simulated instructions/sec.
    serial_mips = rates["hf_serial"] * workload.num_instructions / 1e6
    benchmark.extra_info["hf_serial_evals_per_sec"] = rates["hf_serial"]
    benchmark.extra_info["hf_serial_python_evals_per_sec"] = rates[
        "hf_serial_python"
    ]
    benchmark.extra_info["hf_cold_python_speedup"] = hf_cold_python_speedup
    benchmark.extra_info["kernel_auto_evals_per_sec"] = rates["kernel_auto"]
    benchmark.extra_info["kernel_python_evals_per_sec"] = rates["kernel_python"]
    benchmark.extra_info["compiled_kernel_speedup"] = compiled_kernel_speedup
    benchmark.extra_info["hf_batched_evals_per_sec"] = rates["hf_batched"]
    benchmark.extra_info["hf_batched_speedup"] = hf_batched_speedup
    search_batch_speedup = rates["search_q8"] / rates["search_q1"]
    benchmark.extra_info["lf_vector_speedup"] = lf_speedup
    benchmark.extra_info["simulator_mips"] = serial_mips
    benchmark.extra_info["trace_instructions"] = workload.num_instructions
    benchmark.extra_info["search_loop_q1_evals_per_sec"] = rates["search_q1"]
    benchmark.extra_info["search_loop_q8_evals_per_sec"] = rates["search_q8"]
    benchmark.extra_info["search_loop_batch_speedup"] = search_batch_speedup

    report.append("Evaluation-engine throughput (evaluations/sec):")
    report.append(
        f"  HF serial   {rates['hf_serial']:>9.1f}/s   "
        f"HF process-pool({workers}) {rates['hf_parallel']:>9.1f}/s   "
        f"speedup {hf_speedup:.2f}x  ({cores} cores)"
    )
    report.append(
        f"  HF python-kernel {rates['hf_serial_python']:>9.1f}/s   "
        f"cold end-to-end speedup {hf_cold_python_speedup:.2f}x  "
        f"({'compiled' if compiled_active else 'python'} kernel active)"
    )
    report.append(
        f"  kernel (warm memo): auto {rates['kernel_auto']:>9.1f}/s   "
        f"python {rates['kernel_python']:>9.1f}/s   "
        f"compiled-kernel speedup {compiled_kernel_speedup:.2f}x"
    )
    report.append(
        f"  HF batch-backend {rates['hf_batched']:>9.1f}/s   "
        f"speedup {hf_batched_speedup:.2f}x  "
        f"(batch of {len(hf_batch)}; design-batched kernel engages at "
        "wide batches)"
    )
    report.append(
        f"  HF simulator {serial_mips:>8.2f} MIPS  "
        f"({workload.num_instructions} instructions/trace, serial)"
    )
    report.append(
        f"  LF scalar   {rates['lf_scalar']:>9.1f}/s   "
        f"LF vectorised       {rates['lf_vector']:>9.1f}/s   "
        f"speedup {lf_speedup:.2f}x"
    )
    report.append(
        f"  SearchLoop q=1 {rates['search_q1']:>9.1f}/s   "
        f"q=8 {rates['search_q8']:>9.1f}/s   "
        f"batch speedup {search_batch_speedup:.2f}x  (random-search, "
        "full pool stack)"
    )

    # The vectorised LF path must pay off everywhere.
    assert lf_speedup > 1.5, f"vectorised LF only {lf_speedup:.2f}x"
    if compiled_active:
        # The C extension's whole reason to exist: a hard serial-path
        # win over the Python kernel on fresh geometries (the baseline
        # gate owns the precise band on top of this floor).
        assert compiled_kernel_speedup > 5.0, (
            f"compiled kernel only {compiled_kernel_speedup:.2f}x the "
            "python kernel"
        )
    else:
        # Both lanes ran the Python kernel; anything far from parity
        # means the lanes measured different things.
        assert 0.5 < compiled_kernel_speedup < 2.0, (
            f"python-vs-python lanes diverged: {compiled_kernel_speedup:.2f}x"
        )
    # The batch backend must never lose badly to serial: below the
    # lockstep crossover it *is* the serial kernel (plus dispatch), so a
    # collapse here means the fallback policy broke. Coarse net only --
    # the BENCH_baseline.json gate owns the precise band.
    assert hf_batched_speedup > 0.5, (
        f"batch backend collapsed to {hf_batched_speedup:.2f}x serial"
    )
    if cores >= 2:
        # On a multi-core runner the process pool must clearly win.
        assert hf_speedup > 1.5, f"parallel HF only {hf_speedup:.2f}x on {cores} cores"
    else:
        # Single core: the pool must at least not collapse (short-circuit
        # plus fork overhead keeps it near parity).
        assert hf_speedup > 0.5, f"parallel HF collapsed to {hf_speedup:.2f}x"
