"""Table 1: the design space -- size check plus codec throughput.

The "result" is the table itself (printed); the timed body is the
level-vector machinery the search engines hammer (sampling, config
construction, flat-index round-trips).
"""

import numpy as np

from repro.designspace import default_design_space
from repro.experiments.table1 import run_table1


def test_bench_table1_codec_throughput(benchmark, report):
    space = default_design_space()
    rng = np.random.default_rng(0)
    batch = space.sample(rng, count=256)

    def codec_pass():
        total = 0
        for levels in batch:
            config = space.config(levels)
            total += space.flat_index(space.levels_of(config))
        return total

    benchmark(codec_pass)
    assert space.size == 3_000_000
    report.append(run_table1())
