"""Fig. 5: general-purpose comparison against the five baselines.

Regenerates the paper's bar chart as text. The shape to reproduce:
FNN-MBRL-HF beats every baseline's mean best CPI; FNN-MBRL-LF alone is
mid-pack (the paper's 1.2043 vs baselines ~1.178-1.208 vs ours-HF 1.1251).
"""

import pytest

from benchmarks.conftest import scale
from repro.core.mfrl import ExplorerConfig
from repro.experiments.fig5 import render_fig5, run_fig5

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


def test_bench_fig5(benchmark, report):
    def run():
        return run_fig5(
            seeds=tuple(range(scale(2, 5))),
            baseline_budget=10,
            our_budget=9,
            explorer_config=ExplorerConfig(
                lf_episodes=scale(120, 260),
                lf_min_episodes=scale(60, 120),
                hf_budget=9,
            ),
            scale=scale(0.25, 1.0),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("Fig. 5 (regenerated):")
    report.append(render_fig5(result))

    ours = result.mean_cpi["fnn-mbrl-hf"]
    baselines = {
        name: cpi
        for name, cpi in result.mean_cpi.items()
        if not name.startswith("fnn-")
    }
    # the multi-fidelity method must win against every baseline
    for name, cpi in baselines.items():
        assert ours <= cpi + 1e-9, f"{name} beat fnn-mbrl-hf"
    # and the HF phase must add value over the LF phase alone
    assert ours <= result.mean_cpi["fnn-mbrl-lf"] + 1e-9
