"""Benchmark-harness configuration.

Every paper table/figure has one benchmark module that *regenerates* it
and prints the rows/series the paper reports. Two scales:

- default: reduced problem sizes and budgets; minutes total, same shapes.
- ``REPRO_FULL=1``: paper-scale budgets (500-sample optima, 5 seeds,
  250-episode traces); expect a long run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

#: Paper-scale toggle.
FULL = os.environ.get("REPRO_FULL", "0") == "1"


def scale(ci_value, full_value):
    """Pick the CI-scale or paper-scale value."""
    return full_value if FULL else ci_value


@pytest.fixture(scope="session")
def report():
    """Collector that prints experiment output after the bench run."""
    lines = []
    yield lines
    if lines:
        print()
        for line in lines:
            print(line)
