"""Fig. 6: MF-center initialisation sweep on enlarged dijkstra.

Regenerates the four convergence traces. The shapes to reproduce: all
initialisations converge (robustness), and better-informed (higher)
cache centers reach near-final CPI in no more episodes than the lowest
initialisation.
"""

import pytest

from benchmarks.conftest import scale
from repro.experiments.fig6 import PAPER_CENTER_PAIRS, render_fig6, run_fig6

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


def test_bench_fig6(benchmark, report):
    episodes = scale(100, 250)

    def run():
        # data_size 1024 in both modes: the paper "largely increases"
        # dijkstra's data so cache sizing binds; smaller sizes collapse
        # the traces to a flat line (profiling is one-time and cached).
        return run_fig6(
            center_pairs=PAPER_CENTER_PAIRS,
            episodes=episodes,
            seed=0,
            data_size=1024,
        )

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("Fig. 6 (regenerated):")
    report.append(render_fig6(traces))

    finals = [min(t.episode_cpi) for t in traces]
    # robustness (the paper's headline): every initialisation converges
    # to a comparable optimum
    assert max(finals) <= min(finals) * 1.25

    # the paper's trend: better-informed (higher) cache centers converge
    # no later on average than the least-informed pair (single-seed
    # traces are noisy, so the comparison is between pair means)
    speed = [t.episodes_to_within() for t in traces]
    informed = (speed[2] + speed[3]) / 2
    uninformed = (speed[0] + speed[1]) / 2
    assert informed <= uninformed + episodes // 5
