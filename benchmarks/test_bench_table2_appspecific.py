"""Table 2: application-specific DSE -- LF/HF regrets per benchmark.

Regenerates the paper's Table 2. The shape to reproduce: HF regret <
LF regret on every benchmark (improvement ratios of order 2-300x; exact
magnitudes depend on the simulated substrate, see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import FULL, scale
from repro.core.mfrl import ExplorerConfig
from repro.experiments.table2 import render_table2, run_table2
from repro.workloads import BENCHMARK_NAMES

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


#: Reduced problem sizes for the CI-scale run.
CI_SIZES = {
    "dijkstra": 96,
    "mm": 14,
    "fp-vvadd": 768,
    "quicksort": 192,
    "fft": 128,
    "ss": 768,
}


def test_bench_table2(benchmark, report):
    config = ExplorerConfig(
        lf_episodes=scale(120, 260),
        lf_min_episodes=scale(60, 120),
        hf_budget=9,
        hf_seed_designs=3,
    )

    def run():
        return run_table2(
            benchmarks=BENCHMARK_NAMES,
            seed=0,
            explorer_config=config,
            optimum_samples=scale(60, 500),
            data_sizes=None if FULL else CI_SIZES,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("Table 2 (regenerated):")
    report.append(render_table2(rows))

    # The paper's headline shape: HF improves on LF everywhere.
    for row in rows:
        assert row.hf_regret <= row.lf_regret + 1e-9, row.benchmark
    # And materially so on the suite overall.
    total_lf = sum(r.lf_regret for r in rows)
    total_hf = sum(r.hf_regret for r in rows)
    assert total_hf < total_lf
