"""Evaluation-store and learned-tier bench: the PR-6 acceptance lanes.

Two lanes, both gated by ``BENCH_baseline.json``:

- **Store startup** -- build a sharded corpus of several thousand
  records across a few workload tags, then reopen it. The lazy index
  must answer ``stats()``/``count()`` from the manifest alone
  (``parsed_records == 0``: no record is JSON-parsed at open), and a
  first ``get`` may parse only the one shard it touches. Records the
  reopen wall time and the manifest-indexing rate.

- **Learned tier** -- warm a store with real batched HF simulations on
  the ``mm`` workload, fit the confidence-gated :class:`CostModelTier`
  on that corpus, and compare per-query tier serving against the serial
  HF simulator. The acceptance bar is tier queries >= 50x faster than
  serial HF on a warm (>= 2k record) corpus, with the hit/fallback rate
  reported alongside -- a tier that only wins by declining everything
  would show up as a near-zero hit rate here.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import scale
from repro.designspace import default_design_space
from repro.engine import BatchBackend, EvaluationEngine, SerialBackend
from repro.engine.cache import space_signature
from repro.proxies import AnalyticalModel, Fidelity, SimulationProxy
from repro.store import EvalStore, store_key
from repro.tiers import CostModelTier
from repro.workloads import get_workload


def _distinct_batch(space, count, seed=0):
    rng = np.random.default_rng(seed)
    seen = set()
    batch = []
    while len(batch) < count:
        levels = space.sample(rng)
        key = space.flat_index(levels)
        if key not in seen:
            seen.add(key)
            batch.append(levels)
    return batch


def test_bench_store_startup(benchmark, report, tmp_path):
    """Reopening a large sharded corpus is O(index), not O(corpus)."""
    space = default_design_space()
    sig = space_signature(space)
    records = scale(2000, 10000)
    tags = [f"hf:bench:w{i}" for i in range(4)]
    per_tag = records // len(tags)
    records = per_tag * len(tags)

    root = tmp_path / "corpus"
    writer = EvalStore(root, backend="sharded")
    designs = _distinct_batch(space, per_tag, seed=11)
    for tag_i, tag in enumerate(tags):
        for levels in designs:
            cpi = 1.0 + 0.1 * tag_i
            writer.put(store_key(sig, tag, "high", levels),
                       {"cpi": cpi, "ipc": 1.0 / cpi})
    writer.backend.flush_index()
    probe_key = store_key(sig, tags[0], "high", designs[0])

    def run():
        out = {}
        start = time.perf_counter()
        store = EvalStore(root)
        entries = len(store)
        out["open_s"] = time.perf_counter() - start
        out["entries"] = entries
        out["parsed_at_open"] = store.stats()["parsed_records"]
        # First get loads exactly one tag's shard, not the whole corpus.
        start = time.perf_counter()
        metrics = store.get(probe_key)
        out["first_get_s"] = time.perf_counter() - start
        assert metrics is not None
        out["parsed_after_get"] = store.stats()["parsed_records"]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    index_rate = out["entries"] / max(out["open_s"], 1e-9)
    benchmark.extra_info["store_records"] = out["entries"]
    benchmark.extra_info["store_open_s"] = out["open_s"]
    benchmark.extra_info["store_open_records_per_sec"] = index_rate
    benchmark.extra_info["store_parsed_at_open"] = out["parsed_at_open"]
    benchmark.extra_info["store_parsed_after_get"] = out["parsed_after_get"]

    report.append("Evaluation-store startup (sharded JSONL, lazy index):")
    report.append(
        f"  open {out['entries']} records in {out['open_s'] * 1e3:.1f} ms "
        f"({index_rate:,.0f} records/s indexed), "
        f"{out['parsed_at_open']} records parsed at open"
    )
    report.append(
        f"  first get: {out['first_get_s'] * 1e3:.1f} ms, parsed "
        f"{out['parsed_after_get']}/{out['entries']} records "
        "(one shard only)"
    )

    assert out["entries"] == records
    # The acceptance criterion: startup parses *no* records -- counts and
    # stats come from the manifest plus a tail-newline resync.
    assert out["parsed_at_open"] == 0, (
        f"lazy index parsed {out['parsed_at_open']} records at open"
    )
    # A point lookup faults in one shard, never the whole corpus.
    assert out["parsed_after_get"] <= per_tag, (
        f"single get parsed {out['parsed_after_get']} records "
        f"(> one shard of {per_tag})"
    )


def test_bench_learned_tier(benchmark, report):
    """Warm-corpus learned tier vs the serial HF simulator."""
    space = default_design_space()
    workload = get_workload("mm", data_size=scale(14, None))
    analytical = AnalyticalModel(workload.profile, space)
    sig = space_signature(space)
    corpus_n = scale(2048, 4096)
    serial_n = scale(24, 48)
    query_n = scale(256, 1024)

    # Warm corpus: real batched HF simulations, persisted by the engine.
    store = EvalStore(None)
    warm_engine = EvaluationEngine(
        space,
        analytical=analytical,
        high_fidelity=SimulationProxy(workload, space),
        backend=BatchBackend(),
        cache=store,
    )
    warm_engine.evaluate_many(
        _distinct_batch(space, corpus_n, seed=21), Fidelity.HIGH
    )
    tag = warm_engine.workload_tag(Fidelity.HIGH)

    serial_batch = _distinct_batch(space, serial_n, seed=22)
    queries = _distinct_batch(space, query_n, seed=23)
    tier = CostModelTier(store, space, model="gbrt", max_rel_std=0.05)

    def run():
        out = {}
        serial_engine = EvaluationEngine(
            space,
            analytical=analytical,
            high_fidelity=SimulationProxy(workload, space),
            backend=SerialBackend(),
        )
        start = time.perf_counter()
        serial_engine.evaluate_many(serial_batch, Fidelity.HIGH)
        out["serial_s_per_eval"] = (time.perf_counter() - start) / serial_n

        # First serve fits the ensemble (one-time cost, reported apart).
        start = time.perf_counter()
        tier.serve(sig, tag, "high", queries[:1])
        out["fit_s"] = time.perf_counter() - start

        before = tier.stats()
        start = time.perf_counter()
        answers = tier.serve(sig, tag, "high", queries)
        out["tier_s_per_query"] = (time.perf_counter() - start) / query_n
        after = tier.stats()
        out["served"] = after["served"] - before["served"]
        out["fallbacks"] = after["fallbacks"] - before["fallbacks"]
        assert after["fits"] == 1  # steady state: no refit mid-measurement
        assert all(
            a is None or a["cpi"] > 0 for a in answers
        )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = out["serial_s_per_eval"] / max(out["tier_s_per_query"], 1e-12)
    hit_rate = out["served"] / query_n
    fallback_rate = out["fallbacks"] / query_n
    benchmark.extra_info["tier_corpus_records"] = len(store)
    benchmark.extra_info["tier_fit_s"] = out["fit_s"]
    benchmark.extra_info["hf_serial_ms_per_eval"] = out["serial_s_per_eval"] * 1e3
    benchmark.extra_info["tier_us_per_query"] = out["tier_s_per_query"] * 1e6
    benchmark.extra_info["tier_speedup"] = speedup
    benchmark.extra_info["tier_hit_rate"] = hit_rate
    benchmark.extra_info["tier_fallback_rate"] = fallback_rate

    report.append("Learned cost-model tier (gbrt, warm corpus):")
    report.append(
        f"  corpus {len(store)} records, fit {out['fit_s']:.2f} s "
        f"(one-time, subsampled)"
    )
    report.append(
        f"  serial HF {out['serial_s_per_eval'] * 1e3:>8.2f} ms/eval   "
        f"tier {out['tier_s_per_query'] * 1e6:>7.1f} us/query   "
        f"speedup {speedup:,.0f}x"
    )
    report.append(
        f"  hit rate {hit_rate:.0%} served, {fallback_rate:.0%} fell back "
        f"to the simulator ({out['served']}/{query_n} queries)"
    )

    assert len(store) >= 2000, "warm-corpus lane needs >= 2k records"
    # A confident learned query must be far cheaper than a serial HF
    # simulation. The bar was 50x against the Python timing kernel; the
    # compiled kernel made the denominator ~25x faster, so the tier's
    # remaining win is ~10x -- still the point of the tier (it skips the
    # simulator entirely), with the precise band owned by the
    # BENCH_baseline.json gate on tier_speedup.
    assert speedup >= 5, f"learned tier only {speedup:.1f}x serial HF"
    # A tier that never serves would trivially 'pass' on speed; demand
    # real coverage on a warm smooth-ish corpus.
    assert out["served"] > 0, "tier served nothing on a warm corpus"
