"""Sec. 4.3: rule extraction from a trained FNN.

Times the translation of the weight matrices into pruned IF/THEN rules
and prints the strongest rules -- the paper's interpretability listing.
"""

from benchmarks.conftest import scale
from repro.core.fnn import extract_rules, render_rule_base
from repro.experiments.rules import run_rules_demo


def test_bench_rules(benchmark, report):
    rules, explorer = run_rules_demo(
        benchmark="mm",
        episodes=scale(120, 260),
        seed=0,
        data_size=scale(14, None),
        top_k=12,
    )

    # the timed body is the extraction itself (the paper's "script that
    # automatically translates the calculations of FNN into rules")
    extracted = benchmark(lambda: extract_rules(explorer.fnn, top_k=12))

    report.append("Sec. 4.3 rule listing (regenerated):")
    report.append(render_rule_base(rules))

    assert extracted, "trained FNN produced no rules"
    # rules must be about real parameters and carry positive weights
    from repro.designspace import default_design_space

    names = set(default_design_space().names)
    for rule in extracted:
        assert rule.output in names
        assert rule.weight > 0
