"""Ablation: the paper's aggressive reward (eq. 3) vs raw IPC reward.

``reward = IPC - IPC* + eps`` keeps the return centred near zero so only
*improvements* are reinforced; raw-IPC rewards reinforce every episode
(including mediocre ones) and converge slower. This bench trains the LF
phase with both shapings at the same budget.
"""

import numpy as np
import pytest

from benchmarks.conftest import scale
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.core.mfrl.env import DseEnvironment
from repro.core.mfrl.reinforce import ReinforceTrainer
from repro.experiments.common import build_pool

pytestmark = pytest.mark.slow  # multi-second run; CI smoke lane skips it


def _train(aggressive: bool, episodes: int, seed: int) -> float:
    pool = build_pool("mm", data_size=scale(14, None))
    explorer = MultiFidelityExplorer(
        pool, config=ExplorerConfig(lf_episodes=episodes), seed=seed
    )
    env = DseEnvironment(pool, explorer.inputs, use_gradient_mask=True)
    trainer = ReinforceTrainer(env, explorer.fnn, explorer.config.trainer)
    rng = np.random.default_rng(seed)
    best = np.inf
    for __ in range(episodes):
        if aggressive:
            reference = 1.0 / best if np.isfinite(best) else 0.0
        else:
            reference = 0.0  # raw IPC + eps: every episode is "good"
        record = trainer.run_episode(
            rng, lambda l: pool.evaluate_low(l).ipc, reference
        )
        best = min(best, record.final_cpi)
    # final greedy quality, not just best-seen: reward shaping is about
    # what the *policy* converges to
    greedy = trainer.greedy_design(rng)
    return pool.evaluate_low(greedy).cpi


def test_bench_ablation_reward(benchmark, report):
    episodes = scale(60, 200)
    seeds = range(scale(2, 5))

    def run():
        aggressive = [_train(True, episodes, s) for s in seeds]
        raw = [_train(False, episodes, s) for s in seeds]
        return aggressive, raw

    aggressive, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_aggressive = float(np.mean(aggressive))
    mean_raw = float(np.mean(raw))
    report.append("Ablation -- reward shaping (greedy analytical CPI):")
    report.append(f"  eq.3 (IPC - IPC* + eps): {mean_aggressive:.4f}")
    report.append(f"  raw IPC reward:          {mean_raw:.4f}")

    # the aggressive shaping must not be worse than raw-IPC reward
    assert mean_aggressive <= mean_raw * 1.05
