"""Explainable FNN with Multi-Fidelity RL for micro-architecture DSE.

Reproduction of Fan et al., DAC 2024 (arXiv:2412.10754).

The package is organised as the paper's Fig. 1:

- :mod:`repro.designspace` -- the Table-1 micro-architecture design space.
- :mod:`repro.workloads`   -- the six benchmark kernels as trace generators.
- :mod:`repro.simulator`   -- high-fidelity cycle-approximate OoO simulator
  (stands in for Chipyard BOOM RTL + VCS).
- :mod:`repro.proxies`     -- the proxy pool: analytical CPI model (with
  gradients), area model, HF adapter, caching archive.
- :mod:`repro.core`        -- the paper's contribution: the Fuzzy Neural
  Network search engine and the multi-fidelity RL trainer.
- :mod:`repro.engine`      -- batched/parallel evaluation engine with a
  persistent cross-run result cache, behind the proxy pool.
- :mod:`repro.baselines`   -- Random Forest, ActBoost, BagGBRT,
  BOOM-Explorer-style BO and SCBO baselines, from scratch.
- :mod:`repro.search`      -- the unified step-driven search layer: the
  propose/observe method protocol, the batch-first checkpointable
  search loop, and the name-keyed method registry.
- :mod:`repro.experiments` -- one runner per paper table/figure.
- :mod:`repro.campaign`    -- parallel, resumable orchestration of
  seeds x methods x workloads grids of independent runs.
"""

from repro.designspace import DesignSpace, MicroArchConfig, default_design_space
from repro.core.fnn import FuzzyNeuralNetwork
from repro.core.mfrl import MultiFidelityExplorer
from repro.engine import EvaluationEngine
from repro.search import SearchLoop, SearchMethod

__version__ = "1.0.0"

__all__ = [
    "DesignSpace",
    "EvaluationEngine",
    "MicroArchConfig",
    "default_design_space",
    "FuzzyNeuralNetwork",
    "MultiFidelityExplorer",
    "SearchLoop",
    "SearchMethod",
    "__version__",
]
