"""Fidelity-gap analysis: quantifying LF-vs-HF (dis)agreement.

The multi-fidelity method's premise is that the analytical model is
*correlated but biased*. This module measures that premise per workload:
rank correlation over a random design sample, mean absolute error, and
the per-parameter direction-agreement rate of the LF beneficial mask
against true HF deltas. Used by tests, the fidelity-gap bench, and as a
library feature for anyone swapping in their own proxies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.designspace import DesignSpace
from repro.proxies.analytical import AnalyticalModel
from repro.proxies.interface import EvaluationProxy


@dataclass(frozen=True)
class FidelityGapReport:
    """LF-vs-HF agreement statistics for one workload.

    Attributes:
        workload: Name of the profiled workload.
        num_designs: Sampled design count.
        rank_correlation: Spearman correlation of LF vs HF CPIs.
        mean_absolute_error: Mean |LF - HF| CPI.
        mean_bias: Mean (LF - HF) CPI (negative: LF underestimates).
        mask_precision: Of the moves the LF mask calls beneficial, the
            fraction that the HF proxy confirms (does not worsen CPI).
    """

    workload: str
    num_designs: int
    rank_correlation: float
    mean_absolute_error: float
    mean_bias: float
    mask_precision: float

    def render(self) -> str:
        """One-line summary."""
        return (
            f"{self.workload:<12} rank={self.rank_correlation:+.3f} "
            f"mae={self.mean_absolute_error:.3f} "
            f"bias={self.mean_bias:+.3f} "
            f"mask-precision={self.mask_precision:.2f}"
        )


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    if a.std() == 0 or b.std() == 0:
        return 0.0  # a constant series carries no rank information
    ra = np.argsort(np.argsort(a)).astype(np.float64)
    rb = np.argsort(np.argsort(b)).astype(np.float64)
    return float(np.corrcoef(ra, rb)[0, 1])


def measure_fidelity_gap(
    analytical: AnalyticalModel,
    high_fidelity: EvaluationProxy,
    space: DesignSpace,
    rng: np.random.Generator,
    num_designs: int = 30,
    mask_probes: int = 10,
) -> FidelityGapReport:
    """Sample designs and compare the two proxies.

    Args:
        analytical: The LF model under test.
        high_fidelity: The HF oracle (any :class:`EvaluationProxy`).
        space: Design space to sample from.
        rng: Sampling randomness.
        num_designs: Random designs for the correlation/error stats.
        mask_probes: Designs at which the beneficial mask is checked
            against true HF one-step deltas (each probe costs up to
            ``1 + num_parameters`` HF evaluations).
    """
    if num_designs < 3:
        raise ValueError("need at least 3 designs for correlation")
    samples = space.sample(rng, count=num_designs)
    lf = np.array([analytical.cpi(space.config(s)) for s in samples])
    hf = np.array([high_fidelity.evaluate(s).cpi for s in samples])

    # mask precision: do LF-beneficial moves actually help the HF proxy?
    confirmed = 0
    claimed = 0
    for levels in samples[: max(mask_probes, 0)]:
        mask = analytical.beneficial_mask(levels)
        if not mask.any():
            continue
        here = high_fidelity.evaluate(levels).cpi
        for i in np.flatnonzero(mask):
            up = levels.copy()
            up[i] += 1
            claimed += 1
            if high_fidelity.evaluate(up).cpi <= here + 1e-12:
                confirmed += 1

    return FidelityGapReport(
        workload=analytical.profile.name,
        num_designs=num_designs,
        rank_correlation=_spearman(lf, hf),
        mean_absolute_error=float(np.abs(lf - hf).mean()),
        mean_bias=float((lf - hf).mean()),
        mask_precision=confirmed / claimed if claimed else 1.0,
    )
