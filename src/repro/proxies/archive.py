"""Design archive: the evaluation cache of the proxy pool (Fig. 1).

Memoises evaluations per fidelity (keyed by the design's flat index) and
tracks the best designs seen -- the LF phase's "observed best designs"
set that seeds the HF phase (Sec. 3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.designspace import DesignSpace
from repro.proxies.interface import Evaluation, Fidelity


class DesignArchive:
    """Evaluation memo plus a best-designs leaderboard.

    Args:
        space: Design space (for flat-index keys).
        keep_best: Leaderboard length per fidelity.
    """

    def __init__(self, space: DesignSpace, keep_best: int = 16):
        if keep_best < 1:
            raise ValueError("keep_best must be >= 1")
        self.space = space
        self.keep_best = keep_best
        self._memo: Dict[Fidelity, Dict[int, Evaluation]] = {
            Fidelity.LOW: {},
            Fidelity.HIGH: {},
        }
        self._best: Dict[Fidelity, List[Tuple[float, int]]] = {
            Fidelity.LOW: [],
            Fidelity.HIGH: [],
        }

    # ------------------------------------------------------------------
    def lookup(self, levels: Sequence[int], fidelity: Fidelity) -> Optional[Evaluation]:
        """Cached evaluation, or None."""
        key = self.space.flat_index(levels)
        return self._memo[fidelity].get(key)

    def record(self, evaluation: Evaluation) -> None:
        """Insert an evaluation; updates the leaderboard."""
        key = self.space.flat_index(evaluation.levels)
        memo = self._memo[evaluation.fidelity]
        memo[key] = evaluation
        board = self._best[evaluation.fidelity]
        entry = (evaluation.cpi, key)
        if entry not in board:
            board.append(entry)
            board.sort()
            del board[self.keep_best:]

    def count(self, fidelity: Fidelity) -> int:
        """Number of distinct designs evaluated at ``fidelity``."""
        return len(self._memo[fidelity])

    def best(self, fidelity: Fidelity) -> Optional[Evaluation]:
        """Best (lowest-CPI) evaluation at ``fidelity``, or None."""
        board = self._best[fidelity]
        if not board:
            return None
        __, key = board[0]
        return self._memo[fidelity][key]

    def best_designs(self, fidelity: Fidelity, k: Optional[int] = None) -> List[Evaluation]:
        """Top-k leaderboard (ascending CPI)."""
        board = self._best[fidelity][: (k or self.keep_best)]
        return [self._memo[fidelity][key] for __, key in board]

    def all_evaluations(self, fidelity: Fidelity) -> List[Evaluation]:
        """Every distinct evaluation at ``fidelity`` (arbitrary order)."""
        return list(self._memo[fidelity].values())
