"""Common proxy interface: fidelities, evaluations, the proxy protocol."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Protocol, Sequence, runtime_checkable

import numpy as np


class Fidelity(Enum):
    """Evaluation fidelity level."""

    LOW = "low"    #: analytical model (~microseconds)
    HIGH = "high"  #: cycle-approximate simulation (the paper's RTL slot)


@dataclass(frozen=True)
class Evaluation:
    """One design evaluation.

    Attributes:
        levels: The evaluated level vector (copied, immutable by convention).
        fidelity: Which proxy produced the numbers.
        metrics: At least ``{"cpi": ..., "ipc": ...}``; proxies may add
            more (miss rates etc.).
        provenance: How the numbers were obtained -- ``"simulated"``
            (backend actually ran the proxy), ``"cached"`` (persistent
            store hit) or ``"learned"`` (served by the confidence-gated
            cost-model tier).
    """

    levels: np.ndarray
    fidelity: Fidelity
    metrics: Dict[str, float]
    provenance: str = "simulated"

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.metrics["cpi"]

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.metrics["ipc"]


@runtime_checkable
class EvaluationProxy(Protocol):
    """Anything that can score a level vector."""

    fidelity: Fidelity

    def evaluate(self, levels: Sequence[int]) -> Evaluation:
        """Evaluate a design point, returning at least cpi/ipc metrics."""
        ...
