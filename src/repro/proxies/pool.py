"""The proxy pool: LF + HF + area model + archive behind one interface.

This is the "Proxy Pool / Objective Function Plugin / Archive" block of
the paper's Fig. 1. The searching engine talks only to this object; the
pool routes to the analytical model or the simulator, memoises through the
archive, and enforces the area constraint.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.designspace import AreaConstraint, DesignSpace
from repro.proxies.analytical import AnalyticalModel
from repro.proxies.archive import DesignArchive
from repro.proxies.area import AreaModel
from repro.proxies.interface import Evaluation, EvaluationProxy, Fidelity

if TYPE_CHECKING:  # imported lazily at runtime (engine depends on proxies)
    from repro.engine import EvaluationEngine


class ProxyPool:
    """Multi-fidelity evaluation frontend.

    Every evaluation -- single or batched -- funnels through one
    :class:`~repro.engine.EvaluationEngine`, so the execution strategy
    (serial, process pool, vectorised) and the persistent cross-run cache
    are pool construction choices, invisible to the search layers.

    Args:
        space: The design space.
        analytical: LF model (also supplies the action-mask gradients).
        high_fidelity: HF proxy (single-workload or suite-average).
        area_model: Area estimator for the constraint.
        area_limit_mm2: The episode budget.
        keep_best: Archive leaderboard size.
        engine: Pre-built evaluation engine; overrides the next three.
        workers: ``> 1`` selects a :class:`ProcessPoolBackend` with this
            many workers for the default engine.
        cache_dir: Directory for the persistent JSONL result cache.
        hf_backend: Execution-backend spec for the default engine
            (``"serial"`` / ``"process"`` / ``"batch"``); ``None`` picks
            the process pool when ``workers > 1``, else the vectorised
            batch backend (design-batched HF kernel + numpy LF model).
    """

    def __init__(
        self,
        space: DesignSpace,
        analytical: AnalyticalModel,
        high_fidelity: EvaluationProxy,
        area_model: Optional[AreaModel] = None,
        area_limit_mm2: float = 8.0,
        keep_best: int = 16,
        engine: Optional[EvaluationEngine] = None,
        workers: int = 0,
        cache_dir: Union[str, Path, None] = None,
        hf_backend: Optional[str] = None,
    ):
        self.space = space
        self.analytical = analytical
        self.high_fidelity = high_fidelity
        self.area_model = area_model or AreaModel()
        self.constraint = AreaConstraint(self.area_model, area_limit_mm2)
        self.archive = DesignArchive(space, keep_best=keep_best)
        if engine is None:
            from repro.engine import EvaluationEngine, ResultCache, make_backend

            backend = make_backend(hf_backend, workers=workers)
            cache = ResultCache(cache_dir) if cache_dir is not None else None
            engine = EvaluationEngine(
                space,
                analytical=analytical,
                high_fidelity=high_fidelity,
                backend=backend,
                cache=cache,
            )
        self.engine = engine
        self.lf_evaluations = 0
        self.hf_evaluations = 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, levels: Sequence[int], fidelity: Fidelity) -> Evaluation:
        """Evaluate (with memoisation) at the requested fidelity."""
        levels = self.space.validate_levels(levels)
        cached = self.archive.lookup(levels, fidelity)
        if cached is not None:
            return cached
        evaluation = self.engine.evaluate(levels, fidelity)
        if fidelity is Fidelity.LOW:
            self.lf_evaluations += 1
        else:
            self.hf_evaluations += 1
        self.archive.record(evaluation)
        return evaluation

    def evaluate_many(
        self, levels_batch: Sequence[Sequence[int]], fidelity: Fidelity
    ) -> List[Evaluation]:
        """Batched :meth:`evaluate`: one engine dispatch for the misses.

        Results align with ``levels_batch``; designs already in the
        archive (or repeated within the batch) are not re-evaluated and
        do not bump the evaluation counters -- exactly the bookkeeping a
        sequential loop over :meth:`evaluate` would produce, but with all
        archive misses dispatched to the backend as one batch.
        """
        validated = [self.space.validate_levels(lv) for lv in levels_batch]
        results: List[Optional[Evaluation]] = [None] * len(validated)
        miss_positions: List[int] = []
        miss_keys = set()
        for i, levels in enumerate(validated):
            cached = self.archive.lookup(levels, fidelity)
            if cached is not None:
                results[i] = cached
                continue
            key = self.space.flat_index(levels)
            if key not in miss_keys:
                miss_keys.add(key)
                miss_positions.append(i)
        if miss_positions:
            fresh = self.engine.evaluate_many(
                [validated[i] for i in miss_positions], fidelity
            )
            if fidelity is Fidelity.LOW:
                self.lf_evaluations += len(fresh)
            else:
                self.hf_evaluations += len(fresh)
            for evaluation in fresh:
                self.archive.record(evaluation)
            for i in miss_positions:
                results[i] = self.archive.lookup(validated[i], fidelity)
        # In-batch duplicates of a freshly evaluated design resolve last.
        for i, levels in enumerate(validated):
            if results[i] is None:
                results[i] = self.archive.lookup(levels, fidelity)
        return results  # type: ignore[return-value]

    def evaluate_low(self, levels: Sequence[int]) -> Evaluation:
        """LF (analytical) evaluation."""
        return self.evaluate(levels, Fidelity.LOW)

    def evaluate_high(self, levels: Sequence[int]) -> Evaluation:
        """HF (simulation) evaluation."""
        return self.evaluate(levels, Fidelity.HIGH)

    def evaluate_many_low(
        self, levels_batch: Sequence[Sequence[int]]
    ) -> List[Evaluation]:
        """Batched LF evaluation."""
        return self.evaluate_many(levels_batch, Fidelity.LOW)

    def evaluate_many_high(
        self, levels_batch: Sequence[Sequence[int]]
    ) -> List[Evaluation]:
        """Batched HF evaluation."""
        return self.evaluate_many(levels_batch, Fidelity.HIGH)

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------
    def area(self, levels: Sequence[int]) -> float:
        """Estimated area at ``levels`` (mm^2)."""
        return self.constraint.area(self.space.config(levels))

    def area_many(self, levels_block: Sequence[Sequence[int]]) -> np.ndarray:
        """Estimated areas for a whole block of designs (mm^2).

        One vectorised pass when the pool runs the standard
        :class:`AreaModel` (bit-identical to per-design :meth:`area`);
        custom area callables fall back to the scalar loop.
        """
        block = np.asarray(levels_block, dtype=np.int64)
        if block.size == 0:
            return np.zeros(0, dtype=np.float64)
        if block.ndim == 1:
            block = block.reshape(1, -1)
        if isinstance(self.area_model, AreaModel):
            values = self.space.values_batch(block)
            named = dict(zip(self.space.names, values.T))
            return self.area_model.area_values(named)
        return np.array([self.area(levels) for levels in block])

    def fits(self, levels: Sequence[int]) -> bool:
        """True when the design is within the area budget."""
        return self.constraint.is_satisfied(self.space.config(levels))

    def fits_many(self, levels_block: Sequence[Sequence[int]]) -> np.ndarray:
        """Boolean area-budget mask over a block of designs.

        Batched :meth:`fits`: element ``i`` equals ``fits(block[i])``
        exactly, at one vectorised area evaluation for the whole block.
        """
        return self.area_many(levels_block) <= self.constraint.limit_mm2

    def feasible_increase_mask(self, levels: Sequence[int]) -> np.ndarray:
        """Which +1 moves stay inside the space *and* the area budget."""
        levels = self.space.validate_levels(levels)
        mask = self.space.increasable(levels)
        up_rows = np.flatnonzero(mask)
        if len(up_rows):
            block = np.repeat(levels.reshape(1, -1), len(up_rows), axis=0)
            block[np.arange(len(up_rows)), up_rows] += 1
            mask[up_rows] &= self.fits_many(block)
        return mask

    def beneficial_mask(self, levels: Sequence[int]) -> np.ndarray:
        """The LF phase's gradient mask (Sec. 3.1), model-predicted."""
        return self.analytical.beneficial_mask(levels)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Evaluation counters (distinct designs via the archive)."""
        return {
            "lf_evaluations": self.lf_evaluations,
            "hf_evaluations": self.hf_evaluations,
            "lf_distinct": self.archive.count(Fidelity.LOW),
            "hf_distinct": self.archive.count(Fidelity.HIGH),
            **{f"engine_{k}": v for k, v in self.engine.summary().items()},
        }
