"""The proxy pool: LF + HF + area model + archive behind one interface.

This is the "Proxy Pool / Objective Function Plugin / Archive" block of
the paper's Fig. 1. The searching engine talks only to this object; the
pool routes to the analytical model or the simulator, memoises through the
archive, and enforces the area constraint.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.designspace import AreaConstraint, DesignSpace, MicroArchConfig
from repro.proxies.analytical import AnalyticalModel
from repro.proxies.archive import DesignArchive
from repro.proxies.area import AreaModel
from repro.proxies.interface import Evaluation, EvaluationProxy, Fidelity


class ProxyPool:
    """Multi-fidelity evaluation frontend.

    Args:
        space: The design space.
        analytical: LF model (also supplies the action-mask gradients).
        high_fidelity: HF proxy (single-workload or suite-average).
        area_model: Area estimator for the constraint.
        area_limit_mm2: The episode budget.
        keep_best: Archive leaderboard size.
    """

    def __init__(
        self,
        space: DesignSpace,
        analytical: AnalyticalModel,
        high_fidelity: EvaluationProxy,
        area_model: Optional[AreaModel] = None,
        area_limit_mm2: float = 8.0,
        keep_best: int = 16,
    ):
        self.space = space
        self.analytical = analytical
        self.high_fidelity = high_fidelity
        self.area_model = area_model or AreaModel()
        self.constraint = AreaConstraint(self.area_model, area_limit_mm2)
        self.archive = DesignArchive(space, keep_best=keep_best)
        self.lf_evaluations = 0
        self.hf_evaluations = 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, levels: Sequence[int], fidelity: Fidelity) -> Evaluation:
        """Evaluate (with memoisation) at the requested fidelity."""
        levels = self.space.validate_levels(levels)
        cached = self.archive.lookup(levels, fidelity)
        if cached is not None:
            return cached
        if fidelity is Fidelity.LOW:
            config = self.space.config(levels)
            cpi = self.analytical.cpi(config)
            evaluation = Evaluation(
                levels=levels,
                fidelity=Fidelity.LOW,
                metrics={"cpi": cpi, "ipc": 1.0 / cpi},
            )
            self.lf_evaluations += 1
        else:
            evaluation = self.high_fidelity.evaluate(levels)
            self.hf_evaluations += 1
        self.archive.record(evaluation)
        return evaluation

    def evaluate_low(self, levels: Sequence[int]) -> Evaluation:
        """LF (analytical) evaluation."""
        return self.evaluate(levels, Fidelity.LOW)

    def evaluate_high(self, levels: Sequence[int]) -> Evaluation:
        """HF (simulation) evaluation."""
        return self.evaluate(levels, Fidelity.HIGH)

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------
    def area(self, levels: Sequence[int]) -> float:
        """Estimated area at ``levels`` (mm^2)."""
        return self.constraint.area(self.space.config(levels))

    def fits(self, levels: Sequence[int]) -> bool:
        """True when the design is within the area budget."""
        return self.constraint.is_satisfied(self.space.config(levels))

    def feasible_increase_mask(self, levels: Sequence[int]) -> np.ndarray:
        """Which +1 moves stay inside the space *and* the area budget."""
        levels = self.space.validate_levels(levels)
        mask = self.space.increasable(levels)
        for i in np.flatnonzero(mask):
            up = levels.copy()
            up[i] += 1
            if not self.fits(up):
                mask[i] = False
        return mask

    def beneficial_mask(self, levels: Sequence[int]) -> np.ndarray:
        """The LF phase's gradient mask (Sec. 3.1), model-predicted."""
        return self.analytical.beneficial_mask(levels)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Evaluation counters (distinct designs via the archive)."""
        return {
            "lf_evaluations": self.lf_evaluations,
            "hf_evaluations": self.hf_evaluations,
            "lf_distinct": self.archive.count(Fidelity.LOW),
            "hf_distinct": self.archive.count(Fidelity.HIGH),
        }
