"""The proxy pool: LF + HF + area model + archive behind one interface.

This is the "Proxy Pool / Objective Function Plugin / Archive" block of
the paper's Fig. 1. The searching engine talks only to this object; the
pool routes to the analytical model or the simulator, memoises through the
archive, and enforces the area constraint.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.designspace import AreaConstraint, DesignSpace
from repro.proxies.analytical import AnalyticalModel
from repro.proxies.archive import DesignArchive
from repro.proxies.area import AreaModel
from repro.proxies.interface import Evaluation, EvaluationProxy, Fidelity

if TYPE_CHECKING:  # imported lazily at runtime (engine depends on proxies)
    from repro.engine import EvaluationEngine


class ProxyPool:
    """Multi-fidelity evaluation frontend.

    Every evaluation -- single or batched -- funnels through one
    :class:`~repro.engine.EvaluationEngine`, so the execution strategy
    (serial, process pool, vectorised) and the persistent cross-run cache
    are pool construction choices, invisible to the search layers.

    Args:
        space: The design space.
        analytical: LF model (also supplies the action-mask gradients).
        high_fidelity: HF proxy (single-workload or suite-average).
        area_model: Area estimator for the constraint.
        area_limit_mm2: The episode budget.
        keep_best: Archive leaderboard size.
        engine: Pre-built evaluation engine; overrides ``config`` and
            the legacy engine kwargs below.
        config: :class:`~repro.engine.EngineConfig` for the default
            engine (store backend, learned tier, workers, ...); the
            legacy kwargs below are folded into one when absent.
        workers: ``> 1`` selects a :class:`ProcessPoolBackend` with this
            many workers for the default engine.
        cache_dir: Directory for the persistent evaluation store.
        hf_backend: Execution-backend spec for the default engine
            (``"serial"`` / ``"process"`` / ``"batch"``); ``None`` picks
            the process pool when ``workers > 1``, else the vectorised
            batch backend (design-batched HF kernel + numpy LF model).
    """

    def __init__(
        self,
        space: DesignSpace,
        analytical: AnalyticalModel,
        high_fidelity: EvaluationProxy,
        area_model: Optional[AreaModel] = None,
        area_limit_mm2: float = 8.0,
        keep_best: int = 16,
        engine: Optional[EvaluationEngine] = None,
        config=None,
        workers: int = 0,
        cache_dir: Union[str, Path, None] = None,
        hf_backend: Optional[str] = None,
    ):
        self.space = space
        self.analytical = analytical
        self.high_fidelity = high_fidelity
        self.area_model = area_model or AreaModel()
        self.constraint = AreaConstraint(self.area_model, area_limit_mm2)
        self.archive = DesignArchive(space, keep_best=keep_best)
        if engine is None:
            from repro.engine import (
                EngineConfig,
                EvaluationEngine,
                make_backend,
                normalize_hf_backend,
            )

            if config is None:
                config = EngineConfig(
                    workers=workers,
                    cache_dir=None if cache_dir is None else str(cache_dir),
                    hf_backend=hf_backend,
                )
            backend = make_backend(
                normalize_hf_backend(config.hf_backend), workers=config.workers
            )
            store = config.build_store()
            tier = config.build_tier(store, space)
            engine = EvaluationEngine(
                space,
                analytical=analytical,
                high_fidelity=high_fidelity,
                backend=backend,
                cache=store,
                tier=tier,
            )
        self.engine = engine
        self.lf_evaluations = 0
        self.hf_evaluations = 0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        designs,
        fidelity: Fidelity = Fidelity.HIGH,
    ):
        """Evaluate design(s) at one fidelity -- THE evaluation entry point.

        Accepts either a single level vector (returns one
        :class:`Evaluation`) or a batch of level vectors (returns a list
        aligned with the input). Every legacy variant
        (``evaluate_many`` / ``evaluate_low`` / ``evaluate_high`` /
        ``evaluate_many_low`` / ``evaluate_many_high``) is now a thin
        deprecated shim over this method, so cache, tier and archive
        routing all happen in exactly one place.

        A single vector is dispatched as a batch of one; the resulting
        archive bookkeeping and counters are identical to the historical
        scalar path (locked by the seed-history regression suite).
        """
        single = len(designs) > 0 and np.ndim(designs[0]) == 0
        batch = [designs] if single else designs
        results = self._evaluate_batch(batch, fidelity)
        return results[0] if single else results

    def _evaluate_batch(
        self, levels_batch: Sequence[Sequence[int]], fidelity: Fidelity
    ) -> List[Evaluation]:
        """Batched evaluation body: one engine dispatch for the misses.

        Results align with ``levels_batch``; designs already in the
        archive (or repeated within the batch) are not re-evaluated and
        do not bump the evaluation counters -- exactly the bookkeeping a
        sequential scalar loop would produce, but with all archive
        misses dispatched to the backend as one batch.
        """
        validated = [self.space.validate_levels(lv) for lv in levels_batch]
        results: List[Optional[Evaluation]] = [None] * len(validated)
        miss_positions: List[int] = []
        miss_keys = set()
        for i, levels in enumerate(validated):
            cached = self.archive.lookup(levels, fidelity)
            if cached is not None:
                results[i] = cached
                continue
            key = self.space.flat_index(levels)
            if key not in miss_keys:
                miss_keys.add(key)
                miss_positions.append(i)
        if miss_positions:
            fresh = self.engine.evaluate_many(
                [validated[i] for i in miss_positions], fidelity
            )
            if fidelity is Fidelity.LOW:
                self.lf_evaluations += len(fresh)
            else:
                self.hf_evaluations += len(fresh)
            for evaluation in fresh:
                self.archive.record(evaluation)
            for i in miss_positions:
                results[i] = self.archive.lookup(validated[i], fidelity)
        # In-batch duplicates of a freshly evaluated design resolve last.
        for i, levels in enumerate(validated):
            if results[i] is None:
                results[i] = self.archive.lookup(levels, fidelity)
        return results  # type: ignore[return-value]

    # -- deprecated variants (shims over :meth:`evaluate`) -------------
    @staticmethod
    def _deprecated(old: str) -> None:
        warnings.warn(
            f"ProxyPool.{old} is deprecated; use ProxyPool.evaluate("
            "designs, fidelity=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def evaluate_many(
        self, levels_batch: Sequence[Sequence[int]], fidelity: Fidelity
    ) -> List[Evaluation]:
        """Deprecated: use :meth:`evaluate` with a batch."""
        self._deprecated("evaluate_many")
        return self._evaluate_batch(levels_batch, fidelity)

    def evaluate_low(self, levels: Sequence[int]) -> Evaluation:
        """Deprecated: use ``evaluate(levels, Fidelity.LOW)``."""
        self._deprecated("evaluate_low")
        return self._evaluate_batch([levels], Fidelity.LOW)[0]

    def evaluate_high(self, levels: Sequence[int]) -> Evaluation:
        """Deprecated: use ``evaluate(levels, Fidelity.HIGH)``."""
        self._deprecated("evaluate_high")
        return self._evaluate_batch([levels], Fidelity.HIGH)[0]

    def evaluate_many_low(
        self, levels_batch: Sequence[Sequence[int]]
    ) -> List[Evaluation]:
        """Deprecated: use ``evaluate(batch, Fidelity.LOW)``."""
        self._deprecated("evaluate_many_low")
        return self._evaluate_batch(levels_batch, Fidelity.LOW)

    def evaluate_many_high(
        self, levels_batch: Sequence[Sequence[int]]
    ) -> List[Evaluation]:
        """Deprecated: use ``evaluate(batch, Fidelity.HIGH)``."""
        self._deprecated("evaluate_many_high")
        return self._evaluate_batch(levels_batch, Fidelity.HIGH)

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------
    def area(self, levels: Sequence[int]) -> float:
        """Estimated area at ``levels`` (mm^2)."""
        return self.constraint.area(self.space.config(levels))

    def area_many(self, levels_block: Sequence[Sequence[int]]) -> np.ndarray:
        """Estimated areas for a whole block of designs (mm^2).

        One vectorised pass when the pool runs the standard
        :class:`AreaModel` (bit-identical to per-design :meth:`area`);
        custom area callables fall back to the scalar loop.
        """
        block = np.asarray(levels_block, dtype=np.int64)
        if block.size == 0:
            return np.zeros(0, dtype=np.float64)
        if block.ndim == 1:
            block = block.reshape(1, -1)
        if isinstance(self.area_model, AreaModel):
            values = self.space.values_batch(block)
            named = dict(zip(self.space.names, values.T))
            return self.area_model.area_values(named)
        return np.array([self.area(levels) for levels in block])

    def fits(self, levels: Sequence[int]) -> bool:
        """True when the design is within the area budget."""
        return self.constraint.is_satisfied(self.space.config(levels))

    def fits_many(self, levels_block: Sequence[Sequence[int]]) -> np.ndarray:
        """Boolean area-budget mask over a block of designs.

        Batched :meth:`fits`: element ``i`` equals ``fits(block[i])``
        exactly, at one vectorised area evaluation for the whole block.
        """
        return self.area_many(levels_block) <= self.constraint.limit_mm2

    def feasible_increase_mask(self, levels: Sequence[int]) -> np.ndarray:
        """Which +1 moves stay inside the space *and* the area budget."""
        levels = self.space.validate_levels(levels)
        mask = self.space.increasable(levels)
        up_rows = np.flatnonzero(mask)
        if len(up_rows):
            block = np.repeat(levels.reshape(1, -1), len(up_rows), axis=0)
            block[np.arange(len(up_rows)), up_rows] += 1
            mask[up_rows] &= self.fits_many(block)
        return mask

    def beneficial_mask(self, levels: Sequence[int]) -> np.ndarray:
        """The LF phase's gradient mask (Sec. 3.1), model-predicted."""
        return self.analytical.beneficial_mask(levels)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Evaluation counters (distinct designs via the archive)."""
        return {
            "lf_evaluations": self.lf_evaluations,
            "hf_evaluations": self.hf_evaluations,
            "lf_distinct": self.archive.count(Fidelity.LOW),
            "hf_distinct": self.archive.count(Fidelity.HIGH),
            **{f"engine_{k}": v for k, v in self.engine.summary().items()},
        }
