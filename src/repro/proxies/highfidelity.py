"""High-fidelity proxies: adapters over the cycle-approximate simulator.

In the paper this slot is Chipyard-generated BOOM RTL under VCS (~2 h per
design). Here it is :mod:`repro.simulator` (see DESIGN.md for the
substitution argument); the adapters keep the same shape -- expensive,
accurate, called sparingly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Sequence

import numpy as np

from repro.designspace import DesignSpace
from repro.proxies.interface import Evaluation, Fidelity
from repro.simulator import OutOfOrderSimulator, SimulatorParams
from repro.simulator.params import DEFAULT_PARAMS
from repro.workloads.suite import Workload


#: HF metrics-schema version, folded into persistent-cache tags. Bump it
#: whenever ``evaluate`` adds, renames or re-interprets metrics keys, so
#: entries written by an older schema miss instead of replaying partial
#: metric dicts next to fresh full ones. v2: added mshr_stall_cycles +
#: fu_issue_{int,mem,fp} (single) and mshr_stall_cycles (suite).
METRICS_SCHEMA = 2


def params_signature(params) -> str:
    """Short stable hash of a (frozen-dataclass) parameter set.

    Folded into persistent-cache tags so runs with different machine
    timing constants never read each other's results.
    """
    payload = json.dumps(dataclasses.asdict(params), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


def _prepass_stats(simulator: OutOfOrderSimulator) -> dict:
    """Pre-pass memo efficacy + kernel provenance of one simulator.

    Counters are per-process: under a ``ProcessPoolBackend`` the
    evaluating simulators live in the workers, so the parent proxy's
    counters stay at the work it did locally. Campaign runs execute
    (and snapshot their summary) inside the worker, so campaign
    reports aggregate the real numbers.

    Kernel provenance mirrors the tier/cache provenance pattern: one
    ``kernel_<name>_evals`` counter per kernel that actually ran
    (compiled / python / batched), plus the resolved serial kernel
    under ``hf_kernel`` once known (a string -- campaign aggregation
    skips non-numeric values by design).
    """
    memo = simulator.prepass_memo
    out = {
        "prepass_hits": memo.hits,
        "prepass_misses": memo.misses,
        "prepass_entries": len(memo),
    }
    for name, count in sorted(simulator.kernel_counts.items()):
        out[f"kernel_{name}_evals"] = count
    resolved = simulator.resolved_kernel
    if resolved is not None:
        out["hf_kernel"] = resolved
    return out


def _result_metrics(result) -> dict:
    """The metrics dict one :class:`SimulationResult` contributes."""
    return {
        "cpi": result.cpi,
        "ipc": result.ipc,
        "l1_miss_rate": result.l1_miss_rate,
        "l2_miss_rate": result.l2_miss_rate,
        "branch_mispredict_rate": result.branch_mispredict_rate,
        # Structural-stall attribution: which resource the design
        # is actually burning cycles or slots on.
        "mshr_stall_cycles": result.mshr_stall_cycles,
        "fu_issue_int": result.fu_issue_counts.get("int", 0),
        "fu_issue_mem": result.fu_issue_counts.get("mem", 0),
        "fu_issue_fp": result.fu_issue_counts.get("fp", 0),
    }


class SimulationProxy:
    """HF proxy for a single workload.

    Args:
        workload: The benchmark to simulate.
        space: Design space for level decoding.
        params: Fixed machine timing constants.
        hf_batch: Designs per design-batched simulator walk in
            :meth:`evaluate_many` (None = the kernel default). An
            explicit width >= 2 also engages the batched kernel at
            that width; ``1`` disables it entirely.
        kernel: Requested serial timing kernel (None/"auto",
            "compiled", "python"); resolved per process -- see
            :func:`repro.simulator.kernels.select_kernel`.
    """

    fidelity = Fidelity.HIGH

    def __init__(
        self,
        workload: Workload,
        space: DesignSpace,
        params: SimulatorParams = DEFAULT_PARAMS,
        hf_batch: int = None,
        kernel: str = None,
    ):
        self.workload = workload
        self.space = space
        self.hf_batch = hf_batch
        self._simulator = OutOfOrderSimulator(params, kernel=kernel)
        self.num_evaluations = 0

    @property
    def cache_tag(self) -> str:
        """Persistent-cache namespace: pins the exact workload instance,
        the machine timing constants and the metrics schema."""
        w = self.workload
        sig = params_signature(self._simulator.params)
        return f"{w.name}:d{w.data_size}:s{w.seed}:p{sig}:m{METRICS_SCHEMA}"

    def evaluate(self, levels: Sequence[int]) -> Evaluation:
        """Simulate the workload on the design at ``levels``."""
        levels = self.space.validate_levels(levels)
        config = self.space.config(levels)
        result = self._simulator.run(self.workload.trace, config)
        self.num_evaluations += 1
        return Evaluation(
            levels=levels,
            fidelity=Fidelity.HIGH,
            metrics=_result_metrics(result),
        )

    def evaluate_many(
        self, levels_batch: Sequence[Sequence[int]]
    ) -> list:
        """Simulate a whole batch of designs in one simulator call.

        Routes through :meth:`OutOfOrderSimulator.run_batch`, so wide
        batches run on the design-batched lockstep kernel; results are
        bit-identical to mapping :meth:`evaluate` over the batch.
        """
        levels_list = [self.space.validate_levels(lv) for lv in levels_batch]
        configs = [self.space.config(lv) for lv in levels_list]
        results = self._simulator.run_batch(
            self.workload.trace, configs, max_designs=self.hf_batch
        )
        self.num_evaluations += len(levels_list)
        return [
            Evaluation(
                levels=levels, fidelity=Fidelity.HIGH,
                metrics=_result_metrics(result),
            )
            for levels, result in zip(levels_list, results)
        ]

    def prepass_stats(self) -> dict:
        """Pre-pass memo efficacy counters (phase-1 reuse across designs)."""
        return _prepass_stats(self._simulator)


class SuiteAverageProxy:
    """HF proxy averaging CPI over several workloads.

    Used for the paper's general-purpose experiment (Sec. 4.2): "DSE on
    the average of the results of all 6 benchmarks".
    """

    fidelity = Fidelity.HIGH

    def __init__(
        self,
        workloads: Sequence[Workload],
        space: DesignSpace,
        params: SimulatorParams = DEFAULT_PARAMS,
        hf_batch: int = None,
        kernel: str = None,
    ):
        if not workloads:
            raise ValueError("need at least one workload")
        self.workloads = tuple(workloads)
        self.space = space
        self.hf_batch = hf_batch
        self._simulator = OutOfOrderSimulator(params, kernel=kernel)
        self.num_evaluations = 0

    @property
    def cache_tag(self) -> str:
        """Persistent-cache namespace: pins every workload in the suite,
        the machine timing constants and the metrics schema."""
        parts = ",".join(
            f"{w.name}:d{w.data_size}:s{w.seed}" for w in self.workloads
        )
        sig = params_signature(self._simulator.params)
        return f"avg({parts}):p{sig}:m{METRICS_SCHEMA}"

    def evaluate(self, levels: Sequence[int]) -> Evaluation:
        """Mean CPI (and mean IPC) across the suite at ``levels``.

        The suite shares one simulator, so the per-workload phase-1
        pre-passes (branch flags, L1 hit streams) are computed on the
        first evaluation and replayed from the memo for every later
        design that shares the geometry.
        """
        levels = self.space.validate_levels(levels)
        config = self.space.config(levels)
        results = [
            self._simulator.run(workload.trace, config)
            for workload in self.workloads
        ]
        self.num_evaluations += 1
        return Evaluation(
            levels=levels,
            fidelity=Fidelity.HIGH,
            metrics=self._suite_metrics(results),
        )

    def _suite_metrics(self, results) -> dict:
        """Suite-mean metrics from one design's per-workload results."""
        cpis = [r.cpi for r in results]
        mean_cpi = float(np.mean(cpis))
        return {
            "cpi": mean_cpi,
            "ipc": 1.0 / mean_cpi,
            "mshr_stall_cycles": float(
                np.mean([r.mshr_stall_cycles for r in results])
            ),
            **{
                f"cpi_{w.name}": c
                for w, c in zip(self.workloads, cpis)
            },
        }

    def evaluate_many(
        self, levels_batch: Sequence[Sequence[int]]
    ) -> list:
        """Batched suite evaluation: one batched walk per workload.

        Each workload's trace is walked once for the whole design batch
        (design-batched kernel), instead of once per (design, workload);
        bit-identical to mapping :meth:`evaluate` over the batch.
        """
        levels_list = [self.space.validate_levels(lv) for lv in levels_batch]
        configs = [self.space.config(lv) for lv in levels_list]
        per_workload = [
            self._simulator.run_batch(
                workload.trace, configs, max_designs=self.hf_batch
            )
            for workload in self.workloads
        ]
        self.num_evaluations += len(levels_list)
        return [
            Evaluation(
                levels=levels,
                fidelity=Fidelity.HIGH,
                metrics=self._suite_metrics([col[d] for col in per_workload]),
            )
            for d, levels in enumerate(levels_list)
        ]

    def prepass_stats(self) -> dict:
        """Pre-pass memo efficacy counters (phase-1 reuse across designs)."""
        return _prepass_stats(self._simulator)
