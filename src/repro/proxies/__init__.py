"""The proxy pool (paper Fig. 1): design-metric evaluators of two fidelities.

- :mod:`repro.proxies.area`        -- McPAT-style analytical area model.
- :mod:`repro.proxies.analytical`  -- low-fidelity differentiable CPI model.
- :mod:`repro.proxies.highfidelity`-- high-fidelity simulator adapters.
- :mod:`repro.proxies.archive`     -- evaluation cache ("Archive" in Fig. 1).
- :mod:`repro.proxies.pool`        -- the pool wiring everything together.
"""

from repro.proxies.area import AreaModel, AreaBreakdown
from repro.proxies.analytical import (
    AnalyticalModel,
    AnalyticalParams,
    CPIBreakdown,
)
from repro.proxies.interface import Fidelity, EvaluationProxy, Evaluation
from repro.proxies.highfidelity import SimulationProxy, SuiteAverageProxy
from repro.proxies.archive import DesignArchive
from repro.proxies.pool import ProxyPool
from repro.proxies.validation import FidelityGapReport, measure_fidelity_gap

__all__ = [
    "AreaModel",
    "AreaBreakdown",
    "AnalyticalModel",
    "AnalyticalParams",
    "CPIBreakdown",
    "Fidelity",
    "EvaluationProxy",
    "Evaluation",
    "SimulationProxy",
    "SuiteAverageProxy",
    "DesignArchive",
    "ProxyPool",
    "FidelityGapReport",
    "measure_fidelity_gap",
]
