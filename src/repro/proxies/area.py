"""McPAT-style analytical area model.

The paper uses McPAT for "fast estimations for areas of the designs"; the
area enters the DSE only as the episode-terminating budget (Table 2 uses
limits of 6-10 mm^2). This model reproduces that role: strictly increasing
per-parameter component areas with relative costs patterned on McPAT
reports for BOOM-class cores at a 22 nm-ish node, calibrated so the
paper's budgets bind partway up the Table-1 space (the smallest design is
~2 mm^2, the largest ~25 mm^2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.designspace.config import CACHE_LINE_BYTES, MicroArchConfig


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area report (mm^2)."""

    base: float
    l1: float
    l2: float
    mshr: float
    decode: float
    rob: float
    fu: float
    iq: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return (
            self.base + self.l1 + self.l2 + self.mshr
            + self.decode + self.rob + self.fu + self.iq
        )

    def as_dict(self) -> Dict[str, float]:
        """Component mapping plus ``total``."""
        return {
            "base": self.base,
            "l1": self.l1,
            "l2": self.l2,
            "mshr": self.mshr,
            "decode": self.decode,
            "rob": self.rob,
            "fu": self.fu,
            "iq": self.iq,
            "total": self.total,
        }


@dataclass(frozen=True)
class AreaModel:
    """Component-additive area estimator.

    All coefficients are mm^2 per unit of the relevant quantity. Decode is
    superlinear (rename/bypass networks grow faster than linearly with
    width), everything else is linear -- matching McPAT's qualitative
    scaling.
    """

    base_mm2: float = 1.2
    l1_mm2_per_kib: float = 0.025
    l2_mm2_per_kib: float = 0.008
    mshr_mm2_per_entry: float = 0.03
    decode_mm2_coeff: float = 0.16
    decode_exponent: float = 1.5
    rob_mm2_per_entry: float = 0.004
    int_fu_mm2: float = 0.30
    mem_fu_mm2: float = 0.35
    fp_fu_mm2: float = 0.50
    iq_mm2_per_entry: float = 0.025

    def breakdown(self, config: MicroArchConfig) -> AreaBreakdown:
        """Per-component areas for ``config``."""
        return AreaBreakdown(
            base=self.base_mm2,
            l1=self.l1_mm2_per_kib * config.l1_kib,
            l2=self.l2_mm2_per_kib * config.l2_kib,
            mshr=self.mshr_mm2_per_entry * config.n_mshr,
            decode=self.decode_mm2_coeff * config.decode_width ** self.decode_exponent,
            rob=self.rob_mm2_per_entry * config.rob_entries,
            fu=(
                self.int_fu_mm2 * config.int_fu
                + self.mem_fu_mm2 * config.mem_fu
                + self.fp_fu_mm2 * config.fp_fu
            ),
            iq=self.iq_mm2_per_entry * config.iq_entries,
        )

    def area(self, config: MicroArchConfig) -> float:
        """Total estimated area of ``config`` in mm^2."""
        return self.breakdown(config).total

    def area_values(self, values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised :meth:`area` over parameter-value columns.

        ``values`` maps each Table-1 parameter name to its column of
        concrete values (``DesignSpace.values_batch`` output, keyed by
        ``space.names``). Arithmetic replicates the scalar breakdown's
        operation order exactly, so ``area_values(...)[i]`` is
        bit-identical to ``area(space.config(levels[i]))`` -- the batched
        constraint check may substitute for the scalar one anywhere.
        """
        l1_kib = (
            values["l1_sets"] * values["l1_ways"] * CACHE_LINE_BYTES
        ) / 1024.0
        l2_kib = (
            values["l2_sets"] * values["l2_ways"] * CACHE_LINE_BYTES
        ) / 1024.0
        total = self.base_mm2 + self.l1_mm2_per_kib * l1_kib
        total = total + self.l2_mm2_per_kib * l2_kib
        total = total + self.mshr_mm2_per_entry * values["n_mshr"]
        total = total + self.decode_mm2_coeff * (
            values["decode_width"].astype(np.float64) ** self.decode_exponent
        )
        total = total + self.rob_mm2_per_entry * values["rob_entries"]
        total = total + (
            self.int_fu_mm2 * values["int_fu"]
            + self.mem_fu_mm2 * values["mem_fu"]
            + self.fp_fu_mm2 * values["fp_fu"]
        )
        total = total + self.iq_mm2_per_entry * values["iq_entries"]
        return np.asarray(total, dtype=np.float64)

    def __call__(self, config: MicroArchConfig) -> float:
        return self.area(config)
