"""Low-fidelity proxy: differentiable analytical CPI model.

Reimplementation in the spirit of Jongerius et al. (paper ref [8]): CPI is
assembled from a bottleneck (interval) abstraction --

``CPI = 1 / min(decode, ILP(window), FU throughputs)``
``    + branch-mispredict penalty``
``    + L1-miss and L2-miss penalties / memory-level-parallelism overlap``

with the workload entering through its profile (instruction mix, ILP
lookup table, LRU miss-rate curve, mispredict rate, MLP supply). Lookup
tables are piecewise-linear fits, so the whole model is differentiable:
:meth:`AnalyticalModel.gradient` returns closed-form partials of CPI with
respect to each Table-1 parameter *value*, and
:meth:`AnalyticalModel.level_gradient` projects them onto +1-level moves.

Deliberate biases (these are the point of multi-fidelity): the model
shares the paper's Sec.-4.3 failure modes -- its ILP table is computed at
L1-hit latency, so it *underestimates the benefit of ROB/IQ growth for
memory-bound codes*; its branch penalty is a profile constant, so frontend
parameters never interact with prediction; and its overlap factor is an
upper bound, so MSHR benefits saturate early. The high-fidelity simulator
disagrees in exactly these regions, which the HF phase then exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.designspace import DesignSpace, MicroArchConfig
from repro.workloads.profiler import WorkloadProfile

#: Associativity-efficiency deficit: an A-way cache behaves like a fully
#: associative cache of ``capacity * (1 - ASSOC_DEFICIT / A)`` lines.
ASSOC_DEFICIT = 0.35

#: Instruction-window contribution per unified-IQ entry (each scheduler
#: entry turns over several times while the ROB drains once).
IQ_WINDOW_FACTOR = 6.0

#: ROB head-of-line contribution to memory-level parallelism: one extra
#: overlappable miss per this many ROB entries.
ROB_PER_MLP = 48.0


@dataclass(frozen=True)
class AnalyticalParams:
    """Timing constants of the analytical model.

    Kept separate from :class:`repro.simulator.params.SimulatorParams` on
    purpose: a real analytical model is calibrated independently of the
    RTL and carries its own (slightly wrong) constants.
    """

    l2_hit_cycles: float = 14.0
    mem_cycles: float = 90.0
    branch_penalty_cycles: float = 6.0
    line_bytes: int = 64


@dataclass(frozen=True)
class CPIBreakdown:
    """Additive CPI terms plus the active base-IPC limiter."""

    base: float
    branch: float
    l1_miss: float
    l2_miss: float
    limiter: str

    @property
    def total(self) -> float:
        """Total estimated CPI."""
        return self.base + self.branch + self.l1_miss + self.l2_miss

    def render(self) -> str:
        """Human-readable breakdown (used by the CLI and examples)."""
        rows = [
            ("base (issue-limited)", self.base, f"limiter: {self.limiter}"),
            ("branch mispredicts", self.branch, ""),
            ("L1-miss stalls", self.l1_miss, ""),
            ("L2-miss stalls", self.l2_miss, ""),
        ]
        lines = []
        for label, value, note in rows:
            share = value / self.total if self.total else 0.0
            suffix = f"  ({note})" if note else ""
            lines.append(f"  {label:<22} {value:7.4f}  {share:5.1%}{suffix}")
        lines.append(f"  {'total CPI':<22} {self.total:7.4f}")
        return "\n".join(lines)


class AnalyticalModel:
    """Differentiable CPI estimator for one workload profile.

    Args:
        profile: The workload's profile (from
            :func:`repro.workloads.profiler.profile_trace`).
        space: Design space (needed to project value-gradients to levels).
        params: Timing constants.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        space: DesignSpace,
        params: AnalyticalParams = AnalyticalParams(),
    ):
        self.profile = profile
        self.space = space
        self.params = params

    # ------------------------------------------------------------------
    # Forward model
    # ------------------------------------------------------------------
    def _effective_lines(self, sets: float, ways: float) -> float:
        return sets * ways * (1.0 - ASSOC_DEFICIT / ways)

    def _window(self, rob: float, iq: float) -> float:
        return min(rob, IQ_WINDOW_FACTOR * iq)

    def _mlp(self, mshr: float, rob: float) -> float:
        return max(1.0, min(mshr, self.profile.mlp_supply, 1.0 + rob / ROB_PER_MLP))

    def breakdown(self, config: MicroArchConfig) -> CPIBreakdown:
        """CPI terms for ``config``."""
        p = self.profile
        window = self._window(config.rob_entries, config.iq_entries)
        candidates = {
            "decode": float(config.decode_width),
            "window": p.ilp_at(window),
            "int_fu": config.int_fu / max(p.frac_int, 1e-9),
            "fp_fu": config.fp_fu / max(p.frac_fp, 1e-9),
            "mem_fu": config.mem_fu / max(p.frac_mem, 1e-9),
        }
        limiter = min(candidates, key=candidates.get)
        ipc0 = candidates[limiter]
        base = 1.0 / ipc0

        branch = p.frac_branches * p.branch_mispredict_rate * self.params.branch_penalty_cycles

        e1 = self._effective_lines(config.l1_sets, config.l1_ways)
        e2 = self._effective_lines(config.l2_sets, config.l2_ways)
        mr1 = p.miss_curve.rate(e1)
        mr2_global = min(p.miss_curve.rate(e2), mr1)
        mlp = self._mlp(config.n_mshr, config.rob_entries)
        l1_miss = p.frac_mem * mr1 * self.params.l2_hit_cycles / mlp
        l2_miss = p.frac_mem * mr2_global * self.params.mem_cycles / mlp

        return CPIBreakdown(
            base=base, branch=branch, l1_miss=l1_miss, l2_miss=l2_miss, limiter=limiter
        )

    def cpi(self, config: MicroArchConfig) -> float:
        """Estimated CPI of ``config`` (about a microsecond per call)."""
        return self.breakdown(config).total

    def ipc(self, config: MicroArchConfig) -> float:
        """Estimated IPC (reciprocal CPI)."""
        return 1.0 / self.cpi(config)

    def explain(self, config: MicroArchConfig) -> str:
        """Bottleneck narrative for ``config``: the breakdown plus which
        single +1 parameter move the model believes pays most."""
        bd = self.breakdown(config)
        levels = self.space.levels_of(config)
        deltas = self.finite_difference(levels)
        lines = [f"analytical CPI breakdown ({self.profile.name}):", bd.render()]
        finite = np.isfinite(deltas)
        if finite.any() and deltas[finite].min() < 0:
            best = int(np.argmin(np.where(finite, deltas, np.inf)))
            lines.append(
                f"  best predicted move: +1 {self.space.names[best]} "
                f"({deltas[best]:+.4f} CPI)"
            )
        else:
            lines.append("  best predicted move: none (model sees no benefit)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Closed-form gradients
    # ------------------------------------------------------------------
    def gradient(self, config: MicroArchConfig) -> Dict[str, float]:
        """``d CPI / d value`` for each Table-1 parameter.

        Hard ``min`` operators use the active-branch subgradient (only the
        binding limiter receives gradient), matching how the paper uses
        the gradients: as trustworthy *directions*, not magnitudes.
        """
        p = self.profile
        grad = {name: 0.0 for name in self.space.names}
        bd = self.breakdown(config)
        ipc0 = 1.0 / bd.base

        # --- base term -------------------------------------------------
        d_base = -1.0 / (ipc0 * ipc0)  # d(1/ipc0)/d(ipc0)
        if bd.limiter == "decode":
            grad["decode_width"] += d_base * 1.0
        elif bd.limiter == "window":
            window = self._window(config.rob_entries, config.iq_entries)
            slope = p.ilp_slope(window)
            if config.rob_entries <= IQ_WINDOW_FACTOR * config.iq_entries:
                grad["rob_entries"] += d_base * slope
            else:
                grad["iq_entries"] += d_base * slope * IQ_WINDOW_FACTOR
        elif bd.limiter == "int_fu":
            grad["int_fu"] += d_base / max(p.frac_int, 1e-9)
        elif bd.limiter == "fp_fu":
            grad["fp_fu"] += d_base / max(p.frac_fp, 1e-9)
        else:  # mem_fu
            grad["mem_fu"] += d_base / max(p.frac_mem, 1e-9)

        # --- memory terms ----------------------------------------------
        e1 = self._effective_lines(config.l1_sets, config.l1_ways)
        e2 = self._effective_lines(config.l2_sets, config.l2_ways)
        mr1 = p.miss_curve.rate(e1)
        mr2 = p.miss_curve.rate(e2)
        mlp = self._mlp(config.n_mshr, config.rob_entries)
        k1 = p.frac_mem * self.params.l2_hit_cycles / mlp
        k2 = p.frac_mem * self.params.mem_cycles / mlp

        s1 = p.miss_curve.slope(e1)
        # d e / d sets = ways * (1 - deficit/ways) = ways - deficit
        grad["l1_sets"] += k1 * s1 * (config.l1_ways - ASSOC_DEFICIT)
        # d e / d ways = sets  (capacity) ... deficit cancels:
        # e = sets*(ways - deficit) -> d/dways = sets
        grad["l1_ways"] += k1 * s1 * config.l1_sets
        if mr2 < mr1:  # the min() in mr2_global is on the L2 branch
            s2 = p.miss_curve.slope(e2)
            grad["l2_sets"] += k2 * s2 * (config.l2_ways - ASSOC_DEFICIT)
            grad["l2_ways"] += k2 * s2 * config.l2_sets
        else:
            grad["l1_sets"] += k2 * s1 * (config.l1_ways - ASSOC_DEFICIT)
            grad["l1_ways"] += k2 * s1 * config.l1_sets

        # --- overlap (MLP) term ------------------------------------------
        miss_cycles = bd.l1_miss + bd.l2_miss
        if miss_cycles > 0:
            d_over = -miss_cycles / mlp  # d(term)/d(mlp) * 1
            limits = {
                "mshr": float(config.n_mshr),
                "supply": p.mlp_supply,
                "rob": 1.0 + config.rob_entries / ROB_PER_MLP,
            }
            active = min(limits, key=limits.get)
            if limits[active] > 1.0:  # clamped at 1 -> no gradient
                if active == "mshr":
                    grad["n_mshr"] += d_over
                elif active == "rob":
                    grad["rob_entries"] += d_over / ROB_PER_MLP

        return grad

    def level_gradient(self, levels: Sequence[int]) -> np.ndarray:
        """Projected gradient: expected CPI change for a +1 level move.

        ``out[i] = dCPI/dvalue_i * (candidates[l+1] - candidates[l])``;
        parameters at their max level get ``+inf`` (cannot increase).
        """
        levels = self.space.validate_levels(levels)
        config = self.space.config(levels)
        grad = self.gradient(config)
        out = np.full(self.space.num_parameters, np.inf)
        for i, param in enumerate(self.space.parameters):
            lvl = int(levels[i])
            if lvl >= param.max_level:
                continue
            spacing = param.candidates[lvl + 1] - param.candidates[lvl]
            out[i] = grad[param.name] * spacing
        return out

    def finite_difference(self, levels: Sequence[int]) -> np.ndarray:
        """Exact +1-level CPI deltas (reference for the gradient tests)."""
        levels = self.space.validate_levels(levels)
        here = self.cpi(self.space.config(levels))
        out = np.full(self.space.num_parameters, np.inf)
        for i in range(self.space.num_parameters):
            if levels[i] >= self.space.max_levels[i]:
                continue
            up = levels.copy()
            up[i] += 1
            out[i] = self.cpi(self.space.config(up)) - here
        return out

    def beneficial_mask(
        self, levels: Sequence[int], use_finite_difference: bool = True
    ) -> np.ndarray:
        """Parameters whose +1 increase the model predicts to reduce CPI.

        This is the Sec.-3.1 action mask: "we only allow the design
        parameters with negative gradients to be chosen for increasing".
        The finite-difference form is the default because the model is
        cheap and the exact delta subsumes kinks in the piecewise-linear
        tables; the closed-form projection is available for study.
        """
        deltas = (
            self.finite_difference(levels)
            if use_finite_difference
            else self.level_gradient(levels)
        )
        return deltas < 0.0
