"""Timing-kernel selection: compiled C extension vs pure Python.

Three kernels can execute a serial high-fidelity evaluation:

- ``compiled`` -- the C extension (``simulator/_ckernel``), ~an order of
  magnitude faster than CPython on the hot loop;
- ``python``   -- ``core._timing_kernel``, the always-available
  reference implementation of the two-phase walk;
- (``batched`` -- the design-batched numpy lockstep walk, which is not
  selected here: ``run_batch`` engages it by batch width.  It appears
  alongside the two serial kernels in provenance counters.)

:func:`select_kernel` resolves a *requested* kernel (the
``EngineConfig.hf_kernel`` knob / ``--hf-kernel`` flag) to the kernel a
process will actually run, in the order ``compiled -> python``:

1. ``REPRO_FORCE_PY_KERNEL=1`` in the environment wins over everything
   (the forced-fallback CI lane): the answer is ``python``.
2. An explicit request is honored: ``python`` always works;
   ``compiled`` raises :class:`KernelUnavailableError` when the
   extension cannot be imported or built, so a user who asked for it
   finds out instead of silently benchmarking the wrong kernel.
3. ``auto`` (or ``None``) picks ``compiled`` when available, else
   ``python``.

Selection is per-process on purpose: a pickled simulator carries only
the *requested* kernel, so process-pool workers re-resolve against
their own host (and degrade independently when a worker cannot build
the extension).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

KERNEL_COMPILED = "compiled"
KERNEL_PYTHON = "python"
KERNEL_BATCHED = "batched"
KERNEL_AUTO = "auto"

#: Accepted values for the ``hf_kernel`` knob / ``kernel=`` argument.
KERNEL_CHOICES = (KERNEL_AUTO, KERNEL_COMPILED, KERNEL_PYTHON)

#: Environment knob: force the pure-Python kernel everywhere (test lane).
FORCE_PY_ENV = "REPRO_FORCE_PY_KERNEL"


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel cannot run in this process."""


def _force_python() -> bool:
    return os.environ.get(FORCE_PY_ENV, "") not in ("", "0")


def compiled_kernel_module():
    """The C extension module, or ``None`` when unavailable (cached)."""
    from repro.simulator import _ckernel

    return _ckernel.load()


def compiled_available() -> bool:
    """Can this process import (or build) the C extension?"""
    return compiled_kernel_module() is not None


def compiled_build_error() -> Optional[str]:
    """Why the extension is unavailable (``None`` when it loaded)."""
    from repro.simulator import _ckernel

    return _ckernel.build_error()


def select_kernel(requested: Optional[str] = None) -> str:
    """Resolve a requested kernel to the one this process will run.

    Args:
        requested: ``None``/"auto", "compiled" or "python".

    Returns:
        ``"compiled"`` or ``"python"``.

    Raises:
        ValueError: Unknown kernel name.
        KernelUnavailableError: ``"compiled"`` was requested explicitly
            but the extension cannot be imported or built here.
    """
    if requested is not None and requested not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {requested!r}; known: {', '.join(KERNEL_CHOICES)}"
        )
    if _force_python():
        return KERNEL_PYTHON
    if requested == KERNEL_PYTHON:
        return KERNEL_PYTHON
    if requested == KERNEL_COMPILED:
        if not compiled_available():
            raise KernelUnavailableError(
                "compiled kernel requested but unavailable: "
                f"{compiled_build_error() or 'unknown reason'}"
            )
        return KERNEL_COMPILED
    return KERNEL_COMPILED if compiled_available() else KERNEL_PYTHON


# ----------------------------------------------------------------------
# Host triage (`repro kernels`)
# ----------------------------------------------------------------------
def kernel_microbench(
    data_size: int = 10, designs: int = 24, repeat: int = 1
) -> Dict[str, float]:
    """One-shot evals/sec of every runnable kernel on a small workload.

    Deliberately quick (fractions of a second): this feeds the
    ``repro kernels`` triage table, not the benchmark suite.

    Returns:
        Kernel name -> evaluations per second.  The ``batched`` entry
        times the design-batched lockstep walk at its full width over
        the same designs.
    """
    import numpy as np

    from repro.designspace import default_design_space
    from repro.simulator.core import OutOfOrderSimulator
    from repro.workloads.suite import get_workload

    workload = get_workload("mm", data_size=data_size)
    trace = workload.trace
    space = default_design_space()
    rng = np.random.default_rng(1234)
    rng_configs: List = [
        space.config(space.sample(rng)) for _ in range(designs)
    ]

    out: Dict[str, float] = {}
    serial_kernels = [KERNEL_PYTHON]
    if not _force_python() and compiled_available():
        serial_kernels.append(KERNEL_COMPILED)
    for name in serial_kernels:
        simulator = OutOfOrderSimulator(kernel=name)
        simulator.run(trace, rng_configs[0])  # warm pre-passes + build
        start = time.perf_counter()
        for _ in range(repeat):
            for config in rng_configs:
                simulator.run(trace, config)
        elapsed = time.perf_counter() - start
        out[name] = designs * repeat / elapsed if elapsed > 0 else float("inf")

    simulator = OutOfOrderSimulator(kernel=KERNEL_PYTHON)
    simulator.run(trace, rng_configs[0])
    start = time.perf_counter()
    for _ in range(repeat):
        simulator.run_batch(trace, rng_configs, min_designs=2)
    elapsed = time.perf_counter() - start
    out[KERNEL_BATCHED] = (
        designs * repeat / elapsed if elapsed > 0 else float("inf")
    )
    return out
