"""Gshare branch predictor.

The trace ISA has no PCs, so the predictor indexes its 2-bit counter table
with the global outcome history alone (pure gshare-history mode). This
separates workloads the way a real predictor does: loop-patterned streams
(fft, mm) predict near-perfectly, data-dependent streams (quicksort,
dijkstra relaxations) mispredict heavily.
"""

from __future__ import annotations

#: Fibonacci-hash multiplier spreading the raw history over the counter
#: table. The pre-pass replay (``prepass.branch_prepass``) must use the
#: same constant to stay bit-identical with this predictor.
GSHARE_SPREAD = 0x9E3779B1

#: Initial 2-bit counter state: weakly taken. Shared with the pre-pass.
GSHARE_INIT_COUNTER = 2


def validate_gshare_geometry(table_bits: int, history_bits: int) -> None:
    """Shared bounds check for predictor geometry.

    Used by :class:`GsharePredictor`, the pre-pass replay, and
    ``SimulatorParams.validate`` so all entry points reject exactly the
    same geometries.
    """
    if not 1 <= table_bits <= 24:
        raise ValueError("table_bits must be in 1..24")
    if not 1 <= history_bits <= 30:
        raise ValueError("history_bits must be in 1..30")


class GsharePredictor:
    """History-indexed table of 2-bit saturating counters.

    Args:
        table_bits: log2 of the counter-table size.
        history_bits: Number of recent outcomes folded into the index.
    """

    def __init__(self, table_bits: int = 10, history_bits: int = 8):
        validate_gshare_geometry(table_bits, history_bits)
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        # A plain list, deliberately: a `bytearray` table was benchmarked
        # ~8-10% slower for this walk on CPython 3.11 (int re-boxing on
        # every read outweighs the denser storage); see README
        # "Performance". The pre-pass replay (simulator/prepass.py) keys
        # off the same layout.
        self._table = [GSHARE_INIT_COUNTER] * (1 << table_bits)
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, taken: bool) -> bool:
        """Predict the next outcome, train, return True on mispredict."""
        idx = (self._history * GSHARE_SPREAD) & self._mask  # Fibonacci spread
        counter = self._table[idx]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        """Mispredict ratio so far (0 before any prediction)."""
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
