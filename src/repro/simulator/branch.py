"""Gshare branch predictor.

The trace ISA has no PCs, so the predictor indexes its 2-bit counter table
with the global outcome history alone (pure gshare-history mode). This
separates workloads the way a real predictor does: loop-patterned streams
(fft, mm) predict near-perfectly, data-dependent streams (quicksort,
dijkstra relaxations) mispredict heavily.
"""

from __future__ import annotations


class GsharePredictor:
    """History-indexed table of 2-bit saturating counters.

    Args:
        table_bits: log2 of the counter-table size.
        history_bits: Number of recent outcomes folded into the index.
    """

    def __init__(self, table_bits: int = 10, history_bits: int = 8):
        if not 1 <= history_bits <= 30:
            raise ValueError("history_bits must be in 1..30")
        if not 1 <= table_bits <= 24:
            raise ValueError("table_bits must be in 1..24")
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [2] * (1 << table_bits)  # init weakly taken
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, taken: bool) -> bool:
        """Predict the next outcome, train, return True on mispredict."""
        idx = (self._history * 0x9E3779B1) & self._mask  # Fibonacci spread
        counter = self._table[idx]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        """Mispredict ratio so far (0 before any prediction)."""
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
