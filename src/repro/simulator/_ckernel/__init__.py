"""Loader for the compiled timing kernel.

The extension is a single-file C module (``ckernel.c``).  It can arrive
two ways:

1. **Prebuilt** -- ``pip install -e . --no-build-isolation`` or
   ``python setup.py build_ext --inplace`` drops
   ``_ckernel<EXT_SUFFIX>`` next to this file.
2. **On demand** -- when the repo runs straight off ``PYTHONPATH=src``
   (the test/CI default, and process-pool workers), :func:`load` builds
   the module itself with the system C compiler: into the package
   directory when writable, else into a per-interpreter cache under the
   system temp dir.  Builds go to a unique temp name and are moved into
   place with ``os.replace``, so concurrent workers race benignly.

``load`` never raises: any failure (no compiler, read-only checkout,
bad object) is remembered, warned about once, and reported as ``None``
-- callers fall back to the pure-Python kernel.  Set
``REPRO_NO_CKERNEL=1`` to skip the extension (and the build attempt)
entirely; see :mod:`repro.simulator.kernels` for the higher-level
selection knobs.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
import warnings
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("ckernel.c")
_BASENAME = "_ckernel"
_UNSET = object()

_module = _UNSET
_build_error: Optional[str] = None


def _ext_suffix() -> str:
    return sysconfig.get_config_var("EXT_SUFFIX") or ".so"


def _candidates() -> list:
    """Possible homes for the built module, preferred first."""
    paths = [_SOURCE.parent / (_BASENAME + _ext_suffix())]
    tag = getattr(sys.implementation, "cache_tag", None) or "py"
    paths.append(
        Path(tempfile.gettempdir())
        / f"repro-ckernel-{tag}"
        / (_BASENAME + _ext_suffix())
    )
    return paths


def _fresh(so_path: Path) -> bool:
    """Is the built object at least as new as the C source?"""
    try:
        return so_path.stat().st_mtime >= _SOURCE.stat().st_mtime
    except OSError:
        return False


def _compiler() -> list:
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "gcc"
    return cc.split()


def _build(target: Path) -> None:
    """Compile ckernel.c into ``target`` (atomic via temp + replace)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.build{os.getpid()}")
    cmd = _compiler() + ["-O2", "-fPIC", "-shared"]
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        cmd += ["-undefined", "dynamic_lookup"]
    cmd += [
        f"-I{sysconfig.get_paths()['include']}",
        str(_SOURCE),
        "-o",
        str(tmp),
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(cmd)} failed:\n{proc.stderr.strip()}"
            )
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


def _import_from(so_path: Path):
    spec = importlib.util.spec_from_file_location(
        f"{__name__}.{_BASENAME}", so_path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load extension from {so_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if getattr(module, "API_VERSION", None) != 1:
        raise ImportError(
            f"{so_path} has API version "
            f"{getattr(module, 'API_VERSION', None)!r}, expected 1"
        )
    # The KIND codes are baked into the C switch; refuse a module that
    # disagrees with the trace encoding rather than silently miscompute.
    from repro.workloads import trace as _trace

    for name in (
        "KIND_LOAD", "KIND_STORE", "KIND_BRANCH",
        "KIND_UNPIPELINED", "KIND_SIMPLE",
    ):
        if getattr(module, name) != getattr(_trace, name):
            raise ImportError(f"{so_path}: {name} code mismatch with trace")
    return module


def load(rebuild: bool = False):
    """The compiled kernel module, or ``None`` when unavailable.

    The result (including failure) is cached for the process; pass
    ``rebuild=True`` to retry after fixing the environment.
    """
    global _module, _build_error
    if _module is not _UNSET and not rebuild:
        return _module
    _module = None
    _build_error = None
    if os.environ.get("REPRO_NO_CKERNEL", "") not in ("", "0"):
        _build_error = "disabled by REPRO_NO_CKERNEL"
        return None
    errors = []
    candidates = _candidates()
    for so_path in candidates:
        if _fresh(so_path):
            try:
                _module = _import_from(so_path)
                return _module
            except Exception as exc:  # stale/foreign object: rebuild
                errors.append(f"{so_path}: {exc}")
    for so_path in candidates:
        try:
            _build(so_path)
            _module = _import_from(so_path)
            return _module
        except Exception as exc:
            errors.append(f"{so_path}: {exc}")
    _build_error = "; ".join(errors) or "unknown failure"
    warnings.warn(
        "compiled timing kernel unavailable, falling back to the "
        f"pure-Python kernel ({_build_error})",
        RuntimeWarning,
        stacklevel=2,
    )
    return None


def build_error() -> Optional[str]:
    """Why the last :func:`load` failed (``None`` when it succeeded)."""
    return _build_error
