/* Compiled timing kernel: a C port of repro.simulator.core._timing_kernel.
 *
 * One function, `run_timing`, walks a trace in program order propagating
 * the same four timestamps (dispatch, issue, complete, commit) as the
 * Python kernel, over the same precomputed flag streams.  Semantics are a
 * line-for-line transliteration -- bounded-parallel-list MSHR file,
 * run-length decode/commit windows, IQ heappushpop, first-strict-min FU
 * scan, MRU-list set-associative caches for the live L1/L2 paths
 * (prefetch / merge fallback) -- so results are bit-identical to
 * `reference.py`; `tests/test_simulator_golden.py` enforces it.
 *
 * Inputs cross the boundary through the buffer protocol (PyBUF_SIMPLE):
 * seven contiguous int64 arrays for the per-instruction columns, one
 * uint8 array per precomputed flag stream (branch mispredicts, optional
 * L1 hits, optional no-merge L2 hits).  No numpy headers needed.  The
 * GIL is released for the whole walk.
 *
 * The no-merge L2 stream is abandoned exactly like the Python kernel:
 * the first load that would merge into an in-flight MSHR returns with
 * merged=1 and the caller replays with a live L2.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

/* Kept in sync with repro.workloads.trace; the loader cross-checks the
 * module-level KIND constants against the Python side on import. */
#define K_LOAD 0
#define K_STORE 1
#define K_BRANCH 2
#define K_UNPIPELINED 3
#define K_SIMPLE 4

#define API_VERSION 1

typedef long long i64;

/* ------------------------------------------------------------------ */
/* Set-associative LRU cache: each set is a small MRU-first array.     */
/* ------------------------------------------------------------------ */
typedef struct {
    i64 *lines;   /* sets * ways line addresses, MRU-first per set */
    int *count;   /* live lines per set */
    i64 sets;
    i64 ways;
    i64 hits;
    i64 misses;
} Cache;

static int
cache_init(Cache *c, i64 sets, i64 ways)
{
    c->sets = sets;
    c->ways = ways;
    c->hits = 0;
    c->misses = 0;
    c->lines = (i64 *)malloc((size_t)(sets * ways) * sizeof(i64));
    c->count = (int *)calloc((size_t)sets, sizeof(int));
    return (c->lines != NULL && c->count != NULL) ? 0 : -1;
}

static void
cache_free(Cache *c)
{
    free(c->lines);
    free(c->count);
    c->lines = NULL;
    c->count = NULL;
}

/* Touch `line`; 1 on hit (MRU update), allocate + LRU-drop on miss. */
static int
cache_access(Cache *c, i64 line)
{
    i64 set = line % c->sets;
    i64 *slot = c->lines + set * c->ways;
    int n = c->count[set];
    int pos;
    for (pos = 0; pos < n; pos++) {
        if (slot[pos] == line) {
            c->hits++;
            if (pos) {
                memmove(slot + 1, slot, (size_t)pos * sizeof(i64));
                slot[0] = line;
            }
            return 1;
        }
    }
    c->misses++;
    if (n >= c->ways)
        n = (int)c->ways - 1;  /* drop LRU tail */
    memmove(slot + 1, slot, (size_t)n * sizeof(i64));
    slot[0] = line;
    c->count[set] = n + 1;
    return 0;
}

/* Install without stats; a present line keeps its LRU position. */
static void
cache_warm(Cache *c, i64 line)
{
    i64 set = line % c->sets;
    i64 *slot = c->lines + set * c->ways;
    int n = c->count[set];
    int pos;
    for (pos = 0; pos < n; pos++) {
        if (slot[pos] == line)
            return;
    }
    if (n >= c->ways)
        n = (int)c->ways - 1;
    memmove(slot + 1, slot, (size_t)n * sizeof(i64));
    slot[0] = line;
    c->count[set] = n + 1;
}

/* ------------------------------------------------------------------ */
/* Binary min-heap over int64 (issue-queue occupancy).                 */
/* Only the popped minima are observable, so any correct binary heap   */
/* matches heapq's behaviour exactly (values are plain ints).          */
/* ------------------------------------------------------------------ */
static void
heap_push(i64 *h, int *len, i64 v)
{
    int i = (*len)++;
    h[i] = v;
    while (i > 0) {
        int parent = (i - 1) >> 1;
        if (h[parent] <= h[i])
            break;
        i64 tmp = h[parent];
        h[parent] = h[i];
        h[i] = tmp;
        i = parent;
    }
}

/* heapq.heappushpop: push v then pop the min, in one sift. */
static i64
heap_pushpop(i64 *h, int len, i64 v)
{
    if (len == 0 || h[0] >= v)
        return v;
    i64 ret = h[0];
    h[0] = v;
    int i = 0;
    for (;;) {
        int l = 2 * i + 1;
        int r = l + 1;
        int s = i;
        if (l < len && h[l] < h[s])
            s = l;
        if (r < len && h[r] < h[s])
            s = r;
        if (s == i)
            break;
        i64 tmp = h[s];
        h[s] = h[i];
        h[i] = tmp;
        i = s;
    }
    return ret;
}

/* ------------------------------------------------------------------ */
/* The walk itself (GIL released).  Returns 0 ok, -1 alloc failure,    */
/* -2 prepass stream exhausted (caller raises).                        */
/* ------------------------------------------------------------------ */
typedef struct {
    i64 cycles;
    i64 mshr_stall;
    i64 l1_hits;
    i64 l1_misses;
    i64 l2_hits;
    i64 l2_misses;
    int merged;
} WalkResult;

static int
walk(Py_ssize_t n,
     const i64 *kind, const i64 *lat, const i64 *fu,
     const i64 *src_a, const i64 *src_b, const i64 *mem_dep,
     const i64 *address,
     const unsigned char *bp, Py_ssize_t bp_len,
     const unsigned char *l1h, Py_ssize_t l1h_len,
     const unsigned char *l2h, Py_ssize_t l2h_len,
     i64 width, i64 rob_size, i64 iq_size, i64 n_mshr,
     i64 int_fu, i64 mem_fu, i64 fp_fu,
     i64 l1_sets, i64 l1_ways, i64 l2_sets, i64 l2_ways,
     i64 l1_hit_lat, i64 l2_lat, i64 mem_lat, i64 redirect,
     i64 line_shift, int prefetch,
     WalkResult *out)
{
    int status = -1;
    Cache l1c = {0}, l2c = {0};
    int have_l1c = (l1h == NULL);
    int have_l2c = (l2h == NULL);

    i64 *complete = NULL, *iq_heap = NULL, *mshr_lines = NULL,
        *mshr_fins = NULL, *ring = NULL, *servers[3] = {NULL, NULL, NULL};
    i64 fu_counts[3];
    fu_counts[0] = int_fu;
    fu_counts[1] = mem_fu;
    fu_counts[2] = fp_fu;

    complete = (i64 *)malloc((size_t)n * sizeof(i64));
    iq_heap = (i64 *)malloc((size_t)(iq_size + 2) * sizeof(i64));
    mshr_lines = (i64 *)malloc((size_t)(n_mshr + 2) * sizeof(i64));
    mshr_fins = (i64 *)malloc((size_t)(n_mshr + 2) * sizeof(i64));
    ring = (i64 *)malloc((size_t)rob_size * sizeof(i64));
    if (!complete || !iq_heap || !mshr_lines || !mshr_fins || !ring)
        goto cleanup;
    for (int f = 0; f < 3; f++) {
        servers[f] = (i64 *)calloc((size_t)fu_counts[f], sizeof(i64));
        if (!servers[f])
            goto cleanup;
    }
    if (have_l1c && cache_init(&l1c, l1_sets, l1_ways) < 0)
        goto cleanup;
    if (have_l2c && cache_init(&l2c, l2_sets, l2_ways) < 0)
        goto cleanup;

    for (i64 j = 0; j < rob_size; j++)
        ring[j] = -1;
    i64 ring_head = 0;  /* ring[ring_head] is the commit rob_size ago */

    int iq_heap_len = 0;
    i64 iq_len = 0;
    i64 iq_pending = 0;
    int has_pending = 0;

    i64 mshr_len = 0;
    i64 mshr_stall = 0;

    i64 disp_run_val = -1, disp_run_len = 0;
    i64 commit_run_val = -1, commit_run_len = 0;
    i64 fetch_resume = 0;

    Py_ssize_t bp_pos = 0, l1_pos = 0, l2_pos = 0;
    int merged = 0, stream_err = 0;

    for (Py_ssize_t i = 0; i < n; i++) {
        /* ---------------- dispatch ------------------------------- */
        i64 t = fetch_resume;
        if (disp_run_val > t)
            t = disp_run_val;
        i64 r = ring[ring_head] + 1;
        if (r > t)
            t = r;
        if (iq_len >= iq_size) {
            i64 q = heap_pushpop(iq_heap, iq_heap_len, iq_pending);
            if (q > t)
                t = q;
        } else {
            if (has_pending)
                heap_push(iq_heap, &iq_heap_len, iq_pending);
            iq_len++;
        }
        if (t == disp_run_val) {
            if (disp_run_len >= width) {
                t += 1;
                disp_run_val = t;
                disp_run_len = 1;
            } else {
                disp_run_len++;
            }
        } else {
            disp_run_val = t;
            disp_run_len = 1;
        }

        /* ---------------- ready ---------------------------------- */
        i64 ready = t + 1;
        i64 dep = src_a[i];
        if (dep >= 0 && complete[dep] > ready)
            ready = complete[dep];
        dep = src_b[i];
        if (dep >= 0 && complete[dep] > ready)
            ready = complete[dep];
        dep = mem_dep[i];
        if (dep >= 0 && complete[dep] > ready)
            ready = complete[dep];

        /* ---------------- issue: FU structural hazard ------------ */
        i64 *srv = servers[fu[i]];
        i64 m = fu_counts[fu[i]];
        i64 best = 0;
        i64 best_t = srv[0];
        for (i64 s = 1; s < m; s++) {
            if (srv[s] < best_t) {
                best_t = srv[s];
                best = s;
            }
        }
        i64 issue = ready >= best_t ? ready : best_t;

        /* ---------------- execute -------------------------------- */
        i64 k = kind[i];
        i64 fin;
        if (k == K_SIMPLE) {
            fin = issue + lat[i];
            srv[best] = issue + 1;
        } else if (k == K_LOAD) {
            i64 line = 0;
            int hit;
            if (l1h == NULL) {
                line = address[i] >> line_shift;
                hit = cache_access(&l1c, line);
            } else {
                if (l1_pos >= l1h_len) {
                    stream_err = 1;
                    break;
                }
                hit = l1h[l1_pos++];
            }
            if (hit) {
                fin = issue + l1_hit_lat;
            } else {
                if (l1h != NULL)
                    line = address[i] >> line_shift;
                /* prune completed MSHRs (order-preserving compaction) */
                i64 w = 0;
                for (i64 q = 0; q < mshr_len; q++) {
                    if (mshr_fins[q] > issue) {
                        mshr_fins[w] = mshr_fins[q];
                        mshr_lines[w] = mshr_lines[q];
                        w++;
                    }
                }
                mshr_len = w;
                i64 found = -1;
                for (i64 q = 0; q < mshr_len; q++) {
                    if (mshr_lines[q] == line) {
                        found = q;
                        break;
                    }
                }
                if (found >= 0) {
                    if (l2h != NULL) {
                        /* no-merge L2 stream invalid from here on */
                        merged = 1;
                        break;
                    }
                    fin = mshr_fins[found];
                } else {
                    i64 start = issue;
                    if (mshr_len > 0 && mshr_len >= n_mshr) {
                        i64 jm = 0;
                        i64 fmin = mshr_fins[0];
                        i64 lmin = mshr_lines[0];
                        for (i64 q = 1; q < mshr_len; q++) {
                            i64 fq = mshr_fins[q];
                            if (fq < fmin ||
                                (fq == fmin && mshr_lines[q] < lmin)) {
                                jm = q;
                                fmin = fq;
                                lmin = mshr_lines[q];
                            }
                        }
                        memmove(mshr_fins + jm, mshr_fins + jm + 1,
                                (size_t)(mshr_len - jm - 1) * sizeof(i64));
                        memmove(mshr_lines + jm, mshr_lines + jm + 1,
                                (size_t)(mshr_len - jm - 1) * sizeof(i64));
                        mshr_len--;
                        if (fmin > start) {
                            mshr_stall += fmin - start;
                            start = fmin;
                        }
                    }
                    i64 extra;
                    if (l2h == NULL) {
                        extra = cache_access(&l2c, line) ? l2_lat
                                                         : l2_lat + mem_lat;
                    } else {
                        if (l2_pos >= l2h_len) {
                            stream_err = 1;
                            break;
                        }
                        extra = l2h[l2_pos++] ? l2_lat : l2_lat + mem_lat;
                    }
                    fin = start + l1_hit_lat + extra;
                    mshr_lines[mshr_len] = line;
                    mshr_fins[mshr_len] = fin;
                    mshr_len++;
                    if (prefetch) {
                        cache_warm(&l1c, line + 1);
                        cache_warm(&l2c, line + 1);
                    }
                }
            }
            srv[best] = issue + 1;
        } else if (k == K_STORE) {
            if (l1h == NULL) {
                i64 line = address[i] >> line_shift;
                if (!cache_access(&l1c, line)) {
                    /* write-allocate fill path */
                    if (l2h == NULL) {
                        cache_access(&l2c, line);
                    } else {
                        if (l2_pos >= l2h_len) {
                            stream_err = 1;
                            break;
                        }
                        l2_pos++;
                    }
                }
            } else {
                if (l1_pos >= l1h_len) {
                    stream_err = 1;
                    break;
                }
                if (!l1h[l1_pos++]) {
                    if (l2h == NULL) {
                        cache_access(&l2c, address[i] >> line_shift);
                    } else {
                        /* outcome pre-accounted; consume to stay aligned */
                        if (l2_pos >= l2h_len) {
                            stream_err = 1;
                            break;
                        }
                        l2_pos++;
                    }
                }
            }
            fin = issue + 1;
            srv[best] = issue + 1;
        } else if (k == K_BRANCH) {
            fin = issue + 1;
            srv[best] = issue + 1;
            if (bp_pos >= bp_len) {
                stream_err = 1;
                break;
            }
            if (bp[bp_pos++]) {
                i64 resume = fin + redirect;
                if (resume > fetch_resume)
                    fetch_resume = resume;
            }
        } else {  /* K_UNPIPELINED: divides hog their unit */
            fin = issue + lat[i];
            srv[best] = issue + lat[i];
        }
        complete[i] = fin;
        iq_pending = issue;
        has_pending = 1;

        /* ---------------- commit --------------------------------- */
        i64 c = fin + 1;
        if (commit_run_val >= c) {
            if (commit_run_len >= width) {
                c = commit_run_val + 1;
                commit_run_val = c;
                commit_run_len = 1;
            } else {
                c = commit_run_val;
                commit_run_len++;
            }
        } else {
            commit_run_val = c;
            commit_run_len = 1;
        }
        ring[ring_head] = c;
        ring_head++;
        if (ring_head >= rob_size)
            ring_head = 0;
    }

    out->cycles = commit_run_val;
    out->mshr_stall = mshr_stall;
    out->l1_hits = have_l1c ? l1c.hits : 0;
    out->l1_misses = have_l1c ? l1c.misses : 0;
    out->l2_hits = have_l2c ? l2c.hits : 0;
    out->l2_misses = have_l2c ? l2c.misses : 0;
    out->merged = merged;
    status = stream_err ? -2 : 0;

cleanup:
    free(complete);
    free(iq_heap);
    free(mshr_lines);
    free(mshr_fins);
    free(ring);
    for (int f = 0; f < 3; f++)
        free(servers[f]);
    cache_free(&l1c);
    cache_free(&l2c);
    return status;
}

/* ------------------------------------------------------------------ */
/* Python boundary                                                     */
/* ------------------------------------------------------------------ */
static int
get_i64_buffer(PyObject *obj, Py_buffer *view, const i64 **data,
               Py_ssize_t *len, const char *name)
{
    if (PyObject_GetBuffer(obj, view, PyBUF_SIMPLE) < 0)
        return -1;
    if (view->len % (Py_ssize_t)sizeof(i64) != 0) {
        PyErr_Format(PyExc_ValueError,
                     "%s: buffer size %zd is not a multiple of 8",
                     name, view->len);
        PyBuffer_Release(view);
        view->obj = NULL;
        return -1;
    }
    *data = (const i64 *)view->buf;
    *len = view->len / (Py_ssize_t)sizeof(i64);
    return 0;
}

static int
get_u8_buffer(PyObject *obj, Py_buffer *view, const unsigned char **data,
              Py_ssize_t *len)
{
    if (obj == Py_None) {
        *data = NULL;
        *len = 0;
        view->obj = NULL;
        return 0;
    }
    if (PyObject_GetBuffer(obj, view, PyBUF_SIMPLE) < 0)
        return -1;
    *data = (const unsigned char *)view->buf;
    *len = view->len;
    return 0;
}

static PyObject *
run_timing(PyObject *self, PyObject *args)
{
    PyObject *kind_o, *lat_o, *fu_o, *src_a_o, *src_b_o, *mem_dep_o,
        *address_o, *bp_o, *l1h_o, *l2h_o;
    i64 width, rob_size, iq_size, n_mshr, int_fu, mem_fu, fp_fu;
    i64 l1_sets, l1_ways, l2_sets, l2_ways;
    i64 l1_hit_lat, l2_lat, mem_lat, redirect, line_shift;
    int prefetch;

    if (!PyArg_ParseTuple(
            args, "OOOOOOOOOOLLLLLLLLLLLLLLLLi:run_timing",
            &kind_o, &lat_o, &fu_o, &src_a_o, &src_b_o, &mem_dep_o,
            &address_o, &bp_o, &l1h_o, &l2h_o,
            &width, &rob_size, &iq_size, &n_mshr,
            &int_fu, &mem_fu, &fp_fu,
            &l1_sets, &l1_ways, &l2_sets, &l2_ways,
            &l1_hit_lat, &l2_lat, &mem_lat, &redirect, &line_shift,
            &prefetch))
        return NULL;

    if (width < 1 || rob_size < 1 || iq_size < 1 || n_mshr < 1 ||
        int_fu < 1 || mem_fu < 1 || fp_fu < 1 ||
        l1_sets < 1 || l1_ways < 1 || l2_sets < 1 || l2_ways < 1 ||
        line_shift < 0) {
        PyErr_SetString(PyExc_ValueError, "invalid machine geometry");
        return NULL;
    }

    Py_buffer views[10];
    const i64 *cols[7];
    Py_ssize_t col_lens[7];
    const unsigned char *bp = NULL, *l1h = NULL, *l2h = NULL;
    Py_ssize_t bp_len = 0, l1h_len = 0, l2h_len = 0;
    int acquired = 0;
    PyObject *result = NULL;

    PyObject *col_objs[7] = {kind_o, lat_o, fu_o, src_a_o, src_b_o,
                             mem_dep_o, address_o};
    static const char *col_names[7] = {"kind", "lat", "fu", "src_a",
                                       "src_b", "mem_dep", "address"};
    for (int j = 0; j < 7; j++) {
        if (get_i64_buffer(col_objs[j], &views[j], &cols[j], &col_lens[j],
                           col_names[j]) < 0)
            goto release;
        acquired = j + 1;
    }
    if (get_u8_buffer(bp_o, &views[7], &bp, &bp_len) < 0)
        goto release;
    acquired = 8;
    if (get_u8_buffer(l1h_o, &views[8], &l1h, &l1h_len) < 0)
        goto release;
    acquired = 9;
    if (get_u8_buffer(l2h_o, &views[9], &l2h, &l2h_len) < 0)
        goto release;
    acquired = 10;

    Py_ssize_t n = col_lens[0];
    for (int j = 1; j < 7; j++) {
        if (col_lens[j] != n) {
            PyErr_Format(PyExc_ValueError,
                         "%s: length %zd != trace length %zd",
                         col_names[j], col_lens[j], n);
            goto release;
        }
    }
    if (n == 0) {
        PyErr_SetString(PyExc_ValueError, "empty trace");
        goto release;
    }

    WalkResult out;
    int status;
    Py_BEGIN_ALLOW_THREADS
    status = walk(n, cols[0], cols[1], cols[2], cols[3], cols[4], cols[5],
                  cols[6], bp, bp_len, l1h, l1h_len, l2h, l2h_len,
                  width, rob_size, iq_size, n_mshr, int_fu, mem_fu, fp_fu,
                  l1_sets, l1_ways, l2_sets, l2_ways,
                  l1_hit_lat, l2_lat, mem_lat, redirect, line_shift,
                  prefetch, &out);
    Py_END_ALLOW_THREADS

    if (status == -1) {
        PyErr_NoMemory();
        goto release;
    }
    if (status == -2) {
        PyErr_SetString(PyExc_RuntimeError,
                        "prepass stream exhausted mid-walk (stream/trace "
                        "mismatch)");
        goto release;
    }
    result = Py_BuildValue("(LLLLLLi)", out.cycles, out.mshr_stall,
                           out.l1_hits, out.l1_misses, out.l2_hits,
                           out.l2_misses, out.merged);

release:
    for (int j = 0; j < acquired; j++) {
        if (views[j].obj != NULL)
            PyBuffer_Release(&views[j]);
    }
    return result;
}

static PyMethodDef ckernel_methods[] = {
    {"run_timing", run_timing, METH_VARARGS,
     "run_timing(kind, lat, fu, src_a, src_b, mem_dep, address, "
     "bp_mispredict, l1_hit_or_none, l2_hit_or_none, decode_width, "
     "rob_entries, iq_entries, n_mshr, int_fu, mem_fu, fp_fu, l1_sets, "
     "l1_ways, l2_sets, l2_ways, l1_hit_cycles, l2_hit_cycles, "
     "mem_cycles, redirect_cycles, line_shift, prefetch) -> (cycles, "
     "mshr_stall_cycles, l1_hits, l1_misses, l2_hits, l2_misses, merged)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "_ckernel",
    "Compiled timing kernel (C port of core._timing_kernel).",
    -1,
    ckernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *mod = PyModule_Create(&ckernel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "API_VERSION", API_VERSION) < 0 ||
        PyModule_AddIntConstant(mod, "KIND_LOAD", K_LOAD) < 0 ||
        PyModule_AddIntConstant(mod, "KIND_STORE", K_STORE) < 0 ||
        PyModule_AddIntConstant(mod, "KIND_BRANCH", K_BRANCH) < 0 ||
        PyModule_AddIntConstant(mod, "KIND_UNPIPELINED", K_UNPIPELINED) < 0 ||
        PyModule_AddIntConstant(mod, "KIND_SIMPLE", K_SIMPLE) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
