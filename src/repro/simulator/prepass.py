"""Phase-1 trace pre-passes: timing-independent outcome streams.

The two-phase simulator (see ``core.py``) splits every run into

1. a **pre-pass** computing the outcome streams that are provably
   independent of instruction timing, memoised across the design space,
   and
2. a slimmed **timing kernel** consuming those streams.

What is provably timing-independent:

- **Branch outcomes.** The gshare predictor is trained with the *actual*
  outcome stream (never with its own predictions), and the simulator
  queries it at every BRANCH in program order. Its whole state --
  history register and counter table -- is therefore a pure function of
  the in-order ``taken`` stream and the predictor geometry, so the
  per-branch mispredict flags can be computed once per
  ``(trace, gshare_bits, history_bits)`` and reused by *every* design in
  a campaign.
- **L1 outcomes, prefetch off.** ``SetAssociativeCache.access`` touches
  the L1 for every LOAD and STORE in program order and always allocates
  on miss, so L1 contents evolve independently of timestamps: hit/miss
  flags depend only on ``(trace, l1_sets, l1_ways, line_bytes)``.

What is *almost* timing-independent:

- **L2 outcomes, prefetch off.** The L2 is touched by every L1-missing
  memory op in program order -- *except* a load that merges into an
  in-flight MSHR for the same line, which never reaches the L2. Merges
  are timing-dependent, but they require a line to miss the L1 twice
  within one miss latency (~a hundred cycles), which allocate-on-miss
  makes vanishingly rare: it takes a same-set eviction burst between the
  two accesses. The L2 pre-pass therefore replays the L2 over the
  *no-merge* stream (all L1 misses), and the timing kernel -- which
  still tracks the MSHR file exactly -- detects the first merge and
  falls back to the live-L2 path for that design, so the result is
  bit-identical to the reference either way.

What is *not*, and therefore stays in phase 2:

- **L1 outcomes, prefetch on.** The next-line prefetcher installs lines
  from the MSHR miss path, which is gated by the timing-dependent merge
  decision, so prefetching makes L1 (and L2) contents timing-dependent.
  Prefetch runs disable both the L1 and L2 pre-passes.
- **MSHR occupancy and stalls.** Which miss waits for which slot is
  pure timing; the MSHR file is always simulated live.

Pre-pass results are held in a bounded in-memory memo on the simulator
(:class:`PrepassMemo`). Cache geometry is a small sub-projection of the
Table-1 design space, so thousands of campaign designs share a handful
of L1 pre-passes, and every design shares the single branch pre-pass.

Data-structure note: the counter table is a plain list on purpose --
the bench in README.md ("Performance") measured ``bytearray`` ~10%
slower for this walk on CPython 3.11, and preallocated per-set slot
arrays ~18% slower than the MRU lists the functional cache uses.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, List, Set, Tuple

import numpy as np

from repro.simulator.branch import (
    GSHARE_INIT_COUNTER,
    GSHARE_SPREAD,
    validate_gshare_geometry,
)
from repro.simulator.cache import SetAssociativeCache


def _packed_flags(obj, flags: List[bool]) -> np.ndarray:
    """Cached contiguous uint8 view of a bool flag list.

    The compiled timing kernel consumes the pre-pass streams as raw
    byte buffers; the pack is built once per artefact and cached on the
    (frozen) dataclass instance via ``object.__setattr__`` so repeated
    runs over one pre-pass share it.
    """
    cached = obj.__dict__.get("_flags_u8")
    if cached is None:
        cached = np.ascontiguousarray(flags, dtype=np.uint8)
        object.__setattr__(obj, "_flags_u8", cached)
    return cached


@dataclass(frozen=True)
class BranchPrepass:
    """Per-branch mispredict stream for one (trace, predictor geometry).

    Attributes:
        mispredict: One flag per BRANCH instruction, program order.
        predictions: Number of branches (== ``len(mispredict)``).
        mispredictions: Number of set flags.
    """

    mispredict: List[bool]
    predictions: int
    mispredictions: int

    @property
    def mispredict_rate(self) -> float:
        """Mispredict ratio (0 when the trace has no branches)."""
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions

    @property
    def mispredict_u8(self) -> np.ndarray:
        """The mispredict stream as a contiguous uint8 array (cached)."""
        return _packed_flags(self, self.mispredict)


@dataclass(frozen=True)
class L1Prepass:
    """Per-memory-op L1 hit stream for one (trace, L1 geometry).

    Only valid when the next-line prefetcher is off (see module docs).

    Attributes:
        hit: One flag per LOAD/STORE instruction, program order.
        hits / misses: Final access counters (drive ``l1_miss_rate``).
    """

    hit: List[bool]
    hits: int
    misses: int

    @property
    def hit_u8(self) -> np.ndarray:
        """The hit stream as a contiguous uint8 array (cached)."""
        return _packed_flags(self, self.hit)


def branch_prepass(
    taken: np.ndarray, table_bits: int, history_bits: int
) -> BranchPrepass:
    """Replay the gshare predictor over the branch outcome stream.

    Bit-identical to feeding
    :meth:`~repro.simulator.branch.GsharePredictor.predict_and_update`
    each outcome in order: the history register seen by branch ``j`` is
    the last ``history_bits`` outcomes packed most-recent-first, which
    vectorises as shifted adds; the saturating-counter walk is inherently
    sequential per table index, so it stays a tight loop over plain
    ints -- run once per trace, not once per design.

    Args:
        taken: ``(num_branches,)`` int64 outcomes in program order.
        table_bits: log2 of the counter-table size.
        history_bits: Global-history length.
    """
    validate_gshare_geometry(table_bits, history_bits)
    nb = len(taken)
    if nb == 0:
        return BranchPrepass(mispredict=[], predictions=0, mispredictions=0)
    hist = np.zeros(nb, dtype=np.int64)
    for k in range(1, min(history_bits, nb - 1) + 1):
        hist[k:] += taken[: nb - k] << (k - 1)
    idx_list = ((hist * GSHARE_SPREAD) & ((1 << table_bits) - 1)).tolist()
    taken_list = taken.tolist()

    table = [GSHARE_INIT_COUNTER] * (1 << table_bits)
    flags = [False] * nb
    mis = 0
    for j in range(nb):
        t = taken_list[j]
        ix = idx_list[j]
        c = table[ix]
        if (c >= 2) != t:
            mis += 1
            flags[j] = True
        if t:
            if c < 3:
                table[ix] = c + 1
        elif c > 0:
            table[ix] = c - 1
    return BranchPrepass(mispredict=flags, predictions=nb, mispredictions=mis)


@dataclass(frozen=True)
class L2Prepass:
    """Per-L1-miss L2 hit stream for one (trace, L1 geometry, L2 geometry).

    Computed by replaying the L2 over the *no-merge* access stream: every
    L1-missing LOAD/STORE in program order (see module docs for why a
    merge is the only possible divergence, and how the kernel detects
    it). Only valid when the next-line prefetcher is off.

    Attributes:
        hit: One flag per L1-missing LOAD/STORE, program order.
        hits / misses: Final access counters (drive ``l2_miss_rate``).
    """

    hit: List[bool]
    hits: int
    misses: int

    @property
    def hit_u8(self) -> np.ndarray:
        """The hit stream as a contiguous uint8 array (cached)."""
        return _packed_flags(self, self.hit)


def l1_prepass(lines: np.ndarray, sets: int, ways: int) -> L1Prepass:
    """Replay the L1 over the in-order line-address stream of a trace.

    Uses the real :class:`SetAssociativeCache` so the replay is the seed
    behaviour by construction (same LRU, same allocate-on-miss).

    Args:
        lines: ``(num_mem_ops,)`` line addresses, program order.
        sets / ways: L1 geometry.
    """
    cache = SetAssociativeCache(sets, ways)
    access = cache.access
    flags = [access(line) for line in lines.tolist()]
    return L1Prepass(hit=flags, hits=cache.hits, misses=cache.misses)


def l2_prepass(miss_lines: np.ndarray, sets: int, ways: int) -> L2Prepass:
    """Replay the L2 over the no-merge L1-miss line stream of a trace.

    ``miss_lines`` is the sub-stream of :func:`l1_prepass` input lines at
    the positions that missed -- exactly the L2 access stream whenever no
    MSHR merge occurs (the kernel verifies that at run time).

    Args:
        miss_lines: ``(num_l1_misses,)`` line addresses, program order.
        sets / ways: L2 geometry.
    """
    cache = SetAssociativeCache(sets, ways)
    access = cache.access
    flags = [access(line) for line in miss_lines.tolist()]
    return L2Prepass(hit=flags, hits=cache.hits, misses=cache.misses)


class PrepassMemo:
    """Bounded LRU memo for pre-pass artefacts, keyed by trace identity.

    Keys are ``(id(trace), kind, geometry)``; a ``weakref.finalize`` on
    each trace purges its entries the moment the trace is collected, so
    a recycled ``id()`` can never alias a dead trace's results. Bounded
    (LRU) because each entry is O(memory ops); the default of 512
    entries covers the Table-1 space's full (L1, L2) geometry
    cross-product (12 L1 geometries x 20 L2 geometries of L2 pre-passes
    plus the per-geometry L1/branch artefacts and the batched kernel's
    stacked rows) without LRU thrash. A lock keeps lookups, insertions
    and the GC-triggered purge consistent under concurrent :meth:`get`
    callers (artefacts are immutable, so the worst concurrency cost is
    a redundant build outside the lock).
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._tracked_ids: Set[int] = set()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        trace: object,
        kind: str,
        geometry: Hashable,
        build: Callable[[], object],
    ) -> object:
        """Return the memoised artefact, building (and storing) on miss."""
        trace_id = id(trace)
        key = (trace_id, kind, geometry)
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
            if trace_id not in self._tracked_ids:
                self._tracked_ids.add(trace_id)
                # The finalizer must not hold the memo strongly: traces
                # are typically process-lifetime (workloads are cached),
                # and a bound-method callback would keep every discarded
                # simulator's memo alive alongside them.
                weakref.finalize(trace, _purge_if_alive, weakref.ref(self), trace_id)
        value = build()
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def _purge(self, trace_id: int) -> None:
        with self._lock:
            self._tracked_ids.discard(trace_id)
            for key in [k for k in self._entries if k[0] == trace_id]:
                del self._entries[key]


def _purge_if_alive(memo_ref: "weakref.ref[PrepassMemo]", trace_id: int) -> None:
    """Trace-finalizer target: purge the memo only if it still exists."""
    memo = memo_ref()
    if memo is not None:
        memo._purge(trace_id)
