"""High-fidelity proxy: cycle-approximate out-of-order CPU simulator.

Stands in for the paper's Chipyard BOOM RTL + VCS simulation. The model is
a one-pass timestamp-propagation simulator (interval-style): it walks the
instruction trace once, propagating dispatch/issue/complete/commit times
under the structural constraints the Table-1 parameters control --

- decode/commit width (``decode_width``),
- ROB occupancy (``rob_entries``),
- unified issue-queue occupancy (``iq_entries``),
- per-class functional-unit server counts (``int_fu``/``mem_fu``/``fp_fu``),
- a functional set-associative LRU L1D/L2 hierarchy (sets x ways), and
- an L1 MSHR file limiting outstanding misses (``n_mshr``),

plus a gshare branch predictor whose mispredictions stall the frontend.
It is *far* more faithful than the analytical model (true address streams,
true dependencies, true contention) while staying fast enough to run
hundreds of evaluations, which is exactly the fidelity gap the paper's
multi-fidelity RL exploits.

The walk is organised in two phases (``prepass.py`` + ``core.py``):
timing-independent outcome streams (branch mispredicts, L1 hits with
prefetch off) are precomputed once per ``(trace, geometry)`` and
memoised across the design space, and a slimmed timing kernel consumes
them per design. The original single-phase formulation is preserved as
``reference.py``; the two must stay bit-identical (golden suite in
``tests/test_simulator_golden.py``).

The timing kernel itself exists in three interchangeable forms -- a C
extension (``_ckernel``, the default when it builds), the pure-Python
walk, and the design-batched numpy lockstep walk -- resolved per
process by :mod:`repro.simulator.kernels`.
"""

from repro.simulator.params import SimulatorParams
from repro.simulator.cache import SetAssociativeCache
from repro.simulator.branch import GsharePredictor
from repro.simulator.core import OutOfOrderSimulator, SimulationResult, simulate
from repro.simulator.kernels import (
    KERNEL_BATCHED,
    KERNEL_CHOICES,
    KERNEL_COMPILED,
    KERNEL_PYTHON,
    KernelUnavailableError,
    compiled_available,
    select_kernel,
)
from repro.simulator.prepass import (
    BranchPrepass,
    L1Prepass,
    L2Prepass,
    PrepassMemo,
    branch_prepass,
    l1_prepass,
    l2_prepass,
)
from repro.simulator.reference import reference_simulate

__all__ = [
    "SimulatorParams",
    "SetAssociativeCache",
    "GsharePredictor",
    "OutOfOrderSimulator",
    "SimulationResult",
    "simulate",
    "BranchPrepass",
    "L1Prepass",
    "L2Prepass",
    "PrepassMemo",
    "branch_prepass",
    "l1_prepass",
    "l2_prepass",
    "reference_simulate",
    "KERNEL_BATCHED",
    "KERNEL_CHOICES",
    "KERNEL_COMPILED",
    "KERNEL_PYTHON",
    "KernelUnavailableError",
    "compiled_available",
    "select_kernel",
]
