"""Functional set-associative LRU caches.

The simulator keeps real cache *contents* (tags per set, LRU order), so
miss behaviour responds to the true address stream of the trace -- the key
fidelity advantage over the analytical model's stack-distance abstraction.

Implementation note: each set is a small list ordered most-recently-used
first; with <= 16 ways a list scan beats fancier structures in CPython.
Re-benchmarked for the two-phase simulator PR: preallocated fixed-size
slot arrays (slice-shift MRU update) were ~18% slower on random streams,
and an ordered-dict LRU ~35% slower on the real MRU-heavy workload
streams, because `list.index` usually hits at position 0 there. Numbers
in README "Performance".
"""

from __future__ import annotations

from typing import List


class SetAssociativeCache:
    """One level of set-associative, write-allocate, LRU cache.

    Args:
        sets: Number of sets (power of two expected, as in Table 1).
        ways: Associativity.

    Addresses are *line* addresses (byte address // line size); the caller
    owns line-size handling so levels can share one conversion.
    """

    def __init__(self, sets: int, ways: int):
        if sets < 1 or ways < 1:
            raise ValueError("sets and ways must be >= 1")
        self.sets = int(sets)
        self.ways = int(ways)
        self._lines: List[List[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    @property
    def capacity_lines(self) -> int:
        """Total line capacity."""
        return self.sets * self.ways

    def access(self, line_addr: int) -> bool:
        """Touch ``line_addr``; returns True on hit. Allocates on miss."""
        idx = line_addr % self.sets
        cache_set = self._lines[idx]
        try:
            pos = cache_set.index(line_addr)
        except ValueError:
            self.misses += 1
            cache_set.insert(0, line_addr)
            if len(cache_set) > self.ways:
                cache_set.pop()
            return False
        self.hits += 1
        if pos:
            del cache_set[pos]
            cache_set.insert(0, line_addr)
        return True

    def probe(self, line_addr: int) -> bool:
        """Non-allocating lookup (no LRU update, no stats)."""
        return line_addr in self._lines[line_addr % self.sets]

    def warm(self, line_addr: int) -> None:
        """Install a line without counting a hit/miss (warmup)."""
        idx = line_addr % self.sets
        cache_set = self._lines[idx]
        if line_addr in cache_set:
            return
        cache_set.insert(0, line_addr)
        if len(cache_set) > self.ways:
            cache_set.pop()

    @property
    def accesses(self) -> int:
        """Total counted accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio over counted accesses (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keep contents."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.sets}x{self.ways}, "
            f"miss_rate={self.miss_rate:.3f})"
        )
