"""Fixed timing parameters of the simulated machine.

Everything the Table-1 design space does *not* control is pinned here, with
values typical for a BOOM-class core at 1 GHz (the paper simulates at
1 GHz). Kept in one place so sensitivity studies can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designspace.config import MicroArchConfig
from repro.simulator.branch import validate_gshare_geometry


@dataclass(frozen=True)
class SimulatorParams:
    """Fixed micro-architectural timing constants.

    Attributes:
        l1_hit_cycles: Load-to-use latency on an L1 hit.
        l2_hit_cycles: Additional latency for an L1 miss that hits in L2.
        mem_cycles: Additional latency for an L2 miss (DRAM access).
        redirect_cycles: Frontend refill penalty after a branch mispredict.
        line_bytes: Cache line size (bytes); fixed across the space.
        gshare_bits: log2 size of the branch predictor counter table.
        history_bits: Global-history length of the gshare predictor.
        store_buffer: Store-buffer entries (stores retire off the critical
            path until the buffer fills).
        next_line_prefetch: When True, an L1 load miss also installs the
            next sequential line (a simple tagged next-line prefetcher).
            Off by default -- the Table-1 BOOM configs the paper explores
            do not include a prefetcher -- but exposed for substrate
            sensitivity studies (see the sensitivity bench).
    """

    l1_hit_cycles: int = 3
    l2_hit_cycles: int = 14
    mem_cycles: int = 90
    redirect_cycles: int = 4
    line_bytes: int = 64
    gshare_bits: int = 10
    history_bits: int = 8
    store_buffer: int = 8
    next_line_prefetch: bool = False

    def validate(self) -> None:
        """Sanity-check the constants."""
        if min(self.l1_hit_cycles, self.l2_hit_cycles, self.mem_cycles) < 1:
            raise ValueError("latencies must be >= 1 cycle")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        # Same bounds as GsharePredictor's constructor, enforced up front
        # so the two-phase path (which replays the predictor in the
        # pre-pass instead of constructing one) rejects exactly what the
        # reference simulator rejects.
        validate_gshare_geometry(self.gshare_bits, self.history_bits)


DEFAULT_PARAMS = SimulatorParams()


def describe_machine(config: MicroArchConfig, params: SimulatorParams = DEFAULT_PARAMS) -> str:
    """Human-readable description of the full simulated machine."""
    return (
        f"{config.describe()} | L1 hit {params.l1_hit_cycles}c, "
        f"L2 +{params.l2_hit_cycles}c, mem +{params.mem_cycles}c, "
        f"redirect {params.redirect_cycles}c"
    )
