"""Two-phase out-of-order timing model.

The simulator walks the trace once in program order, propagating four
timestamps per instruction (dispatch, issue, complete, commit) under the
machine's structural constraints. This interval-style formulation is the
standard fast-OoO-model construction: it captures width, window, queue,
FU-contention, cache and branch effects without a per-cycle event loop.

Because a DSE campaign replays the *same trace* across thousands of
designs, the walk is split in two (see ``prepass.py`` for the proofs of
what may move between phases):

- **Phase 1 -- trace pre-pass, memoised.** Branch-predictor outcomes
  depend only on the in-order ``taken`` stream and the predictor
  geometry, and L1 hit/miss outcomes (prefetch off) only on the in-order
  address stream and the L1 geometry. Both are computed once per
  ``(trace, geometry)`` and shared by every design in the campaign via a
  bounded memo on the simulator.
- **Phase 2 -- timing kernel.** A slimmed program-order loop over plain
  int timestamps that consumes the precomputed flag streams; only the
  timing-dependent machinery (L2 contents behind the MSHR merge path,
  the MSHR file itself, IQ occupancy, FU servers) is simulated live. The
  heapq+dict MSHR file of the reference is replaced by two parallel
  lists of at most ``n_mshr`` entries -- equivalent because the
  reference never overwrites a live entry, so its heap and dict always
  hold the same pairs (see the inline note).

The kernel is **bit-identical** to the single-phase reference
(``reference.py``); ``tests/test_simulator_golden.py`` enforces full
``SimulationResult`` equality over randomized configs x all workloads.

Pipeline semantics (all times in cycles):

- **Dispatch** (in order, ``decode_width`` per cycle): waits for a ROB
  slot (freed at commit of the instruction ``rob_entries`` earlier), an
  issue-queue slot (freed when an in-flight occupant issues -- tracked
  exactly with a min-heap), and the frontend redirect after a mispredicted
  branch.
- **Issue** (out of order): when all producers have completed and a
  functional unit of the right class is free. Divides hog their unit for
  the full latency; everything else is pipelined.
- **Complete**: issue + latency. Loads consult the functional L1/L2
  hierarchy; L1 misses must acquire an MSHR (same-line misses merge) and
  pay the L2 or DRAM latency.
- **Commit** (in order, ``decode_width`` per cycle): after completion.

CPI is committed cycles / trace length, matching how the paper's VCS runs
report CPI.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.designspace.config import MicroArchConfig
from repro.simulator.cache import SetAssociativeCache
from repro.simulator.kernels import (
    KERNEL_CHOICES,
    KERNEL_COMPILED,
    compiled_kernel_module,
    select_kernel,
)
from repro.simulator.params import SimulatorParams, DEFAULT_PARAMS
from repro.simulator.prepass import (
    BranchPrepass,
    L1Prepass,
    L2Prepass,
    PrepassMemo,
    branch_prepass,
    l1_prepass,
    l2_prepass,
)
from repro.workloads.trace import (
    InstructionTrace,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_SIMPLE,
    KIND_STORE,
    TraceKernelView,
)


class MshrMergeDetected(Exception):
    """A load merged into an in-flight MSHR while an L2 pre-pass was live.

    The L2 pre-pass replays the L2 over the no-merge access stream; a
    merge means the remaining precomputed flags are misaligned with what
    the reference would consume, so the run is abandoned and replayed
    with the live L2 path (which is exact by construction). Raised and
    handled inside the simulator; never escapes :meth:`run`.
    """


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        cycles: Total committed cycles.
        instructions: Dynamic instruction count.
        cpi: Cycles per instruction.
        l1_miss_rate / l2_miss_rate: Functional-cache miss ratios (L2 rate
            is local, i.e. relative to L2 accesses).
        branch_mispredict_rate: Gshare mispredict ratio.
        mshr_stall_cycles: Cycles load misses spent waiting for an MSHR.
        fu_issue_counts: Instructions issued per FU class.
    """

    cycles: int
    instructions: int
    cpi: float
    ipc: float
    l1_miss_rate: float
    l2_miss_rate: float
    branch_mispredict_rate: float
    mshr_stall_cycles: int
    fu_issue_counts: Dict[str, int] = field(default_factory=dict)


class OutOfOrderSimulator:
    """Reusable simulator bound to fixed timing params.

    Thread-compatibility: each :meth:`run` call builds fresh machine
    state. The only cross-run state is the pre-pass memo, which holds
    immutable phase-1 artefacts; it is dropped on pickling so process-
    pool workers start cold and warm their own.

    Args:
        params: Machine timing constants.
        kernel: Requested timing kernel -- ``None``/"auto" (compiled
            when available, else python), "compiled" or "python". The
            request is resolved lazily per process (see
            :func:`repro.simulator.kernels.select_kernel`), so a pickled
            simulator re-resolves on whatever host unpickles it.
    """

    def __init__(
        self,
        params: SimulatorParams = DEFAULT_PARAMS,
        kernel: Optional[str] = None,
    ):
        params.validate()
        if kernel is not None and kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {kernel!r}; known: {', '.join(KERNEL_CHOICES)}"
            )
        self.params = params
        self.kernel = kernel
        self._memo = PrepassMemo()
        self._kernel_name: Optional[str] = None
        #: Evaluations per resolved kernel ("compiled"/"python" from
        #: :meth:`run`, "batched" from the lockstep walk) -- the source
        #: of the per-query kernel provenance counters.
        self.kernel_counts: Dict[str, int] = {}

    @property
    def prepass_memo(self) -> PrepassMemo:
        """The bounded pre-pass memo (exposed for tests and diagnostics)."""
        return self._memo

    @property
    def kernel_name(self) -> str:
        """The serial kernel this process resolved to (resolves lazily)."""
        if self._kernel_name is None:
            self._kernel_name = select_kernel(self.kernel)
        return self._kernel_name

    @property
    def resolved_kernel(self) -> Optional[str]:
        """The resolved kernel, or ``None`` before the first resolution."""
        return self._kernel_name

    def __getstate__(self) -> Dict[str, object]:
        return {"params": self.params, "kernel": self.kernel}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.params = state["params"]
        self.kernel = state.get("kernel")
        self._memo = PrepassMemo()
        self._kernel_name = None
        self.kernel_counts = {}

    # ------------------------------------------------------------------
    def branch_prepass_for(self, trace: InstructionTrace) -> BranchPrepass:
        """Memoised branch pre-pass of ``trace`` under this machine."""
        p = self.params
        view = trace.kernel_view
        return self._memo.get(
            trace,
            "branch",
            (p.gshare_bits, p.history_bits),
            lambda: branch_prepass(view.branch_taken, p.gshare_bits, p.history_bits),
        )

    def l1_prepass_for(
        self, trace: InstructionTrace, l1_sets: int, l1_ways: int
    ) -> L1Prepass:
        """Memoised L1 pre-pass for one cache geometry (prefetch off)."""
        line_shift = self.params.line_bytes.bit_length() - 1
        view = trace.kernel_view
        return self._memo.get(
            trace,
            "l1",
            (l1_sets, l1_ways, line_shift),
            lambda: l1_prepass(
                trace.address[view.mem_indices] >> line_shift, l1_sets, l1_ways
            ),
        )

    def l2_prepass_for(
        self, trace: InstructionTrace, config: MicroArchConfig, l1pre: L1Prepass
    ) -> L2Prepass:
        """Memoised L2 pre-pass for one (L1, L2) geometry pair.

        Replays the L2 over the no-merge stream (every L1 miss in program
        order); the timing kernel falls back to the live path on the rare
        merge (see :class:`MshrMergeDetected`).
        """
        line_shift = self.params.line_bytes.bit_length() - 1
        view = trace.kernel_view

        def build() -> L2Prepass:
            lines = trace.address[view.mem_indices] >> line_shift
            miss_lines = lines[~np.asarray(l1pre.hit, dtype=bool)]
            return l2_prepass(miss_lines, config.l2_sets, config.l2_ways)

        key = (
            config.l1_sets, config.l1_ways,
            config.l2_sets, config.l2_ways, line_shift,
        )
        return self._memo.get(trace, "l2", key, build)

    def run(self, trace: InstructionTrace, config: MicroArchConfig) -> SimulationResult:
        """Simulate ``trace`` on the machine described by ``config``."""
        p = self.params
        if trace.num_instructions == 0:
            raise ValueError("empty trace")
        view = trace.kernel_view

        # Phase 1: memoised, timing-independent outcome streams.
        bp = self.branch_prepass_for(trace)
        line_shift = p.line_bytes.bit_length() - 1
        if p.next_line_prefetch:
            # Prefetch installs lines from the timing-dependent MSHR miss
            # path, so L1/L2 outcomes must be simulated live in phase 2.
            l1pre = None
            l2pre = None
        else:
            l1pre = self.l1_prepass_for(trace, config.l1_sets, config.l1_ways)
            l2pre = self.l2_prepass_for(trace, config, l1pre)

        # Phase 2: the timing kernel.
        name = self.kernel_name
        self.kernel_counts[name] = self.kernel_counts.get(name, 0) + 1
        kernel = (
            _compiled_kernel if name == KERNEL_COMPILED else _timing_kernel
        )
        try:
            return kernel(view, config, p, bp, l1pre, line_shift, l2pre)
        except MshrMergeDetected:
            # Rare: a load merged into an in-flight miss, so the no-merge
            # L2 stream is invalid for this design. Replay with the live
            # L2 (exact for any merge pattern).
            return kernel(view, config, p, bp, l1pre, line_shift, None)

    def run_batch(
        self,
        trace: InstructionTrace,
        configs: Sequence[MicroArchConfig],
        min_designs: Optional[int] = None,
        max_designs: Optional[int] = None,
    ) -> List[SimulationResult]:
        """Simulate ``trace`` on a whole batch of designs at once.

        Bit-identical to ``[self.run(trace, c) for c in configs]``; wide
        batches (prefetch off) run on the design-batched lockstep kernel
        (:mod:`repro.simulator.batched`), everything else on the serial
        path. See :func:`repro.simulator.batched.run_batch`.
        """
        from repro.simulator.batched import run_batch

        return run_batch(
            self, trace, configs,
            min_designs=min_designs, max_designs=max_designs,
        )


def _timing_kernel(
    view: TraceKernelView,
    config: MicroArchConfig,
    params: SimulatorParams,
    bp: BranchPrepass,
    l1pre: Optional[L1Prepass],
    line_shift: int,
    l2pre: Optional[L2Prepass] = None,
) -> SimulationResult:
    """Program-order timestamp propagation over precomputed flag streams.

    Bit-identical to :func:`repro.simulator.reference.reference_simulate`
    by construction; every divergence is a bug the golden suite catches.
    With ``l2pre`` the L2 walk is replaced by the precomputed no-merge
    hit stream and :class:`MshrMergeDetected` is raised the moment the
    stream could diverge from the reference.
    """
    n = view.n
    width = config.decode_width
    rob_size = config.rob_entries
    iq_size = config.iq_entries
    n_mshr = config.n_mshr

    l1_hit_lat = params.l1_hit_cycles
    l2_lat = params.l2_hit_cycles
    mem_lat = params.mem_cycles
    redirect = params.redirect_cycles
    prefetch = params.next_line_prefetch

    if l2pre is None:
        l2 = SetAssociativeCache(config.l2_sets, config.l2_ways)
        l2_access = l2.access
        l2_hit_iter = None
    else:
        l2 = None
        l2_access = None
        l2_hit_iter = iter(l2pre.hit)
    if l1pre is None:
        l1 = SetAssociativeCache(config.l1_sets, config.l1_ways)
        l1_access = l1.access
        l1_hit_iter = None
    else:
        l1 = None
        l1_access = None
        l1_hit_iter = iter(l1pre.hit)

    # (free-time list, server count) per FU class, in FU_* code order.
    fu_info = (
        ([0] * config.int_fu, config.int_fu),
        ([0] * config.mem_fu, config.mem_fu),
        ([0] * config.fp_fu, config.fp_fu),
    )

    # MSHR file as two parallel lists (line, completion), <= n_mshr long.
    # Equivalent to the reference's dict + heap: the reference inserts a
    # line only when it is absent (a present line always merges, because
    # after the prune every pending completion exceeds the issue time),
    # so no heap entry ever goes stale and heap contents == dict items.
    # Pruning drops every entry with completion <= issue; the capacity
    # path evicts the lexicographic-min (completion, line) pair, which is
    # exactly the reference's heap-pop order, ties included.
    mshr_lines: List[int] = []
    mshr_fins: List[int] = []
    mshr_stall = 0

    # Issue-queue occupancy: min-heap of issue times of occupants. The
    # newest occupant's issue time is kept in ``iq_pending`` and folded
    # in lazily, so a full IQ costs one C-level ``heappushpop`` instead
    # of a pop + push pair -- same pops, same values as the reference.
    iq_heap: List[int] = []
    iq_len = 0
    iq_pending = None
    heappush = heapq.heappush
    heappushpop = heapq.heappushpop

    # Width constraints via run-length tracking. Dispatch (and commit)
    # times are non-decreasing, so the reference's window term
    # ``dispatch[i - width] + 1`` can only bind when the last ``width``
    # dispatches all equal the current candidate ``t`` -- i.e. the cycle
    # is full -- in which case the max resolves to exactly ``t + 1``.
    # Tracking (value, run length) therefore replaces the ring buffer.
    # The ROB term looks ``rob_entries`` back where runs do not reach, so
    # it keeps a ring: commit_ring[0] is the commit ``rob_size`` ago, and
    # the -1 prefill (+1 -> 0) never constrains during the early trace.
    disp_run_val = -1
    disp_run_len = 0
    commit_run_val = -1
    commit_run_len = 0
    commit_ring = deque([-1] * rob_size, maxlen=rob_size)
    # ``complete`` stays a full list: producers are random-access by
    # dependency index.
    complete: List[int] = []
    complete_append = complete.append

    fetch_resume = 0
    bp_iter = iter(bp.mispredict)

    K_SIMPLE, K_LOAD, K_STORE, K_BRANCH = KIND_SIMPLE, KIND_LOAD, KIND_STORE, KIND_BRANCH

    insns = zip(view.kind, view.lat, view.fu, view.src_a, view.src_b,
                view.mem_dep, view.address)
    for k, lat, fc, dep_a, dep_b, dep_m, address in insns:
        # ---------------- dispatch -------------------------------
        t = fetch_resume
        if disp_run_val > t:
            t = disp_run_val
        r = commit_ring[0] + 1
        if r > t:
            t = r
        if iq_len >= iq_size:
            q = heappushpop(iq_heap, iq_pending)
            if q > t:
                t = q
        else:
            if iq_pending is not None:
                heappush(iq_heap, iq_pending)
            iq_len += 1
        if t == disp_run_val:
            if disp_run_len >= width:
                t += 1
                disp_run_val = t
                disp_run_len = 1
            else:
                disp_run_len += 1
        else:
            disp_run_val = t
            disp_run_len = 1

        # ---------------- ready ----------------------------------
        ready = t + 1
        if dep_a >= 0:
            v = complete[dep_a]
            if v > ready:
                ready = v
        if dep_b >= 0:
            v = complete[dep_b]
            if v > ready:
                ready = v
        if dep_m >= 0:
            v = complete[dep_m]
            if v > ready:
                ready = v

        # ---------------- issue: FU structural hazard ------------
        servers, m = fu_info[fc]
        best = 0
        best_t = servers[0]
        if m == 2:
            v = servers[1]
            if v < best_t:
                best_t = v
                best = 1
        elif m > 2:
            for s in range(1, m):
                v = servers[s]
                if v < best_t:
                    best_t = v
                    best = s
        issue = ready if ready >= best_t else best_t

        # ---------------- execute --------------------------------
        if k == K_SIMPLE:
            fin = issue + lat
            servers[best] = issue + 1
        elif k == K_LOAD:
            if l1_hit_iter is None:
                line = address >> line_shift
                hit = l1_access(line)
            else:
                hit = next(l1_hit_iter)
            if hit:
                fin = issue + l1_hit_lat
            else:
                if l1_hit_iter is not None:
                    line = address >> line_shift
                # prune completed MSHRs
                if mshr_fins:
                    j = 0
                    while j < len(mshr_fins):
                        if mshr_fins[j] <= issue:
                            del mshr_fins[j]
                            del mshr_lines[j]
                        else:
                            j += 1
                if line in mshr_lines:
                    if l2_hit_iter is not None:
                        # The no-merge L2 stream is invalid from here on.
                        raise MshrMergeDetected
                    # merged into the in-flight miss
                    fin = mshr_fins[mshr_lines.index(line)]
                else:
                    start = issue
                    if mshr_lines and len(mshr_lines) >= n_mshr:
                        jm = 0
                        fmin = mshr_fins[0]
                        lmin = mshr_lines[0]
                        for j in range(1, len(mshr_fins)):
                            fj = mshr_fins[j]
                            if fj < fmin or (fj == fmin and mshr_lines[j] < lmin):
                                jm = j
                                fmin = fj
                                lmin = mshr_lines[j]
                        del mshr_fins[jm]
                        del mshr_lines[jm]
                        if fmin > start:
                            mshr_stall += fmin - start
                            start = fmin
                    if l2_hit_iter is None:
                        extra = l2_lat if l2_access(line) else l2_lat + mem_lat
                    else:
                        extra = l2_lat if next(l2_hit_iter) else l2_lat + mem_lat
                    fin = start + l1_hit_lat + extra
                    mshr_lines.append(line)
                    mshr_fins.append(fin)
                    if prefetch:
                        # tagged next-line prefetch: install the next
                        # sequential line alongside the demand fill
                        l1.warm(line + 1)
                        l2.warm(line + 1)
            servers[best] = issue + 1
        elif k == K_STORE:
            if l1_hit_iter is None:
                line = address >> line_shift
                if not l1_access(line):
                    l2_access(line)  # write-allocate fill path
            elif not next(l1_hit_iter):
                if l2_hit_iter is None:
                    l2_access(address >> line_shift)
                else:
                    # Outcome pre-accounted; consume to stay aligned.
                    next(l2_hit_iter)
            fin = issue + 1
            servers[best] = issue + 1
        elif k == K_BRANCH:
            fin = issue + 1
            servers[best] = issue + 1
            if next(bp_iter):
                resume = fin + redirect
                if resume > fetch_resume:
                    fetch_resume = resume
        else:  # KIND_UNPIPELINED: divides hog their unit
            fin = issue + lat
            servers[best] = issue + lat
        complete_append(fin)
        iq_pending = issue

        # ---------------- commit ---------------------------------
        c = fin + 1
        if commit_run_val >= c:
            if commit_run_len >= width:
                c = commit_run_val + 1
                commit_run_val = c
                commit_run_len = 1
            else:
                c = commit_run_val
                commit_run_len += 1
        else:
            commit_run_val = c
            commit_run_len = 1
        commit_ring.append(c)

    cycles = commit_run_val
    if l1 is not None:
        l1_hit_count, l1_miss_count = l1.hits, l1.misses
    else:
        l1_hit_count, l1_miss_count = l1pre.hits, l1pre.misses
    l1_total = l1_hit_count + l1_miss_count
    if l2 is not None:
        l2_miss_rate = l2.miss_rate
    else:
        l2_total = l2pre.hits + l2pre.misses
        l2_miss_rate = l2pre.misses / l2_total if l2_total else 0.0
    return SimulationResult(
        cycles=cycles,
        instructions=n,
        cpi=cycles / n,
        ipc=n / cycles,
        l1_miss_rate=l1_miss_count / l1_total if l1_total else 0.0,
        l2_miss_rate=l2_miss_rate,
        branch_mispredict_rate=bp.mispredict_rate,
        mshr_stall_cycles=mshr_stall,
        fu_issue_counts=dict(view.fu_issue_counts),
    )


def _compiled_kernel(
    view: TraceKernelView,
    config: MicroArchConfig,
    params: SimulatorParams,
    bp: BranchPrepass,
    l1pre: Optional[L1Prepass],
    line_shift: int,
    l2pre: Optional[L2Prepass] = None,
) -> SimulationResult:
    """The C-extension walk behind the same interface as the Python one.

    Same streams in (as contiguous buffers), same result out, including
    :class:`MshrMergeDetected` on an L2-stream merge -- so :meth:`run`'s
    retry logic is kernel-agnostic. Bit-identity with the Python kernel
    (and therefore ``reference.py``) is golden-suite enforced.
    """
    mod = compiled_kernel_module()
    if mod is None:  # pragma: no cover - selection guarantees presence
        raise RuntimeError("compiled kernel selected but not importable")
    cols = view.columns
    (cycles, mshr_stall, l1_hits, l1_misses, l2_hits, l2_misses, merged) = (
        mod.run_timing(
            cols.kind, cols.lat, cols.fu,
            cols.src_a, cols.src_b, cols.mem_dep, cols.address,
            bp.mispredict_u8,
            None if l1pre is None else l1pre.hit_u8,
            None if l2pre is None else l2pre.hit_u8,
            config.decode_width, config.rob_entries, config.iq_entries,
            config.n_mshr, config.int_fu, config.mem_fu, config.fp_fu,
            config.l1_sets, config.l1_ways, config.l2_sets, config.l2_ways,
            params.l1_hit_cycles, params.l2_hit_cycles, params.mem_cycles,
            params.redirect_cycles, line_shift,
            1 if params.next_line_prefetch else 0,
        )
    )
    if merged:
        raise MshrMergeDetected
    if l1pre is not None:
        l1_hits, l1_misses = l1pre.hits, l1pre.misses
    if l2pre is not None:
        l2_hits, l2_misses = l2pre.hits, l2pre.misses
    n = view.n
    l1_total = l1_hits + l1_misses
    l2_total = l2_hits + l2_misses
    return SimulationResult(
        cycles=cycles,
        instructions=n,
        cpi=cycles / n,
        ipc=n / cycles,
        l1_miss_rate=l1_misses / l1_total if l1_total else 0.0,
        l2_miss_rate=l2_misses / l2_total if l2_total else 0.0,
        branch_mispredict_rate=bp.mispredict_rate,
        mshr_stall_cycles=mshr_stall,
        fu_issue_counts=dict(view.fu_issue_counts),
    )


def simulate(
    trace: InstructionTrace,
    config: MicroArchConfig,
    params: Optional[SimulatorParams] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace`` on ``config``."""
    return OutOfOrderSimulator(params or DEFAULT_PARAMS).run(trace, config)
