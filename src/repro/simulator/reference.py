"""Reference one-pass timing model: the golden oracle for the kernel.

This is the original single-phase formulation of the simulator, kept
verbatim: one program-order walk that interleaves the branch predictor,
the functional caches, heapq-based IQ/MSHR tracking and the timestamp
recurrences. The production path (``core.py``) refactors this into a
memoised pre-pass plus a slimmed timing kernel; **this module is the
semantic contract it must match bit-for-bit** --
``tests/test_simulator_golden.py`` asserts full ``SimulationResult``
equality between the two over randomized configs x all workloads.

Keep this implementation boring and obviously correct. Performance work
belongs in ``core.py``; any intended behaviour change must be made here
first, then mirrored in the kernel until the golden suite passes again.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.designspace.config import MicroArchConfig
from repro.simulator.branch import GsharePredictor
from repro.simulator.cache import SetAssociativeCache
from repro.simulator.params import SimulatorParams, DEFAULT_PARAMS
from repro.workloads.isa import OpClass, OP_LATENCY
from repro.workloads.trace import InstructionTrace, NO_DEP


def reference_simulate(
    trace: InstructionTrace,
    config: MicroArchConfig,
    params: Optional[SimulatorParams] = None,
):
    """Simulate ``trace`` on ``config`` with the single-phase reference.

    Returns the same :class:`~repro.simulator.core.SimulationResult` type
    as the production simulator.
    """
    from repro.simulator.core import SimulationResult

    p = params or DEFAULT_PARAMS
    p.validate()
    n = trace.num_instructions
    if n == 0:
        raise ValueError("empty trace")

    # --- unpack trace into local lists (fast CPython access) -------
    ops = trace.op.tolist()
    src_a = trace.src_a.tolist()
    src_b = trace.src_b.tolist()
    mem_dep = trace.mem_dep.tolist()
    addresses = trace.address.tolist()
    takens = trace.taken.tolist()

    latency = {int(cls): OP_LATENCY[cls] for cls in OpClass}
    LOAD = int(OpClass.LOAD)
    STORE = int(OpClass.STORE)
    BRANCH = int(OpClass.BRANCH)
    INT_DIV = int(OpClass.INT_DIV)
    FP_DIV = int(OpClass.FP_DIV)
    FP_LO, FP_HI = int(OpClass.FP_ADD), int(OpClass.FP_DIV)

    # --- machine state ---------------------------------------------
    width = config.decode_width
    rob_size = config.rob_entries
    iq_size = config.iq_entries
    line_shift = p.line_bytes.bit_length() - 1

    l1 = SetAssociativeCache(config.l1_sets, config.l1_ways)
    l2 = SetAssociativeCache(config.l2_sets, config.l2_ways)
    predictor = GsharePredictor(p.gshare_bits, p.history_bits)

    int_free = [0] * config.int_fu
    mem_free = [0] * config.mem_fu
    fp_free = [0] * config.fp_fu

    # MSHR file: outstanding line -> completion time, plus a heap of
    # (completion, line) for slot recycling.
    mshr_out: Dict[int, int] = {}
    mshr_heap: List[tuple] = []
    n_mshr = config.n_mshr
    mshr_stall = 0

    # Issue-queue occupancy: min-heap of issue times of occupants.
    iq_heap: List[int] = []

    dispatch = [0] * n
    complete = [0] * n
    commit = [0] * n

    fetch_resume = 0
    fu_counts = {"int": 0, "mem": 0, "fp": 0}

    l1_hit_lat = p.l1_hit_cycles
    l2_lat = p.l2_hit_cycles
    mem_lat = p.mem_cycles
    redirect = p.redirect_cycles
    prefetch = p.next_line_prefetch

    for i in range(n):
        op = ops[i]

        # ---------------- dispatch -------------------------------
        t = fetch_resume
        if i:
            prev = dispatch[i - 1]
            if prev > t:
                t = prev
        if i >= width:
            w = dispatch[i - width] + 1
            if w > t:
                t = w
        if i >= rob_size:
            r = commit[i - rob_size] + 1
            if r > t:
                t = r
        if len(iq_heap) >= iq_size:
            q = heapq.heappop(iq_heap)
            if q > t:
                t = q
        disp = t
        dispatch[i] = disp

        # ---------------- ready ----------------------------------
        ready = disp + 1
        d = src_a[i]
        if d != NO_DEP and complete[d] > ready:
            ready = complete[d]
        d = src_b[i]
        if d != NO_DEP and complete[d] > ready:
            ready = complete[d]
        d = mem_dep[i]
        if d != NO_DEP and complete[d] > ready:
            ready = complete[d]

        # ---------------- issue: FU structural hazard ------------
        if op == LOAD or op == STORE:
            servers = mem_free
            fu_counts["mem"] += 1
        elif FP_LO <= op <= FP_HI:
            servers = fp_free
            fu_counts["fp"] += 1
        else:
            servers = int_free
            fu_counts["int"] += 1
        # pick the earliest-free server
        best = 0
        best_t = servers[0]
        for s in range(1, len(servers)):
            if servers[s] < best_t:
                best_t = servers[s]
                best = s
        issue = ready if ready >= best_t else best_t

        # ---------------- execute --------------------------------
        if op == LOAD:
            line = addresses[i] >> line_shift
            if l1.access(line):
                fin = issue + l1_hit_lat
            else:
                # prune completed MSHRs
                while mshr_heap and mshr_heap[0][0] <= issue:
                    done_t, done_line = heapq.heappop(mshr_heap)
                    if mshr_out.get(done_line) == done_t:
                        del mshr_out[done_line]
                pending = mshr_out.get(line)
                if pending is not None and pending > issue:
                    fin = pending  # merged into the in-flight miss
                else:
                    start = issue
                    if len(mshr_out) >= n_mshr and mshr_heap:
                        free_at, freed_line = heapq.heappop(mshr_heap)
                        if mshr_out.get(freed_line) == free_at:
                            del mshr_out[freed_line]
                        if free_at > start:
                            mshr_stall += free_at - start
                            start = free_at
                    extra = l2_lat if l2.access(line) else l2_lat + mem_lat
                    fin = start + l1_hit_lat + extra
                    mshr_out[line] = fin
                    heapq.heappush(mshr_heap, (fin, line))
                    if prefetch:
                        # tagged next-line prefetch: install the next
                        # sequential line alongside the demand fill
                        l1.warm(line + 1)
                        l2.warm(line + 1)
            servers[best] = issue + 1
        elif op == STORE:
            line = addresses[i] >> line_shift
            if not l1.access(line):
                l2.access(line)  # write-allocate fill path
            fin = issue + 1
            servers[best] = issue + 1
        elif op == BRANCH:
            fin = issue + 1
            servers[best] = issue + 1
            if predictor.predict_and_update(takens[i]):
                resume = fin + redirect
                if resume > fetch_resume:
                    fetch_resume = resume
        else:
            lat = latency[op]
            fin = issue + lat
            if op == INT_DIV or op == FP_DIV:
                servers[best] = issue + lat  # unpipelined
            else:
                servers[best] = issue + 1
        complete[i] = fin
        heapq.heappush(iq_heap, issue)

        # ---------------- commit ---------------------------------
        c = fin + 1
        if i:
            prev = commit[i - 1]
            if prev > c:
                c = prev
        if i >= width:
            w = commit[i - width] + 1
            if w > c:
                c = w
        commit[i] = c

    cycles = commit[n - 1]
    return SimulationResult(
        cycles=cycles,
        instructions=n,
        cpi=cycles / n,
        ipc=n / cycles,
        l1_miss_rate=l1.miss_rate,
        l2_miss_rate=l2.miss_rate,
        branch_mispredict_rate=predictor.mispredict_rate,
        mshr_stall_cycles=mshr_stall,
        fu_issue_counts=dict(fu_counts),
    )
