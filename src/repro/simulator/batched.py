"""Design-batched timing kernel: one trace walk advancing many designs.

A DSE campaign funnels thousands of *independent* designs through the
same trace. The serial kernel (``core._timing_kernel``) walks the trace
once per design; this module walks it **once per batch**, keeping every
piece of per-design state (dispatch/commit recurrences, issue-queue and
functional-unit occupancy, MSHR files) in numpy arrays with a leading
design axis and advancing all designs in lockstep, one instruction at a
time. Interpreter overhead is paid once per instruction instead of once
per (instruction, design), so throughput grows with the batch size; the
numpy dispatch cost per step is roughly constant, which puts the
break-even point around :data:`BATCH_MIN_DESIGNS` designs (measured in
``benchmarks/test_bench_simulator_batched.py``) -- below it the walk
transparently degrades to the serial kernel.

Bit-identity with ``reference.py`` is non-negotiable and rests on three
observations (everything else is plain re-arrangement):

- **Offset ("T") space.** Every recurrence term is ``x + const`` for a
  per-reader constant, so rings store pre-offset values (``dispatch+2``,
  ``commit+2``, ``issue+1``) and the per-step ``+1`` adds disappear into
  the single write each value gets. The tracked quantities are
  ``T = dispatch + 1`` and ``CC = commit + 1``; prefilling rings with 0
  encodes "constraint absent" exactly like the reference's warm-up
  guards, because every real timestamp is >= 0 (so ``T >= 0`` never
  binds).
- **Multiset structures.** The reference's IQ heap and FU scan only ever
  consume the *minimum* of a multiset and replace one instance of it, so
  an unordered array + ``argmin`` (first-minimum, like the reference's
  strict-< scan) is exactly equivalent: ties remove an equal value
  either way and the multiset after the update is identical.
- **Pre-passed memory outcomes.** With prefetch off, the L1 hit stream
  and the no-merge L2 stream are pre-passes (see ``prepass.py``), so the
  only live per-design memory state is the MSHR file -- touched on L1
  misses only, in a scalar loop over just the missing designs. The rare
  MSHR merge invalidates the no-merge L2 stream for that design; it is
  detected exactly and the design is re-run on the serial path.

Heterogeneous batches need no grouping: per-design geometry differences
live in padded arrays (unused IQ slots and FU servers hold ``_INF``) and
in per-design ring read offsets, which are precomputed in chunks as flat
gather indices so each step issues a single fused ``take`` for all three
ring reads.

Prefetch runs are delegated to the serial kernel design-by-design:
prefetching makes L1/L2 contents timing-dependent, which would drag the
functional caches into the per-step scalar path and forfeit the batch
economics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.designspace.config import MicroArchConfig
from repro.workloads.trace import (
    KIND_BRANCH,
    KIND_LOAD,
    KIND_STORE,
    KIND_UNPIPELINED,
    NO_DEP,
    TraceKernelView,
)

#: Below this many designs the lockstep walk loses to the *Python*
#: serial kernel (numpy per-step dispatch overhead is ~flat in the batch
#: size, so the walk only pays off once enough lanes share it); smaller
#: batches run serially. Set just past the measured crossover so
#: engagement is always a win; see
#: ``benchmarks/test_bench_simulator_batched.py``.
BATCH_MIN_DESIGNS = 48

#: Crossover against the *compiled* serial kernel: there is none. The
#: compiled walk beats the lockstep kernel at every width (measured
#: ~284 vs ~129 evals/s even at 256 lanes on the bench workload), so
#: when the serial floor is compiled the default policy routes every
#: batch to the serial path and the old sub-1.0x small-batch region
#: disappears. An explicit ``min_designs``/``max_designs`` still
#: engages the lockstep walk (tests and diagnostics rely on that).
BATCH_NEVER = 1 << 30

#: Designs per lockstep walk; larger batches are chunked. Throughput
#: still rises toward 256 lanes (the per-step cost is ~11us flat plus
#: ~0.09us per lane), after which memory growth buys little speed.
BATCH_MAX_DESIGNS = 256

#: Cap on (trace length x lane count) so per-walk state (completion
#: ring, per-design hit streams, gather-index chunks) stays bounded for
#: very long traces; the lane count shrinks to fit.
MAX_STATE_ELEMENTS = 1 << 25

#: Padding sentinel for IQ slots / FU servers a design does not have.
#: Never participates in arithmetic; only compared (and always loses).
_INF = 1 << 62

#: Ring gather indices are precomputed this many steps at a time.
_INDEX_CHUNK = 2048


def run_batch(
    simulator,
    trace,
    configs: Sequence[MicroArchConfig],
    min_designs: Optional[int] = None,
    max_designs: Optional[int] = None,
) -> List["SimulationResult"]:
    """Simulate ``trace`` on every design in ``configs``.

    Results are positionally aligned with ``configs`` and bit-identical
    to ``[simulator.run(trace, c) for c in configs]`` (golden-suite
    enforced). The lockstep kernel engages when prefetch is off and the
    batch is at least ``min_designs`` wide; otherwise (and for any
    design that hits an MSHR merge) the serial path is used.

    Args:
        simulator: An :class:`~repro.simulator.core.OutOfOrderSimulator`
            (owns the params and the pre-pass memo).
        trace: The instruction trace.
        configs: Design points to evaluate.
        min_designs: Lockstep engagement threshold (default: the
            measured crossover against the active serial kernel --
            :data:`BATCH_MIN_DESIGNS` over the Python kernel, never
            over the compiled one, which wins at every width).
        max_designs: Lockstep chunk width (default
            :data:`BATCH_MAX_DESIGNS`), further shrunk for long traces
            by :data:`MAX_STATE_ELEMENTS`.
    """
    from repro.simulator.kernels import KERNEL_PYTHON

    configs = list(configs)
    if not configs:
        return []
    if trace.num_instructions == 0:
        raise ValueError("empty trace")
    if min_designs is None:
        lo = (
            BATCH_MIN_DESIGNS
            if simulator.kernel_name == KERNEL_PYTHON
            else BATCH_NEVER
        )
    else:
        lo = max(int(min_designs), 1)
    hi = BATCH_MAX_DESIGNS if max_designs is None else max(int(max_designs), 1)
    if max_designs is not None and min_designs is None and hi >= 2:
        # An explicit walk width is a request to batch at that width,
        # not to sit under the default crossover: `--hf-batch 32` runs
        # 32-wide walks. A width of 1 still means "disable" (a one-lane
        # lockstep walk would only ever lose to the serial kernel).
        lo = min(lo, hi)
    hi = max(min(hi, MAX_STATE_ELEMENTS // trace.num_instructions), 1)
    if simulator.params.next_line_prefetch or len(configs) < lo or hi < lo:
        return [simulator.run(trace, config) for config in configs]
    out: List["SimulationResult"] = []
    for start in range(0, len(configs), hi):
        chunk = configs[start:start + hi]
        if len(chunk) < lo:  # ragged tail below the crossover
            out.extend(simulator.run(trace, config) for config in chunk)
        else:
            out.extend(_lockstep_walk(simulator, trace, chunk))
    return out


# ----------------------------------------------------------------------
# Pre-pass stacking
# ----------------------------------------------------------------------
def _stacked_streams(simulator, trace, configs: Sequence[MicroArchConfig]):
    """Per-design memory-outcome arrays, stacked design-major.

    Returns ``(hits, miss_extra, l1pres, l2pres)`` where ``hits`` is a
    ``(D, num_mem_ops)`` bool array of L1 outcomes and ``miss_extra``
    holds, at each design's L1-miss positions, the L2-or-DRAM latency a
    non-merged miss pays beyond the L1 hit latency. Rows are shared
    between designs with equal geometry via the simulator's memo (the
    row arrays are memoised alongside the pre-passes they derive from).
    """
    p = simulator.params
    memo = simulator.prepass_memo
    hit_rows: Dict = {}
    extra_rows: Dict = {}
    l1pres, l2pres = [], []
    for config in configs:
        l1_key = (config.l1_sets, config.l1_ways)
        l1pre = simulator.l1_prepass_for(trace, *l1_key)
        l1pres.append(l1pre)
        if l1_key not in hit_rows:
            hit_rows[l1_key] = memo.get(
                trace,
                "l1row",
                l1_key + (p.line_bytes,),
                lambda pre=l1pre: np.asarray(pre.hit, dtype=bool),
            )
        l2pre = simulator.l2_prepass_for(trace, config, l1pre)
        l2pres.append(l2pre)
        l2_key = l1_key + (config.l2_sets, config.l2_ways)
        if l2_key not in extra_rows:

            def build_extra(l1row=hit_rows[l1_key], pre=l2pre) -> np.ndarray:
                row = np.zeros(len(l1row), dtype=np.int32)
                row[~l1row] = np.where(
                    np.asarray(pre.hit, dtype=bool),
                    p.l2_hit_cycles,
                    p.l2_hit_cycles + p.mem_cycles,
                )
                return row

            extra_rows[l2_key] = memo.get(
                trace, "l2row", l2_key + (p.line_bytes,), build_extra
            )
    hits = np.stack([hit_rows[(c.l1_sets, c.l1_ways)] for c in configs])
    miss_extra = np.stack(
        [
            extra_rows[(c.l1_sets, c.l1_ways, c.l2_sets, c.l2_ways)]
            for c in configs
        ]
    )
    return hits, miss_extra, l1pres, l2pres


# ----------------------------------------------------------------------
# The lockstep walk
# ----------------------------------------------------------------------
def _lockstep_walk(simulator, trace, configs: Sequence[MicroArchConfig]):
    """One program-order walk advancing all of ``configs`` in lockstep."""
    from repro.simulator.core import SimulationResult

    p = simulator.params
    view: TraceKernelView = trace.kernel_view
    n = view.n
    D = len(configs)
    ar = np.arange(D, dtype=np.intp)

    bp = simulator.branch_prepass_for(trace)
    hits, miss_extra, l1pres, l2pres = _stacked_streams(
        simulator, trace, configs
    )
    # LOAD columns (memory ops) where at least one design misses, and
    # which designs miss there with what beyond-L1 latency -- the only
    # places the scalar MSHR path runs. Store columns never consult
    # this (their L1/L2 outcomes are fully pre-accounted), so they are
    # masked out of the setup work up front.
    kind_arr = np.asarray(view.kind)
    is_load_col = kind_arr[view.mem_indices] == KIND_LOAD
    miss_any = ((~hits.all(axis=0)) & is_load_col).tolist()
    miss_info: Dict[int, tuple] = {}
    for j in np.flatnonzero(np.asarray(miss_any)):
        j = int(j)
        md = np.flatnonzero(~hits[:, j])
        miss_info[j] = (
            md.tolist(),
            miss_extra[md, j].tolist(),
            md,
        )
    del hits, miss_extra

    line_shift = p.line_bytes.bit_length() - 1
    lines = (trace.address[view.mem_indices] >> line_shift).tolist()
    l1_hit_lat = p.l1_hit_cycles
    redirect1 = p.redirect_cycles + 1

    widths = np.array([c.decode_width for c in configs], dtype=np.int64)
    robs = np.array([c.rob_entries for c in configs], dtype=np.int64)
    iq_sizes = np.array([c.iq_entries for c in configs], dtype=np.int64)
    n_mshrs = [c.n_mshr for c in configs]

    # Rings, in one flat arena so the three per-step reads fuse into a
    # single ``take``. dring rows hold dispatch+2 (= T+1), cring rows
    # hold commit+2 (= CC+1); both prefilled 0 = "constraint absent".
    maxW = int(widths.max())
    R = max(int(robs.max()), maxW + 1)
    arena = np.zeros((maxW + R) * D, dtype=np.int64)
    c_off = maxW * D

    # Completion ring: deps are trace indices, identical across designs,
    # so reads/writes are whole rows. Sized by the deepest backward
    # dependency in the trace.
    deps_all = np.stack([trace.src_a, trace.src_b, trace.mem_dep])
    idx = np.arange(n, dtype=np.int64)
    dist = np.where(deps_all != NO_DEP, idx[None, :] - deps_all, 0)
    Rc = max(int(dist.max()), 1)
    comp = np.zeros((Rc, D), dtype=np.int64)
    dep_rows = [
        tuple(int(d) % Rc for d in cols if d != NO_DEP)
        for cols in deps_all.T.tolist()
    ]

    # Issue queue: (D, max_iq) unordered occupant issue+1 times, INF in
    # slots a design does not have. max_iq steps of warm-up handle the
    # not-yet-full phase with masks; after that every design pops.
    max_iq = int(iq_sizes.max())
    iq = np.full((D, max_iq), _INF, dtype=np.int64)
    iq_flat = iq.reshape(-1)
    iq_base = (ar * max_iq).astype(np.intp)

    # FU servers per class, in KIND/FU code order (int, mem, fp). One
    # (D,) array when every design has one server; a sorted pair (+ its
    # ping-pong buffers) when at most two, so replace-min is two ufunc
    # calls; an argmin table (+ index scratch) otherwise. ``_INF`` pads
    # servers a design does not have -- it always loses the min and is
    # never written (argmin picks a real server, and ``max(INF, x)``
    # keeps the pad in the pair's upper slot).
    fu_state = []
    for counts in (
        [c.int_fu for c in configs],
        [c.mem_fu for c in configs],
        [c.fp_fu for c in configs],
    ):
        m = max(counts)
        if m == 1:
            fu_state.append(("one", [np.zeros(D, dtype=np.int64)]))
        elif m == 2:
            smax = np.where(
                np.array(counts) == 2, 0, _INF
            ).astype(np.int64)
            fu_state.append(
                (
                    "pair",
                    [
                        np.zeros(D, dtype=np.int64), smax,
                        np.empty(D, dtype=np.int64),
                        np.empty(D, dtype=np.int64),
                    ],
                )
            )
        else:
            tab = np.full((D, m), _INF, dtype=np.int64)
            for d, cnt in enumerate(counts):
                tab[d, :cnt] = 0
            fu_state.append(
                (
                    "tab",
                    [
                        tab, tab.reshape(-1), ar * m,
                        np.empty(D, dtype=np.intp),
                        np.empty(D, dtype=np.intp),
                    ],
                )
            )

    # Per-design scalar state (touched only on L1 misses / at the end).
    mshr_lines: List[List[int]] = [[] for _ in range(D)]
    mshr_fins: List[List[int]] = [[] for _ in range(D)]
    mshr_stall = [0] * D
    fallback: Set[int] = set()

    prevT = np.ones(D, dtype=np.int64)   # encodes t >= fetch_resume = 0
    CCprev = np.zeros(D, dtype=np.int64)
    fr1 = None                           # fetch_resume+1, once it can bind

    # Scratch buffers: every per-step intermediate is written with
    # ``out=`` into one of these, so the steady-state loop allocates
    # nothing. Values that must survive the step (T, CC, FU state, ring
    # rows, completion rows) are either ping-pong buffered or copied by
    # their slice-assign. ``issue``/``issue1``/``fin`` never outlive the
    # step: the IQ/FU/ring/completion writes all copy.
    Tbufs = (np.empty(D, dtype=np.int64), np.empty(D, dtype=np.int64))
    CCbufs = (np.empty(D, dtype=np.int64), np.empty(D, dtype=np.int64))
    Gbuf = np.empty(3 * D, dtype=np.int64)
    G0, G1, G2 = Gbuf[:D], Gbuf[D:2 * D], Gbuf[2 * D:]
    qbuf = np.empty(D, dtype=np.int64)
    wbuf = np.empty(D, dtype=np.int64)
    rbuf = np.empty(D, dtype=np.int64)
    ibuf = np.empty(D, dtype=np.int64)
    i1buf = np.empty(D, dtype=np.int64)
    fbuf = np.empty(D, dtype=np.int64)
    f2buf = np.empty(D, dtype=np.int64)
    colbuf = np.empty(D, dtype=np.intp)
    fidxbuf = np.empty(D, dtype=np.intp)

    maximum, minimum, add = np.maximum, np.minimum, np.add
    take = np.take
    copyto = np.copyto
    kinds, lats, fus = view.kind, view.lat, view.fu
    bp_iter = iter(bp.mispredict)
    K_LOAD, K_STORE = KIND_LOAD, KIND_STORE
    K_BRANCH, K_UNPIP = KIND_BRANCH, KIND_UNPIPELINED
    j = -1  # memory-op cursor

    for c0 in range(0, n, _INDEX_CHUNK):
        c1 = min(c0 + _INDEX_CHUNK, n)
        rows = np.arange(c0, c1, dtype=np.int64)[:, None]
        idx3 = np.concatenate(
            [
                ((rows - widths) % maxW) * D + ar,
                c_off + ((rows - robs) % R) * D + ar,
                c_off + ((rows - widths) % R) * D + ar,
            ],
            axis=1,
        )
        idx3_rows = list(idx3)
        dstarts = ((rows[:, 0] % maxW) * D).tolist()
        cstarts = (c_off + (rows[:, 0] % R) * D).tolist()

        for i, gidx, ds, cs in zip(range(c0, c1), idx3_rows, dstarts, cstarts):
            # ---------------- dispatch ---------------------------
            take(arena, gidx, out=Gbuf)
            T = Tbufs[i & 1]
            maximum(G0, prevT, out=T)
            maximum(T, G1, out=T)
            if fr1 is not None:
                maximum(T, fr1, out=T)
            if i >= max_iq:
                iq.argmin(axis=1, out=colbuf)
                add(iq_base, colbuf, out=fidxbuf)
                fidx = fidxbuf
                take(iq_flat, fidx, out=qbuf)
                maximum(T, qbuf, out=T)
            else:  # warm-up: only full designs pop
                full = iq_sizes <= i
                col = iq.argmin(axis=1)
                fidx = iq_base + col
                maximum(T, np.where(full, iq_flat.take(fidx), 0), out=T)
                fidx = np.where(full, fidx, iq_base + i).astype(np.intp)
            add(T, 1, out=wbuf)
            arena[ds:ds + D] = wbuf

            # ---------------- ready ------------------------------
            deps = dep_rows[i]
            if deps:
                maximum(T, comp[deps[0]], out=rbuf)
                for r in deps[1:]:
                    maximum(rbuf, comp[r], out=rbuf)
                ready = rbuf
            else:
                ready = T

            # ---------------- issue: FU hazard -------------------
            mode, state = fu_state[fus[i]]
            if mode == "tab":
                tab, tab_flat, base, fcolbuf, ffidxbuf = state
                tab.argmin(axis=1, out=fcolbuf)
                add(base, fcolbuf, out=ffidxbuf)
                take(tab_flat, ffidxbuf, out=qbuf)
                issue = maximum(ready, qbuf, out=ibuf)
            else:  # "one" and "pair" both consult a (D,) minimum
                issue = maximum(ready, state[0], out=ibuf)
            issue1 = add(issue, 1, out=i1buf)

            # ---------------- execute ----------------------------
            k = kinds[i]
            upd = issue1
            if k == K_LOAD:
                j += 1
                fin = add(issue, l1_hit_lat, out=fbuf)
                if miss_any[j]:
                    line = lines[j]
                    md_list, extra_list, md_np = miss_info[j]
                    iss_list = issue.take(md_np).tolist()
                    for d, iss, extra in zip(md_list, iss_list, extra_list):
                        if d in fallback:
                            continue
                        ml, mf = mshr_lines[d], mshr_fins[d]
                        if mf:  # prune completed entries
                            q = 0
                            while q < len(mf):
                                if mf[q] <= iss:
                                    del mf[q]
                                    del ml[q]
                                else:
                                    q += 1
                        if line in ml:
                            # An in-flight merge: the no-merge L2 stream
                            # is invalid for this design from here on.
                            fallback.add(d)
                            continue
                        start = iss
                        if ml and len(ml) >= n_mshrs[d]:
                            jm = 0
                            fmin = mf[0]
                            lmin = ml[0]
                            for q in range(1, len(mf)):
                                fq = mf[q]
                                if fq < fmin or (fq == fmin and ml[q] < lmin):
                                    jm, fmin, lmin = q, fq, ml[q]
                            del mf[jm]
                            del ml[jm]
                            if fmin > start:
                                mshr_stall[d] += fmin - start
                                start = fmin
                        fin_d = start + l1_hit_lat + extra
                        ml.append(line)
                        mf.append(fin_d)
                        fin[d] = fin_d
            elif k == K_STORE:
                # L1/L2 outcomes are pre-accounted; stores only occupy
                # a mem FU slot for a cycle.
                j += 1
                fin = issue1
            elif k == K_BRANCH:
                fin = issue1
                if next(bp_iter):
                    resume1 = fin + redirect1  # fresh: retained in fr1
                    fr1 = (
                        resume1 if fr1 is None
                        else maximum(fr1, resume1)
                    )
            else:  # KIND_SIMPLE / KIND_UNPIPELINED
                lat = lats[i]
                fin = issue1 if lat == 1 else add(issue, lat, out=fbuf)
                if k == K_UNPIP:
                    upd = fin  # divides hog their unit for the full latency

            # ---------------- FU / IQ updates --------------------
            if mode == "one":
                copyto(state[0], upd)
            elif mode == "pair":
                smin, smax, alt_min, alt_max = state
                minimum(smax, upd, out=alt_min)
                maximum(smax, upd, out=alt_max)
                state[0], state[1] = alt_min, alt_max
                state[2], state[3] = smin, smax
            else:
                tab_flat.put(ffidxbuf, upd)
            iq_flat.put(fidx, issue1)
            comp[i % Rc] = fin

            # ---------------- commit -----------------------------
            add(fin, 2, out=f2buf)
            CC = CCbufs[i & 1]
            maximum(f2buf, CCprev, out=CC)
            maximum(CC, G2, out=CC)
            add(CC, 1, out=wbuf)
            arena[cs:cs + D] = wbuf
            CCprev = CC
            prevT = T

    # ------------------------------------------------------------------
    cycles = (CCprev - 1).tolist()
    mis_rate = bp.mispredict_rate
    fu_counts = dict(view.fu_issue_counts)
    # Kernel provenance: lockstep lanes count as "batched"; fallback
    # designs re-run through simulator.run, which counts them itself.
    lanes = D - len(fallback)
    if lanes:
        simulator.kernel_counts["batched"] = (
            simulator.kernel_counts.get("batched", 0) + lanes
        )
    results: List[SimulationResult] = []
    for d, config in enumerate(configs):
        if d in fallback:
            # Exact replay on the serial path (which re-detects the
            # merge and takes its own live-L2 fallback).
            results.append(simulator.run(trace, config))
            continue
        l1pre, l2pre = l1pres[d], l2pres[d]
        l1_total = l1pre.hits + l1pre.misses
        l2_total = l2pre.hits + l2pre.misses
        cyc = cycles[d]
        results.append(
            SimulationResult(
                cycles=cyc,
                instructions=n,
                cpi=cyc / n,
                ipc=n / cyc,
                l1_miss_rate=l1pre.misses / l1_total if l1_total else 0.0,
                l2_miss_rate=l2pre.misses / l2_total if l2_total else 0.0,
                branch_mispredict_rate=mis_rate,
                mshr_stall_cycles=mshr_stall[d],
                fu_issue_counts=dict(fu_counts),
            )
        )
    return results
