"""The trace ISA: operation classes and execution latencies.

The simulator and analytical model only need instruction *classes* (which
functional unit, what latency, memory or not), not full RISC-V semantics.
Latencies follow typical BOOM settings at 1 GHz.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict


class OpClass(IntEnum):
    """Operation classes recognised by the pipeline model."""

    INT_ALU = 0  #: add/sub/logic/compare/shift -> Int FU, 1 cycle
    INT_MUL = 1  #: integer multiply            -> Int FU, 3 cycles
    INT_DIV = 2  #: integer divide              -> Int FU, 12 cycles, unpipelined
    FP_ADD = 3   #: FP add/sub/compare          -> FP FU, 3 cycles
    FP_MUL = 4   #: FP multiply                 -> FP FU, 4 cycles
    FP_DIV = 5   #: FP divide/sqrt              -> FP FU, 10 cycles, unpipelined
    LOAD = 6     #: memory load                 -> Mem FU + cache hierarchy
    STORE = 7    #: memory store                -> Mem FU + store buffer
    BRANCH = 8   #: conditional branch          -> Int FU, 1 cycle


#: Execution latency in cycles (for LOAD this is the address-generation +
#: L1-hit latency; misses add hierarchy latency on top, see the simulator).
OP_LATENCY: Dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 10,
    OpClass.LOAD: 3,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

#: Ops issued to the integer ALUs.
INT_OPS = frozenset({OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV, OpClass.BRANCH})
#: Ops issued to the FP units.
FP_OPS = frozenset({OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV})
#: Ops issued to the memory units.
MEM_OPS = frozenset({OpClass.LOAD, OpClass.STORE})

#: Ops that occupy their FU for the whole latency (not pipelined).
UNPIPELINED_OPS = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})


def fu_class(op: OpClass) -> str:
    """Functional-unit class name ('int', 'fp' or 'mem') for an op."""
    if op in INT_OPS:
        return "int"
    if op in FP_OPS:
        return "fp"
    return "mem"
