"""Trace profiling: the aggregate statistics the analytical model consumes.

The Jongerius-style analytical CPI model (paper ref [8]) works from a
profile of the target benchmark: instruction mix, available ILP as a
function of the instruction window, cache miss-rate curves (from LRU stack
distances) and branch behaviour. This module computes all of those from an
:class:`~repro.workloads.trace.InstructionTrace` once per workload; the
result is cached by the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.workloads.isa import OpClass, OP_LATENCY, INT_OPS, FP_OPS
from repro.workloads.trace import InstructionTrace, NO_DEP

#: Instruction-window sizes at which the ILP lookup table is evaluated;
#: matches the ROB candidate list plus anchor points at both ends.
DEFAULT_ILP_WINDOWS: Tuple[int, ...] = (8, 16, 32, 64, 96, 128, 160, 256)


@dataclass(frozen=True)
class MissRateCurve:
    """Fraction of memory accesses missing in an LRU cache of a given size.

    ``sizes_lines`` is ascending; ``miss_rates`` is the matching
    non-increasing miss ratio (cold misses included). Queries interpolate
    piecewise-linearly in log2(size), which is exactly the "fit linear
    functions that strictly follow the trend of the table" trick the paper
    uses to keep the analytical model differentiable.
    """

    sizes_lines: np.ndarray
    miss_rates: np.ndarray

    def __post_init__(self) -> None:
        if len(self.sizes_lines) != len(self.miss_rates):
            raise ValueError("curve arrays must have matching length")
        if np.any(np.diff(self.sizes_lines) <= 0):
            raise ValueError("sizes must be strictly ascending")

    def rate(self, num_lines: float) -> float:
        """Interpolated miss ratio for a cache of ``num_lines`` lines."""
        x = np.log2(max(float(num_lines), 1.0))
        xs = np.log2(self.sizes_lines.astype(np.float64))
        return float(np.interp(x, xs, self.miss_rates))

    def slope(self, num_lines: float) -> float:
        """d(miss rate)/d(num_lines) of the piecewise-linear fit."""
        x = np.log2(max(float(num_lines), 1.0))
        xs = np.log2(self.sizes_lines.astype(np.float64))
        if x <= xs[0] or x >= xs[-1]:
            return 0.0
        j = int(np.searchsorted(xs, x, side="right"))
        d_dlog = (self.miss_rates[j] - self.miss_rates[j - 1]) / (xs[j] - xs[j - 1])
        # chain rule: dlog2(s)/ds = 1/(s ln 2)
        return float(d_dlog / (float(num_lines) * np.log(2.0)))


@dataclass(frozen=True)
class WorkloadProfile:
    """Aggregate statistics of one workload trace."""

    name: str
    num_instructions: int
    #: Fraction of dynamic instructions per OpClass.
    mix: Dict[OpClass, float]
    #: Ideal IPC at each instruction-window size (infinite FUs & decode).
    ilp_windows: Tuple[int, ...]
    ilp_ipc: Tuple[float, ...]
    #: Miss-rate curve over cache size in lines (shared by L1 and L2 --
    #: the global LRU stack-distance property).
    miss_curve: MissRateCurve
    #: 2-bit-counter branch mispredict ratio (per branch).
    branch_mispredict_rate: float
    #: Distinct cache lines touched.
    footprint_lines: int
    #: Mean memory-level parallelism of the L1 miss stream (bounded burst
    #: size of outstanding misses under an infinite-MSHR window).
    mlp_supply: float

    # ------------------------------------------------------------------
    @property
    def frac_loads(self) -> float:
        """Dynamic fraction of loads."""
        return self.mix[OpClass.LOAD]

    @property
    def frac_stores(self) -> float:
        """Dynamic fraction of stores."""
        return self.mix[OpClass.STORE]

    @property
    def frac_mem(self) -> float:
        """Dynamic fraction of memory ops."""
        return self.frac_loads + self.frac_stores

    @property
    def frac_branches(self) -> float:
        """Dynamic fraction of branches."""
        return self.mix[OpClass.BRANCH]

    @property
    def frac_int(self) -> float:
        """Dynamic fraction issued to integer ALUs (incl. branches)."""
        return sum(self.mix[op] for op in INT_OPS)

    @property
    def frac_fp(self) -> float:
        """Dynamic fraction issued to FP units."""
        return sum(self.mix[op] for op in FP_OPS)

    def ilp_at(self, window: float) -> float:
        """Ideal IPC at instruction-window ``window`` (piecewise-linear)."""
        return float(
            np.interp(float(window), np.array(self.ilp_windows, dtype=np.float64),
                      np.array(self.ilp_ipc, dtype=np.float64))
        )

    def ilp_slope(self, window: float) -> float:
        """d(ideal IPC)/d(window) of the piecewise-linear fit."""
        w = float(window)
        xs = np.array(self.ilp_windows, dtype=np.float64)
        ys = np.array(self.ilp_ipc, dtype=np.float64)
        if w <= xs[0] or w >= xs[-1]:
            return 0.0
        j = int(np.searchsorted(xs, w, side="right"))
        return float((ys[j] - ys[j - 1]) / (xs[j] - xs[j - 1]))


# ----------------------------------------------------------------------
# Profiling passes
# ----------------------------------------------------------------------
def _instruction_mix(trace: InstructionTrace) -> Dict[OpClass, float]:
    counts = trace.op_counts()
    n = float(trace.num_instructions)
    return {cls: counts[cls] / n for cls in OpClass}


def _ideal_ipc_at_windows(
    trace: InstructionTrace, windows: Sequence[int]
) -> Tuple[float, ...]:
    """Ideal-machine list scheduling under a sliding instruction window.

    Models a machine with infinite fetch/FUs but a finite ROB-like window:
    instruction ``i`` may not start before instruction ``i - W`` has
    finished (the window slides by completion order approximated with
    program order, the standard interval-analysis assumption). Memory ops
    use their L1-hit latency: the window ILP table captures *dependency*
    limits; memory penalties are separate analytical terms.
    """
    n = trace.num_instructions
    lat = np.array([OP_LATENCY[OpClass(int(o))] for o in trace.op], dtype=np.int64)
    src_a = trace.src_a
    src_b = trace.src_b
    mem_dep = trace.mem_dep
    out = []
    for window in windows:
        finish = np.zeros(n, dtype=np.int64)
        for i in range(n):
            start = 0
            a = src_a[i]
            if a != NO_DEP and finish[a] > start:
                start = finish[a]
            b = src_b[i]
            if b != NO_DEP and finish[b] > start:
                start = finish[b]
            m = mem_dep[i]
            if m != NO_DEP and finish[m] > start:
                start = finish[m]
            if i >= window:
                w = finish[i - window]
                if w > start:
                    start = w
            finish[i] = start + lat[i]
        cycles = int(finish.max()) if n else 1
        out.append(n / max(cycles, 1))
    return tuple(out)


class _FenwickTree:
    """Binary indexed tree for counting distinct lines (stack distances)."""

    def __init__(self, size: int):
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of entries [0, i]."""
        i += 1
        total = 0
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total


def _stack_distances(line_addrs: np.ndarray) -> np.ndarray:
    """LRU stack distance per access; -1 marks cold misses.

    Classic Fenwick-tree algorithm: O(N log N) over the memory reference
    stream at cache-line granularity.
    """
    n = len(line_addrs)
    dist = np.empty(n, dtype=np.int64)
    tree = _FenwickTree(n)
    last_pos: Dict[int, int] = {}
    for t in range(n):
        line = int(line_addrs[t])
        prev = last_pos.get(line)
        if prev is None:
            dist[t] = -1
        else:
            # distinct lines accessed strictly after prev = stack distance
            dist[t] = tree.prefix(n - 1) - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(t, +1)
        last_pos[line] = t
    return dist


def _miss_curve_from_distances(
    distances: np.ndarray, footprint_lines: int
) -> MissRateCurve:
    """Miss-rate curve from stack distances, sampled at powers of two."""
    n = len(distances)
    max_size = max(int(2 ** np.ceil(np.log2(max(footprint_lines, 2)))), 2)
    sizes = [1]
    while sizes[-1] < max_size:
        sizes.append(sizes[-1] * 2)
    sizes.append(sizes[-1] * 2)  # one size beyond the footprint -> floor
    cold = np.count_nonzero(distances < 0)
    rates = []
    for size in sizes:
        capacity_misses = np.count_nonzero(distances >= size)
        rates.append((cold + capacity_misses) / max(n, 1))
    return MissRateCurve(
        sizes_lines=np.array(sizes, dtype=np.int64),
        miss_rates=np.array(rates, dtype=np.float64),
    )


def _branch_mispredict_rate(taken: np.ndarray) -> float:
    """Mispredict ratio of a 2-bit saturating counter on the outcome stream."""
    if len(taken) == 0:
        return 0.0
    state = 2  # weakly taken
    wrong = 0
    for outcome in taken:
        predict_taken = state >= 2
        if bool(outcome) != predict_taken:
            wrong += 1
        if outcome:
            state = min(state + 1, 3)
        else:
            state = max(state - 1, 0)
    return wrong / len(taken)


def _mlp_supply(trace: InstructionTrace, line_bytes: int = 64) -> float:
    """Average burst size of consecutive distinct-line loads.

    A cheap proxy for memory-level parallelism: the mean number of distinct
    cache lines touched by loads inside non-overlapping 32-instruction
    windows, clipped at 1 from below. It upper-bounds how many MSHRs the
    workload can actually keep busy.
    """
    loads = np.flatnonzero(trace.op == int(OpClass.LOAD))
    if len(loads) == 0:
        return 1.0
    lines = trace.address[loads] // line_bytes
    positions = loads // 32
    bursts: Dict[int, set] = {}
    for pos, line in zip(positions, lines):
        bursts.setdefault(int(pos), set()).add(int(line))
    sizes = [len(s) for s in bursts.values()]
    return float(max(np.mean(sizes), 1.0))


def profile_trace(
    trace: InstructionTrace,
    ilp_windows: Sequence[int] = DEFAULT_ILP_WINDOWS,
    line_bytes: int = 64,
) -> WorkloadProfile:
    """Run all profiling passes over ``trace``."""
    mix = _instruction_mix(trace)
    ilp_ipc = _ideal_ipc_at_windows(trace, ilp_windows)
    line_addrs = trace.line_addresses(line_bytes)
    footprint = int(len(np.unique(line_addrs))) if len(line_addrs) else 1
    distances = _stack_distances(line_addrs)
    miss_curve = _miss_curve_from_distances(distances, footprint)
    branch_taken = trace.taken[trace.op == int(OpClass.BRANCH)]
    return WorkloadProfile(
        name=trace.name,
        num_instructions=trace.num_instructions,
        mix=mix,
        ilp_windows=tuple(int(w) for w in ilp_windows),
        ilp_ipc=ilp_ipc,
        miss_curve=miss_curve,
        branch_mispredict_rate=_branch_mispredict_rate(branch_taken),
        footprint_lines=footprint,
        mlp_supply=_mlp_supply(trace, line_bytes),
    )
