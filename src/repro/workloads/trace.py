"""Instruction traces and the builder API used by the kernel generators.

A trace is stored structure-of-arrays for fast vectorised access by the
simulator and profiler. Data dependencies are recorded as *producer
instruction indices* (classic trace-driven style): each instruction has up
to two register source producers plus an optional memory producer (the last
store to the same address, enabling store-to-load forwarding modelling
without a renamer).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import cached_property
from typing import Dict, List, Optional, Union

import numpy as np

from repro.workloads.isa import OP_LATENCY, OpClass, MEM_OPS, fu_class

#: Sentinel for "no dependency".
NO_DEP = -1

#: Granularity at which memory dependencies are tracked (bytes). Word
#: granularity matches how the kernels address their arrays.
MEM_DEP_GRANULE = 8

#: Instruction-kind codes in :attr:`TraceKernelView.kind`, the dispatch
#: alphabet of the timing kernel (ordered so the common case reads first).
KIND_LOAD, KIND_STORE, KIND_BRANCH, KIND_UNPIPELINED, KIND_SIMPLE = range(5)

#: Functional-unit class codes in :attr:`TraceKernelView.fu` (index into
#: the kernel's ``(int, mem, fp)`` server table).
FU_INT, FU_MEM, FU_FP = range(3)

_N_OPS = len(OpClass)
_KIND_LUT = np.full(_N_OPS, KIND_SIMPLE, dtype=np.int64)
_KIND_LUT[int(OpClass.LOAD)] = KIND_LOAD
_KIND_LUT[int(OpClass.STORE)] = KIND_STORE
_KIND_LUT[int(OpClass.BRANCH)] = KIND_BRANCH
_KIND_LUT[int(OpClass.INT_DIV)] = KIND_UNPIPELINED
_KIND_LUT[int(OpClass.FP_DIV)] = KIND_UNPIPELINED
_FU_LUT = np.array(
    [{"int": FU_INT, "mem": FU_MEM, "fp": FU_FP}[fu_class(cls)] for cls in OpClass],
    dtype=np.int64,
)
_LAT_LUT = np.array([OP_LATENCY[cls] for cls in OpClass], dtype=np.int64)


@dataclass(frozen=True)
class TraceColumns:
    """The per-instruction columns as contiguous int64 arrays.

    This is the memory layout the compiled timing kernel reads through
    the buffer protocol (see ``simulator/_ckernel``): seven parallel
    C-contiguous int64 vectors of trace length. ``src_a``/``src_b``/
    ``mem_dep``/``address`` alias the trace's own arrays (already int64
    and contiguous); ``kind``/``lat``/``fu`` are the LUT gathers the
    kernel view materialises anyway.
    """

    kind: np.ndarray
    lat: np.ndarray
    fu: np.ndarray
    src_a: np.ndarray
    src_b: np.ndarray
    mem_dep: np.ndarray
    address: np.ndarray


@dataclass(frozen=True)
class TraceKernelView:
    """Design-independent unpacking of a trace for the timing kernel.

    Everything here depends only on the trace (never on a design point or
    the machine timing constants), so it is computed once per trace --
    :attr:`InstructionTrace.kernel_view` caches it -- and shared by every
    simulation run over that trace.

    Attributes:
        n: Trace length.
        kind: Per-instruction ``KIND_*`` code (kernel dispatch alphabet).
        lat: Per-instruction execution latency in cycles.
        fu: Per-instruction ``FU_*`` server-table index.
        src_a / src_b / mem_dep: Producer indices as plain lists (fast
            CPython access; ``NO_DEP`` for none).
        address: Byte addresses as a plain list.
        columns: The same seven columns as contiguous int64 arrays (the
            compiled kernel's input layout).
        branch_taken: ``(num_branches,)`` int64 outcomes of the BRANCH
            instructions in program order (feeds the branch pre-pass).
        mem_indices: int64 indices of LOAD/STORE instructions in program
            order (feeds the L1 pre-pass).
        fu_issue_counts: ``{"int": .., "mem": .., "fp": ..}`` -- the FU
            issue histogram is a pure function of the op stream.
    """

    n: int
    kind: List[int]
    lat: List[int]
    fu: List[int]
    src_a: List[int]
    src_b: List[int]
    mem_dep: List[int]
    address: List[int]
    columns: TraceColumns
    branch_taken: np.ndarray
    mem_indices: np.ndarray
    fu_issue_counts: Dict[str, int]


@dataclass(frozen=True)
class InstructionTrace:
    """Immutable structure-of-arrays instruction trace.

    Attributes:
        name: Workload identifier the trace came from.
        op: ``(n,)`` int8 array of :class:`OpClass` values.
        src_a: ``(n,)`` int64 producer index of first source (or ``NO_DEP``).
        src_b: ``(n,)`` int64 producer index of second source (or ``NO_DEP``).
        mem_dep: ``(n,)`` int64 index of the youngest earlier store to the
            same granule for loads (or ``NO_DEP``).
        address: ``(n,)`` int64 byte address for LOAD/STORE, 0 otherwise.
        taken: ``(n,)`` bool, branch outcome for BRANCH ops, False otherwise.
    """

    name: str
    op: np.ndarray
    src_a: np.ndarray
    src_b: np.ndarray
    mem_dep: np.ndarray
    address: np.ndarray
    taken: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.op)
        if n == 0:
            raise ValueError("traces must contain at least one instruction")
        for field_name in ("src_a", "src_b", "mem_dep", "address", "taken"):
            if len(getattr(self, field_name)) != n:
                raise ValueError(f"trace field {field_name} length mismatch")
        # Dependencies must point strictly backwards.
        idx = np.arange(n, dtype=np.int64)
        for field_name in ("src_a", "src_b", "mem_dep"):
            deps = getattr(self, field_name)
            bad = (deps != NO_DEP) & (deps >= idx)
            if np.any(bad):
                raise ValueError(f"{field_name} has forward/self dependencies")

    def __len__(self) -> int:
        return len(self.op)

    @property
    def num_instructions(self) -> int:
        """Trace length in dynamic instructions."""
        return len(self.op)

    @cached_property
    def kernel_view(self) -> TraceKernelView:
        """The design-independent :class:`TraceKernelView` of this trace.

        Computed on first use and cached on the instance (the per-run
        ``.tolist()`` unpacking used to dominate short simulations), so
        thousands of design evaluations over the same trace share one
        unpacking. Dropped on pickling -- see :meth:`__getstate__`.
        """
        op = self.op.astype(np.int64)
        kind = _KIND_LUT[op]
        lat = _LAT_LUT[op]
        fu = _FU_LUT[op]
        hist = np.bincount(fu, minlength=3)

        def col(arr: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(arr, dtype=np.int64)

        return TraceKernelView(
            n=len(op),
            kind=kind.tolist(),
            lat=lat.tolist(),
            fu=fu.tolist(),
            src_a=self.src_a.tolist(),
            src_b=self.src_b.tolist(),
            mem_dep=self.mem_dep.tolist(),
            address=self.address.tolist(),
            columns=TraceColumns(
                kind=col(kind),
                lat=col(lat),
                fu=col(fu),
                src_a=col(self.src_a),
                src_b=col(self.src_b),
                mem_dep=col(self.mem_dep),
                address=col(self.address),
            ),
            branch_taken=self.taken[op == int(OpClass.BRANCH)].astype(np.int64),
            mem_indices=self.memory_indices(),
            fu_issue_counts={
                "int": int(hist[FU_INT]),
                "mem": int(hist[FU_MEM]),
                "fp": int(hist[FU_FP]),
            },
        )

    def __getstate__(self) -> Dict[str, np.ndarray]:
        """Pickle only the declared fields, never cached derivations.

        The kernel view triples the payload and is cheap to rebuild, so
        process-pool workers receive the bare arrays and re-derive it.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: Dict[str, np.ndarray]) -> None:
        self.__dict__.update(state)

    def op_counts(self) -> Dict[OpClass, int]:
        """Dynamic instruction count per op class."""
        counts = np.bincount(self.op, minlength=len(OpClass))
        return {cls: int(counts[cls]) for cls in OpClass}

    def memory_indices(self) -> np.ndarray:
        """Indices of LOAD/STORE instructions, in program order."""
        mem_codes = np.array(sorted(MEM_OPS), dtype=self.op.dtype)
        return np.flatnonzero(np.isin(self.op, mem_codes))

    def line_addresses(self, line_bytes: int = 64) -> np.ndarray:
        """Cache-line addresses of the memory instructions, program order."""
        mem = self.memory_indices()
        return self.address[mem] // line_bytes

    def slice(self, start: int, stop: int) -> "InstructionTrace":
        """A sub-trace with dependencies clipped at the window start.

        Producer indices pointing before ``start`` become ``NO_DEP`` (the
        value is assumed ready), mirroring warm-start trace sampling.
        """
        sl = np.s_[start:stop]

        def clip(deps: np.ndarray) -> np.ndarray:
            out = deps[sl].copy()
            out[out != NO_DEP] -= start
            out[out < 0] = NO_DEP
            return out

        return InstructionTrace(
            name=f"{self.name}[{start}:{stop}]",
            op=self.op[sl].copy(),
            src_a=clip(self.src_a),
            src_b=clip(self.src_b),
            mem_dep=clip(self.mem_dep),
            address=self.address[sl].copy(),
            taken=self.taken[sl].copy(),
        )


#: Values flowing through a generator program are producer indices; Python
#: ints/floats are literals (no producer).
Value = Union[int, "TraceBuilder._Val"]


class TraceBuilder:
    """Mutable builder used by the kernel generators.

    The generators run the real algorithm; every arithmetic/memory/branch
    step calls one ``emit_*`` method, which records the instruction and
    returns a handle representing the produced value. Handles passed as
    operands become data dependencies.
    """

    class _Val(int):
        """A produced value: its int value is the producer index."""

        __slots__ = ()

    def __init__(self, name: str):
        self.name = name
        self._op: List[int] = []
        self._src_a: List[int] = []
        self._src_b: List[int] = []
        self._mem_dep: List[int] = []
        self._address: List[int] = []
        self._taken: List[bool] = []
        self._last_store: Dict[int, int] = {}
        self._heap_top = 0x1000  # bump allocator base

    # ------------------------------------------------------------------
    # Memory layout helpers
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` in the flat address space, return base address."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        base = (self._heap_top + align - 1) // align * align
        self._heap_top = base + nbytes
        return base

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------
    def _dep(self, value: Optional[Value]) -> int:
        if isinstance(value, TraceBuilder._Val):
            return int(value)
        return NO_DEP

    def _emit(
        self,
        op: OpClass,
        a: Optional[Value] = None,
        b: Optional[Value] = None,
        address: int = 0,
        mem_dep: int = NO_DEP,
        taken: bool = False,
    ) -> "TraceBuilder._Val":
        idx = len(self._op)
        self._op.append(int(op))
        self._src_a.append(self._dep(a))
        self._src_b.append(self._dep(b))
        self._mem_dep.append(mem_dep)
        self._address.append(int(address))
        self._taken.append(bool(taken))
        return TraceBuilder._Val(idx)

    def int_op(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """Integer ALU op (add/sub/compare/shift/logic)."""
        return self._emit(OpClass.INT_ALU, a, b)

    def int_mul(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """Integer multiply."""
        return self._emit(OpClass.INT_MUL, a, b)

    def int_div(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """Integer divide."""
        return self._emit(OpClass.INT_DIV, a, b)

    def fp_add(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """FP add/sub/compare."""
        return self._emit(OpClass.FP_ADD, a, b)

    def fp_mul(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """FP multiply."""
        return self._emit(OpClass.FP_MUL, a, b)

    def fp_div(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """FP divide / sqrt."""
        return self._emit(OpClass.FP_DIV, a, b)

    def load(self, address: int, addr_dep: Optional[Value] = None) -> "TraceBuilder._Val":
        """Load from ``address``; ``addr_dep`` is the address computation."""
        granule = int(address) // MEM_DEP_GRANULE
        mem_dep = self._last_store.get(granule, NO_DEP)
        return self._emit(OpClass.LOAD, addr_dep, None, address=address, mem_dep=mem_dep)

    def store(
        self,
        address: int,
        value: Optional[Value] = None,
        addr_dep: Optional[Value] = None,
    ) -> "TraceBuilder._Val":
        """Store ``value`` to ``address``."""
        handle = self._emit(OpClass.STORE, value, addr_dep, address=address)
        self._last_store[int(address) // MEM_DEP_GRANULE] = int(handle)
        return handle

    def branch(self, cond: Optional[Value] = None, taken: bool = True) -> "TraceBuilder._Val":
        """Conditional branch with resolved outcome ``taken``."""
        return self._emit(OpClass.BRANCH, cond, None, taken=taken)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._op)

    def build(self) -> InstructionTrace:
        """Freeze into an immutable :class:`InstructionTrace`."""
        if not self._op:
            raise ValueError("cannot build an empty trace")
        return InstructionTrace(
            name=self.name,
            op=np.array(self._op, dtype=np.int8),
            src_a=np.array(self._src_a, dtype=np.int64),
            src_b=np.array(self._src_b, dtype=np.int64),
            mem_dep=np.array(self._mem_dep, dtype=np.int64),
            address=np.array(self._address, dtype=np.int64),
            taken=np.array(self._taken, dtype=bool),
        )
