"""Instruction traces and the builder API used by the kernel generators.

A trace is stored structure-of-arrays for fast vectorised access by the
simulator and profiler. Data dependencies are recorded as *producer
instruction indices* (classic trace-driven style): each instruction has up
to two register source producers plus an optional memory producer (the last
store to the same address, enabling store-to-load forwarding modelling
without a renamer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.workloads.isa import OpClass, MEM_OPS

#: Sentinel for "no dependency".
NO_DEP = -1

#: Granularity at which memory dependencies are tracked (bytes). Word
#: granularity matches how the kernels address their arrays.
MEM_DEP_GRANULE = 8


@dataclass(frozen=True)
class InstructionTrace:
    """Immutable structure-of-arrays instruction trace.

    Attributes:
        name: Workload identifier the trace came from.
        op: ``(n,)`` int8 array of :class:`OpClass` values.
        src_a: ``(n,)`` int64 producer index of first source (or ``NO_DEP``).
        src_b: ``(n,)`` int64 producer index of second source (or ``NO_DEP``).
        mem_dep: ``(n,)`` int64 index of the youngest earlier store to the
            same granule for loads (or ``NO_DEP``).
        address: ``(n,)`` int64 byte address for LOAD/STORE, 0 otherwise.
        taken: ``(n,)`` bool, branch outcome for BRANCH ops, False otherwise.
    """

    name: str
    op: np.ndarray
    src_a: np.ndarray
    src_b: np.ndarray
    mem_dep: np.ndarray
    address: np.ndarray
    taken: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.op)
        if n == 0:
            raise ValueError("traces must contain at least one instruction")
        for field_name in ("src_a", "src_b", "mem_dep", "address", "taken"):
            if len(getattr(self, field_name)) != n:
                raise ValueError(f"trace field {field_name} length mismatch")
        # Dependencies must point strictly backwards.
        idx = np.arange(n, dtype=np.int64)
        for field_name in ("src_a", "src_b", "mem_dep"):
            deps = getattr(self, field_name)
            bad = (deps != NO_DEP) & (deps >= idx)
            if np.any(bad):
                raise ValueError(f"{field_name} has forward/self dependencies")

    def __len__(self) -> int:
        return len(self.op)

    @property
    def num_instructions(self) -> int:
        """Trace length in dynamic instructions."""
        return len(self.op)

    def op_counts(self) -> Dict[OpClass, int]:
        """Dynamic instruction count per op class."""
        counts = np.bincount(self.op, minlength=len(OpClass))
        return {cls: int(counts[cls]) for cls in OpClass}

    def memory_indices(self) -> np.ndarray:
        """Indices of LOAD/STORE instructions, in program order."""
        mem_codes = np.array(sorted(MEM_OPS), dtype=self.op.dtype)
        return np.flatnonzero(np.isin(self.op, mem_codes))

    def line_addresses(self, line_bytes: int = 64) -> np.ndarray:
        """Cache-line addresses of the memory instructions, program order."""
        mem = self.memory_indices()
        return self.address[mem] // line_bytes

    def slice(self, start: int, stop: int) -> "InstructionTrace":
        """A sub-trace with dependencies clipped at the window start.

        Producer indices pointing before ``start`` become ``NO_DEP`` (the
        value is assumed ready), mirroring warm-start trace sampling.
        """
        sl = np.s_[start:stop]

        def clip(deps: np.ndarray) -> np.ndarray:
            out = deps[sl].copy()
            out[out != NO_DEP] -= start
            out[out < 0] = NO_DEP
            return out

        return InstructionTrace(
            name=f"{self.name}[{start}:{stop}]",
            op=self.op[sl].copy(),
            src_a=clip(self.src_a),
            src_b=clip(self.src_b),
            mem_dep=clip(self.mem_dep),
            address=self.address[sl].copy(),
            taken=self.taken[sl].copy(),
        )


#: Values flowing through a generator program are producer indices; Python
#: ints/floats are literals (no producer).
Value = Union[int, "TraceBuilder._Val"]


class TraceBuilder:
    """Mutable builder used by the kernel generators.

    The generators run the real algorithm; every arithmetic/memory/branch
    step calls one ``emit_*`` method, which records the instruction and
    returns a handle representing the produced value. Handles passed as
    operands become data dependencies.
    """

    class _Val(int):
        """A produced value: its int value is the producer index."""

        __slots__ = ()

    def __init__(self, name: str):
        self.name = name
        self._op: List[int] = []
        self._src_a: List[int] = []
        self._src_b: List[int] = []
        self._mem_dep: List[int] = []
        self._address: List[int] = []
        self._taken: List[bool] = []
        self._last_store: Dict[int, int] = {}
        self._heap_top = 0x1000  # bump allocator base

    # ------------------------------------------------------------------
    # Memory layout helpers
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` in the flat address space, return base address."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        base = (self._heap_top + align - 1) // align * align
        self._heap_top = base + nbytes
        return base

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------
    def _dep(self, value: Optional[Value]) -> int:
        if isinstance(value, TraceBuilder._Val):
            return int(value)
        return NO_DEP

    def _emit(
        self,
        op: OpClass,
        a: Optional[Value] = None,
        b: Optional[Value] = None,
        address: int = 0,
        mem_dep: int = NO_DEP,
        taken: bool = False,
    ) -> "TraceBuilder._Val":
        idx = len(self._op)
        self._op.append(int(op))
        self._src_a.append(self._dep(a))
        self._src_b.append(self._dep(b))
        self._mem_dep.append(mem_dep)
        self._address.append(int(address))
        self._taken.append(bool(taken))
        return TraceBuilder._Val(idx)

    def int_op(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """Integer ALU op (add/sub/compare/shift/logic)."""
        return self._emit(OpClass.INT_ALU, a, b)

    def int_mul(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """Integer multiply."""
        return self._emit(OpClass.INT_MUL, a, b)

    def int_div(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """Integer divide."""
        return self._emit(OpClass.INT_DIV, a, b)

    def fp_add(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """FP add/sub/compare."""
        return self._emit(OpClass.FP_ADD, a, b)

    def fp_mul(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """FP multiply."""
        return self._emit(OpClass.FP_MUL, a, b)

    def fp_div(self, a: Optional[Value] = None, b: Optional[Value] = None) -> "TraceBuilder._Val":
        """FP divide / sqrt."""
        return self._emit(OpClass.FP_DIV, a, b)

    def load(self, address: int, addr_dep: Optional[Value] = None) -> "TraceBuilder._Val":
        """Load from ``address``; ``addr_dep`` is the address computation."""
        granule = int(address) // MEM_DEP_GRANULE
        mem_dep = self._last_store.get(granule, NO_DEP)
        return self._emit(OpClass.LOAD, addr_dep, None, address=address, mem_dep=mem_dep)

    def store(
        self,
        address: int,
        value: Optional[Value] = None,
        addr_dep: Optional[Value] = None,
    ) -> "TraceBuilder._Val":
        """Store ``value`` to ``address``."""
        handle = self._emit(OpClass.STORE, value, addr_dep, address=address)
        self._last_store[int(address) // MEM_DEP_GRANULE] = int(handle)
        return handle

    def branch(self, cond: Optional[Value] = None, taken: bool = True) -> "TraceBuilder._Val":
        """Conditional branch with resolved outcome ``taken``."""
        return self._emit(OpClass.BRANCH, cond, None, taken=taken)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._op)

    def build(self) -> InstructionTrace:
        """Freeze into an immutable :class:`InstructionTrace`."""
        if not self._op:
            raise ValueError("cannot build an empty trace")
        return InstructionTrace(
            name=self.name,
            op=np.array(self._op, dtype=np.int8),
            src_a=np.array(self._src_a, dtype=np.int64),
            src_b=np.array(self._src_b, dtype=np.int64),
            mem_dep=np.array(self._mem_dep, dtype=np.int64),
            address=np.array(self._address, dtype=np.int64),
            taken=np.array(self._taken, dtype=bool),
        )
