"""The benchmark suite: registry, default sizes and caching.

The paper evaluates six kernels and notes it "increase[s] the data sizes of
these benchmarks to different extents to avoid the optimal results being
concentrated on smaller designs". The default sizes below are chosen so the
working sets straddle the L1/L2 capacity choices of the Table-1 space.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.workloads.generators import GENERATORS
from repro.workloads.profiler import WorkloadProfile, profile_trace
from repro.workloads.trace import InstructionTrace

#: Canonical benchmark order used everywhere (matches the paper's Table 2).
BENCHMARK_NAMES: Tuple[str, ...] = (
    "dijkstra",
    "mm",
    "fp-vvadd",
    "quicksort",
    "fft",
    "ss",
)

#: Default problem sizes. Footprints range ~10 KiB (mm) to ~100 KiB
#: (fp-vvadd) so L1 choices (2-64 KiB) and small-L2 choices bind.
DEFAULT_DATA_SIZES: Dict[str, int] = {
    "dijkstra": 384,
    "mm": 22,
    "fp-vvadd": 3072,
    "quicksort": 768,
    "fft": 512,
    "ss": 3072,
}


@dataclass(frozen=True)
class Workload:
    """A benchmark instance: its trace plus its profile.

    Attributes:
        name: Benchmark identifier from :data:`BENCHMARK_NAMES`.
        data_size: Problem-size knob that was used.
        seed: Generator seed.
        trace: The instruction trace (drives the HF simulator).
        profile: Aggregate statistics (drive the analytical model).
    """

    name: str
    data_size: int
    seed: int
    trace: InstructionTrace
    profile: WorkloadProfile

    @property
    def num_instructions(self) -> int:
        """Dynamic instruction count."""
        return self.trace.num_instructions


@lru_cache(maxsize=64)
def _build_workload(name: str, data_size: int, seed: int) -> Workload:
    generator = GENERATORS[name]
    trace = generator(data_size=data_size, seed=seed)
    profile = profile_trace(trace)
    return Workload(
        name=name, data_size=data_size, seed=seed, trace=trace, profile=profile
    )


def get_workload(
    name: str, data_size: Optional[int] = None, seed: int = 0
) -> Workload:
    """Build (or fetch the cached) workload ``name``.

    Args:
        name: One of :data:`BENCHMARK_NAMES`.
        data_size: Problem size; ``None`` selects the calibrated default.
        seed: Generator seed (graph topology, array contents, ...).
    """
    if name not in GENERATORS:
        raise KeyError(f"unknown benchmark {name!r}; known: {BENCHMARK_NAMES}")
    if data_size is None:
        data_size = DEFAULT_DATA_SIZES[name]
    return _build_workload(name, int(data_size), int(seed))


def workload_suite(
    scale: float = 1.0, seed: int = 0
) -> Dict[str, Workload]:
    """All six benchmarks with data sizes scaled by ``scale``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    out = {}
    for name in BENCHMARK_NAMES:
        size = max(int(DEFAULT_DATA_SIZES[name] * scale), 8)
        if name == "fft":  # fft requires a power of two
            size = max(8, 1 << int(round(size - 1).bit_length()))
        out[name] = get_workload(name, data_size=size, seed=seed)
    return out
