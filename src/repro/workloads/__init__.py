"""Benchmark workloads as instruction-trace generators.

The paper evaluates six kernels (dijkstra, mm, fp-vvadd, quicksort, fft,
string search) compiled to RISC-V and run on BOOM RTL. Offline we cannot
compile or simulate RTL, so each kernel is implemented here as the *actual
algorithm* instrumented to emit a RISC-like instruction trace with true data
dependencies and true memory address streams. The trace drives both:

- the high-fidelity cycle-approximate simulator (:mod:`repro.simulator`), and
- the profiler (:mod:`repro.workloads.profiler`), which produces the
  aggregate statistics consumed by the analytical CPI model.
"""

from repro.workloads.isa import OpClass, OP_LATENCY
from repro.workloads.trace import InstructionTrace, TraceBuilder
from repro.workloads.suite import (
    Workload,
    BENCHMARK_NAMES,
    get_workload,
    workload_suite,
)

__all__ = [
    "OpClass",
    "OP_LATENCY",
    "InstructionTrace",
    "TraceBuilder",
    "Workload",
    "BENCHMARK_NAMES",
    "get_workload",
    "workload_suite",
]
