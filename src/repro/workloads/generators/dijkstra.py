"""Dijkstra shortest paths over a random sparse graph.

Characteristics this kernel contributes to the suite: pointer-chasing
(CSR adjacency walks), data-dependent branches (heap sift comparisons),
and a working set dominated by the distance and heap arrays -- an
irregular, latency-sensitive integer workload.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import InstructionTrace, TraceBuilder

_WORD = 8


def generate(data_size: int = 64, seed: int = 0) -> InstructionTrace:
    """Trace Dijkstra from node 0 on a random graph of ``data_size`` nodes.

    Args:
        data_size: Node count; edges average ~4 per node.
        seed: Graph topology/weights seed.
    """
    if data_size < 4:
        raise ValueError("dijkstra needs at least 4 nodes")
    rng = np.random.default_rng(seed)
    n = int(data_size)

    # Random connected-ish sparse graph in CSR form.
    avg_degree = 4
    targets = []
    offsets = [0]
    weights = []
    for u in range(n):
        deg = int(rng.integers(2, 2 * avg_degree))
        nbrs = rng.choice(n, size=min(deg, n - 1), replace=False)
        nbrs = [int(v) for v in nbrs if v != u]
        if u + 1 < n and (u + 1) not in nbrs:
            nbrs.append(u + 1)  # ring edge keeps the graph connected
        targets.extend(nbrs)
        weights.extend(int(w) for w in rng.integers(1, 64, size=len(nbrs)))
        offsets.append(len(targets))

    tb = TraceBuilder("dijkstra")
    a_off = tb.alloc((n + 1) * _WORD)
    a_tgt = tb.alloc(len(targets) * _WORD)
    a_wgt = tb.alloc(len(weights) * _WORD)
    a_dist = tb.alloc(n * _WORD)
    a_heap = tb.alloc(2 * n * _WORD)  # (key, node) pairs, array heap

    INF = 1 << 30
    dist = [INF] * n
    dist[0] = 0

    # init dist[] with stores
    for v in range(n):
        tb.store(a_dist + v * _WORD)

    heap = [(0, 0)]  # (dist, node)
    tb.store(a_heap)
    tb.store(a_heap + _WORD)

    def heap_load(pos: int, field: int):
        return tb.load(a_heap + (2 * pos + field) * _WORD)

    def heap_store(pos: int, field: int, val=None):
        return tb.store(a_heap + (2 * pos + field) * _WORD, val)

    def sift_down(start_size: int) -> None:
        pos = 0
        while True:
            child = 2 * pos + 1
            in_range = child < start_size
            tb.branch(tb.int_op(), taken=in_range)
            if not in_range:
                break
            kc = heap_load(child, 0)
            if child + 1 < start_size:
                kc2 = heap_load(child + 1, 0)
                use_right = heap[child + 1][0] < heap[child][0]
                tb.branch(tb.int_op(kc, kc2), taken=use_right)
                if use_right:
                    child += 1
                    kc = kc2
            kp = heap_load(pos, 0)
            swap = heap[child][0] < heap[pos][0]
            tb.branch(tb.int_op(kp, kc), taken=swap)
            if not swap:
                break
            heap[pos], heap[child] = heap[child], heap[pos]
            vp = heap_load(pos, 1)
            vc = heap_load(child, 1)
            heap_store(pos, 0, kc)
            heap_store(pos, 1, vc)
            heap_store(child, 0, kp)
            heap_store(child, 1, vp)
            pos = child

    def sift_up(pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) // 2
            kp = heap_load(parent, 0)
            kc = heap_load(pos, 0)
            swap = heap[pos][0] < heap[parent][0]
            tb.branch(tb.int_op(kp, kc), taken=swap)
            if not swap:
                break
            heap[pos], heap[parent] = heap[parent], heap[pos]
            vp = heap_load(parent, 1)
            vc = heap_load(pos, 1)
            heap_store(parent, 0, kc)
            heap_store(parent, 1, vc)
            heap_store(pos, 0, kp)
            heap_store(pos, 1, vp)
            pos = parent

    settled = [False] * n
    while heap:
        d_u, u = heap[0]
        ku = heap_load(0, 0)
        nu = heap_load(0, 1)
        last = heap.pop()
        if heap:
            heap[0] = last
            kl = heap_load(len(heap), 0)
            vl = heap_load(len(heap), 1)
            heap_store(0, 0, kl)
            heap_store(0, 1, vl)
            sift_down(len(heap))
        stale = settled[u] or d_u > dist[u]
        dv = tb.load(a_dist + u * _WORD)
        tb.branch(tb.int_op(ku, dv), taken=stale)
        if stale:
            continue
        settled[u] = True
        # walk CSR row
        off0 = tb.load(a_off + u * _WORD)
        off1 = tb.load(a_off + (u + 1) * _WORD)
        for e in range(offsets[u], offsets[u + 1]):
            v = targets[e]
            w = weights[e]
            tv = tb.load(a_tgt + e * _WORD, addr_dep=off0)
            wv = tb.load(a_wgt + e * _WORD, addr_dep=off0)
            nd = tb.int_op(ku, wv)  # dist[u] + w
            old = tb.load(a_dist + v * _WORD, addr_dep=tv)
            relax = d_u + w < dist[v]
            tb.branch(tb.int_op(nd, old), taken=relax)
            if relax:
                dist[v] = d_u + w
                tb.store(a_dist + v * _WORD, nd)
                heap.append((dist[v], v))
                heap_store(len(heap) - 1, 0, nd)
                heap_store(len(heap) - 1, 1)
                sift_up(len(heap) - 1)

    return tb.build()
