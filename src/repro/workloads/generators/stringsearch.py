"""Multi-pattern substring search (the paper's ``ss``).

Characteristics: byte-granular sequential loads over a large text,
frequent early-exit branches (mostly taken mismatch exits), and a tiny
arithmetic footprint -- a frontend/branch-bound workload.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import InstructionTrace, TraceBuilder

_ALPHABET = 8  # small alphabet -> realistic partial-match rate


def generate(data_size: int = 4096, seed: int = 0) -> InstructionTrace:
    """Trace Horspool search of 4 patterns over a ``data_size``-byte text.

    Args:
        data_size: Text length in bytes.
        seed: Text/pattern contents seed.
    """
    if data_size < 64:
        raise ValueError("ss needs text length >= 64")
    rng = np.random.default_rng(seed)
    n = int(data_size)
    text = rng.integers(0, _ALPHABET, size=n).astype(np.int64)
    patterns = [
        [int(c) for c in rng.integers(0, _ALPHABET, size=int(m))]
        for m in (4, 6, 8, 5)
    ]
    # plant each pattern a few times so matches actually occur
    for p, pat in enumerate(patterns):
        for rep in range(3):
            pos = int(rng.integers(0, n - len(pat)))
            text[pos : pos + len(pat)] = pat

    tb = TraceBuilder("ss")
    a_text = tb.alloc(n)
    a_pats = tb.alloc(64)
    a_skip = tb.alloc(_ALPHABET * 8)

    for pat in patterns:
        m = len(pat)
        # build the bad-character skip table
        skip = {c: m for c in range(_ALPHABET)}
        for k in range(m - 1):
            skip[pat[k]] = m - 1 - k
            tb.store(a_skip + pat[k] * 8)
        pos = 0
        while pos + m <= n:
            k = m - 1
            while k >= 0:
                tc = tb.load(a_text + pos + k)
                pc = tb.load(a_pats + k)
                match = int(text[pos + k]) == pat[k]
                tb.branch(tb.int_op(tc, pc), taken=match)
                if not match:
                    break
                k -= 1
            # skip by the bad-character rule on the window's last byte
            last = int(text[pos + m - 1])
            sk = tb.load(a_skip + last * 8)
            pos += skip[last]
            tb.branch(tb.int_op(sk), taken=pos + m <= n)

    return tb.build()
