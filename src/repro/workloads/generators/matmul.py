"""Dense matrix multiplication (the paper's ``mm``).

Characteristics: high FP throughput demand, a long multiply-accumulate
dependency chain per output element, and column-strided B accesses that
stress cache capacity as the matrix grows.
"""

from __future__ import annotations

from repro.workloads.trace import InstructionTrace, TraceBuilder

_WORD = 8


def generate(data_size: int = 16, seed: int = 0) -> InstructionTrace:
    """Trace C = A @ B for square ``data_size`` x ``data_size`` matrices.

    Args:
        data_size: Matrix dimension n; the trace is Theta(n^3).
        seed: Unused (the access pattern is data-independent); kept for a
            uniform generator signature.
    """
    if data_size < 2:
        raise ValueError("mm needs dimension >= 2")
    n = int(data_size)
    tb = TraceBuilder("mm")
    a_base = tb.alloc(n * n * _WORD)
    b_base = tb.alloc(n * n * _WORD)
    c_base = tb.alloc(n * n * _WORD)

    for i in range(n):
        for j in range(n):
            acc = None
            for k in range(n):
                va = tb.load(a_base + (i * n + k) * _WORD)
                vb = tb.load(b_base + (k * n + j) * _WORD)
                prod = tb.fp_mul(va, vb)
                acc = prod if acc is None else tb.fp_add(acc, prod)
            tb.store(c_base + (i * n + j) * _WORD, acc)
            # loop bookkeeping: index increment + bound check branch
            idx = tb.int_op()
            tb.branch(idx, taken=j + 1 < n)

    return tb.build()
