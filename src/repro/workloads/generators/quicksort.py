"""In-place quicksort on a random integer array.

Characteristics: hard-to-predict data-dependent branches (the partition
comparison is ~50/50 on random data), store/load aliasing through swaps,
and log-depth recursion -- a branch-bound integer workload.
"""

from __future__ import annotations


import numpy as np

from repro.workloads.trace import InstructionTrace, TraceBuilder

_WORD = 8


def generate(data_size: int = 512, seed: int = 0) -> InstructionTrace:
    """Trace Hoare-partition quicksort over ``data_size`` random ints.

    Args:
        data_size: Array length; the trace is Theta(n log n) expected.
        seed: Seed for the array contents (drives branch behaviour).
    """
    if data_size < 4:
        raise ValueError("quicksort needs length >= 4")
    rng = np.random.default_rng(seed)
    n = int(data_size)
    data = [int(x) for x in rng.integers(0, 1 << 20, size=n)]

    tb = TraceBuilder("quicksort")
    base = tb.alloc(n * _WORD)

    def addr(i: int) -> int:
        return base + i * _WORD

    # explicit stack avoids Python recursion limits on large sizes
    stack = [(0, n - 1)]
    tb.store(addr(0))  # touch to warm the allocator; negligible
    while stack:
        lo, hi = stack.pop()
        go = lo < hi
        tb.branch(tb.int_op(), taken=go)
        if not go:
            continue
        pivot_val = data[(lo + hi) // 2]
        pv = tb.load(addr((lo + hi) // 2))
        i, j = lo - 1, hi + 1
        while True:
            while True:
                i += 1
                vi = tb.load(addr(i))
                cond = data[i] < pivot_val
                tb.branch(tb.int_op(vi, pv), taken=cond)
                if not cond:
                    break
            while True:
                j -= 1
                vj = tb.load(addr(j))
                cond = data[j] > pivot_val
                tb.branch(tb.int_op(vj, pv), taken=cond)
                if not cond:
                    break
            crossed = i >= j
            tb.branch(tb.int_op(), taken=crossed)
            if crossed:
                break
            data[i], data[j] = data[j], data[i]
            vi = tb.load(addr(i))
            vj = tb.load(addr(j))
            tb.store(addr(i), vj)
            tb.store(addr(j), vi)
        stack.append((lo, j))
        stack.append((j + 1, hi))

    assert data == sorted(data), "quicksort generator produced unsorted data"
    return tb.build()
