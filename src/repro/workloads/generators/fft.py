"""Iterative radix-2 complex FFT.

Characteristics: FP-multiply heavy butterflies, strided accesses whose
stride doubles each stage (cache-hostile at large sizes), twiddle-table
loads, and a fully static control flow (perfectly predictable branches).
"""

from __future__ import annotations

from repro.workloads.trace import InstructionTrace, TraceBuilder

_WORD = 8


def generate(data_size: int = 256, seed: int = 0) -> InstructionTrace:
    """Trace an in-place radix-2 FFT over ``data_size`` complex points.

    Args:
        data_size: Point count; must be a power of two >= 8.
        seed: Unused; kept for a uniform generator signature.
    """
    n = int(data_size)
    if n < 8 or n & (n - 1):
        raise ValueError("fft size must be a power of two >= 8")

    tb = TraceBuilder("fft")
    a_re = tb.alloc(n * _WORD)
    a_im = tb.alloc(n * _WORD)
    a_tw = tb.alloc(n * _WORD)  # interleaved twiddle table (re, im pairs)

    # --- bit-reversal permutation -------------------------------------
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
            tb.branch(tb.int_op(), taken=True)
        j |= bit
        tb.branch(tb.int_op(), taken=False)
        if i < j:
            for arr in (a_re, a_im):
                vi = tb.load(arr + i * _WORD)
                vj = tb.load(arr + j * _WORD)
                tb.store(arr + i * _WORD, vj)
                tb.store(arr + j * _WORD, vi)

    # --- butterfly stages ----------------------------------------------
    length = 2
    while length <= n:
        half = length // 2
        for start in range(0, n, length):
            for k in range(half):
                tw_idx = k * (n // length)
                twr = tb.load(a_tw + (2 * tw_idx) * _WORD)
                twi = tb.load(a_tw + (2 * tw_idx + 1) * _WORD)
                i0 = start + k
                i1 = start + k + half
                xr = tb.load(a_re + i1 * _WORD)
                xi = tb.load(a_im + i1 * _WORD)
                # complex multiply x * tw
                t0 = tb.fp_mul(xr, twr)
                t1 = tb.fp_mul(xi, twi)
                t2 = tb.fp_mul(xr, twi)
                t3 = tb.fp_mul(xi, twr)
                tr = tb.fp_add(t0, t1)
                ti = tb.fp_add(t2, t3)
                ur = tb.load(a_re + i0 * _WORD)
                ui = tb.load(a_im + i0 * _WORD)
                tb.store(a_re + i0 * _WORD, tb.fp_add(ur, tr))
                tb.store(a_im + i0 * _WORD, tb.fp_add(ui, ti))
                tb.store(a_re + i1 * _WORD, tb.fp_add(ur, tr))
                tb.store(a_im + i1 * _WORD, tb.fp_add(ui, ti))
                tb.branch(tb.int_op(), taken=k + 1 < half)
        length <<= 1

    return tb.build()
