"""Kernel trace generators for the paper's six benchmarks.

Each module exposes ``generate(data_size, seed) -> InstructionTrace`` and
runs the *actual algorithm*, emitting one trace instruction per abstract
machine operation. ``data_size`` scales the problem (the paper enlarges the
benchmarks' data sizes "to different extents").
"""

from repro.workloads.generators import (
    dijkstra,
    fft,
    matmul,
    quicksort,
    stringsearch,
    vvadd,
)

GENERATORS = {
    "dijkstra": dijkstra.generate,
    "mm": matmul.generate,
    "fp-vvadd": vvadd.generate,
    "quicksort": quicksort.generate,
    "fft": fft.generate,
    "ss": stringsearch.generate,
}

__all__ = ["GENERATORS", "dijkstra", "matmul", "vvadd", "quicksort", "fft", "stringsearch"]
