"""Floating-point vector addition (the paper's ``fp-vvadd``).

Characteristics: pure streaming -- three address streams, no reuse beyond
the cache line, abundant ILP. Performance is bound by memory bandwidth,
decode width and FP throughput, never by the ROB on small sizes.
"""

from __future__ import annotations

from repro.workloads.trace import InstructionTrace, TraceBuilder

_WORD = 8


def generate(data_size: int = 2048, seed: int = 0) -> InstructionTrace:
    """Trace ``c[i] = a[i] + b[i]`` over ``data_size`` doubles.

    Args:
        data_size: Vector length; the trace is Theta(n).
        seed: Unused; kept for a uniform generator signature.
    """
    if data_size < 8:
        raise ValueError("fp-vvadd needs length >= 8")
    n = int(data_size)
    tb = TraceBuilder("fp-vvadd")
    a_base = tb.alloc(n * _WORD)
    b_base = tb.alloc(n * _WORD)
    c_base = tb.alloc(n * _WORD)

    idx = tb.int_op()
    for i in range(n):
        va = tb.load(a_base + i * _WORD, addr_dep=idx)
        vb = tb.load(b_base + i * _WORD, addr_dep=idx)
        vc = tb.fp_add(va, vb)
        tb.store(c_base + i * _WORD, vc, addr_dep=idx)
        idx = tb.int_op(idx)  # i += 1
        tb.branch(idx, taken=i + 1 < n)

    return tb.build()
