"""Random Forest baseline (Breiman [2], the paper's "classic baseline")."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.driver import SurrogateExplorer
from repro.baselines.trees import RegressionTree


class RandomForest:
    """Bagged ensemble of decorrelated CART trees.

    Args:
        num_trees: Ensemble size.
        max_depth: Per-tree depth bound.
        max_features: Features per split (None = sqrt(d), Breiman's rule).
        rng: Randomness for bootstrap resampling and feature subsets.
        fast_splits: Prefix-sum split scan (the learned tier's
            large-corpus fits; not bit-equal to the default scan).
    """

    def __init__(
        self,
        num_trees: int = 32,
        max_depth: int = 6,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        fast_splits: bool = False,
    ):
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.max_features = max_features
        self.fast_splits = fast_splits
        self._rng = rng or np.random.default_rng(0)
        self._trees: List[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForest":
        """Fit on bootstrap resamples of ``(x, y)``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, d = x.shape
        max_features = self.max_features or max(1, int(np.sqrt(d)))
        self._trees = []
        for __ in range(self.num_trees):
            idx = self._rng.integers(0, n, size=n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                max_features=max_features,
                rng=self._rng,
                fast_splits=self.fast_splits,
            )
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Ensemble-mean prediction."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        return np.mean([t.predict(x) for t in self._trees], axis=0)

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Ensemble disagreement (std over trees) -- a cheap uncertainty."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        return np.std([t.predict(x) for t in self._trees], axis=0)


class RandomForestExplorer(SurrogateExplorer):
    """Fig.-5 'Random Forest': greedy mean-minimisation over the forest."""

    def __init__(self, num_trees: int = 32, num_initial: int = 4, pool_size: int = 2000):
        super().__init__("random-forest", num_initial=num_initial, pool_size=pool_size)
        self.num_trees = num_trees

    def make_surrogate(self, rng: np.random.Generator) -> RandomForest:
        return RandomForest(num_trees=self.num_trees, rng=rng)
