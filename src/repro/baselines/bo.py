"""BOOM-Explorer-style Bayesian optimisation baseline [1].

Bai et al. pair a deep-kernel GP with expected improvement and a
micro-architecture-aware initial sample. Reproduced shape: deep-kernel
feature map -> RBF GP -> EI acquisition, with the initial set stratified
across decode width (their "micro-architecture-aware" axis: designs
cluster by issue width first).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.driver import SurrogateExplorer
from repro.baselines.gp import (
    DeepKernelFeatureMap,
    GaussianProcess,
    expected_improvement,
)
from repro.proxies.pool import ProxyPool


class BoomExplorerBaseline(SurrogateExplorer):
    """Fig.-5 'Boom-Explorer': DKL-GP Bayesian optimisation."""

    def __init__(
        self,
        hidden: int = 32,
        embed_dim: int = 8,
        num_initial: int = 4,
        pool_size: int = 2000,
    ):
        super().__init__("boom-explorer", num_initial=num_initial, pool_size=pool_size)
        self.hidden = hidden
        self.embed_dim = embed_dim

    # ------------------------------------------------------------------
    def make_surrogate(self, rng: np.random.Generator) -> GaussianProcess:
        feature_map = DeepKernelFeatureMap(
            in_dim=11, hidden=self.hidden, out_dim=self.embed_dim, rng=rng
        )
        return GaussianProcess(feature_map=feature_map)

    def acquisition(
        self,
        surrogate: GaussianProcess,
        candidates: np.ndarray,
        best_y: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        mean, std = surrogate.predict(candidates, return_std=True)
        return -expected_improvement(mean, std, best_y)  # driver minimises

    # ------------------------------------------------------------------
    def initial_designs(
        self, pool: ProxyPool, rng: np.random.Generator
    ) -> np.ndarray:
        """Initial designs stratified over decode width (the
        "micro-architecture-aware" initialisation)."""
        space = pool.space
        decode_idx = space.index_of("decode_width")
        strata = np.arange(space.num_levels[decode_idx])
        rows: List[np.ndarray] = []
        guard = 0
        while len(rows) < self.num_initial and guard < 200 * self.num_initial:
            guard += 1
            stratum = strata[len(rows) % len(strata)]
            levels = space.sample(rng)
            levels[decode_idx] = stratum
            if pool.fits(levels):
                rows.append(levels)
        if len(rows) < self.num_initial:  # dense strata may be infeasible
            extra = self._sample_valid(pool, rng, self.num_initial - len(rows))
            rows.extend(list(extra))
        return np.array(rows)
