"""ActBoost baseline: AdaBoost.R2 regression + active learning [10].

Li et al. combine statistical sampling with an AdaBoost regression model
and pick new samples actively. We reproduce the algorithm shape:
AdaBoost.R2 (Drucker's regression variant) as the surrogate, and an
acquisition that trades predicted quality against committee disagreement
(query-by-committee active learning).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.driver import SurrogateExplorer
from repro.baselines.trees import RegressionTree


class AdaBoostR2:
    """Drucker's AdaBoost.R2 with shallow CART trees.

    Args:
        num_estimators: Boosting rounds (early-stops when a round's
            weighted loss reaches 0.5).
        max_depth: Weak-learner depth.
        rng: Randomness for the weighted resampling.
    """

    def __init__(
        self,
        num_estimators: int = 20,
        max_depth: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_estimators < 1:
            raise ValueError("num_estimators must be >= 1")
        self.num_estimators = num_estimators
        self.max_depth = max_depth
        self._rng = rng or np.random.default_rng(0)
        self._trees: List[RegressionTree] = []
        self._betas: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostR2":
        """Fit the boosted ensemble."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        weights = np.full(n, 1.0 / n)
        self._trees = []
        self._betas = []
        for __ in range(self.num_estimators):
            idx = self._rng.choice(n, size=n, replace=True, p=weights)
            tree = RegressionTree(max_depth=self.max_depth, rng=self._rng)
            tree.fit(x[idx], y[idx])
            pred = tree.predict(x)
            err = np.abs(pred - y)
            max_err = err.max()
            if max_err <= 0:
                self._trees.append(tree)
                self._betas.append(1e-10)
                break
            loss = err / max_err  # linear loss
            avg_loss = float((loss * weights).sum())
            if avg_loss >= 0.5:
                if not self._trees:  # keep at least one member
                    self._trees.append(tree)
                    self._betas.append(0.5)
                break
            beta = avg_loss / (1.0 - avg_loss)
            weights = weights * beta ** (1.0 - loss)
            weights /= weights.sum()
            self._trees.append(tree)
            self._betas.append(beta)
        if not self._trees:
            raise RuntimeError("boosting produced no members")
        return self

    def _member_predictions(self, x: np.ndarray) -> np.ndarray:
        return np.array([t.predict(x) for t in self._trees])  # (m, n)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Weighted-median prediction (the AdaBoost.R2 combiner)."""
        preds = self._member_predictions(np.asarray(x, dtype=np.float64))
        log_w = np.log(1.0 / np.maximum(np.array(self._betas), 1e-12))
        out = np.empty(preds.shape[1])
        for j in range(preds.shape[1]):
            order = np.argsort(preds[:, j])
            cum = np.cumsum(log_w[order])
            k = int(np.searchsorted(cum, 0.5 * cum[-1]))
            out[j] = preds[order[min(k, len(order) - 1)], j]
        return out

    def committee_std(self, x: np.ndarray) -> np.ndarray:
        """Member disagreement, the active-learning signal."""
        return np.std(self._member_predictions(np.asarray(x, dtype=np.float64)), axis=0)


class ActBoostExplorer(SurrogateExplorer):
    """Fig.-5 'ActBoost': boosted surrogate + query-by-committee.

    Acquisition alternates exploitation (predicted CPI) with an active
    bonus for committee disagreement, mirroring ActBoost's sampling-
    efficiency mechanism.
    """

    def __init__(
        self,
        num_estimators: int = 20,
        exploration_weight: float = 0.5,
        num_initial: int = 4,
        pool_size: int = 2000,
    ):
        super().__init__("actboost", num_initial=num_initial, pool_size=pool_size)
        self.num_estimators = num_estimators
        self.exploration_weight = exploration_weight

    def make_surrogate(self, rng: np.random.Generator) -> AdaBoostR2:
        return AdaBoostR2(num_estimators=self.num_estimators, rng=rng)

    def acquisition(
        self,
        surrogate: AdaBoostR2,
        candidates: np.ndarray,
        best_y: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        mean = surrogate.predict(candidates)
        disagreement = surrogate.committee_std(candidates)
        return mean - self.exploration_weight * disagreement
