"""Baseline DSE algorithms (paper Sec. 4.2 / Fig. 5), from scratch.

All five comparison methods are implemented on numpy alone:

- :class:`RandomForestExplorer`  -- Random Forest surrogate [2].
- :class:`ActBoostExplorer`      -- AdaBoost.R2 + active learning [10].
- :class:`BagGBRTExplorer`       -- bagging-ensembled GBRT [17].
- :class:`BoomExplorerBaseline`  -- deep-kernel GP Bayesian optimisation
  in the style of BOOM-Explorer [1].
- :class:`ScboExplorer`          -- trust-region scalable constrained BO [3].

Each follows the paper's protocol: a budget of HF simulations, online over
the full 3M-point space, with constraint-violating candidates "directly
assigned a low reward" and never simulated. All of them are
propose/observe steppers driven by the shared
:class:`~repro.search.SearchLoop` (see :mod:`repro.search`), registered
in the method registry alongside the multi-fidelity explorer.
"""

from repro.baselines.driver import BaselineResult, SurrogateExplorer
from repro.baselines.trees import RegressionTree
from repro.baselines.random_forest import RandomForest, RandomForestExplorer
from repro.baselines.adaboost import AdaBoostR2, ActBoostExplorer
from repro.baselines.gbrt import GradientBoostedTrees, BaggedGBRT, BagGBRTExplorer
from repro.baselines.gp import GaussianProcess, DeepKernelFeatureMap
from repro.baselines.bo import BoomExplorerBaseline
from repro.baselines.scbo import ScboExplorer
from repro.baselines.random_search import (
    RandomSearchExplorer,
    SimulatedAnnealingExplorer,
)

#: The paper's Fig.-5 lineup.
ALL_BASELINES = (
    "random-forest",
    "actboost",
    "bag-gbrt",
    "boom-explorer",
    "scbo",
)

#: Extra sanity anchors (not in the paper's figure).
EXTRA_BASELINES = ("random-search", "annealing")


def make_baseline(name: str, **kwargs):
    """Factory: baseline explorer by name (Fig.-5 lineup + extras).

    Thin wrapper over the search-method registry
    (:func:`repro.search.make_method`), kept for its established
    signature and error message.
    """
    from repro.search.registry import make_method

    if name not in ALL_BASELINES + EXTRA_BASELINES:
        raise KeyError(
            f"unknown baseline {name!r}; known: {ALL_BASELINES + EXTRA_BASELINES}"
        )
    return make_method(name, **kwargs)


__all__ = [
    "BaselineResult",
    "SurrogateExplorer",
    "RegressionTree",
    "RandomForest",
    "RandomForestExplorer",
    "AdaBoostR2",
    "ActBoostExplorer",
    "GradientBoostedTrees",
    "BaggedGBRT",
    "BagGBRTExplorer",
    "GaussianProcess",
    "DeepKernelFeatureMap",
    "BoomExplorerBaseline",
    "ScboExplorer",
    "RandomSearchExplorer",
    "SimulatedAnnealingExplorer",
    "ALL_BASELINES",
    "EXTRA_BASELINES",
    "make_baseline",
]
