"""SCBO baseline: Scalable Constrained Bayesian Optimisation [3].

Eriksson & Poloczek's trust-region BO for constrained problems: separate
GPs model the objective and the constraint, candidates are Thompson-
sampled inside a trust region centred on the best feasible point, and the
region expands/shrinks on success/failure streaks.

Protocol note (paper Sec. 4.2): unlike the other baselines, SCBO "requires
the invalid HF results to make inferences", so its candidates are *not*
constraint-filtered -- infeasible picks are simulated, burn budget, and
feed the constraint GP. This is why SCBO underperforms at a 10-simulation
budget in Fig. 5, and the behaviour is reproduced deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.baselines.driver import BaselineResult
from repro.baselines.gp import GaussianProcess
from repro.proxies.interface import Fidelity
from repro.proxies.pool import ProxyPool


@dataclass
class _TrustRegion:
    """TURBO-style trust-region state (edge length in [0,1] level units)."""

    length: float = 0.6
    length_min: float = 0.05
    length_max: float = 1.0
    success_streak: int = 0
    failure_streak: int = 0
    success_tolerance: int = 2
    failure_tolerance: int = 3

    def update(self, improved: bool) -> None:
        """Grow on a success streak, shrink on a failure streak."""
        if improved:
            self.success_streak += 1
            self.failure_streak = 0
            if self.success_streak >= self.success_tolerance:
                self.length = min(2.0 * self.length, self.length_max)
                self.success_streak = 0
        else:
            self.failure_streak += 1
            self.success_streak = 0
            if self.failure_streak >= self.failure_tolerance:
                self.length = max(0.5 * self.length, self.length_min)
                self.failure_streak = 0


class ScboExplorer:
    """Fig.-5 'SCBO'.

    Args:
        num_initial: Unfiltered random designs simulated up front.
        pool_size: Thompson-sampling candidates per iteration.
    """

    name = "scbo"

    def __init__(self, num_initial: int = 4, pool_size: int = 1000):
        if num_initial < 2:
            raise ValueError("need at least 2 initial samples")
        self.num_initial = num_initial
        self.pool_size = pool_size

    # ------------------------------------------------------------------
    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Run SCBO until ``hf_budget`` simulations are spent."""
        space = pool.space
        limit = pool.constraint.limit_mm2
        seen = set()
        levels_list: List[np.ndarray] = []
        xs: List[np.ndarray] = []
        ys: List[float] = []
        cs: List[float] = []  # constraint slack: area - limit (<=0 feasible)
        history: List[float] = []
        region = _TrustRegion()

        def record(levels: np.ndarray, evaluation) -> None:
            key = space.flat_index(levels)
            if key in seen:
                return
            seen.add(key)
            levels_list.append(levels.copy())
            xs.append(space.normalized(levels))
            ys.append(evaluation.cpi)
            cs.append(pool.area(levels) - limit)
            history.append(evaluation.cpi)

        def run(levels: np.ndarray) -> None:
            key = space.flat_index(levels)
            if key in seen:
                return
            record(levels, pool.evaluate_high(levels))  # yes, even invalid ones

        # Unfiltered seed designs, simulated as one (parallelisable)
        # batch. Selection replays the sequential guard: distinct designs
        # only, stopping once the budget is committed.
        initial: List[np.ndarray] = []
        committed = set()
        for levels in space.sample(rng, count=self.num_initial):
            key = space.flat_index(levels)
            if len(committed) >= hf_budget or key in committed:
                continue
            committed.add(key)
            initial.append(levels)
        for levels, evaluation in zip(
            initial, pool.evaluate_many(initial, Fidelity.HIGH)
        ):
            record(levels, evaluation)

        while len(seen) < hf_budget:
            x_arr = np.array(xs)
            feasible = np.array(cs) <= 0
            if feasible.any():
                best_idx = int(np.argmin(np.where(feasible, ys, np.inf)))
            else:  # minimum violation fallback
                best_idx = int(np.argmin(cs))
            center = x_arr[best_idx]

            gp_y = GaussianProcess().fit(x_arr, np.array(ys))
            gp_c = GaussianProcess().fit(x_arr, np.array(cs))

            candidates = self._candidates_in_region(
                space, center, region.length, rng
            )
            cand_norm = np.array([space.normalized(c) for c in candidates])
            mean_y, std_y = gp_y.predict(cand_norm, return_std=True)
            mean_c, std_c = gp_c.predict(cand_norm, return_std=True)
            sample_y = mean_y + std_y * rng.standard_normal(len(candidates))
            sample_c = mean_c + std_c * rng.standard_normal(len(candidates))

            ok = sample_c <= 0
            if ok.any():
                pick = int(np.argmin(np.where(ok, sample_y, np.inf)))
            else:
                pick = int(np.argmin(sample_c))

            best_before = self._best_feasible(ys, cs)
            run(candidates[pick])
            best_after = self._best_feasible(ys, cs)
            region.update(best_after < best_before - 1e-12)

        feasible = np.array(cs) <= 0
        if feasible.any():
            best = int(np.argmin(np.where(feasible, ys, np.inf)))
        else:
            best = int(np.argmin(ys))
        return BaselineResult(
            name=self.name,
            best_levels=levels_list[best],
            best_cpi=ys[best],
            history=history,
            evaluated=levels_list,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _best_feasible(ys: List[float], cs: List[float]) -> float:
        vals = [y for y, c in zip(ys, cs) if c <= 0]
        return min(vals) if vals else np.inf

    def _candidates_in_region(
        self,
        space,
        center_norm: np.ndarray,
        length: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Integer level vectors uniform in the trust-region box."""
        max_levels = space.max_levels.astype(np.float64)
        center = center_norm * max_levels
        half = 0.5 * length * max_levels
        lo = np.maximum(np.ceil(center - half), 0).astype(np.int64)
        hi = np.minimum(np.floor(center + half), max_levels).astype(np.int64)
        hi = np.maximum(hi, lo)
        return rng.integers(lo, hi + 1, size=(self.pool_size, space.num_parameters))
