"""SCBO baseline: Scalable Constrained Bayesian Optimisation [3].

Eriksson & Poloczek's trust-region BO for constrained problems: separate
GPs model the objective and the constraint, candidates are Thompson-
sampled inside a trust region centred on the best feasible point, and the
region expands/shrinks on success/failure streaks.

Protocol note (paper Sec. 4.2): unlike the other baselines, SCBO "requires
the invalid HF results to make inferences", so its candidates are *not*
constraint-filtered -- the method opts out of the search loop's area
filter (``filter_invalid = False``), infeasible picks are simulated, burn
budget, and feed the constraint GP. This is why SCBO underperforms at a
10-simulation budget in Fig. 5, and the behaviour is reproduced
deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.baselines.driver import BaselineResult
from repro.baselines.gp import GaussianProcess
from repro.proxies.pool import ProxyPool
from repro.search.base import (
    Observation,
    SearchMethod,
    rng_state_from_json,
    rng_state_to_json,
)


@dataclass
class _TrustRegion:
    """TURBO-style trust-region state (edge length in [0,1] level units)."""

    length: float = 0.6
    length_min: float = 0.05
    length_max: float = 1.0
    success_streak: int = 0
    failure_streak: int = 0
    success_tolerance: int = 2
    failure_tolerance: int = 3

    def update(self, improved: bool) -> None:
        """Grow on a success streak, shrink on a failure streak."""
        if improved:
            self.success_streak += 1
            self.failure_streak = 0
            if self.success_streak >= self.success_tolerance:
                self.length = min(2.0 * self.length, self.length_max)
                self.success_streak = 0
        else:
            self.failure_streak += 1
            self.success_streak = 0
            if self.failure_streak >= self.failure_tolerance:
                self.length = max(0.5 * self.length, self.length_min)
                self.failure_streak = 0


class ScboExplorer(SearchMethod):
    """Fig.-5 'SCBO'.

    Args:
        num_initial: Unfiltered random designs simulated up front.
        pool_size: Thompson-sampling candidates per step.
    """

    name = "scbo"
    filter_invalid = False  # infeasible designs are simulated on purpose

    def __init__(self, num_initial: int = 4, pool_size: int = 1000):
        super().__init__()
        if num_initial < 2:
            raise ValueError("need at least 2 initial samples")
        self.num_initial = num_initial
        self.pool_size = pool_size

    # ------------------------------------------------------------------
    # Stepper protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._seeded = False
        self._seed_pending = False
        self._seen: set = set()
        self._levels: List[np.ndarray] = []
        self._xs: List[np.ndarray] = []
        self._ys: List[float] = []
        self._cs: List[float] = []  # constraint slack: area - limit (<=0 ok)
        self._region = _TrustRegion()

    def propose(self, k: int) -> List[np.ndarray]:
        space = self.pool.space
        if not self._seeded:
            # Unfiltered seed designs, proposed as one (parallelisable)
            # batch: distinct designs only, stopping once the budget is
            # committed.
            self._seeded = True
            self._seed_pending = True
            initial: List[np.ndarray] = []
            committed: set = set()
            for levels in space.sample(self.rng, count=self.num_initial):
                key = space.flat_index(levels)
                if len(committed) >= self.budget or key in committed:
                    continue
                committed.add(key)
                initial.append(levels)
            return initial

        x_arr = np.array(self._xs)
        feasible = np.array(self._cs) <= 0
        if feasible.any():
            best_idx = int(np.argmin(np.where(feasible, self._ys, np.inf)))
        else:  # minimum violation fallback
            best_idx = int(np.argmin(self._cs))
        center = x_arr[best_idx]

        gp_y = GaussianProcess().fit(x_arr, np.array(self._ys))
        gp_c = GaussianProcess().fit(x_arr, np.array(self._cs))

        candidates = self._candidates_in_region(
            space, center, self._region.length, self.rng
        )
        cand_norm = np.array([space.normalized(c) for c in candidates])
        mean_y, std_y = gp_y.predict(cand_norm, return_std=True)
        mean_c, std_c = gp_c.predict(cand_norm, return_std=True)
        sample_y = mean_y + std_y * self.rng.standard_normal(len(candidates))
        sample_c = mean_c + std_c * self.rng.standard_normal(len(candidates))

        ok = sample_c <= 0
        if k <= 1:
            if ok.any():
                pick = int(np.argmin(np.where(ok, sample_y, np.inf)))
            else:
                pick = int(np.argmin(sample_c))
            return [candidates[pick]]
        # Batched mode: rank feasible-sampled candidates by objective
        # sample first, then infeasible ones by least violation.
        rank = np.where(ok, sample_y, np.inf)
        order = np.argsort(rank, kind="stable")
        if not ok.all():
            infeasible_order = np.argsort(
                np.where(ok, np.inf, sample_c), kind="stable"
            )
            order = np.concatenate([order[ok[order]], infeasible_order[~ok[infeasible_order]]])
        return [candidates[int(i)] for i in order[:k]]

    def observe(self, observations: Sequence[Observation]) -> None:
        seed_batch = self._seed_pending
        self._seed_pending = False
        for obs in observations:
            best_before = self._best_feasible(self._ys, self._cs)
            if obs.fresh:
                self._record(obs)
            if not seed_batch:
                best_after = self._best_feasible(self._ys, self._cs)
                self._region.update(best_after < best_before - 1e-12)

    def _record(self, obs: Observation) -> None:
        space = self.pool.space
        self._seen.add(space.flat_index(obs.levels))
        self._levels.append(obs.levels.copy())
        self._xs.append(space.normalized(obs.levels))
        self._ys.append(float(obs.evaluation.cpi))
        self._cs.append(
            float(self.pool.area(obs.levels) - self.pool.constraint.limit_mm2)
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "seeded": self._seeded,
            "levels": [[int(v) for v in row] for row in self._levels],
            "ys": list(self._ys),
            "cs": list(self._cs),
            "region": {
                "length": self._region.length,
                "success_streak": self._region.success_streak,
                "failure_streak": self._region.failure_streak,
            },
            "rng": rng_state_to_json(self.rng),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        space = self.pool.space
        self._seeded = bool(state["seeded"])
        self._seed_pending = False
        self._levels = [
            np.asarray(row, dtype=np.int64) for row in state["levels"]
        ]
        self._seen = set(space.flat_index(levels) for levels in self._levels)
        self._xs = [space.normalized(levels) for levels in self._levels]
        self._ys = [float(v) for v in state["ys"]]
        self._cs = [float(v) for v in state["cs"]]
        self._region = _TrustRegion(
            length=float(state["region"]["length"]),
            success_streak=int(state["region"]["success_streak"]),
            failure_streak=int(state["region"]["failure_streak"]),
        )
        rng_state_from_json(self.rng, state["rng"])

    # ------------------------------------------------------------------
    # Result assembly (best *feasible* design, unlike the default)
    # ------------------------------------------------------------------
    def result(self, loop) -> BaselineResult:
        feasible = np.array(self._cs) <= 0
        if feasible.any():
            best = int(np.argmin(np.where(feasible, self._ys, np.inf)))
        else:
            best = int(np.argmin(self._ys))
        return BaselineResult(
            name=self.name,
            best_levels=self._levels[best],
            best_cpi=self._ys[best],
            history=list(loop.history),
            evaluated=list(loop.evaluated),
        )

    # ------------------------------------------------------------------
    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Run SCBO until ``hf_budget`` simulations are spent."""
        from repro.search.loop import SearchLoop

        return SearchLoop(pool, self, hf_budget, rng=rng).run()

    # ------------------------------------------------------------------
    @staticmethod
    def _best_feasible(ys: List[float], cs: List[float]) -> float:
        vals = [y for y, c in zip(ys, cs) if c <= 0]
        return min(vals) if vals else np.inf

    def _candidates_in_region(
        self,
        space,
        center_norm: np.ndarray,
        length: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Integer level vectors uniform in the trust-region box."""
        max_levels = space.max_levels.astype(np.float64)
        center = center_norm * max_levels
        half = 0.5 * length * max_levels
        lo = np.maximum(np.ceil(center - half), 0).astype(np.int64)
        hi = np.minimum(np.floor(center + half), max_levels).astype(np.int64)
        hi = np.maximum(hi, lo)
        return rng.integers(lo, hi + 1, size=(self.pool_size, space.num_parameters))
