"""Shared surrogate-based DSE stepper (the method all Fig.-5 baselines run).

Protocol (paper Sec. 4.2): each baseline gets a budget of HF simulations
over the full online design space. Candidates that violate the area
constraint are "directly assigned a low reward and do not go through
simulation" -- here they are simply filtered from the candidate pool
before the surrogate ever sees them, which is equivalent and wastes no
budget.

The method: HF-evaluate a random valid seed set (the first proposal
batch), then each step fits the surrogate, scores a fresh random valid
candidate pool with the baseline's acquisition function, and proposes
the best unseen candidates. The budgeted loop itself -- dispatch,
dedup, budget, checkpointing -- lives in
:class:`~repro.search.loop.SearchLoop`; :meth:`SurrogateExplorer.explore`
is a thin compatibility wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Protocol, Sequence

import numpy as np

from repro.proxies.pool import ProxyPool
from repro.search.base import (
    Observation,
    SearchMethod,
    SearchStall,
    rng_state_from_json,
    rng_state_to_json,
)


@dataclass
class BaselineResult:
    """Outcome of one baseline run.

    Attributes:
        name: Baseline identifier.
        best_levels: Best design found (level vector).
        best_cpi: Its HF CPI.
        history: HF CPI per simulation, in evaluation order.
        evaluated: Every simulated level vector, in order.
    """

    name: str
    best_levels: np.ndarray
    best_cpi: float
    history: List[float]
    evaluated: List[np.ndarray]


class Surrogate(Protocol):
    """Model interface the method needs: fit, then score candidates."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Surrogate": ...

    def predict(self, x: np.ndarray) -> np.ndarray: ...


class SurrogateExplorer(SearchMethod):
    """Generic surrogate-guided stepper; baselines specialise the hooks.

    Subclasses override :meth:`make_surrogate` and, optionally,
    :meth:`acquisition` (default: greedy on the predicted mean -- pick
    the candidate with the lowest predicted CPI).

    Args:
        name: Fig.-5 label.
        num_initial: Random valid designs simulated before modelling.
        pool_size: Candidate pool size per step.
    """

    #: Stalled-step retries: each retry doubles the candidate pool; once
    #: exhausted the method raises instead of spinning (the legacy
    #: ``continue`` could loop forever when every candidate was seen).
    MAX_STALL_RETRIES = 8

    def __init__(self, name: str, num_initial: int = 4, pool_size: int = 2000):
        super().__init__()
        if num_initial < 2:
            raise ValueError("need at least 2 initial samples to fit anything")
        self.name = name
        self.num_initial = num_initial
        self.pool_size = pool_size

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def make_surrogate(self, rng: np.random.Generator) -> Surrogate:
        """Build a fresh surrogate model (called every step)."""
        raise NotImplementedError

    def acquisition(
        self,
        surrogate: Surrogate,
        candidates: np.ndarray,
        best_y: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Scores to *minimise* over candidates; default: predicted CPI."""
        return surrogate.predict(candidates)

    def initial_designs(
        self, pool: ProxyPool, rng: np.random.Generator
    ) -> np.ndarray:
        """Seed designs to simulate before modelling; default: random valid."""
        return self._sample_valid(pool, rng, self.num_initial)

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _sample_valid(
        pool: ProxyPool, rng: np.random.Generator, count: int, max_tries: int = 50
    ) -> np.ndarray:
        """Uniform random *valid* level vectors (constraint-filtered).

        The constraint check runs batched over each sampled block
        (:meth:`ProxyPool.fits_many`), not per design; selection order
        matches the old scalar loop exactly.
        """
        space = pool.space
        rows: List[np.ndarray] = []
        for __ in range(max_tries):
            batch = space.sample(rng, count=4 * count)
            valid = batch[pool.fits_many(batch)]
            take = min(count - len(rows), len(valid))
            rows.extend(valid[:take])
            if len(rows) == count:
                return np.array(rows)
        if not rows:
            raise RuntimeError("could not sample any valid design")
        return np.array(rows)

    # ------------------------------------------------------------------
    # Stepper protocol
    # ------------------------------------------------------------------
    def check_budget(self, hf_budget: int) -> None:
        if hf_budget < self.num_initial + 1:
            raise ValueError("budget must exceed the initial sample count")

    def reset(self) -> None:
        self._seeded = False
        self._seen: set = set()
        self._xs: List[np.ndarray] = []
        self._ys: List[float] = []

    def propose(self, k: int) -> List[np.ndarray]:
        if not self._seeded:
            self._seeded = True
            return list(self.initial_designs(self.pool, self.rng))
        space = self.pool.space
        for attempt in range(self.MAX_STALL_RETRIES):
            surrogate = self.make_surrogate(self.rng)
            surrogate.fit(np.array(self._xs), np.array(self._ys))
            candidates = self._sample_valid(
                self.pool, self.rng, self.pool_size * (2 ** attempt)
            )
            keys = [space.flat_index(c) for c in candidates]
            fresh = np.array([key not in self._seen for key in keys])
            if not fresh.any():
                continue  # widen the pool and retry
            candidates = candidates[fresh]
            scores = self.acquisition(
                surrogate,
                np.array([space.normalized(c) for c in candidates]),
                best_y=min(self._ys),
                rng=self.rng,
            )
            if k <= 1:
                return [candidates[int(np.argmin(scores))]]
            order = np.argsort(scores, kind="stable")[:k]
            return [candidates[int(i)] for i in order]
        raise SearchStall(
            f"{self.name}: no unseen valid candidate in "
            f"{self.MAX_STALL_RETRIES} pools (last size "
            f"{self.pool_size * 2 ** (self.MAX_STALL_RETRIES - 1)})"
        )

    def observe(self, observations: Sequence[Observation]) -> None:
        space = self.pool.space
        for obs in observations:
            if not obs.fresh:
                continue
            self._seen.add(space.flat_index(obs.levels))
            self._xs.append(space.normalized(obs.levels))
            self._ys.append(float(obs.evaluation.cpi))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "seeded": self._seeded,
            "xs": [[float(v) for v in row] for row in self._xs],
            "ys": list(self._ys),
            "seen": sorted(self._seen),
            "rng": rng_state_to_json(self.rng),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._seeded = bool(state["seeded"])
        self._xs = [np.asarray(row, dtype=np.float64) for row in state["xs"]]
        self._ys = [float(v) for v in state["ys"]]
        self._seen = set(int(v) for v in state["seen"])
        rng_state_from_json(self.rng, state["rng"])

    # ------------------------------------------------------------------
    # Legacy entry point
    # ------------------------------------------------------------------
    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Run the DSE loop until ``hf_budget`` simulations are spent."""
        from repro.search.loop import SearchLoop

        return SearchLoop(pool, self, hf_budget, rng=rng).run()
