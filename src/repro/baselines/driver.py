"""Shared surrogate-based DSE driver (the loop all Fig.-5 baselines run).

Protocol (paper Sec. 4.2): each baseline gets a budget of HF simulations
over the full online design space. Candidates that violate the area
constraint are "directly assigned a low reward and do not go through
simulation" -- here the driver simply filters them from the candidate
pool before the surrogate ever sees them, which is equivalent and wastes
no budget.

The loop: HF-evaluate a random valid seed set, then repeatedly fit the
surrogate, score a fresh random valid candidate pool with the baseline's
acquisition function, and simulate the best unseen candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

import numpy as np

from repro.proxies.interface import Fidelity
from repro.proxies.pool import ProxyPool


@dataclass
class BaselineResult:
    """Outcome of one baseline run.

    Attributes:
        name: Baseline identifier.
        best_levels: Best design found (level vector).
        best_cpi: Its HF CPI.
        history: HF CPI per simulation, in evaluation order.
        evaluated: Every simulated level vector, in order.
    """

    name: str
    best_levels: np.ndarray
    best_cpi: float
    history: List[float]
    evaluated: List[np.ndarray]


class Surrogate(Protocol):
    """Model interface the driver needs: fit, then score candidates."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Surrogate": ...

    def predict(self, x: np.ndarray) -> np.ndarray: ...


class SurrogateExplorer:
    """Generic surrogate-guided explorer; baselines specialise the hooks.

    Subclasses override :meth:`make_surrogate` and, optionally,
    :meth:`acquisition` (default: greedy on the predicted mean -- pick
    the candidate with the lowest predicted CPI).

    Args:
        name: Fig.-5 label.
        num_initial: Random valid designs simulated before modelling.
        pool_size: Candidate pool size per iteration.
    """

    def __init__(self, name: str, num_initial: int = 4, pool_size: int = 2000):
        if num_initial < 2:
            raise ValueError("need at least 2 initial samples to fit anything")
        self.name = name
        self.num_initial = num_initial
        self.pool_size = pool_size

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def make_surrogate(self, rng: np.random.Generator) -> Surrogate:
        """Build a fresh surrogate model (called every iteration)."""
        raise NotImplementedError

    def acquisition(
        self,
        surrogate: Surrogate,
        candidates: np.ndarray,
        best_y: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Scores to *minimise* over candidates; default: predicted CPI."""
        return surrogate.predict(candidates)

    def initial_designs(
        self, pool: ProxyPool, rng: np.random.Generator
    ) -> np.ndarray:
        """Seed designs to simulate before modelling; default: random valid."""
        return self._sample_valid(pool, rng, self.num_initial)

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _sample_valid(
        pool: ProxyPool, rng: np.random.Generator, count: int, max_tries: int = 50
    ) -> np.ndarray:
        """Uniform random *valid* level vectors (constraint-filtered)."""
        space = pool.space
        rows: List[np.ndarray] = []
        for __ in range(max_tries):
            batch = space.sample(rng, count=4 * count)
            for levels in batch:
                if pool.fits(levels):
                    rows.append(levels)
                    if len(rows) == count:
                        return np.array(rows)
        if not rows:
            raise RuntimeError("could not sample any valid design")
        return np.array(rows)

    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Run the DSE loop until ``hf_budget`` simulations are spent."""
        if hf_budget < self.num_initial + 1:
            raise ValueError("budget must exceed the initial sample count")
        space = pool.space
        seen = set()
        xs: List[np.ndarray] = []
        ys: List[float] = []
        history: List[float] = []
        evaluated: List[np.ndarray] = []

        def record(levels: np.ndarray, evaluation) -> None:
            key = space.flat_index(levels)
            if key not in seen:
                seen.add(key)
                xs.append(space.normalized(levels))
                ys.append(evaluation.cpi)
                history.append(evaluation.cpi)
                evaluated.append(levels.copy())

        def run(levels: np.ndarray) -> None:
            record(levels, pool.evaluate_high(levels))

        # The seed set is independent designs: one batched dispatch, so a
        # parallel backend simulates them concurrently. (The budget guard
        # is vacuous here -- num_initial < hf_budget is enforced above.)
        initial = list(self.initial_designs(pool, rng))
        for levels, evaluation in zip(
            initial, pool.evaluate_many(initial, Fidelity.HIGH)
        ):
            if len(seen) < hf_budget:
                record(levels, evaluation)

        while len(seen) < hf_budget:
            surrogate = self.make_surrogate(rng)
            surrogate.fit(np.array(xs), np.array(ys))
            candidates = self._sample_valid(pool, rng, self.pool_size)
            keys = [space.flat_index(c) for c in candidates]
            fresh = np.array([k not in seen for k in keys])
            if not fresh.any():
                continue
            candidates = candidates[fresh]
            scores = self.acquisition(
                surrogate,
                np.array([space.normalized(c) for c in candidates]),
                best_y=min(ys),
                rng=rng,
            )
            run(candidates[int(np.argmin(scores))])

        best = int(np.argmin(ys))
        return BaselineResult(
            name=self.name,
            best_levels=evaluated[best],
            best_cpi=ys[best],
            history=history,
            evaluated=evaluated,
        )
