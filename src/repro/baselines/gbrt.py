"""BagGBRT baseline: bagging-ensembled gradient-boosted trees [17].

Wang et al. use bagging-based GBRT as the regression model of their
ensemble DSE framework. Here: squared-loss gradient boosting with shallow
CART trees, wrapped in a bagging ensemble whose spread doubles as the
uncertainty estimate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.driver import SurrogateExplorer
from repro.baselines.trees import RegressionTree


class GradientBoostedTrees:
    """Squared-loss GBRT.

    Args:
        num_estimators: Boosting stages.
        learning_rate: Shrinkage per stage.
        max_depth: Weak-learner depth.
        subsample: Row-sampling fraction per stage (stochastic GB).
        rng: Randomness for subsampling.
        fast_splits: Prefix-sum split scan for the weak learners (the
            learned tier's large-corpus fits; not bit-equal to default).
    """

    def __init__(
        self,
        num_estimators: int = 30,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        subsample: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        fast_splits: bool = False,
    ):
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.num_estimators = num_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.fast_splits = fast_splits
        self._rng = rng or np.random.default_rng(0)
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        """Fit stage-wise on residuals."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        self._base = float(y.mean())
        residual = y - self._base
        self._trees = []
        for __ in range(self.num_estimators):
            if self.subsample < 1.0 and n > 2:
                size = max(2, int(round(self.subsample * n)))
                idx = self._rng.choice(n, size=size, replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                rng=self._rng,
                fast_splits=self.fast_splits,
            )
            tree.fit(x[idx], residual[idx])
            update = tree.predict(x)
            residual -= self.learning_rate * update
            self._trees.append(tree)
            if np.abs(residual).max() < 1e-12:
                break
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Staged additive prediction."""
        x = np.asarray(x, dtype=np.float64)
        out = np.full(len(x) if x.ndim == 2 else 1, self._base)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(x)
        return out


class BaggedGBRT:
    """Bagging ensemble of GBRT models (the BagGBRT surrogate)."""

    def __init__(
        self,
        num_bags: int = 8,
        num_estimators: int = 30,
        rng: Optional[np.random.Generator] = None,
        fast_splits: bool = False,
        max_depth: int = 3,
    ):
        if num_bags < 1:
            raise ValueError("num_bags must be >= 1")
        self.num_bags = num_bags
        self.num_estimators = num_estimators
        self.fast_splits = fast_splits
        self.max_depth = max_depth
        self._rng = rng or np.random.default_rng(0)
        self._models: List[GradientBoostedTrees] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BaggedGBRT":
        """Fit each bag on a bootstrap resample."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        self._models = []
        for __ in range(self.num_bags):
            idx = self._rng.integers(0, n, size=n)
            model = GradientBoostedTrees(
                num_estimators=self.num_estimators,
                max_depth=self.max_depth,
                rng=self._rng,
                fast_splits=self.fast_splits,
            )
            model.fit(x[idx], y[idx])
            self._models.append(model)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Bag-mean prediction."""
        if not self._models:
            raise RuntimeError("ensemble is not fitted")
        return np.mean([m.predict(x) for m in self._models], axis=0)

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Bag disagreement (uncertainty proxy)."""
        if not self._models:
            raise RuntimeError("ensemble is not fitted")
        return np.std([m.predict(x) for m in self._models], axis=0)


class BagGBRTExplorer(SurrogateExplorer):
    """Fig.-5 'BagGBRT': lower-confidence-bound over the bagged ensemble."""

    def __init__(
        self,
        num_bags: int = 8,
        kappa: float = 1.0,
        num_initial: int = 4,
        pool_size: int = 2000,
    ):
        super().__init__("bag-gbrt", num_initial=num_initial, pool_size=pool_size)
        self.num_bags = num_bags
        self.kappa = kappa

    def make_surrogate(self, rng: np.random.Generator) -> BaggedGBRT:
        return BaggedGBRT(num_bags=self.num_bags, rng=rng)

    def acquisition(
        self,
        surrogate: BaggedGBRT,
        candidates: np.ndarray,
        best_y: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return surrogate.predict(candidates) - self.kappa * surrogate.predict_std(candidates)
