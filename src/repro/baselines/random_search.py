"""Reference searchers: uniform random search and simulated annealing.

Not part of the paper's Fig.-5 lineup, but standard sanity anchors for
any DSE study: a surrogate method that cannot beat random search at the
same budget is not learning anything, and annealing bounds what pure
local search achieves.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.driver import BaselineResult
from repro.proxies.pool import ProxyPool


class RandomSearchExplorer:
    """Uniform random valid designs, best-of-budget."""

    name = "random-search"

    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Simulate ``hf_budget`` distinct random valid designs."""
        if hf_budget < 1:
            raise ValueError("budget must be >= 1")
        space = pool.space
        seen = set()
        history: List[float] = []
        evaluated: List[np.ndarray] = []
        guard = 0
        while len(seen) < hf_budget and guard < 1000 * hf_budget:
            guard += 1
            levels = space.sample(rng)
            key = space.flat_index(levels)
            if key in seen or not pool.fits(levels):
                continue
            seen.add(key)
            history.append(pool.evaluate_high(levels).cpi)
            evaluated.append(levels)
        best = int(np.argmin(history))
        return BaselineResult(
            name=self.name,
            best_levels=evaluated[best],
            best_cpi=history[best],
            history=history,
            evaluated=evaluated,
        )


class SimulatedAnnealingExplorer:
    """Metropolis annealing over Hamming-1 moves on valid designs.

    Args:
        initial_temperature: Starting acceptance temperature (CPI units).
        cooling: Geometric cooling factor per simulation.
    """

    name = "annealing"

    def __init__(self, initial_temperature: float = 0.3, cooling: float = 0.75):
        if initial_temperature <= 0:
            raise ValueError("temperature must be positive")
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Anneal from a random valid start until the budget is spent."""
        if hf_budget < 2:
            raise ValueError("annealing needs a budget of at least 2")
        space = pool.space
        # random valid start
        current = None
        for __ in range(1000):
            levels = space.sample(rng)
            if pool.fits(levels):
                current = levels
                break
        if current is None:
            raise RuntimeError("could not find a valid starting design")

        history: List[float] = []
        evaluated: List[np.ndarray] = []
        seen = set()

        def run(levels):
            key = space.flat_index(levels)
            cpi = pool.evaluate_high(levels).cpi
            if key not in seen:
                seen.add(key)
                history.append(cpi)
                evaluated.append(levels.copy())
            return cpi

        current_cpi = run(current)
        temperature = self.initial_temperature
        guard = 0
        while len(seen) < hf_budget and guard < 100 * hf_budget:
            guard += 1
            neighbors = [n for n in space.neighbors(current) if pool.fits(n)]
            if not neighbors:
                break
            candidate = neighbors[int(rng.integers(len(neighbors)))]
            cand_cpi = run(candidate)
            delta = cand_cpi - current_cpi
            if delta <= 0 or rng.random() < np.exp(-delta / temperature):
                current, current_cpi = candidate, cand_cpi
            temperature = max(temperature * self.cooling, 1e-4)

        best = int(np.argmin(history))
        return BaselineResult(
            name=self.name,
            best_levels=evaluated[best],
            best_cpi=history[best],
            history=history,
            evaluated=evaluated,
        )
