"""Reference searchers: uniform random search and simulated annealing.

Not part of the paper's Fig.-5 lineup, but standard sanity anchors for
any DSE study: a surrogate method that cannot beat random search at the
same budget is not learning anything, and annealing bounds what pure
local search achieves. Both are steppers driven by the shared
:class:`~repro.search.loop.SearchLoop`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.baselines.driver import BaselineResult
from repro.proxies.pool import ProxyPool
from repro.search.base import (
    Observation,
    SearchMethod,
    rng_state_from_json,
    rng_state_to_json,
)


class RandomSearchExplorer(SearchMethod):
    """Uniform random valid designs, best-of-budget."""

    name = "random-search"
    #: Samples are constraint-checked at propose time; skip the loop's
    #: redundant re-check.
    filter_invalid = False

    #: Sampling attempts tolerated per budget unit before giving up.
    GUARD_PER_BUDGET = 1000

    def check_budget(self, hf_budget: int) -> None:
        if hf_budget < 1:
            raise ValueError("budget must be >= 1")

    def reset(self) -> None:
        self._guard = 0
        self._seen: set = set()

    def propose(self, k: int) -> List[np.ndarray]:
        space = self.pool.space
        limit = self.GUARD_PER_BUDGET * self.budget
        out: List[np.ndarray] = []
        while len(out) < max(k, 1) and self._guard < limit:
            self._guard += 1
            levels = space.sample(self.rng)
            key = space.flat_index(levels)
            if key in self._seen or not self.pool.fits(levels):
                continue
            self._seen.add(key)
            out.append(levels)
        return out

    def observe(self, observations: Sequence[Observation]) -> None:
        pass  # dedup state is maintained at propose time

    def state(self) -> Dict[str, Any]:
        return {
            "guard": self._guard,
            "seen": sorted(self._seen),
            "rng": rng_state_to_json(self.rng),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._guard = int(state["guard"])
        self._seen = set(int(v) for v in state["seen"])
        rng_state_from_json(self.rng, state["rng"])

    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Simulate ``hf_budget`` distinct random valid designs."""
        from repro.search.loop import SearchLoop

        return SearchLoop(pool, self, hf_budget, rng=rng).run()


class SimulatedAnnealingExplorer(SearchMethod):
    """Metropolis annealing over Hamming-1 moves on valid designs.

    A chain method: every step proposes exactly one candidate (the next
    Metropolis move depends on the previous accept/reject), so it
    ignores the loop's batch-width hint.

    Args:
        initial_temperature: Starting acceptance temperature (CPI units).
        cooling: Geometric cooling factor per simulation.
    """

    name = "annealing"
    #: Starts and neighbours are constraint-checked at propose time;
    #: skip the loop's redundant re-check.
    filter_invalid = False

    #: Chain steps tolerated per budget unit before stopping gracefully.
    GUARD_PER_BUDGET = 100

    def __init__(self, initial_temperature: float = 0.3, cooling: float = 0.75):
        super().__init__()
        if initial_temperature <= 0:
            raise ValueError("temperature must be positive")
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def check_budget(self, hf_budget: int) -> None:
        if hf_budget < 2:
            raise ValueError("annealing needs a budget of at least 2")

    def reset(self) -> None:
        self._started = False
        self._current: np.ndarray = None
        self._current_cpi: float = None
        self._temperature = self.initial_temperature
        self._guard = 0

    def propose(self, k: int) -> List[np.ndarray]:
        space = self.pool.space
        if not self._started:
            self._started = True
            for __ in range(1000):
                levels = space.sample(self.rng)
                if self.pool.fits(levels):
                    return [levels]
            raise RuntimeError("could not find a valid starting design")
        if self._guard >= self.GUARD_PER_BUDGET * self.budget:
            return []
        self._guard += 1
        neighbors = list(space.neighbors(self._current))
        keep = self.pool.fits_many(neighbors)
        neighbors = [n for n, ok in zip(neighbors, keep) if ok]
        if not neighbors:
            return []
        return [neighbors[int(self.rng.integers(len(neighbors)))]]

    def observe(self, observations: Sequence[Observation]) -> None:
        if not observations:
            return
        obs = observations[0]
        cand_cpi = float(obs.evaluation.cpi)
        if self._current is None:  # the starting design
            self._current = obs.levels.copy()
            self._current_cpi = cand_cpi
            return
        delta = cand_cpi - self._current_cpi
        if delta <= 0 or self.rng.random() < np.exp(-delta / self._temperature):
            self._current = obs.levels.copy()
            self._current_cpi = cand_cpi
        self._temperature = max(self._temperature * self.cooling, 1e-4)

    def state(self) -> Dict[str, Any]:
        return {
            "started": self._started,
            "current": (
                None if self._current is None
                else [int(v) for v in self._current]
            ),
            "current_cpi": self._current_cpi,
            "temperature": self._temperature,
            "guard": self._guard,
            "rng": rng_state_to_json(self.rng),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._started = bool(state["started"])
        self._current = (
            None if state["current"] is None
            else np.asarray(state["current"], dtype=np.int64)
        )
        self._current_cpi = (
            None if state["current_cpi"] is None else float(state["current_cpi"])
        )
        self._temperature = float(state["temperature"])
        self._guard = int(state["guard"])
        rng_state_from_json(self.rng, state["rng"])

    def explore(
        self, pool: ProxyPool, hf_budget: int, rng: np.random.Generator
    ) -> BaselineResult:
        """Anneal from a random valid start until the budget is spent."""
        from repro.search.loop import SearchLoop

        return SearchLoop(pool, self, hf_budget, rng=rng).run()
