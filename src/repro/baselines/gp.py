"""Gaussian-process regression with an optional deep-kernel feature map.

BOOM-Explorer [1] pairs Bayesian optimisation with a deep-kernel Gaussian
process [18]: inputs pass through a neural feature extractor before an
RBF kernel. Offline (no torch), the feature map is a fixed random
two-layer tanh network -- a random-features stand-in that preserves the
architecture (nonlinear embedding -> RBF GP) without the kernel-learning
inner loop; see DESIGN.md's substitution table.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class DeepKernelFeatureMap:
    """Fixed random two-layer tanh embedding.

    Args:
        in_dim: Input dimensionality.
        hidden: Hidden width.
        out_dim: Embedding dimensionality.
        rng: Weight-initialisation randomness.
    """

    def __init__(
        self,
        in_dim: int,
        hidden: int = 32,
        out_dim: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng(0)
        scale1 = np.sqrt(2.0 / in_dim)
        scale2 = np.sqrt(2.0 / hidden)
        self._w1 = rng.normal(0.0, scale1, size=(in_dim, hidden))
        self._b1 = rng.normal(0.0, 0.1, size=hidden)
        self._w2 = rng.normal(0.0, scale2, size=(hidden, out_dim))
        self._b2 = rng.normal(0.0, 0.1, size=out_dim)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Embed ``(n, in_dim)`` rows into ``(n, out_dim)``."""
        h = np.tanh(np.asarray(x, dtype=np.float64) @ self._w1 + self._b1)
        return np.tanh(h @ self._w2 + self._b2)


class GaussianProcess:
    """RBF-kernel GP regressor with marginal-likelihood lengthscale pick.

    Args:
        lengthscales: Candidate RBF lengthscales; the fit selects the one
            maximising the log marginal likelihood (a light-weight stand-in
            for full hyper-parameter optimisation).
        noise: Observation noise variance.
        feature_map: Optional input embedding (deep kernel).
    """

    def __init__(
        self,
        lengthscales: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
        noise: float = 1e-4,
        feature_map: Optional[DeepKernelFeatureMap] = None,
    ):
        if noise <= 0:
            raise ValueError("noise must be positive")
        if not lengthscales:
            raise ValueError("need at least one candidate lengthscale")
        self.lengthscales = lengthscales
        self.noise = noise
        self.feature_map = feature_map
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._mean = 0.0
        self._scale = 1.0
        self.lengthscale = lengthscales[0]

    # ------------------------------------------------------------------
    def _embed(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self.feature_map(x) if self.feature_map is not None else x

    def _kernel(self, a: np.ndarray, b: np.ndarray, lengthscale: float) -> np.ndarray:
        d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-0.5 * d2 / lengthscale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit: standardise targets, pick lengthscale, cache Cholesky."""
        x = self._embed(x)
        y = np.asarray(y, dtype=np.float64)
        self._mean = float(y.mean())
        self._scale = float(y.std()) or 1.0
        z = (y - self._mean) / self._scale
        best = (-np.inf, None, None, None)
        n = len(y)
        for ls in self.lengthscales:
            k = self._kernel(x, x, ls) + self.noise * np.eye(n)
            try:
                chol = np.linalg.cholesky(k)
            except np.linalg.LinAlgError:
                continue
            alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, z))
            log_ml = (
                -0.5 * float(z @ alpha)
                - float(np.log(np.diag(chol)).sum())
                - 0.5 * n * np.log(2 * np.pi)
            )
            if log_ml > best[0]:
                best = (log_ml, ls, chol, alpha)
        if best[1] is None:
            raise RuntimeError("GP fit failed for every candidate lengthscale")
        __, self.lengthscale, self._chol, self._alpha = best
        self._x = x
        return self

    def predict(self, x: np.ndarray, return_std: bool = False):
        """Posterior mean (and std when requested), in target units."""
        if self._x is None:
            raise RuntimeError("GP is not fitted")
        xe = self._embed(x)
        ks = self._kernel(xe, self._x, self.lengthscale)
        mean = self._mean + self._scale * (ks @ self._alpha)
        if not return_std:
            return mean
        v = np.linalg.solve(self._chol, ks.T)
        var = np.maximum(1.0 - (v**2).sum(axis=0), 1e-12)
        return mean, self._scale * np.sqrt(var)


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best_y: float, xi: float = 0.0
) -> np.ndarray:
    """EI for *minimisation* (larger is better).

    Closed form with the standard normal; no scipy needed.
    """
    std = np.maximum(std, 1e-12)
    z = (best_y - mean - xi) / std
    # standard normal pdf / cdf
    pdf = np.exp(-0.5 * z**2) / np.sqrt(2 * np.pi)
    cdf = 0.5 * (1.0 + _erf(z / np.sqrt(2.0)))
    return (best_y - mean - xi) * cdf + std * pdf


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised Abramowitz-Stegun erf approximation (|err| < 1.5e-7)."""
    sign = np.sign(x)
    x = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-(x**2)))
