"""CART regression trees (the shared weak learner of three baselines).

Plain binary-split variance-reduction trees over the normalised level
representation. The datasets here are tiny (a 10-simulation budget), so
clarity wins over asymptotics: splits are found by exhaustive scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Internal tree node (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """CART regression tree.

    Args:
        max_depth: Depth bound.
        min_samples_leaf: Minimum samples per leaf.
        max_features: Features considered per split (None = all); the
            random-forest wrapper sets this for decorrelation.
        rng: Randomness for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "RegressionTree":
        """Fit the tree; ``sample_weight`` supports boosting."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, d) with matching y")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        w = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("sample weights must be non-negative, not all zero")
        self._root = self._build(x, y, w, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> _Node:
        value = float(np.average(y, weights=w))
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.allclose(y, y[0])
        ):
            return _Node(value=value)
        split = self._best_split(x, y, w)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        left_mask = x[:, feature] <= threshold
        return _Node(
            value=value,
            feature=feature,
            threshold=threshold,
            left=self._build(x[left_mask], y[left_mask], w[left_mask], depth + 1),
            right=self._build(x[~left_mask], y[~left_mask], w[~left_mask], depth + 1),
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray, w: np.ndarray):
        n, d = x.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        best = None
        best_score = np.inf
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys, ws = x[order, feature], y[order], w[order]
            # candidate thresholds between distinct consecutive values
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i] == xs[i - 1]:
                    continue
                wl, wr = ws[:i], ws[i:]
                if len(wl) < self.min_samples_leaf or len(wr) < self.min_samples_leaf:
                    continue
                sl, sr = wl.sum(), wr.sum()
                if sl <= 0 or sr <= 0:
                    continue
                ml = np.average(ys[:i], weights=wl)
                mr = np.average(ys[i:], weights=wr)
                score = float(
                    (wl * (ys[:i] - ml) ** 2).sum() + (wr * (ys[i:] - mr) ** 2).sum()
                )
                if score < best_score:
                    best_score = score
                    best = (int(feature), float((xs[i - 1] + xs[i]) / 2.0))
        return best

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted values, shape ``(n,)``."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def depth(self) -> int:
        """Realised tree depth (0 for a stump-less single leaf)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
