"""CART regression trees (the shared weak learner of three baselines).

Plain binary-split variance-reduction trees over the normalised level
representation. The datasets here are tiny (a 10-simulation budget), so
clarity wins over asymptotics: splits are found by exhaustive scan by
default. The learned cost-model tier fits on store corpora that are three
orders of magnitude larger, so two fast paths exist on top of the same
tree structure:

* prediction always descends a flattened array representation of the
  fitted tree (identical float comparisons and leaf values to the node
  walk, so bit-identical results -- locked by the seed-history suite);
* ``fast_splits=True`` switches the split scan to a weighted prefix-sum
  formulation, O(n log n) per feature instead of O(n^2). Its scores are
  algebraically equal but *not* bit-equal to the exhaustive scan's
  (different summation order), so it stays opt-in and the regression
  baselines keep the legacy scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Internal tree node (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """CART regression tree.

    Args:
        max_depth: Depth bound.
        min_samples_leaf: Minimum samples per leaf.
        max_features: Features considered per split (None = all); the
            random-forest wrapper sets this for decorrelation.
        rng: Randomness for feature subsampling.
        fast_splits: Use the prefix-sum split scan (see module docstring).
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        fast_splits: bool = False,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.fast_splits = fast_splits
        self._rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None
        self._flat: Optional[tuple] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "RegressionTree":
        """Fit the tree; ``sample_weight`` supports boosting."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, d) with matching y")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        w = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("sample weights must be non-negative, not all zero")
        self._root = self._build(x, y, w, depth=0)
        self._flat = self._flatten(self._root)
        return self

    @staticmethod
    def _flatten(root: _Node) -> tuple:
        """Array form of the tree: (feature, threshold, left, right, value).

        Leaves carry ``feature == -1``. Values and thresholds are the
        node floats verbatim, so array descent makes the exact same
        comparisons as the node walk.
        """
        nodes: list = []

        def visit(node: _Node) -> int:
            index = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                node._left_index = visit(node.left)
                node._right_index = visit(node.right)
            return index

        visit(root)
        feature = np.full(len(nodes), -1, dtype=np.intp)
        threshold = np.zeros(len(nodes))
        left = np.zeros(len(nodes), dtype=np.intp)
        right = np.zeros(len(nodes), dtype=np.intp)
        value = np.empty(len(nodes))
        for i, node in enumerate(nodes):
            value[i] = node.value
            if not node.is_leaf:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = node._left_index
                right[i] = node._right_index
        return feature, threshold, left, right, value

    def _build(self, x: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> _Node:
        value = float(np.average(y, weights=w))
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.allclose(y, y[0])
        ):
            return _Node(value=value)
        split = self._best_split(x, y, w)
        if split is None:
            return _Node(value=value)
        feature, threshold = split
        left_mask = x[:, feature] <= threshold
        return _Node(
            value=value,
            feature=feature,
            threshold=threshold,
            left=self._build(x[left_mask], y[left_mask], w[left_mask], depth + 1),
            right=self._build(x[~left_mask], y[~left_mask], w[~left_mask], depth + 1),
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray, w: np.ndarray):
        n, d = x.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        if self.fast_splits:
            return self._best_split_fast(x, y, w, features)
        best = None
        best_score = np.inf
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys, ws = x[order, feature], y[order], w[order]
            # candidate thresholds between distinct consecutive values
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i] == xs[i - 1]:
                    continue
                wl, wr = ws[:i], ws[i:]
                if len(wl) < self.min_samples_leaf or len(wr) < self.min_samples_leaf:
                    continue
                sl, sr = wl.sum(), wr.sum()
                if sl <= 0 or sr <= 0:
                    continue
                ml = np.average(ys[:i], weights=wl)
                mr = np.average(ys[i:], weights=wr)
                score = float(
                    (wl * (ys[:i] - ml) ** 2).sum() + (wr * (ys[i:] - mr) ** 2).sum()
                )
                if score < best_score:
                    best_score = score
                    best = (int(feature), float((xs[i - 1] + xs[i]) / 2.0))
        return best

    def _best_split_fast(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, features: np.ndarray
    ):
        """Prefix-sum split scan: O(n log n) per feature.

        Weighted SSE of a segment is ``sum(w*y^2) - sum(w*y)^2 / sum(w)``,
        so left/right scores at every cut come from three cumulative
        sums. Within a feature ties break to the smallest cut index and
        across features to the earliest feature (both matching the
        exhaustive scan's first-wins rule), but the scores themselves
        round differently -- hence opt-in.
        """
        n = len(y)
        lo, hi = self.min_samples_leaf, n - self.min_samples_leaf
        if lo > hi:
            return None
        best = None
        best_score = np.inf
        cuts = np.arange(lo, hi + 1)
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys, ws = x[order, feature], y[order], w[order]
            cw = np.cumsum(ws)
            cwy = np.cumsum(ws * ys)
            cwy2 = np.cumsum(ws * ys * ys)
            sl = cw[cuts - 1]
            sr = cw[-1] - sl
            valid = (xs[cuts] != xs[cuts - 1]) & (sl > 0) & (sr > 0)
            if not valid.any():
                continue
            syl = cwy[cuts - 1]
            syl2 = cwy2[cuts - 1]
            syr = cwy[-1] - syl
            syr2 = cwy2[-1] - syl2
            with np.errstate(divide="ignore", invalid="ignore"):
                score = (syl2 - syl * syl / sl) + (syr2 - syr * syr / sr)
            score = np.where(valid, score, np.inf)
            at = int(np.argmin(score))  # first occurrence on ties
            if score[at] < best_score:
                best_score = float(score[at])
                i = int(cuts[at])
                best = (int(feature), float((xs[i - 1] + xs[i]) / 2.0))
        return best

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted values, shape ``(n,)``."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        feature, threshold, left, right, value = self._flat
        node = np.zeros(len(x), dtype=np.intp)
        internal = np.nonzero(feature[node] >= 0)[0]
        while len(internal):
            at = node[internal]
            go_left = x[internal, feature[at]] <= threshold[at]
            node[internal] = np.where(go_left, left[at], right[at])
            internal = internal[feature[node[internal]] >= 0]
        return value[node]

    @property
    def depth(self) -> int:
        """Realised tree depth (0 for a stump-less single leaf)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
