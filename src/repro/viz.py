"""Terminal visualisation helpers (no plotting dependencies offline).

The experiments produce series (convergence traces, parameter
trajectories) and categorical values (per-method CPIs). These helpers
render them as fixed-width text: bar charts for the Fig.-5 comparison,
sparklines and line plots for the Fig.-6/7 traces.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

#: Eight-level vertical resolution used by sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line unicode sparkline of ``values``.

    Args:
        values: The series; empty input yields an empty string.
        lo / hi: Optional fixed scale (defaults to the series range).
    """
    if len(values) == 0:
        return ""
    arr = np.asarray(values, dtype=np.float64)
    lo = float(arr.min()) if lo is None else float(lo)
    hi = float(arr.max()) if hi is None else float(hi)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(arr)
    scaled = (arr - lo) / (hi - lo)
    idx = np.clip((scaled * (len(_SPARK_CHARS) - 1)).round(), 0,
                  len(_SPARK_CHARS) - 1).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.4f}",
    highlight: Optional[str] = None,
) -> str:
    """Horizontal text bar chart, one row per key (insertion order).

    Args:
        values: Label -> value (non-negative).
        width: Character width of the longest bar.
        fmt: Value format.
        highlight: Key whose bar is drawn with a distinct fill.
    """
    if not values:
        return "(empty)"
    if width < 1:
        raise ValueError("width must be >= 1")
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = []
    for key, val in values.items():
        if val < 0:
            raise ValueError("bar_chart expects non-negative values")
        n = int(round(width * (val / vmax))) if vmax > 0 else 0
        fill = "#" if key == highlight else "="
        lines.append(f"{key:<{label_w}}  {fill * n:<{width}}  {fmt.format(val)}")
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 72,
) -> str:
    """Multi-series ASCII line plot (one digit/symbol per series).

    Series are resampled to ``width`` columns and share one y-scale.
    Intended for the Fig.-6 convergence traces.
    """
    if not series:
        return "(empty)"
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    all_vals = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for __ in range(height)]
    symbols = "1234567890"
    for s, (name, values) in enumerate(series.items()):
        arr = np.asarray(values, dtype=np.float64)
        xs = np.linspace(0, len(arr) - 1, width).round().astype(int)
        for col, x in enumerate(xs):
            frac = (arr[x] - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = symbols[s % len(symbols)]
    lines = [f"{hi:8.3f} +" + "".join(grid[0])]
    lines += ["         |" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{lo:8.3f} +" + "".join(grid[-1]))
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={name}" for i, name in enumerate(series)
    )
    lines.append("         " + legend)
    return "\n".join(lines)


def trajectory_plot(
    trajectories: Mapping[str, Sequence[int]],
    focus: str,
    lo: int = 1,
    hi: int = 5,
) -> str:
    """Fig.-7-style view: the focus parameter as a sparkline over
    episodes, other parameters greyed into a context block."""
    if focus not in trajectories:
        raise KeyError(f"focus parameter {focus!r} not in trajectories")
    lines = [f"{focus} (focus): {sparkline(trajectories[focus], lo, hi)}"]
    others = [k for k in trajectories if k != focus]
    for name in others:
        lines.append(f"{name:>16}: {sparkline(trajectories[name])}")
    return "\n".join(lines)
