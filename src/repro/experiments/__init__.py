"""Experiment runners: one per paper table/figure.

- :mod:`repro.experiments.table1` -- the design space listing.
- :mod:`repro.experiments.table2` -- application-specific DSE regrets.
- :mod:`repro.experiments.fig5`   -- general-purpose baseline comparison.
- :mod:`repro.experiments.fig6`   -- MF-center initialisation sweep.
- :mod:`repro.experiments.fig7`   -- preference embedding.
- :mod:`repro.experiments.rules`  -- Sec.-4.3 rule extraction demo.
- :mod:`repro.experiments.regret` -- sampled-optimum estimation shared by
  the above.
"""

from repro.experiments.common import build_pool, build_suite_pool, AREA_LIMITS
from repro.experiments.regret import estimate_optimum, OptimumEstimate
from repro.experiments.table2 import (
    run_table2,
    table2_reduce,
    table2_specs,
    Table2Row,
)
from repro.experiments.fig5 import fig5_reduce, fig5_specs, run_fig5, Fig5Result
from repro.experiments.fig6 import fig6_reduce, fig6_specs, run_fig6, Fig6Trace
from repro.experiments.fig7 import fig7_reduce, fig7_specs, run_fig7, Fig7Result
from repro.experiments.sweep import run_area_sweep, sweep_reduce, sweep_specs
from repro.experiments.rules import run_rules_demo

__all__ = [
    "build_pool",
    "build_suite_pool",
    "AREA_LIMITS",
    "estimate_optimum",
    "OptimumEstimate",
    "run_table2",
    "table2_reduce",
    "table2_specs",
    "Table2Row",
    "run_fig5",
    "fig5_reduce",
    "fig5_specs",
    "Fig5Result",
    "run_fig6",
    "fig6_reduce",
    "fig6_specs",
    "Fig6Trace",
    "run_fig7",
    "fig7_reduce",
    "fig7_specs",
    "Fig7Result",
    "run_area_sweep",
    "sweep_reduce",
    "sweep_specs",
    "run_rules_demo",
]
