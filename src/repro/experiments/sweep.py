"""Area-budget sweep: the CPI-vs-area frontier of the explorer.

An extension study beyond the paper's fixed budgets: re-run the
multi-fidelity explorer at a range of area limits and trace out the
achievable-CPI frontier. Designers use this to pick the budget where
returns diminish -- the knee of the curve -- before committing to a
floorplan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.campaign import (
    CampaignScheduler,
    RunSpec,
    explorer_config_to_dict,
    make_scheduler,
)
from repro.core.mfrl import ExplorerConfig


@dataclass(frozen=True)
class SweepPoint:
    """One (area limit, best CPI) frontier sample."""

    area_limit_mm2: float
    best_hf_cpi: float
    lf_hf_cpi: float
    best_area_mm2: float
    hf_simulations: int


def sweep_specs(
    benchmark: str,
    area_limits: Sequence[float] = (5.0, 6.0, 7.5, 9.0, 11.0),
    seed: int = 0,
    explorer_config: Optional[ExplorerConfig] = None,
    data_size: Optional[int] = None,
    propose_batch: int = 1,
) -> List[RunSpec]:
    """One explorer run spec per area budget, in sweep order."""
    if not area_limits:
        raise ValueError("need at least one area limit")
    explorer = explorer_config_to_dict(explorer_config or ExplorerConfig())
    batch_params = {} if propose_batch == 1 else {"propose_batch": propose_batch}
    return [
        RunSpec(
            run_id=f"sweep-{benchmark}-s{seed}-a{float(limit):g}",
            kind="explorer",
            method="fnn-mbrl",
            seed=seed,
            workload=benchmark,
            area_limit_mm2=float(limit),
            data_size=data_size,
            explorer=explorer,
            params=dict(batch_params),
        )
        for limit in area_limits
    ]


def sweep_reduce(
    specs: Sequence[RunSpec], records: Mapping[str, dict]
) -> List[SweepPoint]:
    """Fold run records into frontier points, in spec order."""
    points: List[SweepPoint] = []
    for spec in specs:
        payload = records[spec.run_id]["payload"]
        points.append(
            SweepPoint(
                area_limit_mm2=float(spec.area_limit_mm2),
                best_hf_cpi=payload["best_hf_cpi"],
                lf_hf_cpi=payload["lf_hf_cpi"],
                best_area_mm2=payload["best_area_mm2"],
                hf_simulations=payload["hf_simulations"],
            )
        )
    return points


def run_area_sweep(
    benchmark: str,
    area_limits: Sequence[float] = (5.0, 6.0, 7.5, 9.0, 11.0),
    seed: int = 0,
    explorer_config: Optional[ExplorerConfig] = None,
    data_size: Optional[int] = None,
    propose_batch: int = 1,
    workers: int = 0,
    cache_dir=None,
    campaign_dir=None,
    resume: bool = True,
    hf_backend=None,
    hf_batch=None,
    engine=None,
    scheduler: Optional[CampaignScheduler] = None,
) -> List[SweepPoint]:
    """Frontier of best HF CPI over area budgets for ``benchmark``.

    Args:
        benchmark: Which kernel to optimise.
        area_limits: Budgets to sweep (mm^2, ascending recommended).
        seed: Explorer seed, shared across budgets.
        explorer_config: Budget overrides for fast runs.
        data_size: Workload problem-size override.
        propose_batch: Designs the HF search proposes per step (q);
            1 = the paper's sequential protocol.
        workers: Process-pool size *across budgets* (0/1 = sequential).
        cache_dir: Persistent evaluation cache. The sweep is the ideal
            customer: the cache key excludes the area limit, so designs
            re-visited at different budgets simulate once.
        campaign_dir: Run-store directory for resumable campaigns.
        resume: Reuse completed records found in ``campaign_dir``.
        hf_backend: Engine backend spec per run (None = auto: the
            design-batched HF kernel behind the batch backend).
        hf_batch: Designs per batched simulator walk (None = default).
        engine: Per-run :class:`~repro.engine.EngineConfig` (store
            backend, learned tier, ...); supersedes ``cache_dir`` /
            ``hf_backend`` / ``hf_batch``.
        scheduler: Pre-built scheduler (overrides the previous seven).
    """
    specs = sweep_specs(
        benchmark,
        area_limits=area_limits,
        seed=seed,
        explorer_config=explorer_config,
        data_size=data_size,
        propose_batch=propose_batch,
    )
    if scheduler is None:
        scheduler = make_scheduler(workers, cache_dir, campaign_dir, resume,
                                   hf_backend=hf_backend, hf_batch=hf_batch,
                                   engine=engine)
    return sweep_reduce(specs, scheduler.run(specs).records)


def frontier_knee(points: Sequence[SweepPoint]) -> SweepPoint:
    """The sweep point with the worst marginal return beyond it.

    Computed as the point maximising distance from the line through the
    first and last frontier samples (the standard knee heuristic);
    returns the single point for a one-sample sweep.
    """
    if not points:
        raise ValueError("empty sweep")
    if len(points) < 3:
        return points[0]
    xs = np.array([p.area_limit_mm2 for p in points])
    ys = np.array([p.best_hf_cpi for p in points])
    x0, y0 = xs[0], ys[0]
    x1, y1 = xs[-1], ys[-1]
    norm = np.hypot(x1 - x0, y1 - y0)
    dist = np.abs((y1 - y0) * xs - (x1 - x0) * ys + x1 * y0 - y1 * x0) / max(norm, 1e-12)
    return points[int(np.argmax(dist))]


def render_sweep(points: Sequence[SweepPoint]) -> str:
    """Text table of the frontier."""
    lines = [f"{'area limit':>10} {'best CPI':>9} {'LF CPI':>8} "
             f"{'used area':>10} {'HF sims':>8}",
             "-" * 50]
    for p in points:
        lines.append(
            f"{p.area_limit_mm2:>8.1f}mm2 {p.best_hf_cpi:>9.4f} "
            f"{p.lf_hf_cpi:>8.4f} {p.best_area_mm2:>8.2f}mm2 "
            f"{p.hf_simulations:>8d}"
        )
    return "\n".join(lines)
