"""Sec. 4.3 demo: extract the learned rule base after a DSE run."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.fnn import FuzzyRule, extract_rules
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.experiments.common import build_pool


def run_rules_demo(
    benchmark: str = "mm",
    episodes: int = 200,
    seed: int = 0,
    top_k: int = 12,
    data_size: Optional[int] = None,
) -> Tuple[List[FuzzyRule], MultiFidelityExplorer]:
    """Train an FNN on ``benchmark`` and extract its strongest rules.

    Returns the pruned rule list plus the explorer (whose FNN holds the
    raw matrices for further inspection).
    """
    pool = build_pool(benchmark, data_size=data_size)
    explorer = MultiFidelityExplorer(
        pool, config=ExplorerConfig(lf_episodes=episodes), seed=seed
    )
    explorer.run_lf_phase()
    rules = extract_rules(explorer.fnn, top_k=top_k)
    return rules, explorer


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    from repro.core.fnn import render_rule_base

    rules, __ = run_rules_demo()
    print(render_rule_base(rules))
