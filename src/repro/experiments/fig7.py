"""Fig. 7: embedding a designer preference into the FNN.

The paper embeds a preference for decode width 4 into the rule base
(Sec. 2.3) and runs DSE on fp-vvadd, which otherwise converges to decode
width 3. The figure shows the per-episode trajectory of every parameter;
with the preference, the decode-width trajectory settles at 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.fnn import (
    FuzzyNeuralNetwork,
    decode_width_preference,
    default_inputs,
    embed_preference,
)
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.experiments.common import build_pool


@dataclass
class Fig7Result:
    """Per-episode parameter-value trajectories, with/without preference."""

    #: parameter name -> per-episode final *value* (not level).
    without_preference: Dict[str, List[int]]
    with_preference: Dict[str, List[int]]

    def final_decode_width(self, with_pref: bool) -> int:
        """Converged decode width (last-10-episode mode)."""
        traj = (self.with_preference if with_pref else self.without_preference)[
            "decode_width"
        ]
        tail = traj[-10:] if len(traj) >= 10 else traj
        values, counts = np.unique(tail, return_counts=True)
        return int(values[np.argmax(counts)])


def _trajectories(history, space) -> Dict[str, List[int]]:
    out: Dict[str, List[int]] = {name: [] for name in space.names}
    for record in history:
        values = space.values(record.final_levels)
        for name, value in zip(space.names, values):
            out[name].append(int(value))
    return out


def run_fig7(
    episodes: int = 250,
    seed: int = 0,
    target_decode: int = 4,
    preference_strength: float = 4.0,
    area_limit_mm2: float = 6.0,
    data_size: Optional[int] = None,
) -> Fig7Result:
    """Run fp-vvadd DSE twice: vanilla and with the decode-4 preference.

    Args:
        episodes: LF episodes per run (paper plots ~250).
        seed: Shared seed between the two runs.
        target_decode: Preferred decode width (paper: 4).
        preference_strength: Consequent bias of the preference rules.
        area_limit_mm2: fp-vvadd's Table-2 budget.
        data_size: Problem-size override for fast tests.
    """
    trajectories = {}
    for with_pref in (False, True):
        pool = build_pool(
            "fp-vvadd", area_limit_mm2=area_limit_mm2, data_size=data_size
        )
        inputs = default_inputs()
        rng = np.random.default_rng(seed)
        fnn = FuzzyNeuralNetwork(inputs, pool.space.names, rng=rng)
        if with_pref:
            embed_preference(
                fnn,
                decode_width_preference(target_decode, preference_strength),
            )
        explorer = MultiFidelityExplorer(
            pool,
            inputs=inputs,
            config=ExplorerConfig(
                lf_episodes=episodes, lf_check_every=episodes + 1
            ),
            seed=seed,
            fnn=fnn,
        )
        trainer = explorer.run_lf_phase()
        trajectories[with_pref] = _trajectories(trainer.history, pool.space)
    return Fig7Result(
        without_preference=trajectories[False],
        with_preference=trajectories[True],
    )


def render_fig7(result: Fig7Result) -> str:
    """Convergence summary of the decode-width trajectories."""
    return (
        "Fig. 7 -- preference embedding (fp-vvadd):\n"
        f"  decode width without preference: "
        f"{result.final_decode_width(False)}\n"
        f"  decode width with preference:    "
        f"{result.final_decode_width(True)}"
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_fig7(run_fig7()))
