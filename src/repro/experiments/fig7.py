"""Fig. 7: embedding a designer preference into the FNN.

The paper embeds a preference for decode width 4 into the rule base
(Sec. 2.3) and runs DSE on fp-vvadd, which otherwise converges to decode
width 3. The figure shows the per-episode trajectory of every parameter;
with the preference, the decode-width trajectory settles at 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.campaign import (
    CampaignScheduler,
    RunSpec,
    explorer_config_to_dict,
    make_scheduler,
)
from repro.core.mfrl import ExplorerConfig


@dataclass
class Fig7Result:
    """Per-episode parameter-value trajectories, with/without preference."""

    #: parameter name -> per-episode final *value* (not level).
    without_preference: Dict[str, List[int]]
    with_preference: Dict[str, List[int]]

    def final_decode_width(self, with_pref: bool) -> int:
        """Converged decode width (last-10-episode mode)."""
        traj = (self.with_preference if with_pref else self.without_preference)[
            "decode_width"
        ]
        tail = traj[-10:] if len(traj) >= 10 else traj
        values, counts = np.unique(tail, return_counts=True)
        return int(values[np.argmax(counts)])


def fig7_specs(
    episodes: int = 250,
    seed: int = 0,
    target_decode: int = 4,
    preference_strength: float = 4.0,
    area_limit_mm2: float = 6.0,
    data_size: Optional[int] = None,
) -> List[RunSpec]:
    """Two LF-trace run specs: the vanilla control, then the preference.

    Both carry ``target_decode`` so the executor builds the FNN the same
    explicit way for both runs; only the embedded rules differ.
    """
    explorer = explorer_config_to_dict(
        ExplorerConfig(lf_episodes=episodes, lf_check_every=episodes + 1)
    )
    return [
        RunSpec(
            run_id=f"fig7-s{seed}-{'pref' if with_pref else 'plain'}",
            kind="lf-trace",
            method="fnn-mbrl",
            seed=seed,
            workload="fp-vvadd",
            area_limit_mm2=area_limit_mm2,
            data_size=data_size,
            explorer=explorer,
            params={
                "with_preference": with_pref,
                "target_decode": target_decode,
                "preference_strength": preference_strength,
            },
        )
        for with_pref in (False, True)
    ]


def fig7_reduce(
    specs: Sequence[RunSpec], records: Mapping[str, dict]
) -> Fig7Result:
    """Fold the two run records into the Fig.-7 result."""
    trajectories = {
        bool(spec.params["with_preference"]): records[spec.run_id]["payload"][
            "trajectories"
        ]
        for spec in specs
    }
    return Fig7Result(
        without_preference=trajectories[False],
        with_preference=trajectories[True],
    )


def run_fig7(
    episodes: int = 250,
    seed: int = 0,
    target_decode: int = 4,
    preference_strength: float = 4.0,
    area_limit_mm2: float = 6.0,
    data_size: Optional[int] = None,
    workers: int = 0,
    cache_dir=None,
    campaign_dir=None,
    resume: bool = True,
    scheduler: Optional[CampaignScheduler] = None,
) -> Fig7Result:
    """Run fp-vvadd DSE twice: vanilla and with the decode-4 preference.

    Args:
        episodes: LF episodes per run (paper plots ~250).
        seed: Shared seed between the two runs.
        target_decode: Preferred decode width (paper: 4).
        preference_strength: Consequent bias of the preference rules.
        area_limit_mm2: fp-vvadd's Table-2 budget.
        data_size: Problem-size override for fast tests.
        workers: Process-pool size across the two runs (0/1 = sequential).
        cache_dir: Persistent evaluation-cache directory.
        campaign_dir: Run-store directory for resumable campaigns.
        resume: Reuse completed records found in ``campaign_dir``.
        scheduler: Pre-built scheduler (overrides the previous four).
    """
    specs = fig7_specs(
        episodes=episodes,
        seed=seed,
        target_decode=target_decode,
        preference_strength=preference_strength,
        area_limit_mm2=area_limit_mm2,
        data_size=data_size,
    )
    if scheduler is None:
        scheduler = make_scheduler(workers, cache_dir, campaign_dir, resume)
    return fig7_reduce(specs, scheduler.run(specs).records)


def render_fig7(result: Fig7Result) -> str:
    """Convergence summary of the decode-width trajectories."""
    return (
        "Fig. 7 -- preference embedding (fp-vvadd):\n"
        f"  decode width without preference: "
        f"{result.final_decode_width(False)}\n"
        f"  decode width with preference:    "
        f"{result.final_decode_width(True)}"
    )


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_fig7(run_fig7()))
