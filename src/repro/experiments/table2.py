"""Table 2: application-specific DSE (LF regret, HF regret, improvement).

For each benchmark, run the multi-fidelity explorer under the paper's
per-benchmark area limit, estimate the sampled optimum ~opt, and report

``Regret = DSE_best - ~opt``  (eq. 5)   and   ``Imp. = Regret_LF /
Regret_HF``  (eq. 6 -- the paper prints the ratio as "Imp." with the HF
regret in the denominator; Table 2's numbers are RegretLF/RegretHF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.experiments.common import AREA_LIMITS, build_pool
from repro.experiments.regret import estimate_optimum
from repro.workloads import BENCHMARK_NAMES


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's row of Table 2."""

    benchmark: str
    area_limit: float
    lf_regret: float
    hf_regret: float
    sampled_optimum_cpi: float
    lf_cpi: float
    hf_cpi: float

    @property
    def improvement(self) -> float:
        """``Regret_LF / Regret_HF`` (the "Imp." column)."""
        return self.lf_regret / max(self.hf_regret, 1e-9)


def run_table2(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 0,
    explorer_config: Optional[ExplorerConfig] = None,
    optimum_samples: int = 300,
    data_sizes: Optional[Dict[str, int]] = None,
    workers: int = 0,
    cache_dir=None,
) -> List[Table2Row]:
    """Run the Table-2 experiment.

    Args:
        benchmarks: Subset of the suite to run.
        seed: Master seed (explorer + optimum sampling derive from it).
        explorer_config: Budget overrides (None = paper defaults).
        optimum_samples: Promising-area samples for ~opt (paper: >= 500;
            smaller values keep CI runs fast at slightly looser ~opt).
        data_sizes: Optional per-benchmark problem-size overrides.
        workers: Process-pool size for HF batches (0/1 = serial).
        cache_dir: Persistent evaluation cache shared across benchmarks.
    """
    config = explorer_config or ExplorerConfig()
    rows: List[Table2Row] = []
    for benchmark in benchmarks:
        data_size = (data_sizes or {}).get(benchmark)
        pool = build_pool(
            benchmark, data_size=data_size, workers=workers, cache_dir=cache_dir
        )
        explorer = MultiFidelityExplorer(pool, config=config, seed=seed)
        result = explorer.explore()
        opt = estimate_optimum(
            pool, np.random.default_rng(seed + 1), num_samples=optimum_samples
        )
        # Regret is defined on the metric being optimised (CPI, eq. 5);
        # ~opt may still lose to the DSE best if sampling was unlucky --
        # clamp at zero like the paper's non-negative regrets.
        optimum = min(opt.cpi, result.best_hf_cpi, result.lf_hf_cpi)
        rows.append(
            Table2Row(
                benchmark=benchmark,
                area_limit=AREA_LIMITS[benchmark],
                lf_regret=max(result.lf_hf_cpi - optimum, 0.0),
                hf_regret=max(result.best_hf_cpi - optimum, 0.0),
                sampled_optimum_cpi=optimum,
                lf_cpi=result.lf_hf_cpi,
                hf_cpi=result.best_hf_cpi,
            )
        )
    return rows


def render_table2(rows: Iterable[Table2Row]) -> str:
    """Text rendering in the paper's Table-2 layout."""
    lines = [
        f"{'benchmark':<10} {'area limit':>10} {'LF regret':>10} "
        f"{'HF regret':>10} {'Imp.':>8}",
        "-" * 54,
    ]
    for row in rows:
        if row.hf_regret < 1e-6:
            # the HF phase hit the sampled optimum exactly; the ratio is
            # unbounded (the paper's fft row, 299.9x, is the same effect)
            imp = "   >999x"
        else:
            imp = f"{row.improvement:>7.2f}x"
        lines.append(
            f"{row.benchmark:<10} {row.area_limit:>8.1f}mm2 "
            f"{row.lf_regret:>10.3f} {row.hf_regret:>10.3f} {imp}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_table2(run_table2()))
