"""Table 2: application-specific DSE (LF regret, HF regret, improvement).

For each benchmark, run the multi-fidelity explorer under the paper's
per-benchmark area limit, estimate the sampled optimum ~opt, and report

``Regret = DSE_best - ~opt``  (eq. 5)   and   ``Imp. = Regret_LF /
Regret_HF``  (eq. 6 -- the paper prints the ratio as "Imp." with the HF
regret in the denominator; Table 2's numbers are RegretLF/RegretHF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.campaign import (
    CampaignScheduler,
    RunSpec,
    explorer_config_to_dict,
    make_scheduler,
)
from repro.core.mfrl import ExplorerConfig
from repro.experiments.common import AREA_LIMITS
from repro.workloads import BENCHMARK_NAMES


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's row of Table 2."""

    benchmark: str
    area_limit: float
    lf_regret: float
    hf_regret: float
    sampled_optimum_cpi: float
    lf_cpi: float
    hf_cpi: float

    @property
    def improvement(self) -> float:
        """``Regret_LF / Regret_HF`` (the "Imp." column)."""
        return self.lf_regret / max(self.hf_regret, 1e-9)


def table2_specs(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 0,
    explorer_config: Optional[ExplorerConfig] = None,
    optimum_samples: int = 300,
    data_sizes: Optional[Dict[str, int]] = None,
    propose_batch: int = 1,
) -> List[RunSpec]:
    """One ``table2`` run spec per benchmark, in suite order."""
    explorer = explorer_config_to_dict(explorer_config or ExplorerConfig())
    batch_params = {} if propose_batch == 1 else {"propose_batch": propose_batch}
    return [
        RunSpec(
            run_id=f"table2-s{seed}-{benchmark}",
            kind="table2",
            method="fnn-mbrl",
            seed=seed,
            workload=benchmark,
            data_size=(data_sizes or {}).get(benchmark),
            explorer=explorer,
            params={"optimum_samples": optimum_samples, **batch_params},
        )
        for benchmark in benchmarks
    ]


def table2_reduce(
    specs: Sequence[RunSpec], records: Mapping[str, dict]
) -> List[Table2Row]:
    """Fold run records into Table-2 rows, in spec order."""
    rows: List[Table2Row] = []
    for spec in specs:
        payload = records[spec.run_id]["payload"]
        # Regret is defined on the metric being optimised (CPI, eq. 5);
        # ~opt may still lose to the DSE best if sampling was unlucky --
        # clamp at zero like the paper's non-negative regrets.
        optimum = min(
            payload["sampled_optimum_cpi"],
            payload["best_hf_cpi"],
            payload["lf_hf_cpi"],
        )
        rows.append(
            Table2Row(
                benchmark=spec.workload,
                area_limit=AREA_LIMITS[spec.workload],
                lf_regret=max(payload["lf_hf_cpi"] - optimum, 0.0),
                hf_regret=max(payload["best_hf_cpi"] - optimum, 0.0),
                sampled_optimum_cpi=optimum,
                lf_cpi=payload["lf_hf_cpi"],
                hf_cpi=payload["best_hf_cpi"],
            )
        )
    return rows


def run_table2(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 0,
    explorer_config: Optional[ExplorerConfig] = None,
    optimum_samples: int = 300,
    data_sizes: Optional[Dict[str, int]] = None,
    propose_batch: int = 1,
    workers: int = 0,
    cache_dir=None,
    campaign_dir=None,
    resume: bool = True,
    hf_backend=None,
    hf_batch=None,
    engine=None,
    scheduler: Optional[CampaignScheduler] = None,
) -> List[Table2Row]:
    """Run the Table-2 experiment.

    Args:
        benchmarks: Subset of the suite to run.
        seed: Master seed (explorer + optimum sampling derive from it).
        explorer_config: Budget overrides (None = paper defaults).
        optimum_samples: Promising-area samples for ~opt (paper: >= 500;
            smaller values keep CI runs fast at slightly looser ~opt).
        data_sizes: Optional per-benchmark problem-size overrides.
        propose_batch: Designs the HF search proposes per step (q);
            1 = the paper's sequential protocol.
        workers: Process-pool size *across benchmarks* (0/1 = sequential).
        cache_dir: Persistent evaluation cache shared across benchmarks.
        campaign_dir: Run-store directory for resumable campaigns.
        resume: Reuse completed records found in ``campaign_dir``.
        hf_backend: Engine backend spec per run (None = auto: the
            design-batched HF kernel behind the batch backend).
        hf_batch: Designs per batched simulator walk (None = default).
        engine: Per-run :class:`~repro.engine.EngineConfig` (store
            backend, learned tier, ...); supersedes ``cache_dir`` /
            ``hf_backend`` / ``hf_batch``.
        scheduler: Pre-built scheduler (overrides the previous seven).
    """
    specs = table2_specs(
        benchmarks=benchmarks,
        seed=seed,
        explorer_config=explorer_config,
        optimum_samples=optimum_samples,
        data_sizes=data_sizes,
        propose_batch=propose_batch,
    )
    if scheduler is None:
        scheduler = make_scheduler(workers, cache_dir, campaign_dir, resume,
                                   hf_backend=hf_backend, hf_batch=hf_batch,
                                   engine=engine)
    return table2_reduce(specs, scheduler.run(specs).records)


def render_table2(rows: Iterable[Table2Row]) -> str:
    """Text rendering in the paper's Table-2 layout."""
    lines = [
        f"{'benchmark':<10} {'area limit':>10} {'LF regret':>10} "
        f"{'HF regret':>10} {'Imp.':>8}",
        "-" * 54,
    ]
    for row in rows:
        if row.hf_regret < 1e-6:
            # the HF phase hit the sampled optimum exactly; the ratio is
            # unbounded (the paper's fft row, 299.9x, is the same effect)
            imp = "   >999x"
        else:
            imp = f"{row.improvement:>7.2f}x"
        lines.append(
            f"{row.benchmark:<10} {row.area_limit:>8.1f}mm2 "
            f"{row.lf_regret:>10.3f} {row.hf_regret:>10.3f} {imp}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_table2(run_table2()))
