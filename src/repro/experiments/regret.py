"""Sampled-optimum estimation (the paper's regret reference).

Table 2 defines regret against a sampled optimum: "we sample at least 500
points in the promising area, and the best one is considered the sampled
optimal ~opt". Reproduced here as: uniform sampling over valid designs
biased to the *promising area* (designs using most of the area budget),
followed by steepest-descent hill climbing from the best samples -- the
paper's "promising area" intent, made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.proxies.interface import Fidelity
from repro.proxies.pool import ProxyPool


@dataclass(frozen=True)
class OptimumEstimate:
    """The sampled optimum ~opt and how it was found."""

    levels: np.ndarray
    cpi: float
    num_evaluations: int


def estimate_optimum(
    pool: ProxyPool,
    rng: np.random.Generator,
    num_samples: int = 500,
    area_fraction: float = 0.6,
    hill_climb_starts: int = 3,
    max_climb_steps: int = 40,
) -> OptimumEstimate:
    """Estimate ~opt by promising-area sampling plus hill climbing.

    Args:
        pool: The benchmark's proxy pool (HF evaluations are memoised, so
            re-running the search engine afterwards does not re-pay).
        rng: Sampling randomness.
        num_samples: Random promising-area samples (paper: >= 500).
        area_fraction: A design is "promising" when its area is at least
            this fraction of the budget (big-enough designs).
        hill_climb_starts: Hamming-1 descent restarts from the top samples.
        max_climb_steps: Per-restart step bound.
    """
    space = pool.space
    limit = pool.constraint.limit_mm2
    evaluations = 0

    # --- phase 1: promising-area sampling ------------------------------
    # Sampling and the area filter need no simulation, so the samples
    # are drawn first (same rng stream as the old one-at-a-time loop)
    # and simulated as one batch -- the pool routes it through the
    # engine, where the design-batched HF kernel absorbs it.
    samples: List = []
    guard = 0
    while len(samples) < num_samples and guard < 60 * num_samples:
        guard += 1
        levels = space.sample(rng)
        area = pool.area(levels)
        if area > limit or area < area_fraction * limit:
            continue
        samples.append(levels)
    if not samples:
        raise RuntimeError("no promising-area design could be sampled")

    best: List[tuple] = []  # (cpi, flat_key, levels)
    for levels, evaluation in zip(
        samples, pool.evaluate(samples, Fidelity.HIGH)
    ):
        evaluations += 1
        best.append((evaluation.cpi, space.flat_index(levels), levels))
        best.sort(key=lambda t: t[0])
        del best[max(hill_climb_starts, 1):]

    # --- phase 2: Hamming-1 steepest descent ---------------------------
    champion_cpi, __, champion = best[0]
    for __, ___, start in list(best):
        levels = start.copy()
        current = pool.evaluate(levels, Fidelity.HIGH).cpi
        for ____ in range(max_climb_steps):
            # One batched dispatch per descent step; scanning the batch
            # in order reproduces the sequential loop's accept-last-
            # improvement semantics exactly.
            neighbors = [
                nb for nb in space.neighbors(levels) if pool.fits(nb)
            ]
            improved = False
            for neighbor, evaluation in zip(
                neighbors, pool.evaluate(neighbors, Fidelity.HIGH)
            ):
                evaluations += 1
                if evaluation.cpi < current - 1e-12:
                    current = evaluation.cpi
                    levels = neighbor
                    improved = True
            if not improved:
                break
        if current < champion_cpi:
            champion_cpi = current
            champion = levels

    return OptimumEstimate(
        levels=champion, cpi=champion_cpi, num_evaluations=evaluations
    )
