"""Table 1: the design space listing (rendered, plus sanity numbers)."""

from __future__ import annotations

from repro.designspace import default_design_space


def run_table1() -> str:
    """Render the paper's Table 1 and the space size."""
    return default_design_space().table()


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(run_table1())
