"""Fig. 5: general-purpose comparison with the baselines.

Protocol (Sec. 4.2): optimise the *average* CPI over all six benchmarks
under an 8 mm^2 budget; every baseline gets 10 HF simulations, our method
gets 9 (equal wall-clock once the ~2 h LF phase is priced in); 5 seeds;
report the mean best CPI per method. The paper's ordering to reproduce:
FNN-MBRL-HF < every baseline, with FNN-MBRL-LF mid-pack.

The experiment is a seeds x methods grid of independent runs, so it is
expressed campaign-style: :func:`fig5_specs` *emits* one
:class:`~repro.campaign.RunSpec` per run, the
:class:`~repro.campaign.CampaignScheduler` executes them (sequentially
at ``workers=0`` -- bit-identical to the old loop -- or fanned out over
a process pool), and :func:`fig5_reduce` folds the records back into a
:class:`Fig5Result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.baselines import ALL_BASELINES
from repro.campaign import (
    CampaignScheduler,
    RunSpec,
    aggregate_engine_counters,
    explorer_config_to_dict,
    make_scheduler,
)
from repro.core.mfrl import ExplorerConfig
from repro.experiments.common import GENERAL_PURPOSE_LIMIT

#: Method label of our explorer in run specs.
OUR_METHOD = "fnn-mbrl"


@dataclass
class Fig5Result:
    """Mean best CPI per method (and the per-seed raw values)."""

    mean_cpi: Dict[str, float]
    per_seed_cpi: Dict[str, List[float]]
    seeds: List[int]
    #: Engine counters summed over every run of the grid (computed LF/HF
    #: evaluations, persistent-cache hits, ...).
    engine_counters: Dict[str, float] = field(default_factory=dict)

    def ranking(self) -> List[str]:
        """Methods sorted best (lowest mean CPI) first."""
        return sorted(self.mean_cpi, key=self.mean_cpi.get)


def fig5_specs(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    baseline_budget: int = 10,
    our_budget: int = 9,
    baselines: Sequence[str] = ALL_BASELINES,
    explorer_config: Optional[ExplorerConfig] = None,
    scale: float = 1.0,
    area_limit_mm2: float = GENERAL_PURPOSE_LIMIT,
    propose_batch: int = 1,
) -> List[RunSpec]:
    """The Fig.-5 grid as run specs, in the sequential execution order.

    ``propose_batch`` > 1 asks every search for that many designs per
    step (one batched HF dispatch each); 1 -- the default, and the
    paper's protocol -- is omitted from the spec params so existing
    campaign records stay valid.
    """
    explorer = explorer_config_to_dict(
        explorer_config or ExplorerConfig(hf_budget=our_budget)
    )
    batch_params = {} if propose_batch == 1 else {"propose_batch": propose_batch}
    specs: List[RunSpec] = []
    for seed in seeds:
        for name in baselines:
            specs.append(
                RunSpec(
                    run_id=f"fig5-s{seed}-{name}",
                    kind="baseline",
                    method=name,
                    seed=seed,
                    workload="suite",
                    area_limit_mm2=area_limit_mm2,
                    scale=scale,
                    hf_budget=baseline_budget,
                    params={"rng_seed": 1000 + seed, **batch_params},
                )
            )
        specs.append(
            RunSpec(
                run_id=f"fig5-s{seed}-{OUR_METHOD}",
                kind="explorer",
                method=OUR_METHOD,
                seed=seed,
                workload="suite",
                area_limit_mm2=area_limit_mm2,
                scale=scale,
                explorer=explorer,
                params=dict(batch_params),
            )
        )
    return specs


def fig5_reduce(
    specs: Sequence[RunSpec], records: Mapping[str, dict]
) -> Fig5Result:
    """Fold run records into the Fig.-5 result, in spec order."""
    per_seed: Dict[str, List[float]] = {}
    seeds: List[int] = []
    for spec in specs:
        payload = records[spec.run_id]["payload"]
        if spec.seed not in seeds:
            seeds.append(spec.seed)
        if spec.kind == "baseline":
            per_seed.setdefault(spec.method, []).append(payload["best_cpi"])
        else:
            per_seed.setdefault("fnn-mbrl-lf", []).append(payload["lf_hf_cpi"])
            per_seed.setdefault("fnn-mbrl-hf", []).append(payload["best_hf_cpi"])
    mean_cpi = {name: float(np.mean(vals)) for name, vals in per_seed.items()}
    return Fig5Result(
        mean_cpi=mean_cpi,
        per_seed_cpi=per_seed,
        seeds=seeds,
        engine_counters=aggregate_engine_counters(
            {spec.run_id: records[spec.run_id] for spec in specs}
        ),
    )


def run_fig5(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    baseline_budget: int = 10,
    our_budget: int = 9,
    baselines: Sequence[str] = ALL_BASELINES,
    explorer_config: Optional[ExplorerConfig] = None,
    scale: float = 1.0,
    area_limit_mm2: float = GENERAL_PURPOSE_LIMIT,
    propose_batch: int = 1,
    workers: int = 0,
    cache_dir=None,
    campaign_dir=None,
    resume: bool = True,
    hf_backend=None,
    hf_batch=None,
    engine=None,
    scheduler: Optional[CampaignScheduler] = None,
) -> Fig5Result:
    """Run the Fig.-5 comparison.

    Args:
        seeds: Paper uses 5 seeds.
        baseline_budget / our_budget: HF simulations (paper: 10 vs 9).
        baselines: Which comparison methods to include.
        explorer_config: LF/HF schedule overrides for our method.
        scale: Workload problem-size scale (tests shrink it).
        area_limit_mm2: Budget (paper: 8 mm^2).
        propose_batch: Designs each search proposes per step (q); every
            batch rides one ``evaluate_many`` dispatch. 1 = the paper's
            sequential protocol.
        workers: Process-pool size *across runs* of the grid (0/1 =
            sequential, bit-identical to the pre-campaign loop).
        cache_dir: Persistent evaluation cache shared by all runs --
            every method sees the same workloads, so designs revisited
            across methods and seeds simulate once.
        campaign_dir: Run-store directory; a killed campaign re-invoked
            with ``resume=True`` skips its completed runs.
        resume: Reuse completed records found in ``campaign_dir``.
        hf_backend: Engine backend spec per run (None = auto: the
            design-batched HF kernel behind the batch backend).
        hf_batch: Designs per batched simulator walk (None = default).
        engine: Per-run :class:`~repro.engine.EngineConfig` (store
            backend, learned tier, ...); supersedes ``cache_dir`` /
            ``hf_backend`` / ``hf_batch``.
        scheduler: Pre-built scheduler (overrides the previous seven).
    """
    specs = fig5_specs(
        seeds=seeds,
        baseline_budget=baseline_budget,
        our_budget=our_budget,
        baselines=baselines,
        explorer_config=explorer_config,
        scale=scale,
        area_limit_mm2=area_limit_mm2,
        propose_batch=propose_batch,
    )
    if scheduler is None:
        scheduler = make_scheduler(workers, cache_dir, campaign_dir, resume,
                                   hf_backend=hf_backend, hf_batch=hf_batch,
                                   engine=engine)
    result = scheduler.run(specs)
    return fig5_reduce(specs, result.records)


def render_fig5(result: Fig5Result) -> str:
    """Bar-chart data as text, ordered like the paper's figure."""
    order = [
        "random-forest",
        "actboost",
        "scbo",
        "boom-explorer",
        "bag-gbrt",
        "fnn-mbrl-lf",
        "fnn-mbrl-hf",
    ]
    lines = ["Fig. 5 -- mean best CPI (lower is better):"]
    for name in order:
        if name in result.mean_cpi:
            lines.append(f"  {name:<15} {result.mean_cpi[name]:.4f}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_fig5(run_fig5()))
