"""Fig. 5: general-purpose comparison with the baselines.

Protocol (Sec. 4.2): optimise the *average* CPI over all six benchmarks
under an 8 mm^2 budget; every baseline gets 10 HF simulations, our method
gets 9 (equal wall-clock once the ~2 h LF phase is priced in); 5 seeds;
report the mean best CPI per method. The paper's ordering to reproduce:
FNN-MBRL-HF < every baseline, with FNN-MBRL-LF mid-pack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import ALL_BASELINES, make_baseline
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.experiments.common import GENERAL_PURPOSE_LIMIT, build_suite_pool


@dataclass
class Fig5Result:
    """Mean best CPI per method (and the per-seed raw values)."""

    mean_cpi: Dict[str, float]
    per_seed_cpi: Dict[str, List[float]]
    seeds: List[int]

    def ranking(self) -> List[str]:
        """Methods sorted best (lowest mean CPI) first."""
        return sorted(self.mean_cpi, key=self.mean_cpi.get)


def run_fig5(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    baseline_budget: int = 10,
    our_budget: int = 9,
    baselines: Sequence[str] = ALL_BASELINES,
    explorer_config: Optional[ExplorerConfig] = None,
    scale: float = 1.0,
    area_limit_mm2: float = GENERAL_PURPOSE_LIMIT,
    workers: int = 0,
    cache_dir=None,
) -> Fig5Result:
    """Run the Fig.-5 comparison.

    Args:
        seeds: Paper uses 5 seeds.
        baseline_budget / our_budget: HF simulations (paper: 10 vs 9).
        baselines: Which comparison methods to include.
        explorer_config: LF/HF schedule overrides for our method.
        scale: Workload problem-size scale (tests shrink it).
        area_limit_mm2: Budget (paper: 8 mm^2).
        workers: Process-pool size for HF candidate batches.
        cache_dir: Persistent evaluation cache shared by all methods --
            every baseline sees the same workloads, so designs revisited
            across methods and seeds simulate once.
    """
    per_seed: Dict[str, List[float]] = {name: [] for name in baselines}
    per_seed["fnn-mbrl-lf"] = []
    per_seed["fnn-mbrl-hf"] = []

    for seed in seeds:
        for name in baselines:
            pool = build_suite_pool(
                area_limit_mm2=area_limit_mm2, scale=scale,
                workers=workers, cache_dir=cache_dir,
            )
            rng = np.random.default_rng(1000 + seed)
            result = make_baseline(name).explore(pool, baseline_budget, rng)
            per_seed[name].append(result.best_cpi)

        pool = build_suite_pool(
            area_limit_mm2=area_limit_mm2, scale=scale,
            workers=workers, cache_dir=cache_dir,
        )
        config = explorer_config or ExplorerConfig(hf_budget=our_budget)
        explorer = MultiFidelityExplorer(pool, config=config, seed=seed)
        ours = explorer.explore()
        per_seed["fnn-mbrl-lf"].append(ours.lf_hf_cpi)
        per_seed["fnn-mbrl-hf"].append(ours.best_hf_cpi)

    mean_cpi = {name: float(np.mean(vals)) for name, vals in per_seed.items()}
    return Fig5Result(mean_cpi=mean_cpi, per_seed_cpi=per_seed, seeds=list(seeds))


def render_fig5(result: Fig5Result) -> str:
    """Bar-chart data as text, ordered like the paper's figure."""
    order = [
        "random-forest",
        "actboost",
        "scbo",
        "boom-explorer",
        "bag-gbrt",
        "fnn-mbrl-lf",
        "fnn-mbrl-hf",
    ]
    lines = ["Fig. 5 -- mean best CPI (lower is better):"]
    for name in order:
        if name in result.mean_cpi:
            lines.append(f"  {name:<15} {result.mean_cpi[name]:.4f}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_fig5(run_fig5()))
