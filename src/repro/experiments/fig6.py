"""Fig. 6: MF-center initialisation sweep on enlarged dijkstra.

The paper enlarges dijkstra's data size, then trains with four L1/L2
MF-center initialisations -- (6,10), (7,11), (8,12), (9,13) on the
log2-cache-lines scale -- and plots the per-episode CPI traces: higher
centers converge faster; all converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.campaign import (
    CampaignScheduler,
    RunSpec,
    explorer_config_to_dict,
    make_scheduler,
)
from repro.core.mfrl import ExplorerConfig

#: The paper's four (L1 center, L2 center) initialisations.
PAPER_CENTER_PAIRS: Tuple[Tuple[float, float], ...] = (
    (6.0, 10.0),
    (7.0, 11.0),
    (8.0, 12.0),
    (9.0, 13.0),
)


@dataclass
class Fig6Trace:
    """One initialisation's convergence trace."""

    l1_center: float
    l2_center: float
    episode_cpi: List[float]

    def episodes_to_within(self, tolerance: float = 0.03) -> int:
        """Episode after which the trace *stays* within ``tolerance`` of
        its final best -- i.e. one past the last non-converged episode.
        This is the convergence point a reader takes from the paper's
        Fig.-6 traces (where the early oscillation stops)."""
        best = min(self.episode_cpi)
        target = best * (1.0 + tolerance)
        for i in range(len(self.episode_cpi) - 1, -1, -1):
            if self.episode_cpi[i] > target:
                return i + 1
        return 0

    def best_so_far(self) -> List[float]:
        """Monotone running-minimum view of the trace."""
        out: List[float] = []
        current = np.inf
        for cpi in self.episode_cpi:
            current = min(current, cpi)
            out.append(current)
        return out


def fig6_specs(
    center_pairs: Sequence[Tuple[float, float]] = PAPER_CENTER_PAIRS,
    episodes: int = 250,
    seed: int = 0,
    data_size: int = 1024,
    area_limit_mm2: float = 10.0,
) -> List[RunSpec]:
    """One LF-trace run spec per MF-center initialisation."""
    explorer = explorer_config_to_dict(
        ExplorerConfig(
            lf_episodes=episodes,
            lf_check_every=episodes + 1,  # disable early stop: full trace
        )
    )
    return [
        RunSpec(
            run_id=f"fig6-s{seed}-c{float(l1):g}-{float(l2):g}",
            kind="lf-trace",
            method="fnn-mbrl",
            seed=seed,
            workload="dijkstra",
            area_limit_mm2=area_limit_mm2,
            data_size=data_size,
            explorer=explorer,
            params={"l1_center": float(l1), "l2_center": float(l2)},
        )
        for l1, l2 in center_pairs
    ]


def fig6_reduce(
    specs: Sequence[RunSpec], records: Mapping[str, dict]
) -> List[Fig6Trace]:
    """Fold run records into convergence traces, in spec order."""
    return [
        Fig6Trace(
            l1_center=spec.params["l1_center"],
            l2_center=spec.params["l2_center"],
            episode_cpi=records[spec.run_id]["payload"]["episode_cpi"],
        )
        for spec in specs
    ]


def run_fig6(
    center_pairs: Sequence[Tuple[float, float]] = PAPER_CENTER_PAIRS,
    episodes: int = 250,
    seed: int = 0,
    data_size: int = 1024,
    area_limit_mm2: float = 10.0,
    workers: int = 0,
    cache_dir=None,
    campaign_dir=None,
    resume: bool = True,
    scheduler: Optional[CampaignScheduler] = None,
) -> List[Fig6Trace]:
    """LF-phase convergence traces for each cache-center initialisation.

    Args:
        center_pairs: (L1, L2) MF-center initialisations (log2 lines).
        episodes: LF episodes per trace (paper plots ~250).
        seed: Shared seed -- the only varying factor is the init.
        data_size: Enlarged dijkstra size ("we largely increase the data
            size of dijkstra").
        area_limit_mm2: Budget (dijkstra's Table-2 limit).
        workers: Process-pool size *across traces* (0/1 = sequential).
        cache_dir: Persistent evaluation-cache directory.
        campaign_dir: Run-store directory for resumable campaigns.
        resume: Reuse completed records found in ``campaign_dir``.
        scheduler: Pre-built scheduler (overrides the previous four).
    """
    specs = fig6_specs(
        center_pairs=center_pairs,
        episodes=episodes,
        seed=seed,
        data_size=data_size,
        area_limit_mm2=area_limit_mm2,
    )
    if scheduler is None:
        scheduler = make_scheduler(workers, cache_dir, campaign_dir, resume)
    return fig6_reduce(specs, scheduler.run(specs).records)


def render_fig6(traces: Sequence[Fig6Trace]) -> str:
    """Summary of each trace (full series available on the objects)."""
    lines = ["Fig. 6 -- initialisation sweep (enlarged dijkstra):"]
    for t in traces:
        lines.append(
            f"  L1/L2 centers {t.l1_center:.0f}/{t.l2_center:.0f}: "
            f"final best CPI {min(t.episode_cpi):.3f}, "
            f"converged by episode {t.episodes_to_within()}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(render_fig6(run_fig6()))
