"""Full reproduction report: run every experiment, write JSON + markdown.

``python -m repro.experiments.report --out results/ [--fast]`` executes
the Table-2, Fig.-5, Fig.-6, Fig.-7 and rule-extraction experiments and
writes:

- ``results/report.json``  -- machine-readable numbers for regression
  tracking across code changes;
- ``results/report.md``    -- the EXPERIMENTS.md-style human summary.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, Optional

from repro.core.mfrl import ExplorerConfig

#: --fast problem sizes (shared with the CLI).
FAST_SIZES = {
    "dijkstra": 96,
    "mm": 14,
    "fp-vvadd": 768,
    "quicksort": 192,
    "fft": 128,
    "ss": 768,
}


def run_all(fast: bool = True, seed: int = 0) -> Dict:
    """Execute every experiment; returns the JSON-ready result tree."""
    from repro.experiments.fig5 import run_fig5
    from repro.experiments.fig6 import PAPER_CENTER_PAIRS, run_fig6
    from repro.experiments.fig7 import run_fig7
    from repro.experiments.rules import run_rules_demo
    from repro.experiments.table2 import run_table2

    config = (
        ExplorerConfig(lf_episodes=100, lf_min_episodes=60, hf_budget=9,
                       hf_seed_designs=3)
        if fast
        else ExplorerConfig()
    )

    table2_rows = run_table2(
        seed=seed,
        explorer_config=config,
        optimum_samples=60 if fast else 500,
        data_sizes=FAST_SIZES if fast else None,
    )
    table2 = [
        {
            "benchmark": row.benchmark,
            "area_limit_mm2": row.area_limit,
            "lf_regret": row.lf_regret,
            "hf_regret": row.hf_regret,
            "improvement": row.improvement,
            "lf_cpi": row.lf_cpi,
            "hf_cpi": row.hf_cpi,
        }
        for row in table2_rows
    ]

    fig5 = run_fig5(
        seeds=tuple(range(2 if fast else 5)),
        explorer_config=config,
        scale=0.25 if fast else 1.0,
    )

    fig6_traces = run_fig6(
        center_pairs=PAPER_CENTER_PAIRS,
        episodes=100 if fast else 250,
        seed=seed,
    )
    fig6 = [
        {
            "l1_center": t.l1_center,
            "l2_center": t.l2_center,
            "best_cpi": min(t.episode_cpi),
            "converged_by": t.episodes_to_within(),
            "episode_cpi": t.episode_cpi,
        }
        for t in fig6_traces
    ]

    fig7 = run_fig7(
        episodes=80 if fast else 250,
        seed=seed,
        data_size=1024 if fast else None,
    )

    rules, __ = run_rules_demo(
        benchmark="mm",
        episodes=100 if fast else 260,
        seed=seed,
        data_size=FAST_SIZES["mm"] if fast else None,
        top_k=12,
    )

    return {
        "fast": fast,
        "seed": seed,
        "table2": table2,
        "fig5_mean_cpi": fig5.mean_cpi,
        "fig5_per_seed": fig5.per_seed_cpi,
        "fig6": fig6,
        "fig7": {
            "decode_with_preference": fig7.final_decode_width(True),
            "decode_without_preference": fig7.final_decode_width(False),
            "with_trajectory": fig7.with_preference["decode_width"],
            "without_trajectory": fig7.without_preference["decode_width"],
        },
        "rules": [r.render() for r in rules],
    }


def render_markdown(results: Dict) -> str:
    """The report.md body from :func:`run_all` output."""
    lines = ["# Reproduction report", ""]
    lines.append(f"(fast={results['fast']}, seed={results['seed']})")

    lines += ["", "## Table 2", "",
              "| benchmark | area | LF regret | HF regret | Imp. |",
              "|---|---|---|---|---|"]
    for row in results["table2"]:
        imp = ">999x" if row["hf_regret"] < 1e-6 else f"{row['improvement']:.2f}x"
        lines.append(
            f"| {row['benchmark']} | {row['area_limit_mm2']:.1f} | "
            f"{row['lf_regret']:.3f} | {row['hf_regret']:.3f} | {imp} |"
        )

    lines += ["", "## Fig. 5 (mean best CPI)", ""]
    for name, cpi in sorted(results["fig5_mean_cpi"].items(), key=lambda kv: kv[1]):
        lines.append(f"- {name}: {cpi:.4f}")

    lines += ["", "## Fig. 6 (initialisation sweep)", ""]
    for trace in results["fig6"]:
        lines.append(
            f"- centers {trace['l1_center']:.0f}/{trace['l2_center']:.0f}: "
            f"best CPI {trace['best_cpi']:.3f}, converged by episode "
            f"{trace['converged_by']}"
        )

    fig7 = results["fig7"]
    lines += ["", "## Fig. 7 (preference embedding)", "",
              f"- decode width with preference: {fig7['decode_with_preference']}",
              f"- decode width without preference: "
              f"{fig7['decode_without_preference']}"]

    lines += ["", "## Extracted rules (mm)", ""]
    lines += [f"- `{rule}`" for rule in results["rules"]]
    return "\n".join(lines) + "\n"


def write_report(out_dir, fast: bool = True, seed: int = 0) -> Dict:
    """Run everything and write report.json + report.md to ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    results = run_all(fast=fast, seed=seed)
    (out / "report.json").write_text(json.dumps(results, indent=2))
    (out / "report.md").write_text(render_markdown(results))
    return results


def main(argv: Optional[list] = None) -> int:
    """CLI: ``python -m repro.experiments.report --out results/``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    write_report(args.out, fast=args.fast, seed=args.seed)
    print(f"report written to {args.out}/report.{{json,md}}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    raise SystemExit(main())
