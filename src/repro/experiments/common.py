"""Shared experiment plumbing: pools, area limits, seeds, search runs."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.designspace import DesignSpace, default_design_space
from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy, SuiteAverageProxy
from repro.search import SearchLoop, SearchMethod, make_method
from repro.workloads import Workload, get_workload, BENCHMARK_NAMES

#: Per-benchmark area limits, paper Table 2 (mm^2).
AREA_LIMITS: Dict[str, float] = {
    "dijkstra": 10.0,
    "mm": 7.5,
    "fp-vvadd": 6.0,
    "quicksort": 7.5,
    "fft": 8.0,
    "ss": 6.0,
}

#: Area limit of the general-purpose experiment (Sec. 4.2).
GENERAL_PURPOSE_LIMIT = 8.0


from repro.engine.config import EngineConfig, normalize_hf_backend  # noqa: E402


def _engine_config(
    engine: Optional[EngineConfig],
    workers: int,
    cache_dir: Union[str, Path, None],
    hf_backend: Optional[str],
    hf_batch: Optional[int],
) -> EngineConfig:
    """The one :class:`EngineConfig` a pool is built from.

    An explicit ``engine`` wins; otherwise the legacy loose kwargs are
    folded into a config, so both call styles share one construction
    path (store backend, learned tier, execution backend).
    """
    if engine is not None:
        return engine
    return EngineConfig(
        workers=workers,
        cache_dir=None if cache_dir is None else str(cache_dir),
        hf_backend=hf_backend,
        hf_batch=hf_batch,
    )


def build_pool(
    benchmark: str,
    area_limit_mm2: Optional[float] = None,
    data_size: Optional[int] = None,
    space: Optional[DesignSpace] = None,
    workload_seed: int = 0,
    workers: int = 0,
    cache_dir: Union[str, Path, None] = None,
    hf_backend: Optional[str] = None,
    hf_batch: Optional[int] = None,
    engine: Optional[EngineConfig] = None,
) -> ProxyPool:
    """Proxy pool for one benchmark (Table-2 setting).

    Args:
        benchmark: One of :data:`repro.workloads.BENCHMARK_NAMES`.
        area_limit_mm2: Budget; defaults to the paper's Table-2 limit.
        data_size: Workload problem size (None = calibrated default).
        space: Design space; defaults to Table 1.
        workload_seed: Workload-content seed.
        workers: ``> 1`` runs HF batches on a process pool of this size.
        cache_dir: Persistent evaluation-store directory (shared across
            runs; safe to reuse between benchmarks and area limits).
        hf_backend: Execution-backend spec (``auto``/``batched``/
            ``process``/``serial``); ``auto`` = batch backend, or the
            process pool when ``workers > 1``.
        hf_batch: Designs per design-batched simulator walk (None =
            kernel default; 1 disables the batched kernel).
        engine: :class:`~repro.engine.EngineConfig` superseding the four
            kwargs above (and adding store backend + learned tier).
    """
    space = space or default_design_space()
    workload = get_workload(benchmark, data_size=data_size, seed=workload_seed)
    limit = AREA_LIMITS[benchmark] if area_limit_mm2 is None else area_limit_mm2
    config = _engine_config(engine, workers, cache_dir, hf_backend, hf_batch)
    return ProxyPool(
        space,
        AnalyticalModel(workload.profile, space),
        SimulationProxy(
            workload, space,
            hf_batch=config.hf_batch, kernel=config.hf_kernel,
        ),
        area_limit_mm2=limit,
        config=config,
    )


def run_search(
    pool: ProxyPool,
    method: Union[str, SearchMethod],
    hf_budget: int,
    rng: Union[np.random.Generator, int, None] = None,
    propose_batch: int = 1,
    on_step=None,
):
    """Run one registered search method on a pool, to budget.

    The one-call form of the search layer every experiment and the CLI
    share: resolve ``method`` through the registry when given a name,
    drive it with a :class:`~repro.search.SearchLoop`, return the
    method's result (a ``BaselineResult`` for the stock methods).

    Args:
        pool: Evaluation frontend (fresh per run).
        method: Registry name or a pre-built :class:`SearchMethod`.
        hf_budget: Distinct HF simulations allowed.
        rng: Generator, int seed, or None (seed 0).
        propose_batch: Designs per step (q); each step is one batched
            HF dispatch. 1 reproduces the sequential protocol exactly.
        on_step: Optional per-step callback (checkpointing hooks).
    """
    if isinstance(method, str):
        method = make_method(method)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(0 if rng is None else rng)
    loop = SearchLoop(
        pool,
        method,
        hf_budget,
        rng=rng,
        propose_batch=propose_batch,
        on_step=on_step,
    )
    return loop.run()


def _average_profiles(workloads: Sequence[Workload]):
    """Profile whose analytical CPI approximates the suite mean.

    The LF model needs *one* profile; for the general-purpose experiment
    we average the per-workload profiles field-wise (mixes, mispredict
    rate, MLP) and average the lookup tables point-wise on a common grid.
    """
    import numpy as np

    from repro.workloads.profiler import MissRateCurve, WorkloadProfile
    from repro.workloads.isa import OpClass

    mix = {
        cls: float(np.mean([w.profile.mix[cls] for w in workloads]))
        for cls in OpClass
    }
    windows = workloads[0].profile.ilp_windows
    ilp = tuple(
        float(np.mean([w.profile.ilp_at(win) for w in workloads])) for win in windows
    )
    sizes = np.unique(
        np.concatenate([w.profile.miss_curve.sizes_lines for w in workloads])
    )
    rates = np.mean(
        [[w.profile.miss_curve.rate(s) for s in sizes] for w in workloads], axis=0
    )
    return WorkloadProfile(
        name="suite-average",
        num_instructions=int(np.mean([w.num_instructions for w in workloads])),
        mix=mix,
        ilp_windows=windows,
        ilp_ipc=ilp,
        miss_curve=MissRateCurve(sizes_lines=sizes, miss_rates=np.asarray(rates)),
        branch_mispredict_rate=float(
            np.mean([w.profile.branch_mispredict_rate for w in workloads])
        ),
        footprint_lines=int(np.mean([w.profile.footprint_lines for w in workloads])),
        mlp_supply=float(np.mean([w.profile.mlp_supply for w in workloads])),
    )


def build_suite_pool(
    area_limit_mm2: float = GENERAL_PURPOSE_LIMIT,
    scale: float = 1.0,
    space: Optional[DesignSpace] = None,
    workload_seed: int = 0,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    workers: int = 0,
    cache_dir: Union[str, Path, None] = None,
    hf_backend: Optional[str] = None,
    hf_batch: Optional[int] = None,
    engine: Optional[EngineConfig] = None,
) -> ProxyPool:
    """Proxy pool for the general-purpose (suite-average) experiment."""
    space = space or default_design_space()
    from repro.workloads.suite import DEFAULT_DATA_SIZES

    workloads = []
    for name in benchmarks:
        size = max(int(DEFAULT_DATA_SIZES[name] * scale), 8)
        if name == "fft":
            size = max(8, 1 << int(round(size - 1).bit_length()))
        workloads.append(get_workload(name, data_size=size, seed=workload_seed))
    config = _engine_config(engine, workers, cache_dir, hf_backend, hf_batch)
    return ProxyPool(
        space,
        AnalyticalModel(_average_profiles(workloads), space),
        SuiteAverageProxy(
            workloads, space,
            hf_batch=config.hf_batch, kernel=config.hf_kernel,
        ),
        area_limit_mm2=area_limit_mm2,
        config=config,
    )
