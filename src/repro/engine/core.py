"""The evaluation engine: batching, backends and the persistent cache.

``EvaluationEngine`` is the single funnel between the search layers and
the raw proxies. The :class:`~repro.proxies.pool.ProxyPool` owns one and
routes every evaluation -- single or batched -- through it, so swapping a
``SerialBackend`` for a ``ProcessPoolBackend`` (or pointing two runs at
the same ``--cache-dir``) changes evaluation *throughput* without any
search strategy noticing.

Pipeline of :meth:`EvaluationEngine.evaluate_many`:

1. validate every level vector;
2. collapse in-batch duplicates (one computation per distinct design);
3. resolve what the persistent cache already knows;
4. offer the remaining misses to the learned cost-model tier, which
   serves the queries its ensemble is confident about (off by default);
5. dispatch what is left to the execution backend;
6. persist fresh *simulated* results and return evaluations in input
   order, each labelled with its provenance
   (``cached`` / ``learned`` / ``simulated``).

Learned answers are never written to the persistent store: the store is
the tier's training corpus, and it must stay simulation-only.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.backends import (
    ExecutionBackend,
    SerialBackend,
    vectorized_lf_metrics,
)
from repro.engine.cache import ResultCache, space_signature
from repro.proxies.interface import Evaluation, Fidelity


class _AnalyticalTask:
    """Picklable scalar LF task (module-level so workers can import it)."""

    def __init__(self, analytical, space):
        self.analytical = analytical
        self.space = space

    def __call__(self, levels: np.ndarray) -> Dict[str, float]:
        cpi = self.analytical.cpi(self.space.config(levels))
        return {"cpi": cpi, "ipc": 1.0 / cpi}

    def many(self, batch: Sequence[np.ndarray]) -> List[Dict[str, float]]:
        """Chunk entry point (scalar model: a plain loop)."""
        return [self(levels) for levels in batch]


class _ProxyTask:
    """Picklable scalar HF task wrapping an ``EvaluationProxy``."""

    def __init__(self, proxy):
        self.proxy = proxy

    def __call__(self, levels: np.ndarray) -> Dict[str, float]:
        return dict(self.proxy.evaluate(levels).metrics)

    def many(self, batch: Sequence[np.ndarray]) -> List[Dict[str, float]]:
        """Chunk entry point: batch-capable proxies get whole chunks.

        Process-pool workers call this per chunk, so a worker's share of
        an HF batch still runs on the design-batched simulator kernel
        when the proxy supports it -- process- and design-level
        parallelism compose.
        """
        evaluate_many = getattr(self.proxy, "evaluate_many", None)
        if evaluate_many is None:
            return [self(levels) for levels in batch]
        return [dict(e.metrics) for e in evaluate_many(batch)]


class EvaluationEngine:
    """Batched, cached, backend-pluggable evaluation of design points.

    Args:
        space: The design space (validation + cache signature).
        analytical: LF model; required for LOW-fidelity requests.
        high_fidelity: HF proxy; required for HIGH-fidelity requests.
        backend: Execution backend (default: serial).
        cache: Persistent result store (a legacy :class:`ResultCache` or
            an :class:`~repro.store.EvalStore`; default: none).
        tier: Optional :class:`~repro.tiers.CostModelTier` consulted for
            cache misses before the backend (default: none = always
            simulate).
    """

    def __init__(
        self,
        space,
        analytical=None,
        high_fidelity=None,
        backend: Optional[ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        tier=None,
    ):
        self.space = space
        self.analytical = analytical
        self.high_fidelity = high_fidelity
        self.backend: ExecutionBackend = backend or SerialBackend()
        self.cache = cache
        self.tier = tier
        self._space_sig = space_signature(space)
        #: Evaluations actually computed by a backend, per fidelity value.
        self.computed: Dict[str, int] = {f.value: 0 for f in Fidelity}
        #: Requests answered from the persistent cache.
        self.cache_hits = 0
        #: Requests answered by the learned tier / declined to the backend.
        self.tier_served = 0
        self.tier_fallback = 0
        # Task objects are cached so their identity is stable across
        # batches -- a ProcessPoolBackend keys its persistent worker pool
        # on that identity and skips re-initialisation. Workload tags are
        # memoised because they are invariant per engine and hashing them
        # is measurable on the LF hot path.
        self._tasks: Dict[Fidelity, object] = {}
        self._workload_tags: Dict[Fidelity, str] = {}

    # ------------------------------------------------------------------
    # Tags / tasks
    # ------------------------------------------------------------------
    def workload_tag(self, fidelity: Fidelity) -> str:
        """Cache namespace for one fidelity of this engine's proxies.

        Tags must pin everything the metrics depend on besides the level
        vector: the workload identity *and* the model's own timing
        constants, so two runs with different parameter sets sharing one
        cache directory never read each other's results.
        """
        cached = self._workload_tags.get(fidelity)
        if cached is not None:
            return cached
        if fidelity is Fidelity.LOW:
            if self.analytical is None:
                raise ValueError("engine has no analytical model for LF requests")
            from repro.proxies.highfidelity import params_signature

            p = self.analytical.profile
            # Every profile field the analytical CPI reads goes into the
            # fingerprint -- two profiles that differ anywhere the model
            # can see must never share cache entries.
            payload = json.dumps(
                {
                    "name": p.name,
                    "n": p.num_instructions,
                    "mix": {str(k): v for k, v in p.mix.items()},
                    "ilp_windows": list(p.ilp_windows),
                    "ilp_ipc": list(p.ilp_ipc),
                    "miss_sizes": p.miss_curve.sizes_lines.tolist(),
                    "miss_rates": p.miss_curve.miss_rates.tolist(),
                    "branch": p.branch_mispredict_rate,
                    "footprint": p.footprint_lines,
                    "mlp": p.mlp_supply,
                },
                sort_keys=True,
            )
            fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]
            tag = (
                f"lf:{p.name}:n{p.num_instructions}:w{fingerprint}"
                f":p{params_signature(self.analytical.params)}"
            )
        else:
            proxy_tag = getattr(self.high_fidelity, "cache_tag", None)
            tag = f"hf:{proxy_tag or type(self.high_fidelity).__name__}"
        self._workload_tags[fidelity] = tag
        return tag

    def _task(self, fidelity: Fidelity):
        task = self._tasks.get(fidelity)
        if task is not None:
            return task
        if fidelity is Fidelity.LOW:
            if self.analytical is None:
                raise ValueError("engine has no analytical model for LF requests")
            task = _AnalyticalTask(self.analytical, self.space)
        else:
            if self.high_fidelity is None:
                raise ValueError(
                    "engine has no high-fidelity proxy for HF requests"
                )
            task = _ProxyTask(self.high_fidelity)
        self._tasks[fidelity] = task
        return task

    def _vector_fn(self, fidelity: Fidelity):
        """The whole-batch evaluator for ``fidelity``, if one exists.

        LF: the closed-form numpy model over the level matrix. HF: the
        proxy's ``evaluate_many`` (design-batched simulator kernel).
        Backends that cannot exploit a vector path simply ignore it.
        """
        if fidelity is Fidelity.LOW:
            if self.analytical is None:
                return None
            analytical, space = self.analytical, self.space

            def vector(batch: np.ndarray) -> List[Dict[str, float]]:
                return vectorized_lf_metrics(analytical, space, batch)

            return vector
        evaluate_many = getattr(self.high_fidelity, "evaluate_many", None)
        if evaluate_many is None:
            return None

        def hf_vector(batch: np.ndarray) -> List[Dict[str, float]]:
            return [dict(e.metrics) for e in evaluate_many(batch)]

        return hf_vector

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, levels: Sequence[int], fidelity: Fidelity) -> Evaluation:
        """Single-design convenience wrapper over :meth:`evaluate_many`."""
        return self.evaluate_many([levels], fidelity)[0]

    def evaluate_many(
        self, levels_batch: Sequence[Sequence[int]], fidelity: Fidelity
    ) -> List[Evaluation]:
        """Evaluate a batch at one fidelity; results align with inputs.

        Duplicate designs inside the batch are computed once and the
        resulting :class:`Evaluation` is shared across their positions.
        """
        validated = [self.space.validate_levels(lv) for lv in levels_batch]
        if not validated:
            return []
        need_tag = self.cache is not None or self.tier is not None
        tag = self.workload_tag(fidelity) if need_tag else ""

        # In-batch dedupe: first position of each distinct design.
        order: List[int] = []          # representative input index per distinct
        rep_of: Dict[int, int] = {}    # flat key -> position in `order`
        slot: List[int] = []           # per input: index into `order`
        for i, levels in enumerate(validated):
            key = self.space.flat_index(levels)
            if key not in rep_of:
                rep_of[key] = len(order)
                order.append(i)
            slot.append(rep_of[key])

        distinct = [validated[i] for i in order]
        metrics_out: List[Optional[Dict[str, float]]] = [None] * len(distinct)
        provenance = ["simulated"] * len(distinct)

        # Persistent-cache resolution.
        misses: List[int] = []
        if self.cache is not None:
            for j, levels in enumerate(distinct):
                cached = self.cache.get(
                    ResultCache.key(self._space_sig, tag, fidelity.value, levels)
                )
                if cached is not None:
                    metrics_out[j] = cached
                    provenance[j] = "cached"
                    self.cache_hits += 1
                else:
                    misses.append(j)
        else:
            misses = list(range(len(distinct)))

        # Learned-tier resolution: confident queries are answered by the
        # cost-model ensemble and never reach the backend. Learned
        # metrics are NOT persisted (the store is the training corpus).
        if misses and self.tier is not None:
            answers = self.tier.serve(
                self._space_sig,
                tag,
                fidelity.value,
                [distinct[j] for j in misses],
            )
            remaining: List[int] = []
            for j, learned in zip(misses, answers):
                if learned is not None:
                    metrics_out[j] = learned
                    provenance[j] = "learned"
                    self.tier_served += 1
                else:
                    remaining.append(j)
            self.tier_fallback += len(remaining)
            misses = remaining

        # Backend dispatch for the remaining distinct designs.
        if misses:
            batch = [distinct[j] for j in misses]
            computed = self.backend.map_evaluate(
                self._task(fidelity), batch, vector_fn=self._vector_fn(fidelity)
            )
            if len(computed) != len(batch):
                raise RuntimeError(
                    f"backend {self.backend.name!r} returned "
                    f"{len(computed)} results for {len(batch)} designs"
                )
            self.computed[fidelity.value] += len(batch)
            for j, metrics in zip(misses, computed):
                metrics_out[j] = metrics
                if self.cache is not None:
                    self.cache.put(
                        ResultCache.key(
                            self._space_sig, tag, fidelity.value, distinct[j]
                        ),
                        metrics,
                    )

        evaluations = [
            Evaluation(
                levels=distinct[j],
                fidelity=fidelity,
                metrics=metrics,
                provenance=provenance[j],
            )
            for j, metrics in enumerate(metrics_out)
        ]
        return [evaluations[slot[i]] for i in range(len(validated))]

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Engine counters (plus cache and pre-pass stats when present)."""
        out: Dict[str, float] = {
            "backend": self.backend.name,
            "computed_low": self.computed[Fidelity.LOW.value],
            "computed_high": self.computed[Fidelity.HIGH.value],
            "cache_hits": self.cache_hits,
        }
        if self.cache is not None:
            out.update({f"cache_{k}": v for k, v in self.cache.stats().items()})
        if self.tier is not None:
            tier_stats = self.tier.stats()
            out["tier_served"] = self.tier_served
            out["tier_fallback"] = self.tier_fallback
            out["tier_fits"] = tier_stats["fits"]
            out["tier_namespaces"] = tier_stats["namespaces"]
        prepass_stats = getattr(self.high_fidelity, "prepass_stats", None)
        if prepass_stats is not None:
            out.update(prepass_stats())
        return out
