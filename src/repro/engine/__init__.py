"""Parallel evaluation engine: backends + persistent cache for the pool.

- :mod:`repro.engine.backends` -- serial / process-pool / vectorised
  execution strategies behind one ``map_evaluate`` interface.
- :mod:`repro.engine.cache`    -- JSON-lines on-disk result cache shared
  across runs and explorers.
- :mod:`repro.engine.core`     -- :class:`EvaluationEngine`, the batched
  evaluation funnel the :class:`~repro.proxies.pool.ProxyPool` routes
  everything through.
"""

from repro.engine.backends import (
    BatchBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    vectorized_lf_metrics,
)
from repro.engine.cache import ResultCache, space_signature
from repro.engine.core import EvaluationEngine

__all__ = [
    "BatchBackend",
    "EvaluationEngine",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "make_backend",
    "space_signature",
    "vectorized_lf_metrics",
]
