"""Parallel evaluation engine: backends + persistent store for the pool.

- :mod:`repro.engine.backends` -- serial / process-pool / vectorised
  execution strategies behind one ``map_evaluate`` interface.
- :mod:`repro.engine.cache`    -- legacy flat JSON-lines result cache
  (superseded by :mod:`repro.store`, kept for compatibility).
- :mod:`repro.engine.config`   -- :class:`EngineConfig`, every evaluation
  knob in one JSON-serialisable dataclass.
- :mod:`repro.engine.core`     -- :class:`EvaluationEngine`, the batched
  evaluation funnel the :class:`~repro.proxies.pool.ProxyPool` routes
  everything through (persistent store + learned tier + backend).
"""

from repro.engine.backends import (
    BatchBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    vectorized_lf_metrics,
)
from repro.engine.cache import ResultCache, space_signature
from repro.engine.config import EngineConfig, normalize_hf_backend
from repro.engine.core import EvaluationEngine

__all__ = [
    "BatchBackend",
    "EngineConfig",
    "EvaluationEngine",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "make_backend",
    "normalize_hf_backend",
    "space_signature",
    "vectorized_lf_metrics",
]
