"""`EngineConfig`: every evaluation knob in one JSON-serialisable value.

The CLI used to thread five loose flags (``--workers``, ``--cache-dir``,
``--hf-backend``, ``--hf-batch``, ``--propose-batch``) through every
experiment entry point and the campaign scheduler; the store and tier
add three more. This dataclass is built **once** from parsed CLI args
(or programmatically) and travels as plain JSON -- through campaign
specs, across process boundaries to campaign workers, into run records --
so every layer sees the same configuration without a growing kwarg
tunnel.

``build_store`` / ``build_tier`` are the construction choke points: the
pool calls them, so *how* a store or tier is made lives here and nowhere
else. ``tier="off"`` (the default) builds no tier at all -- the engine
then runs the exact legacy pipeline, which is what keeps the golden and
regression suites bit-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional


def normalize_hf_backend(hf_backend: Optional[str]) -> Optional[str]:
    """CLI spelling -> ``make_backend`` spec (``auto``/``batched`` sugar)."""
    if hf_backend in (None, "auto"):
        return None
    if hf_backend == "batched":
        return "batch"
    return hf_backend


def normalize_hf_kernel(hf_kernel: Optional[str]) -> Optional[str]:
    """CLI spelling -> ``select_kernel`` request (``auto`` -> None)."""
    if hf_kernel in (None, "auto"):
        return None
    return hf_kernel


@dataclass(frozen=True)
class EngineConfig:
    """Evaluation-layer configuration, CLI-shaped and JSON-round-trippable.

    Attributes:
        workers: ``> 1`` runs HF batches on a process pool of this size.
        cache_dir: Evaluation-store directory (None = no persistence).
        store_backend: ``auto`` / ``sharded`` / ``sqlite`` / ``memory``.
        hf_backend: Execution-backend spec in CLI spelling (``auto`` /
            ``batched`` / ``batch`` / ``process`` / ``serial`` / None).
        hf_batch: Designs per design-batched simulator walk (None =
            kernel default; 1 disables the batched kernel).
        hf_kernel: Serial timing kernel: ``auto``/None (compiled when
            available, else python), ``compiled`` (error when absent)
            or ``python``. Resolved per process by
            :func:`repro.simulator.kernels.select_kernel`.
        propose_batch: Search-level designs per step (q).
        tier: Learned cost-model tier: ``off`` (default), ``gbrt``, ``rf``.
        tier_min_corpus: Smallest corpus the tier will fit on.
        tier_max_rel_std: Ensemble-disagreement confidence gate.
        tier_train_rows: Subsample cap per tier fit.
    """

    workers: int = 0
    cache_dir: Optional[str] = None
    store_backend: str = "auto"
    hf_backend: Optional[str] = None
    hf_batch: Optional[int] = None
    hf_kernel: Optional[str] = None
    propose_batch: int = 1
    tier: str = "off"
    tier_min_corpus: int = 256
    tier_max_rel_std: float = 0.02
    tier_train_rows: int = 1024

    # ------------------------------------------------------------------
    # JSON round-trip (campaign specs, run records, worker hand-off)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON dict; ``from_json`` inverts it exactly."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Optional[Dict[str, Any]]) -> "EngineConfig":
        """Rebuild from :meth:`to_json` output (unknown keys ignored)."""
        if payload is None:
            return cls()
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_args(cls, args) -> "EngineConfig":
        """Build from parsed CLI args, defaulting any absent flag."""
        defaults = cls()
        cache_dir = getattr(args, "cache_dir", None)
        return cls(
            workers=int(getattr(args, "workers", defaults.workers)),
            cache_dir=None if cache_dir is None else str(cache_dir),
            store_backend=getattr(args, "store_backend", defaults.store_backend),
            hf_backend=getattr(args, "hf_backend", defaults.hf_backend),
            hf_batch=getattr(args, "hf_batch", defaults.hf_batch),
            hf_kernel=normalize_hf_kernel(
                getattr(args, "hf_kernel", defaults.hf_kernel)
            ),
            propose_batch=int(
                getattr(args, "propose_batch", defaults.propose_batch) or 1
            ),
            tier=getattr(args, "tier", defaults.tier) or "off",
            tier_min_corpus=int(
                getattr(args, "tier_min_corpus", defaults.tier_min_corpus)
            ),
            tier_max_rel_std=float(
                getattr(args, "tier_max_rel_std", defaults.tier_max_rel_std)
            ),
            tier_train_rows=int(
                getattr(args, "tier_train_rows", defaults.tier_train_rows)
            ),
        )

    # ------------------------------------------------------------------
    # Builders (lazy imports: config is importable from anywhere)
    # ------------------------------------------------------------------
    def build_store(self):
        """The persistent :class:`~repro.store.EvalStore`, or None."""
        if self.cache_dir is None:
            return None
        from repro.store import make_store

        return make_store(self.cache_dir, backend=self.store_backend)

    def build_tier(self, store, space):
        """The :class:`~repro.tiers.CostModelTier`, or None when off."""
        if self.tier in (None, "off"):
            return None
        if store is None:
            raise ValueError(
                "tier requires a persistent store (pass cache_dir): the "
                "learned tier trains on the store corpus"
            )
        from repro.tiers import CostModelTier

        return CostModelTier(
            store,
            space,
            model=self.tier,
            min_corpus=self.tier_min_corpus,
            max_rel_std=self.tier_max_rel_std,
            train_rows=self.tier_train_rows,
        )
