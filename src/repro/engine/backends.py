"""Execution backends: how a batch of evaluations is actually run.

Three strategies behind one ``map_evaluate`` interface:

- :class:`SerialBackend`     -- in-process loop (the reference semantics).
- :class:`ProcessPoolBackend`-- chunked fan-out over ``concurrent.futures``
  worker processes; right for the high-fidelity simulator where each
  evaluation is tens of milliseconds of pure Python.
- :class:`BatchBackend`      -- whole-batch vectorisation: the analytical
  LF model over the level matrix in one numpy pass, and HF batches on
  the design-batched simulator kernel via the proxy's ``evaluate_many``;
  the single-process default.

All backends are deterministic given the batch: a backend may change
*where* an evaluation runs, never *what* it computes, so results are
bit-identical across backends for the scalar paths and float-accurate for
the vectorised one.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

#: A scalar evaluation task: one level vector in, one metrics dict out.
EvalFn = Callable[[np.ndarray], Dict[str, float]]

#: A vectorised task: a (batch, params) level matrix in, metrics out.
VectorFn = Callable[[np.ndarray], List[Dict[str, float]]]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can run a batch of evaluation tasks."""

    name: str

    def map_evaluate(
        self,
        fn: EvalFn,
        batch: Sequence[np.ndarray],
        vector_fn: Optional[VectorFn] = None,
    ) -> List[Dict[str, float]]:
        """Run ``fn`` over every level vector in ``batch``, in order."""
        ...


# ----------------------------------------------------------------------
# Serial
# ----------------------------------------------------------------------
class SerialBackend:
    """In-process, in-order evaluation -- the reference backend."""

    name = "serial"

    def map_evaluate(
        self,
        fn: EvalFn,
        batch: Sequence[np.ndarray],
        vector_fn: Optional[VectorFn] = None,
    ) -> List[Dict[str, float]]:
        """Evaluate sequentially in the calling process."""
        return [fn(levels) for levels in batch]


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------
# The task function is installed once per worker via the executor
# initializer; chunks then reference it through this module-level slot,
# so the (potentially large) simulator state is pickled once per worker
# instead of once per design.
_WORKER_FN: Optional[EvalFn] = None


def _init_worker(fn: EvalFn) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _run_chunk(chunk: List[np.ndarray]) -> List[Dict[str, float]]:
    assert _WORKER_FN is not None, "worker initializer did not run"
    many = getattr(_WORKER_FN, "many", None)
    if many is not None:
        # Batch-capable tasks get the whole chunk at once (the HF task
        # routes it to the design-batched simulator kernel).
        return many(chunk)
    return [_WORKER_FN(levels) for levels in chunk]


class ProcessPoolBackend:
    """Chunked dispatch over a ``concurrent.futures`` process pool.

    The executor (and the task function its workers were initialised
    with) persists across ``map_evaluate`` calls, so the simulator state
    is forked/pickled into the workers once per task function -- not once
    per batch. Callers that pass a *different* task function (e.g. a new
    pool on another workload) transparently get a fresh executor.

    Args:
        workers: Worker processes (default: all CPUs).
        chunk_size: Designs per dispatched chunk; default splits the
            batch into ~4 chunks per worker so stragglers rebalance.
        min_batch: Below this batch size the pool is skipped entirely
            and the batch runs serially -- process startup would dominate.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        min_batch: int = 2,
    ):
        self.workers = max(int(workers or (os.cpu_count() or 1)), 1)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.min_batch = max(int(min_batch), 1)
        self._serial = SerialBackend()
        self._executor = None
        self._installed_fn: Optional[EvalFn] = None

    def _chunks(self, batch: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(batch) // (4 * self.workers)))
        return [list(batch[i:i + size]) for i in range(0, len(batch), size)]

    def _executor_for(self, fn: EvalFn):
        if self._executor is not None and self._installed_fn is fn:
            return self._executor
        self.close()
        from concurrent.futures import ProcessPoolExecutor

        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_init_worker, initargs=(fn,)
        )
        self._installed_fn = fn
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (a later call restarts it)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._installed_fn = None

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def map_evaluate(
        self,
        fn: EvalFn,
        batch: Sequence[np.ndarray],
        vector_fn: Optional[VectorFn] = None,
    ) -> List[Dict[str, float]]:
        """Evaluate the batch across worker processes, preserving order."""
        if self.workers == 1 or len(batch) < self.min_batch:
            return self._serial.map_evaluate(fn, batch)
        executor = self._executor_for(fn)
        results: List[Dict[str, float]] = []
        for chunk_result in executor.map(_run_chunk, self._chunks(batch)):
            results.extend(chunk_result)
        return results


# ----------------------------------------------------------------------
# Vectorised (low fidelity)
# ----------------------------------------------------------------------
class BatchBackend:
    """Whole-batch dispatch: one ``vector_fn`` call instead of a loop.

    The engine hands this backend a ``vector_fn`` whenever one exists
    for the requested fidelity: the closed-form numpy model for LF, and
    the proxy's ``evaluate_many`` -- the design-batched simulator
    kernel -- for HF. Batches without a vector path (a proxy with no
    ``evaluate_many``) run on the ``fallback`` backend.
    """

    name = "batch"

    def __init__(self, fallback: Optional[ExecutionBackend] = None):
        self.fallback: ExecutionBackend = fallback or SerialBackend()

    def map_evaluate(
        self,
        fn: EvalFn,
        batch: Sequence[np.ndarray],
        vector_fn: Optional[VectorFn] = None,
    ) -> List[Dict[str, float]]:
        """Vectorise when possible, delegate otherwise."""
        if vector_fn is None or len(batch) == 0:
            return self.fallback.map_evaluate(fn, batch)
        return vector_fn(np.asarray(batch, dtype=np.int64))


def vectorized_lf_metrics(
    analytical, space, batch: np.ndarray
) -> List[Dict[str, float]]:
    """Analytical CPI of a whole level-vector batch in one numpy pass.

    Mirrors :meth:`repro.proxies.analytical.AnalyticalModel.breakdown`
    term by term (same interpolation tables, same constants) so the
    result agrees with the scalar model to float precision.
    """
    from repro.proxies.analytical import ASSOC_DEFICIT, IQ_WINDOW_FACTOR, ROB_PER_MLP

    batch = np.asarray(batch, dtype=np.int64)
    if batch.ndim != 2 or batch.shape[1] != space.num_parameters:
        raise ValueError(
            f"batch must have shape (n, {space.num_parameters}), got {batch.shape}"
        )
    p = analytical.profile
    params = analytical.params

    # levels -> concrete values, one gather per parameter axis
    value = {}
    for i, parameter in enumerate(space.parameters):
        candidates = np.asarray(parameter.candidates, dtype=np.float64)
        value[parameter.name] = candidates[batch[:, i]]

    # base (issue-limited) term
    window = np.minimum(
        value["rob_entries"], IQ_WINDOW_FACTOR * value["iq_entries"]
    )
    ilp_xs = np.array(p.ilp_windows, dtype=np.float64)
    ilp_ys = np.array(p.ilp_ipc, dtype=np.float64)
    ipc0 = np.minimum.reduce([
        value["decode_width"],
        np.interp(window, ilp_xs, ilp_ys),
        value["int_fu"] / max(p.frac_int, 1e-9),
        value["fp_fu"] / max(p.frac_fp, 1e-9),
        value["mem_fu"] / max(p.frac_mem, 1e-9),
    ])
    base = 1.0 / ipc0

    branch = (
        p.frac_branches * p.branch_mispredict_rate * params.branch_penalty_cycles
    )

    # memory terms
    def effective_lines(sets: np.ndarray, ways: np.ndarray) -> np.ndarray:
        return sets * ways * (1.0 - ASSOC_DEFICIT / ways)

    curve_xs = np.log2(p.miss_curve.sizes_lines.astype(np.float64))
    curve_ys = p.miss_curve.miss_rates

    def miss_rate(lines: np.ndarray) -> np.ndarray:
        return np.interp(np.log2(np.maximum(lines, 1.0)), curve_xs, curve_ys)

    mr1 = miss_rate(effective_lines(value["l1_sets"], value["l1_ways"]))
    mr2 = np.minimum(
        miss_rate(effective_lines(value["l2_sets"], value["l2_ways"])), mr1
    )
    mlp = np.maximum(
        1.0,
        np.minimum.reduce([
            value["n_mshr"],
            np.full(len(batch), p.mlp_supply),
            1.0 + value["rob_entries"] / ROB_PER_MLP,
        ]),
    )
    l1_miss = p.frac_mem * mr1 * params.l2_hit_cycles / mlp
    l2_miss = p.frac_mem * mr2 * params.mem_cycles / mlp

    cpi = base + branch + l1_miss + l2_miss
    return [{"cpi": float(c), "ipc": float(1.0 / c)} for c in cpi]


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def make_backend(
    spec: Optional[str] = None, workers: int = 0
) -> ExecutionBackend:
    """Backend from a CLI-style spec.

    Args:
        spec: ``"serial"``, ``"process"`` or ``"batch"``; ``None`` picks
            ``"process"`` when ``workers > 1`` else ``"batch"`` (the
            vectorised paths are bit-identical to serial and win or tie
            everywhere, so they are the single-process default).
        workers: Worker count for the process pool (0 = all CPUs when a
            process backend is requested explicitly).
    """
    if spec is None:
        spec = "process" if workers > 1 else "batch"
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend(workers=workers or None)
    if spec == "batch":
        return BatchBackend(
            fallback=ProcessPoolBackend(workers=workers or None)
            if workers > 1
            else SerialBackend()
        )
    raise ValueError(f"unknown backend {spec!r}; known: serial, process, batch")
