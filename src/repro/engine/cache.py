"""Persistent evaluation cache: JSON-lines on disk, dict in memory.

The cache is the cross-run complement of the in-memory
:class:`~repro.proxies.archive.DesignArchive`: the archive memoises within
one pool's lifetime, this cache survives the process and is shared by
every explorer that points at the same directory. Entries are keyed by

``(space signature, workload tag, fidelity, levels tuple)``

so caches from different design spaces or workloads never collide, and an
area-budget sweep over one benchmark pays for each simulation exactly
once across all budgets.

The on-disk format is append-only JSON lines -- one evaluation per line --
which makes partial writes (a killed run) recoverable: corrupt or
truncated lines are counted and skipped at load time instead of poisoning
the whole file. Appends are written as one ``O_APPEND`` ``os.write`` per
record, so concurrent writers (a campaign's worker processes sharing one
cache directory) interleave at line granularity instead of corrupting
each other's records.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

#: Cache key: (space signature, workload tag, fidelity value, levels).
CacheKey = Tuple[str, str, str, Tuple[int, ...]]

#: Default file name inside a cache directory.
CACHE_FILE = "evaluations.jsonl"


def space_signature(space) -> str:
    """Stable short signature of a design space (names + candidates).

    Two spaces share a signature iff they have the same parameters with
    the same candidate lists in the same order -- exactly the condition
    under which level vectors mean the same design.
    """
    payload = json.dumps(
        [[p.name, list(map(int, p.candidates))] for p in space.parameters],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ResultCache:
    """On-disk evaluation memo shared across runs.

    Args:
        path: A JSONL file, or a directory (the file is created inside it
            as :data:`CACHE_FILE`). ``None`` makes the cache memory-only
            (useful for tests).

    Attributes:
        hits / misses: Lookup counters for this process.
        corrupt_lines: Undecodable lines skipped at load time.
    """

    def __init__(self, path: Union[str, Path, None] = None):
        self._memo: Dict[CacheKey, Dict[str, float]] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt_lines = 0
        if path is None:
            self.path: Optional[Path] = None
        else:
            path = Path(path)
            if path.suffix != ".jsonl":
                if path.exists() and not path.is_dir():
                    raise ValueError(
                        f"cache path {path} exists and is not a directory; "
                        "pass a directory or a .jsonl file path"
                    )
                path = path / CACHE_FILE
            self.path = path
            self._load()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def key(
        space_sig: str, workload_tag: str, fidelity: str, levels: Sequence[int]
    ) -> CacheKey:
        """Build a cache key from its components."""
        return (space_sig, workload_tag, fidelity, tuple(int(v) for v in levels))

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Dict[str, float]]:
        """Cached metrics for ``key``, or None (counts hits/misses)."""
        metrics = self._memo.get(key)
        if metrics is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(metrics)

    def put(self, key: CacheKey, metrics: Dict[str, float]) -> None:
        """Insert metrics; appends one JSON line when file-backed."""
        if key in self._memo:
            return
        self._memo[key] = dict(metrics)
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "space": key[0],
            "workload": key[1],
            "fidelity": key[2],
            "levels": list(key[3]),
            "metrics": {k: float(v) for k, v in metrics.items()},
        }
        # One O_APPEND write per record: the kernel serialises the
        # offset update, so concurrent writer processes never splice
        # into each other's lines. No fsync: a torn tail line after a
        # crash is exactly what corrupt-line recovery absorbs at load.
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def __len__(self) -> int:
        return len(self._memo)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._memo

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Read the JSONL file, skipping corrupt/truncated lines."""
        if self.path is None or not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = self.key(
                        record["space"],
                        record["workload"],
                        record["fidelity"],
                        record["levels"],
                    )
                    metrics = {
                        k: float(v) for k, v in record["metrics"].items()
                    }
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self.corrupt_lines += 1
                    continue
                self._memo[key] = metrics

    def compact(self) -> int:
        """Rewrite the file without corrupt/duplicate lines.

        Returns the number of entries written. A no-op for memory-only
        caches.
        """
        if self.path is None:
            return len(self._memo)
        tmp = self.path.with_suffix(".jsonl.tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            for key, metrics in self._memo.items():
                record = {
                    "space": key[0],
                    "workload": key[1],
                    "fidelity": key[2],
                    "levels": list(key[3]),
                    "metrics": metrics,
                }
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        tmp.replace(self.path)
        self.corrupt_lines = 0
        return len(self._memo)

    def stats(self) -> Dict[str, int]:
        """Counters for reporting."""
        return {
            "entries": len(self._memo),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_lines": self.corrupt_lines,
        }
