"""Membership functions with analytic derivatives.

The paper's FNN fuzzifies design metrics into {low, avg, high} with
{inverse-sigmoid, bell, sigmoid} membership functions and design
parameters into {low, enough} with {inverse-sigmoid, sigmoid}. Each MF
exposes its value and its partial derivative with respect to the *center*,
because rule learning updates the centers by gradient descent (metric
centers are frozen, parameter centers train -- Sec. 2.3).

All functions are vector-safe (numpy broadcasting) and clamped away from
exact 0/1 so rule firing products never vanish entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Membership values are clamped to [EPS, 1] so products stay positive and
#: log-gradients stay finite.
EPS = 1e-6


def _clamp(mu: np.ndarray) -> np.ndarray:
    return np.clip(mu, EPS, 1.0)


@dataclass
class Sigmoid:
    """Rising sigmoid: models 'high' / 'enough'.

    ``mu(x) = 1 / (1 + exp(-slope * (x - center)))``
    """

    center: float
    slope: float = 1.0

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError("sigmoid slope must be positive")

    def value(self, x) -> np.ndarray:
        z = np.clip(self.slope * (np.asarray(x, dtype=np.float64) - self.center), -60, 60)
        return _clamp(1.0 / (1.0 + np.exp(-z)))

    def d_center(self, x) -> np.ndarray:
        """d mu / d center (note the sign: raising the center lowers mu)."""
        mu = self.value(x)
        return -self.slope * mu * (1.0 - mu)

    def linguistic(self, x: float) -> float:
        """Scalar convenience for rule rendering."""
        return float(self.value(x))


@dataclass
class InverseSigmoid:
    """Falling sigmoid: models 'low'.

    ``mu(x) = 1 / (1 + exp(+slope * (x - center)))``
    """

    center: float
    slope: float = 1.0

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError("sigmoid slope must be positive")

    def value(self, x) -> np.ndarray:
        z = np.clip(self.slope * (np.asarray(x, dtype=np.float64) - self.center), -60, 60)
        return _clamp(1.0 / (1.0 + np.exp(z)))

    def d_center(self, x) -> np.ndarray:
        """d mu / d center (raising the center raises mu)."""
        mu = self.value(x)
        return self.slope * mu * (1.0 - mu)


@dataclass
class Bell:
    """Generalised bell: models 'avg'.

    ``mu(x) = 1 / (1 + |x - center|/width ** (2*shape))``
    """

    center: float
    width: float = 1.0
    shape: float = 2.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.shape <= 0:
            raise ValueError("bell width and shape must be positive")

    def value(self, x) -> np.ndarray:
        u = np.abs((np.asarray(x, dtype=np.float64) - self.center) / self.width)
        return _clamp(1.0 / (1.0 + u ** (2.0 * self.shape)))

    def d_center(self, x) -> np.ndarray:
        """d mu / d center."""
        x = np.asarray(x, dtype=np.float64)
        diff = x - self.center
        u = np.abs(diff / self.width)
        mu = 1.0 / (1.0 + u ** (2.0 * self.shape))
        # d/dc [u^(2s)] = 2s * u^(2s-1) * (-sign(diff)/width)
        with np.errstate(divide="ignore", invalid="ignore"):
            du = np.where(
                u > 0,
                2.0 * self.shape * u ** (2.0 * self.shape - 1.0)
                * (-np.sign(diff) / self.width),
                0.0,
            )
        return -(mu ** 2) * du


#: The fuzzy-category layouts (Sec. 2.3): metrics get three categories,
#: parameters two.
METRIC_CATEGORIES: Tuple[str, ...] = ("low", "avg", "high")
PARAM_CATEGORIES: Tuple[str, ...] = ("low", "enough")


def metric_membership(center: float, spread: float, slope: float = 1.0):
    """Build the (low, avg, high) MF triple for a design metric.

    ``center`` anchors 'avg'; 'low'/'high' sit one ``spread`` either side.
    """
    if spread <= 0:
        raise ValueError("spread must be positive")
    return (
        InverseSigmoid(center - spread, slope),
        Bell(center, width=spread),
        Sigmoid(center + spread, slope),
    )


def param_membership(center: float, slope: float = 1.0):
    """Build the (low, enough) MF pair for a design parameter."""
    return (InverseSigmoid(center, slope), Sigmoid(center, slope))
