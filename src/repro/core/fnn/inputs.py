"""FNN input specification: how the design state is fuzzified.

Following Sec. 2.3, related design parameters are *merged* into one
linguistic input each (cache set & way -> cache size; the three FU counts
-> FU supply) to keep the rule count at ``3^#metrics * 2^#params``. Each
:class:`FuzzyInput` names the crisp feature, how to extract it from the
current (metrics, levels) state, its scale, and its initial MF centers.

Cache inputs use log2 of the capacity in *cache lines* -- this is the
scale on which the paper's Fig. 6 centers live: L1 spans 32..1024 lines
(log2 in [5, 10], so the swept centers 6..9 are interior), L2 spans
256..32768 lines (log2 in [8, 15], centers 10..13 interior).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Tuple

import numpy as np

from repro.designspace import MicroArchConfig

#: State passed to extractors: current design metrics (at least "cpi").
Metrics = Mapping[str, float]


@dataclass(frozen=True)
class FuzzyInput:
    """One linguistic input of the FNN.

    Attributes:
        name: Linguistic name used in extracted rules ("L1", "decode", ...).
        kind: ``"metric"`` (3 categories, frozen centers) or ``"param"``
            (2 categories, trainable center).
        members: Design-space parameter names merged into this input
            (empty for metrics).
        extract: Crisp-feature extractor ``(metrics, config) -> float``.
        lo / hi: Scale bounds of the crisp feature (used for slope
            defaults, initialisation and sanity checks).
        center: Initial MF center. For metrics this anchors 'avg'; for
            parameters it is the low/enough crossover.
        spread: For metrics only -- offset of the low/high sigmoids and
            width of the 'avg' bell.
    """

    name: str
    kind: str
    members: Tuple[str, ...]
    extract: Callable[[Metrics, MicroArchConfig], float]
    lo: float
    hi: float
    center: float
    spread: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("metric", "param"):
            raise ValueError("kind must be 'metric' or 'param'")
        if not self.lo < self.hi:
            raise ValueError(f"{self.name}: need lo < hi")

    @property
    def num_categories(self) -> int:
        """3 for metrics (low/avg/high), 2 for params (low/enough)."""
        return 3 if self.kind == "metric" else 2

    @property
    def default_slope(self) -> float:
        """Sigmoid slope making the transition span ~half the scale."""
        return 8.0 / (self.hi - self.lo)


# ----------------------------------------------------------------------
# Default input set for the Table-1 space
# ----------------------------------------------------------------------
def _cpi(metrics: Metrics, config: MicroArchConfig) -> float:
    return float(metrics["cpi"])


def _l1(metrics: Metrics, config: MicroArchConfig) -> float:
    return math.log2(config.l1_sets * config.l1_ways)


def _l2(metrics: Metrics, config: MicroArchConfig) -> float:
    return math.log2(config.l2_sets * config.l2_ways)


def _mshr(metrics: Metrics, config: MicroArchConfig) -> float:
    return float(config.n_mshr)


def _decode(metrics: Metrics, config: MicroArchConfig) -> float:
    return float(config.decode_width)


def _rob(metrics: Metrics, config: MicroArchConfig) -> float:
    return config.rob_entries / 32.0


def _fu(metrics: Metrics, config: MicroArchConfig) -> float:
    return float(config.total_fu)


def _iq(metrics: Metrics, config: MicroArchConfig) -> float:
    return float(config.iq_entries)


def default_inputs(
    cpi_center: float = 1.5,
    cpi_spread: float = 0.4,
    l1_center: float = 7.5,
    l2_center: float = 11.5,
) -> Tuple[FuzzyInput, ...]:
    """The paper's merged input layout for the Table-1 space.

    One CPI metric input plus seven merged parameter inputs -> the rule
    base has ``3 * 2^7 = 384`` rules. Centers default to the middle of
    each scale ("equally dividing the metric scale", Sec. 2.3); the cache
    centers are exposed because Fig. 6 sweeps them.
    """
    return (
        FuzzyInput("CPI", "metric", (), _cpi, lo=0.5, hi=4.0,
                   center=cpi_center, spread=cpi_spread),
        FuzzyInput("L1", "param", ("l1_sets", "l1_ways"), _l1,
                   lo=5.0, hi=10.0, center=l1_center),
        FuzzyInput("L2", "param", ("l2_sets", "l2_ways"), _l2,
                   lo=8.0, hi=15.0, center=l2_center),
        FuzzyInput("MSHR", "param", ("n_mshr",), _mshr,
                   lo=2.0, hi=10.0, center=6.0),
        FuzzyInput("decode", "param", ("decode_width",), _decode,
                   lo=1.0, hi=5.0, center=3.0),
        FuzzyInput("ROB", "param", ("rob_entries",), _rob,
                   lo=1.0, hi=5.0, center=3.0),
        FuzzyInput("FU", "param", ("mem_fu", "int_fu", "fp_fu"), _fu,
                   lo=3.0, hi=9.0, center=6.0),
        FuzzyInput("IQ", "param", ("iq_entries",), _iq,
                   lo=2.0, hi=24.0, center=12.0),
    )


def extract_features(
    inputs: Sequence[FuzzyInput], metrics: Metrics, config: MicroArchConfig
) -> np.ndarray:
    """Crisp feature vector for the current DSE state."""
    return np.array([inp.extract(metrics, config) for inp in inputs], dtype=np.float64)
