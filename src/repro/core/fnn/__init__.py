"""The explainable Fuzzy Neural Network (paper Sec. 2)."""

from repro.core.fnn.membership import (
    Sigmoid,
    InverseSigmoid,
    Bell,
    metric_membership,
    param_membership,
    METRIC_CATEGORIES,
    PARAM_CATEGORIES,
)
from repro.core.fnn.inputs import FuzzyInput, default_inputs, extract_features
from repro.core.fnn.network import FuzzyNeuralNetwork, ForwardCache, PolicyGradient
from repro.core.fnn.rules import (
    FuzzyRule,
    extract_rules,
    render_rule_base,
    rules_mentioning,
)
from repro.core.fnn.preferences import (
    Preference,
    embed_preference,
    decode_width_preference,
)
from repro.core.fnn.serialization import (
    fnn_to_dict,
    fnn_from_dict,
    save_fnn,
    load_fnn,
)

__all__ = [
    "Sigmoid",
    "InverseSigmoid",
    "Bell",
    "metric_membership",
    "param_membership",
    "METRIC_CATEGORIES",
    "PARAM_CATEGORIES",
    "FuzzyInput",
    "default_inputs",
    "extract_features",
    "FuzzyNeuralNetwork",
    "ForwardCache",
    "PolicyGradient",
    "FuzzyRule",
    "extract_rules",
    "render_rule_base",
    "rules_mentioning",
    "Preference",
    "embed_preference",
    "decode_width_preference",
    "fnn_to_dict",
    "fnn_from_dict",
    "save_fnn",
    "load_fnn",
]
