"""Saving and loading trained FNNs (plain JSON, no pickle).

A trained network is its consequent matrix plus its MF centers plus the
input/output layout it was built against. The JSON form keeps experiment
artefacts diffable and lets a rule base trained in one session be
inspected or reused (e.g. as a warm start) in another.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.fnn.inputs import FuzzyInput
from repro.core.fnn.network import FuzzyNeuralNetwork

#: Format marker; bump on breaking layout changes.
FORMAT_VERSION = 1


def fnn_to_dict(fnn: FuzzyNeuralNetwork) -> dict:
    """JSON-serialisable snapshot of a network (weights + layout)."""
    return {
        "format_version": FORMAT_VERSION,
        "inputs": [
            {
                "name": inp.name,
                "kind": inp.kind,
                "members": list(inp.members),
                "lo": inp.lo,
                "hi": inp.hi,
                "center": float(center),
                "spread": inp.spread,
            }
            for inp, center in zip(fnn.inputs, fnn.centers)
        ],
        "output_names": list(fnn.output_names),
        "consequents": fnn.consequents.tolist(),
    }


def fnn_from_dict(data: dict) -> FuzzyNeuralNetwork:
    """Rebuild a network from :func:`fnn_to_dict` output.

    The reconstructed inputs reuse the default extractors by *name* --
    custom extractor callables cannot round-trip through JSON, so loading
    is only supported for the standard Table-1 input layout.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported FNN format version: {version!r}")
    from repro.core.fnn.inputs import default_inputs

    defaults = {inp.name: inp for inp in default_inputs()}
    inputs = []
    for spec in data["inputs"]:
        name = spec["name"]
        if name not in defaults:
            raise ValueError(
                f"input {name!r} is not part of the standard layout; "
                "custom extractors cannot be restored from JSON"
            )
        base = defaults[name]
        inputs.append(
            FuzzyInput(
                name=name,
                kind=spec["kind"],
                members=tuple(spec["members"]),
                extract=base.extract,
                lo=spec["lo"],
                hi=spec["hi"],
                center=spec["center"],
                spread=spec["spread"],
            )
        )
    fnn = FuzzyNeuralNetwork(inputs, data["output_names"])
    consequents = np.asarray(data["consequents"], dtype=np.float64)
    if consequents.shape != fnn.consequents.shape:
        raise ValueError(
            f"consequent shape {consequents.shape} does not match the "
            f"layout's rule grid {fnn.consequents.shape}"
        )
    fnn.consequents = consequents
    fnn.centers = np.array([spec["center"] for spec in data["inputs"]])
    return fnn


def save_fnn(fnn: FuzzyNeuralNetwork, path: Union[str, Path]) -> None:
    """Write ``fnn`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(fnn_to_dict(fnn), indent=2))


def load_fnn(path: Union[str, Path]) -> FuzzyNeuralNetwork:
    """Read a network saved by :func:`save_fnn`."""
    return fnn_from_dict(json.loads(Path(path).read_text()))
