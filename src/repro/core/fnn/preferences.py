"""Designer preference injection (Sec. 2.3 / Fig. 7).

"If we wish to favor designs with a decode width of 4, we can define 3 as
'low' and 4 as 'enough' in the antecedent part of the rule. We then adjust
the corresponding consequence to increase the decode width when it falls
short." -- this module implements exactly that: move the relevant input's
low/enough crossover between the two values, and bias the consequents of
all 'X is low' rules toward increasing X. The preference lives in the
*knowledge* of the FNN, so the network generates the preferred decisions
itself instead of having its outputs post-edited.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fnn.network import FuzzyNeuralNetwork


@dataclass(frozen=True)
class Preference:
    """A target-value preference on one design parameter.

    Attributes:
        input_name: The FNN linguistic input to act on (e.g. ``"decode"``).
        output_name: The design-space parameter to favour increasing
            (e.g. ``"decode_width"``).
        below_value: Crisp values below this count as 'low'...
        target_value: ...and this value counts as 'enough'.
        strength: Consequent bias added to every 'input is low' rule.
    """

    input_name: str
    output_name: str
    below_value: float
    target_value: float
    strength: float = 1.0

    def __post_init__(self) -> None:
        if not self.below_value < self.target_value:
            raise ValueError("below_value must be < target_value")
        if self.strength <= 0:
            raise ValueError("strength must be positive")


def embed_preference(fnn: FuzzyNeuralNetwork, preference: Preference) -> None:
    """Embed ``preference`` into the FNN's rule base, in place.

    Raises:
        KeyError: When the input or output name is unknown.
        ValueError: When the preferred input is a frozen metric input.
    """
    try:
        input_idx = [inp.name for inp in fnn.inputs].index(preference.input_name)
    except ValueError as exc:
        raise KeyError(f"unknown FNN input {preference.input_name!r}") from exc
    try:
        output_idx = fnn.output_names.index(preference.output_name)
    except ValueError as exc:
        raise KeyError(f"unknown FNN output {preference.output_name!r}") from exc
    if not fnn.trainable[input_idx]:
        raise ValueError("cannot place a preference on a frozen metric input")

    # 1. Redefine the linguistic boundary: the crossover sits between the
    #    "too small" value and the preferred value.
    fnn.centers[input_idx] = 0.5 * (preference.below_value + preference.target_value)

    # 2. Teach the consequent: every rule whose antecedent says the input
    #    is 'low' claims the parameter can increase, strongly.
    low_category = 0  # params: (low, enough)
    low_rules = fnn.rule_grid[:, input_idx] == low_category
    fnn.consequents[low_rules, output_idx] += preference.strength
    # and rules that say it is already 'enough' actively discourage
    # pushing past the target (the membership functions overlap around
    # the crossover, so a zero consequent would still let the residual
    # 'low' firing overshoot the preference).
    enough_rules = ~low_rules
    fnn.consequents[enough_rules, output_idx] = np.minimum(
        fnn.consequents[enough_rules, output_idx], -preference.strength
    )


def decode_width_preference(
    target: int = 4, strength: float = 1.0
) -> Preference:
    """The paper's Fig.-7 preference: favour decode width ``target``."""
    if not 2 <= target <= 5:
        raise ValueError("decode-width target must be in 2..5")
    return Preference(
        input_name="decode",
        output_name="decode_width",
        below_value=float(target - 1),
        target_value=float(target),
        strength=strength,
    )
