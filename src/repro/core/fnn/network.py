"""The Fuzzy Neural Network (Sec. 2.2-2.3).

Five layers, exactly the paper's Fig. 3:

1. **Fuzzification** -- membership degree of each crisp input to each of
   its categories (metrics: low/avg/high; params: low/enough).
2. **Ruling** -- product t-norm over one category per input, for every
   category combination (the full grid, ``3^#metrics * 2^#params`` rules).
3. **Normalisation** -- firing strengths scaled to sum to one.
4. **Defuzzification** -- Takagi-Sugeno: each rule carries one crisp
   consequent per output parameter (the matrix ``W``).
5. **Output** -- firing-weighted sum: per-parameter "increase" scores.

The network doubles as a stochastic policy: scores feed a masked softmax
over the increase actions, and :meth:`log_policy_gradient` returns the
REINFORCE gradient with respect to both the consequents and the
*trainable* MF centers (metric centers are frozen per Sec. 2.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fnn.inputs import FuzzyInput
from repro.core.fnn.membership import (
    Bell,
    InverseSigmoid,
    Sigmoid,
    METRIC_CATEGORIES,
    PARAM_CATEGORIES,
)

#: Numerical floor for normalisation / log computations.
_EPS = 1e-12


@dataclass
class ForwardCache:
    """Intermediates of one forward pass (reused by the backward pass)."""

    features: np.ndarray          # (n_inputs,)
    memberships: List[np.ndarray]  # per input: (n_categories,)
    d_centers: List[np.ndarray]    # per input: (n_categories,) d mu / d c
    firing: np.ndarray             # (n_rules,)
    normalized: np.ndarray         # (n_rules,)
    scores: np.ndarray             # (n_outputs,)


@dataclass
class PolicyGradient:
    """REINFORCE gradient of ``log pi(action | state)``."""

    d_consequents: np.ndarray  # same shape as W: (n_rules, n_outputs)
    d_centers: np.ndarray      # (n_inputs,), zero at frozen inputs
    log_prob: float
    probs: np.ndarray          # (n_outputs,) masked policy


class FuzzyNeuralNetwork:
    """ANFIS-style fuzzy network over a design space's linguistic inputs.

    Args:
        inputs: Linguistic input specs (see
            :func:`repro.core.fnn.inputs.default_inputs`).
        output_names: One score output per design-space parameter, in the
            design space's level-vector order.
        rng: Source of randomness for consequent initialisation.
        consequent_scale: Std-dev of the initial consequents; small values
            start the policy near-uniform.
    """

    def __init__(
        self,
        inputs: Sequence[FuzzyInput],
        output_names: Sequence[str],
        rng: Optional[np.random.Generator] = None,
        consequent_scale: float = 0.01,
    ):
        if not inputs:
            raise ValueError("need at least one fuzzy input")
        if not output_names:
            raise ValueError("need at least one output")
        self.inputs: Tuple[FuzzyInput, ...] = tuple(inputs)
        self.output_names: Tuple[str, ...] = tuple(output_names)
        rng = rng or np.random.default_rng(0)

        # Rule grid: every combination of one category per input.
        cats = [range(inp.num_categories) for inp in self.inputs]
        self.rule_grid = np.array(list(itertools.product(*cats)), dtype=np.int8)
        self.num_rules = len(self.rule_grid)
        #: Per-input gather matrix: rule_grid[:, i] selects input i's category.

        self.consequents = rng.normal(
            0.0, consequent_scale, size=(self.num_rules, len(output_names))
        )

        # Mutable MF parameters: centers (trainable for params) and the
        # frozen slopes/spreads derived from the input specs.
        self.centers = np.array([inp.center for inp in self.inputs], dtype=np.float64)
        self._slopes = np.array([inp.default_slope for inp in self.inputs])
        self._spreads = np.array([inp.spread for inp in self.inputs])
        self.trainable = np.array(
            [inp.kind == "param" for inp in self.inputs], dtype=bool
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Number of linguistic inputs."""
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        """Number of score outputs (design parameters)."""
        return len(self.output_names)

    def category_names(self, input_index: int) -> Tuple[str, ...]:
        """Linguistic category names of one input."""
        if self.inputs[input_index].kind == "metric":
            return METRIC_CATEGORIES
        return PARAM_CATEGORIES

    def membership_functions(self, input_index: int):
        """Instantiate the MF objects for one input at current centers."""
        inp = self.inputs[input_index]
        c = float(self.centers[input_index])
        s = float(self._slopes[input_index])
        if inp.kind == "metric":
            spread = float(self._spreads[input_index])
            return (
                InverseSigmoid(c - spread, s),
                Bell(c, width=spread),
                Sigmoid(c + spread, s),
            )
        return (InverseSigmoid(c, s), Sigmoid(c, s))

    # ------------------------------------------------------------------
    # Layers 1-5
    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> ForwardCache:
        """Run layers 1-5; returns scores plus cached intermediates."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.num_inputs,):
            raise ValueError(
                f"features must have shape ({self.num_inputs},), got {features.shape}"
            )
        memberships: List[np.ndarray] = []
        d_centers: List[np.ndarray] = []
        for i in range(self.num_inputs):
            mfs = self.membership_functions(i)
            x = features[i]
            memberships.append(np.array([mf.value(x) for mf in mfs]).ravel())
            d_centers.append(np.array([mf.d_center(x) for mf in mfs]).ravel())

        # Layer 2: product t-norm across the rule grid.
        firing = np.ones(self.num_rules, dtype=np.float64)
        for i in range(self.num_inputs):
            firing *= memberships[i][self.rule_grid[:, i]]

        # Layer 3: normalisation.
        total = float(firing.sum())
        normalized = firing / max(total, _EPS)

        # Layers 4-5: TS defuzzification + weighted sum.
        scores = normalized @ self.consequents
        return ForwardCache(
            features=features,
            memberships=memberships,
            d_centers=d_centers,
            firing=firing,
            normalized=normalized,
            scores=scores,
        )

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Per-output increase scores (layer-5 output only)."""
        return self.forward(features).scores

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    def policy(
        self,
        features: np.ndarray,
        mask: Optional[np.ndarray] = None,
        temperature: float = 1.0,
    ) -> Tuple[np.ndarray, ForwardCache]:
        """Masked softmax over increase actions.

        Args:
            features: Crisp input vector.
            mask: Boolean validity per output; invalid actions get
                probability zero. ``None`` means all valid.
            temperature: Softmax temperature (>0); lower is greedier.
        """
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        cache = self.forward(features)
        logits = cache.scores / temperature
        if mask is None:
            mask = np.ones(self.num_outputs, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            if not mask.any():
                raise ValueError("policy mask excludes every action")
        shifted = logits - logits[mask].max()
        weights = np.where(mask, np.exp(shifted), 0.0)
        probs = weights / weights.sum()
        return probs, cache

    def act(
        self,
        features: np.ndarray,
        rng: np.random.Generator,
        mask: Optional[np.ndarray] = None,
        temperature: float = 1.0,
        greedy: bool = False,
    ) -> int:
        """Sample (or argmax, when ``greedy``) an increase action."""
        probs, _ = self.policy(features, mask, temperature)
        if greedy:
            return int(np.argmax(probs))
        return int(rng.choice(self.num_outputs, p=probs))

    def log_policy_gradient(
        self,
        features: np.ndarray,
        action: int,
        mask: Optional[np.ndarray] = None,
        temperature: float = 1.0,
    ) -> PolicyGradient:
        """Gradient of ``log pi(action | features)`` wrt W and centers.

        Uses the softmax identity ``d log pi(a) / d score_k =
        (1[k==a] - pi_k) / T`` chained through layers 5..1. Center
        gradients at frozen (metric) inputs are forced to zero.
        """
        probs, cache = self.policy(features, mask, temperature)
        if probs[action] <= 0:
            raise ValueError(f"action {action} is masked out")
        dlogp_dscore = -probs / temperature
        dlogp_dscore[action] += 1.0 / temperature

        # Consequent gradient: scores = g @ W  ->  d score_k / d W[r,k] = g_r
        d_consequents = np.outer(cache.normalized, dlogp_dscore)

        # Center gradient via the normalised-firing quotient rule:
        #   rho_r = (d mu_i / d c_i) / mu_i  at input i's category in rule r
        #   d g_r / d c_i = g_r * (rho_r - sum_s g_s rho_s)
        d_centers = np.zeros(self.num_inputs)
        g = cache.normalized
        for i in range(self.num_inputs):
            if not self.trainable[i]:
                continue
            mu = cache.memberships[i]
            dmu = cache.d_centers[i]
            rho = (dmu / np.maximum(mu, _EPS))[self.rule_grid[:, i]]
            dg = g * (rho - float(g @ rho))
            dscores = dg @ self.consequents  # (n_outputs,)
            d_centers[i] = float(dlogp_dscore @ dscores)

        return PolicyGradient(
            d_consequents=d_consequents,
            d_centers=d_centers,
            log_prob=float(np.log(max(probs[action], _EPS))),
            probs=probs,
        )

    # ------------------------------------------------------------------
    # Parameter updates
    # ------------------------------------------------------------------
    def apply_update(
        self,
        d_consequents: np.ndarray,
        d_centers: np.ndarray,
        lr_consequents: float,
        lr_centers: float,
        center_bounds: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> None:
        """Gradient-ascent step on consequents and trainable centers.

        ``center_bounds`` defaults to each input's [lo, hi] scale -- the
        paper's interpretability check "if the centers of the MFs are
        updated beyond the limits of the design space, reduce the learning
        rate" becomes a hard guarantee here.
        """
        if d_consequents.shape != self.consequents.shape:
            raise ValueError("consequent gradient shape mismatch")
        self.consequents += lr_consequents * d_consequents
        step = lr_centers * np.where(self.trainable, d_centers, 0.0)
        self.centers += step
        bounds = center_bounds or [(inp.lo, inp.hi) for inp in self.inputs]
        for i, (lo, hi) in enumerate(bounds):
            self.centers[i] = float(np.clip(self.centers[i], lo, hi))

    def clone_weights_from(self, other: "FuzzyNeuralNetwork") -> None:
        """Copy consequents and centers from a same-shape network."""
        if other.consequents.shape != self.consequents.shape:
            raise ValueError("incompatible FNN shapes")
        self.consequents = other.consequents.copy()
        self.centers = other.centers.copy()

    # ------------------------------------------------------------------
    # Serialisation (plain dict -- keeps experiments reproducible)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of all learnable state."""
        return {
            "consequents": self.consequents.copy(),
            "centers": self.centers.copy(),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        consequents = np.asarray(state["consequents"], dtype=np.float64)
        centers = np.asarray(state["centers"], dtype=np.float64)
        if consequents.shape != self.consequents.shape:
            raise ValueError("consequents shape mismatch")
        if centers.shape != self.centers.shape:
            raise ValueError("centers shape mismatch")
        self.consequents = consequents.copy()
        self.centers = centers.copy()
