"""Rule extraction: translating FNN weights into IF/THEN rules (Sec. 4.3).

The paper's script "automatically translates the calculations of FNN into
rules": matrix entries map to the fuzzy values of the rules, then redundant
parts are pruned --

- a rule (a row of the consequent matrix) whose 1-norm is nearly 0 is
  redundant and dropped;
- an antecedent item X is redundant for a conclusion if 'X is high' and
  'X is low' both claim the same parameter can increase -- implemented as
  a Quine-McCluskey-style merge over the category grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fnn.network import FuzzyNeuralNetwork

#: Wildcard category marker after antecedent pruning.
ANY = -1


@dataclass(frozen=True)
class FuzzyRule:
    """One extracted IF/THEN rule.

    Attributes:
        antecedents: ``(input_name, category_name)`` pairs; pruned inputs
            are absent.
        output: The design parameter the consequent talks about.
        weight: Mean consequent strength over the merged rule cells;
            positive for "can increase" rules, negative for "should not
            increase" rules.
        direction: ``"increase"`` (the paper's listing) or ``"hold"``
            (strong negative consequents -- what the episode loop's FNN
            veto acts on).
    """

    antecedents: Tuple[Tuple[str, str], ...]
    output: str
    weight: float
    direction: str = "increase"

    def render(self) -> str:
        """The paper's textual form."""
        if self.antecedents:
            cond = " AND ".join(f"{name} is {cat}" for name, cat in self.antecedents)
        else:
            cond = "always"
        verb = (
            "can increase" if self.direction == "increase"
            else "should NOT increase"
        )
        return f"IF {cond} THEN {self.output} {verb}  [w={self.weight:+.3f}]"

    def __str__(self) -> str:  # pragma: no cover - delegates to render
        return self.render()


def _merge_patterns(
    patterns: List[Tuple[int, ...]], num_categories: Sequence[int]
) -> List[Tuple[int, ...]]:
    """Quine-McCluskey-style reduction over category patterns.

    A position collapses to :data:`ANY` when patterns covering *all* of
    that input's categories (with the rest identical) are present.
    """
    current = set(patterns)
    changed = True
    while changed:
        changed = False
        merged = set()
        used = set()
        items = sorted(current)
        for pat in items:
            for pos, n_cat in enumerate(num_categories):
                if pat[pos] == ANY:
                    continue
                siblings = []
                for cat in range(n_cat):
                    sib = pat[:pos] + (cat,) + pat[pos + 1:]
                    if sib in current:
                        siblings.append(sib)
                if len(siblings) == n_cat:
                    collapsed = pat[:pos] + (ANY,) + pat[pos + 1:]
                    merged.add(collapsed)
                    used.update(siblings)
                    changed = True
        survivors = {p for p in current if p not in used}
        current = survivors | merged
    return sorted(current)


def extract_rules(
    fnn: FuzzyNeuralNetwork,
    weight_threshold: float = 0.05,
    norm_threshold: float = 1e-3,
    top_k: Optional[int] = None,
    direction: str = "increase",
) -> List[FuzzyRule]:
    """Extract a rule base from ``fnn``.

    Args:
        fnn: A (typically trained) network.
        weight_threshold: Minimum |consequent| for a cell to count as
            claiming the rule's direction.
        norm_threshold: Rules whose consequent-row 1-norm is below this are
            considered never-fired/redundant and dropped (the paper's
            "column whose 1-norm is nearly 0" prune, transposed to our
            ``(rules, outputs)`` layout).
        top_k: Keep only the strongest ``top_k`` rules overall (by |weight|)
            when given.
        direction: ``"increase"`` extracts positive consequents (the
            paper's Sec.-4.3 listing); ``"hold"`` extracts strong negative
            consequents ("X should NOT increase"), the knowledge the
            episode loop's FNN veto enforces.
    """
    if direction not in ("increase", "hold"):
        raise ValueError("direction must be 'increase' or 'hold'")
    num_categories = [inp.num_categories for inp in fnn.inputs]
    w = fnn.consequents
    alive = np.abs(w).sum(axis=1) > norm_threshold

    def selects(value: float) -> bool:
        if direction == "increase":
            return value > weight_threshold
        return value < -weight_threshold

    rules: List[FuzzyRule] = []
    for k, output in enumerate(fnn.output_names):
        selected = [
            tuple(int(c) for c in fnn.rule_grid[r])
            for r in range(fnn.num_rules)
            if alive[r] and selects(w[r, k])
        ]
        if not selected:
            continue
        weight_of = {
            tuple(int(c) for c in fnn.rule_grid[r]): float(w[r, k])
            for r in range(fnn.num_rules)
        }
        for pattern in _merge_patterns(selected, num_categories):
            cells = _expand(pattern, num_categories)
            mean_w = float(np.mean([weight_of[c] for c in cells]))
            antecedents = tuple(
                (fnn.inputs[i].name, fnn.category_names(i)[cat])
                for i, cat in enumerate(pattern)
                if cat != ANY
            )
            rules.append(FuzzyRule(antecedents, output, mean_w, direction))

    rules.sort(key=lambda r: -abs(r.weight))
    if top_k is not None:
        rules = rules[:top_k]
    return rules


def _expand(
    pattern: Tuple[int, ...], num_categories: Sequence[int]
) -> List[Tuple[int, ...]]:
    """All concrete category tuples a wildcard pattern covers."""
    cells = [()]
    for pos, n_cat in enumerate(num_categories):
        options = range(n_cat) if pattern[pos] == ANY else (pattern[pos],)
        cells = [c + (o,) for c in cells for o in options]
    return cells


def render_rule_base(rules: Sequence[FuzzyRule], max_rules: int = 20) -> str:
    """Multi-line listing in the paper's Sec. 4.3 style."""
    lines = [f"Extracted rule base ({len(rules)} rules):"]
    for rule in list(rules)[:max_rules]:
        lines.append("  - " + rule.render())
    if len(rules) > max_rules:
        lines.append(f"  ... {len(rules) - max_rules} more")
    return "\n".join(lines)


def rules_mentioning(
    rules: Sequence[FuzzyRule], output: str
) -> List[FuzzyRule]:
    """Filter the rule base to one conclusion parameter."""
    return [r for r in rules if r.output == output]
