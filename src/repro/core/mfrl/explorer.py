"""The multi-fidelity explorer: LF phase -> transition -> HF phase (Sec. 3).

Orchestrates the full Fig.-4 flow:

1. **LF phase** (Sec. 3.1): REINFORCE episodes rewarded by analytical IPC
   (eq. 3, reference = running best), with the analytical gradient mask
   restricting actions to model-beneficial increases. Runs until the
   greedy rollout stabilises or the episode budget is hit.
2. **Transition** (Sec. 3.2): HF-simulate the converged design
   (-> ``IPC_h0``) and a subset of the LF archive's best designs (-> the
   seed set ``H``).
3. **HF phase** (Sec. 3.2): episodes seeded from ``H``, *without* the
   gradient mask, rewarded by HF IPC against ``IPC_h0`` (eq. 4), until
   the HF-simulation budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.fnn.inputs import FuzzyInput, default_inputs
from repro.core.fnn.network import FuzzyNeuralNetwork
from repro.core.mfrl.env import DseEnvironment
from repro.core.mfrl.reinforce import EpisodeRecord, ReinforceTrainer, TrainerConfig
from repro.proxies.interface import Fidelity
from repro.proxies.pool import ProxyPool


@dataclass(frozen=True)
class ExplorerConfig:
    """Budgets and schedule of the multi-fidelity exploration.

    Attributes:
        lf_episodes: Maximum LF-phase episodes.
        lf_min_episodes: Episodes trained before convergence may stop the
            phase (LF evaluations are ~free; extra episodes sharpen the
            rule base the FNN will be read from).
        lf_check_every: Greedy-probe cadence for convergence detection.
        lf_patience: Consecutive identical greedy probes => converged.
        hf_budget: Total distinct HF simulations allowed (the paper uses
            9 for its method vs 10 for baselines).
        hf_seed_designs: How many LF-archive best designs to HF-simulate
            at the transition (beyond the converged design).
        trainer: REINFORCE hyper-parameters (shared by both phases).
    """

    lf_episodes: int = 260
    lf_min_episodes: int = 120
    lf_check_every: int = 10
    lf_patience: int = 3
    hf_budget: int = 9
    hf_seed_designs: int = 3
    trainer: TrainerConfig = field(default_factory=TrainerConfig)

    def __post_init__(self) -> None:
        if self.hf_budget < 2:
            raise ValueError("hf_budget must cover at least the converged design + 1")
        if self.hf_seed_designs < 1:
            raise ValueError("need at least one HF seed design")


@dataclass
class ExplorationResult:
    """Everything the experiments need from one exploration run."""

    #: LF-converged design and its *HF* CPI (what Table 2 calls "LF").
    lf_levels: np.ndarray
    lf_hf_cpi: float
    #: Best design found by the full multi-fidelity flow and its HF CPI.
    best_levels: np.ndarray
    best_hf_cpi: float
    #: Per-episode telemetry, LF then HF.
    lf_history: List[EpisodeRecord]
    hf_history: List[EpisodeRecord]
    #: Distinct HF simulations actually spent.
    hf_simulations: int
    #: The trained network (rule extraction happens on this).
    fnn: FuzzyNeuralNetwork


class MultiFidelityExplorer:
    """The paper's full DSE framework bound to one proxy pool.

    Args:
        pool: The proxy pool (defines the workload, area budget, space).
        inputs: FNN linguistic inputs; defaults to the Table-1 layout.
        config: Budgets and hyper-parameters.
        seed: Seed for all stochastic components of the run.
        fnn: Optionally a pre-built (e.g. preference-loaded) network.
    """

    def __init__(
        self,
        pool: ProxyPool,
        inputs: Optional[Sequence[FuzzyInput]] = None,
        config: ExplorerConfig = ExplorerConfig(),
        seed: int = 0,
        fnn: Optional[FuzzyNeuralNetwork] = None,
    ):
        self.pool = pool
        self.inputs = tuple(inputs) if inputs is not None else default_inputs()
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.fnn = fnn or FuzzyNeuralNetwork(
            self.inputs, pool.space.names, rng=self.rng
        )
        self._lf_env = DseEnvironment(pool, self.inputs, use_gradient_mask=True)
        self._hf_env = DseEnvironment(pool, self.inputs, use_gradient_mask=False)

    # ------------------------------------------------------------------
    # Phase 1: low fidelity
    # ------------------------------------------------------------------
    def run_lf_phase(self) -> ReinforceTrainer:
        """Model-based LF training (Sec. 3.1); returns the trainer."""
        trainer = ReinforceTrainer(self._lf_env, self.fnn, self.config.trainer)
        best_ipc = -np.inf
        stable_probe: Optional[np.ndarray] = None
        stable_count = 0

        def lf_ipc(levels: np.ndarray) -> float:
            return self.pool.evaluate_low(levels).ipc

        for episode in range(self.config.lf_episodes):
            reference = best_ipc if np.isfinite(best_ipc) else 0.0
            record = trainer.run_episode(self.rng, lf_ipc, reference)
            ipc = 1.0 / record.final_cpi
            if ipc > best_ipc:
                best_ipc = ipc
            if (episode + 1) % self.config.lf_check_every == 0:
                probe = trainer.greedy_design(self.rng)
                if stable_probe is not None and np.array_equal(probe, stable_probe):
                    stable_count += 1
                else:
                    stable_probe = probe
                    stable_count = 0
                if (
                    stable_count >= self.config.lf_patience
                    and episode + 1 >= self.config.lf_min_episodes
                ):
                    break
        return trainer

    # ------------------------------------------------------------------
    # Phase 2: transition + high fidelity
    # ------------------------------------------------------------------
    def run_hf_phase(
        self, lf_trainer: ReinforceTrainer
    ) -> ExplorationResult:
        """Transition and HF training (Sec. 3.2); returns the result."""
        pool = self.pool
        converged = lf_trainer.greedy_design(self.rng)

        # Transition: HF on the converged design and LF-best subset. The
        # seed verifications are independent, so they go to the engine as
        # one batch (parallel under a ProcessPoolBackend); the selection
        # logic mirrors the sequential budget check -- only designs not
        # yet HF-archived consume budget.
        h0 = pool.evaluate_high(converged)
        ipc_h0 = h0.ipc
        seeds = [converged]
        pending: List[np.ndarray] = []
        projected = pool.archive.count(Fidelity.HIGH)
        pending_keys = set()
        for evaluation in pool.archive.best_designs(
            Fidelity.LOW, self.config.hf_seed_designs
        ):
            if projected >= self.config.hf_budget - 1:
                break
            seeds.append(evaluation.levels)
            pending.append(evaluation.levels)
            key = pool.space.flat_index(evaluation.levels)
            if (
                pool.archive.lookup(evaluation.levels, Fidelity.HIGH) is None
                and key not in pending_keys
            ):
                pending_keys.add(key)
                projected += 1
        pool.evaluate_many(pending, Fidelity.HIGH)

        trainer = ReinforceTrainer(self._hf_env, self.fnn, self.config.trainer)

        def hf_ipc(levels: np.ndarray) -> float:
            return pool.evaluate_high(levels).ipc

        # HF episodes until the distinct-simulation budget is spent.
        guard = 0
        while (
            pool.archive.count(Fidelity.HIGH) < self.config.hf_budget
            and guard < 10 * self.config.hf_budget
        ):
            guard += 1
            start = seeds[int(self.rng.integers(len(seeds)))]
            trainer.run_episode(self.rng, hf_ipc, ipc_h0, start_levels=start)

        best = pool.archive.best(Fidelity.HIGH)
        assert best is not None  # h0 guarantees at least one HF record
        return ExplorationResult(
            lf_levels=converged,
            lf_hf_cpi=h0.cpi,
            best_levels=best.levels,
            best_hf_cpi=best.cpi,
            lf_history=lf_trainer.history,
            hf_history=trainer.history,
            hf_simulations=pool.archive.count(Fidelity.HIGH),
            fnn=self.fnn,
        )

    # ------------------------------------------------------------------
    def explore(self) -> ExplorationResult:
        """Run the complete multi-fidelity DSE flow."""
        lf_trainer = self.run_lf_phase()
        return self.run_hf_phase(lf_trainer)
