"""The multi-fidelity explorer: LF phase -> transition -> HF phase (Sec. 3).

Orchestrates the full Fig.-4 flow:

1. **LF phase** (Sec. 3.1): REINFORCE episodes rewarded by analytical IPC
   (eq. 3, reference = running best), with the analytical gradient mask
   restricting actions to model-beneficial increases. Runs until the
   greedy rollout stabilises or the episode budget is hit.
2. **Transition** (Sec. 3.2): HF-simulate the converged design
   (-> ``IPC_h0``) and a subset of the LF archive's best designs (-> the
   seed set ``H``).
3. **HF phase** (Sec. 3.2): episodes seeded from ``H``, *without* the
   gradient mask, rewarded by HF IPC against ``IPC_h0`` (eq. 4), until
   the HF-simulation budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.fnn.inputs import FuzzyInput, default_inputs
from repro.core.fnn.network import FuzzyNeuralNetwork
from repro.core.mfrl.env import DseEnvironment, Episode
from repro.core.mfrl.reinforce import EpisodeRecord, ReinforceTrainer, TrainerConfig
from repro.proxies.interface import Fidelity
from repro.proxies.pool import ProxyPool
from repro.search.base import (
    Observation,
    SearchMethod,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.search.loop import SearchLoop


@dataclass(frozen=True)
class ExplorerConfig:
    """Budgets and schedule of the multi-fidelity exploration.

    Attributes:
        lf_episodes: Maximum LF-phase episodes.
        lf_min_episodes: Episodes trained before convergence may stop the
            phase (LF evaluations are ~free; extra episodes sharpen the
            rule base the FNN will be read from).
        lf_check_every: Greedy-probe cadence for convergence detection.
        lf_patience: Consecutive identical greedy probes => converged.
        hf_budget: Total distinct HF simulations allowed (the paper uses
            9 for its method vs 10 for baselines).
        hf_seed_designs: How many LF-archive best designs to HF-simulate
            at the transition (beyond the converged design).
        trainer: REINFORCE hyper-parameters (shared by both phases).
    """

    lf_episodes: int = 260
    lf_min_episodes: int = 120
    lf_check_every: int = 10
    lf_patience: int = 3
    hf_budget: int = 9
    hf_seed_designs: int = 3
    trainer: TrainerConfig = field(default_factory=TrainerConfig)

    def __post_init__(self) -> None:
        if self.hf_budget < 2:
            raise ValueError("hf_budget must cover at least the converged design + 1")
        if self.hf_seed_designs < 1:
            raise ValueError("need at least one HF seed design")


@dataclass
class ExplorationResult:
    """Everything the experiments need from one exploration run."""

    #: LF-converged design and its *HF* CPI (what Table 2 calls "LF").
    lf_levels: np.ndarray
    lf_hf_cpi: float
    #: Best design found by the full multi-fidelity flow and its HF CPI.
    best_levels: np.ndarray
    best_hf_cpi: float
    #: Per-episode telemetry, LF then HF.
    lf_history: List[EpisodeRecord]
    hf_history: List[EpisodeRecord]
    #: Distinct HF simulations actually spent.
    hf_simulations: int
    #: The trained network (rule extraction happens on this).
    fnn: FuzzyNeuralNetwork


class MultiFidelityExplorer:
    """The paper's full DSE framework bound to one proxy pool.

    Args:
        pool: The proxy pool (defines the workload, area budget, space).
        inputs: FNN linguistic inputs; defaults to the Table-1 layout.
        config: Budgets and hyper-parameters.
        seed: Seed for all stochastic components of the run.
        fnn: Optionally a pre-built (e.g. preference-loaded) network.
    """

    def __init__(
        self,
        pool: ProxyPool,
        inputs: Optional[Sequence[FuzzyInput]] = None,
        config: ExplorerConfig = ExplorerConfig(),
        seed: int = 0,
        fnn: Optional[FuzzyNeuralNetwork] = None,
    ):
        self.pool = pool
        self.inputs = tuple(inputs) if inputs is not None else default_inputs()
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.fnn = fnn or FuzzyNeuralNetwork(
            self.inputs, pool.space.names, rng=self.rng
        )
        self._lf_env = DseEnvironment(pool, self.inputs, use_gradient_mask=True)
        self._hf_env = DseEnvironment(pool, self.inputs, use_gradient_mask=False)

    # ------------------------------------------------------------------
    # Phase 1: low fidelity
    # ------------------------------------------------------------------
    def run_lf_phase(self) -> ReinforceTrainer:
        """Model-based LF training (Sec. 3.1); returns the trainer."""
        trainer = ReinforceTrainer(self._lf_env, self.fnn, self.config.trainer)
        best_ipc = -np.inf
        stable_probe: Optional[np.ndarray] = None
        stable_count = 0

        def lf_ipc(levels: np.ndarray) -> float:
            return self.pool.evaluate(levels, Fidelity.LOW).ipc

        for episode in range(self.config.lf_episodes):
            reference = best_ipc if np.isfinite(best_ipc) else 0.0
            record = trainer.run_episode(self.rng, lf_ipc, reference)
            ipc = 1.0 / record.final_cpi
            if ipc > best_ipc:
                best_ipc = ipc
            if (episode + 1) % self.config.lf_check_every == 0:
                probe = trainer.greedy_design(self.rng)
                if stable_probe is not None and np.array_equal(probe, stable_probe):
                    stable_count += 1
                else:
                    stable_probe = probe
                    stable_count = 0
                if (
                    stable_count >= self.config.lf_patience
                    and episode + 1 >= self.config.lf_min_episodes
                ):
                    break
        return trainer

    # ------------------------------------------------------------------
    # Phase 2: transition + high fidelity (stepper over the SearchLoop)
    # ------------------------------------------------------------------
    def hf_method(
        self, lf_trainer: Optional[ReinforceTrainer] = None
    ) -> "MfrlHfSearch":
        """The transition + HF phase as a :class:`SearchMethod` stepper.

        ``lf_trainer`` may be None when the method is about to be
        restored from a checkpoint (the converged design, seed set and
        FNN weights all live in the checkpoint, so the LF phase need not
        be re-run).
        """
        return MfrlHfSearch(self, lf_trainer)

    def hf_loop(
        self,
        lf_trainer: Optional[ReinforceTrainer] = None,
        propose_batch: int = 1,
        on_step=None,
    ) -> SearchLoop:
        """A search loop driving the transition/HF phases to budget."""
        return SearchLoop(
            self.pool,
            self.hf_method(lf_trainer),
            self.config.hf_budget,
            rng=self.rng,
            propose_batch=propose_batch,
            on_step=on_step,
        )

    def hf_result(self, loop: SearchLoop) -> ExplorationResult:
        """Fold a finished HF search loop into the exploration result."""
        method = loop.method
        best = self.pool.archive.best(Fidelity.HIGH)
        assert best is not None  # h0 guarantees at least one HF record
        return ExplorationResult(
            lf_levels=method.converged,
            lf_hf_cpi=method.h0_cpi,
            best_levels=best.levels,
            best_hf_cpi=best.cpi,
            lf_history=(
                method.lf_trainer.history if method.lf_trainer is not None else []
            ),
            hf_history=method.trainer.history,
            hf_simulations=self.pool.archive.count(Fidelity.HIGH),
            fnn=self.fnn,
        )

    def run_hf_phase(
        self, lf_trainer: ReinforceTrainer
    ) -> ExplorationResult:
        """Transition and HF training (Sec. 3.2); returns the result."""
        return self.hf_loop(lf_trainer).run()

    # ------------------------------------------------------------------
    def explore(self) -> ExplorationResult:
        """Run the complete multi-fidelity DSE flow."""
        lf_trainer = self.run_lf_phase()
        return self.run_hf_phase(lf_trainer)


class MfrlHfSearch(SearchMethod):
    """The MFRL transition + HF phases as a propose/observe stepper.

    Proposal sequence (bit-identical to the old in-method loop at
    ``propose_batch=1``):

    1. the LF-converged design (greedy rollout) -- its evaluation sets
       ``IPC_h0``, the HF reward reference;
    2. the transition seed batch: LF-archive best designs, truncated so
       at least one HF simulation remains for episodes (the whole batch
       dispatches as one ``evaluate_many`` -- the PR-4 lockstep kernel's
       widest in-search consumer);
    3. one REINFORCE episode's final design per step (``propose_batch``
       episodes are rolled back-to-back in batched mode), with the
       policy update applied in :meth:`observe` from the returned IPC.

    The stepper never touches the HF proxy itself, which is what makes
    the phase checkpointable: its state (FNN weights, trainer telemetry,
    seed set, guard, rng) plus the loop's evaluation replay reconstruct
    the run mid-phase in a fresh process, without re-running LF.
    """

    name = "fnn-mbrl-hf"

    def __init__(
        self,
        explorer: MultiFidelityExplorer,
        lf_trainer: Optional[ReinforceTrainer] = None,
    ):
        super().__init__()
        self.explorer = explorer
        self.lf_trainer = lf_trainer
        self.trainer: Optional[ReinforceTrainer] = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        explorer = self.explorer
        self.trainer = ReinforceTrainer(
            explorer._hf_env, explorer.fnn, explorer.config.trainer
        )
        self._phase = "converged"
        self._awaiting: Optional[str] = None
        self.converged: Optional[np.ndarray] = None
        self.h0_cpi: Optional[float] = None
        self._ipc_h0: Optional[float] = None
        self._seeds: List[np.ndarray] = []
        self._lf_best: List[np.ndarray] = []
        self._guard = 0
        self._pending_episodes: List[Episode] = []

    # ------------------------------------------------------------------
    def propose(self, k: int) -> List[np.ndarray]:
        config = self.explorer.config
        pool = self.pool
        if self._phase == "converged":
            self._phase = "seeds"
            self._awaiting = "h0"
            self.converged = self.lf_trainer.greedy_design(self.rng)
            # Snapshot the LF leaderboard now (it cannot change before
            # the transition reads it -- only HF evaluations happen in
            # between) so a checkpoint restore into a fresh pool still
            # sees the seed candidates.
            self._lf_best = [
                evaluation.levels
                for evaluation in pool.archive.best_designs(
                    Fidelity.LOW, config.hf_seed_designs
                )
            ]
            return [self.converged]
        if self._phase == "seeds":
            self._phase = "episodes"
            pending = self._transition_pending()
            if pending:
                self._awaiting = "seeds"
                return pending
            # No seed verification needed: go straight to episodes.
        return self._propose_episodes(k)

    def _transition_pending(self) -> List[np.ndarray]:
        """Transition seed designs still worth HF budget (Sec. 3.2).

        Mirrors the sequential budget check: only designs not yet
        HF-archived consume budget, and the list stops once at most one
        HF simulation would remain for the episode phase.
        """
        config = self.explorer.config
        pool = self.pool
        pending: List[np.ndarray] = []
        projected = pool.archive.count(Fidelity.HIGH)
        pending_keys = set()
        for levels in self._lf_best:
            if projected >= config.hf_budget - 1:
                break
            self._seeds.append(levels)
            pending.append(levels)
            key = pool.space.flat_index(levels)
            if (
                pool.archive.lookup(levels, Fidelity.HIGH) is None
                and key not in pending_keys
            ):
                pending_keys.add(key)
                projected += 1
        return pending

    def _propose_episodes(self, k: int) -> List[np.ndarray]:
        config = self.explorer.config
        if self.pool.archive.count(Fidelity.HIGH) >= config.hf_budget:
            return []
        episodes: List[Episode] = []
        proposals: List[np.ndarray] = []
        for __ in range(max(k, 1)):
            if self._guard >= 10 * config.hf_budget:
                break
            self._guard += 1
            start = self._seeds[int(self.rng.integers(len(self._seeds)))]
            episode = self.trainer.start_episode(self.rng, start_levels=start)
            episodes.append(episode)
            proposals.append(episode.final_levels)
        self._awaiting = "episodes"
        self._pending_episodes = episodes
        return proposals

    # ------------------------------------------------------------------
    def observe(self, observations: Sequence[Observation]) -> None:
        awaiting, self._awaiting = self._awaiting, None
        if awaiting == "h0":
            evaluation = observations[0].evaluation
            self._ipc_h0 = float(evaluation.ipc)
            self.h0_cpi = float(evaluation.cpi)
            self._seeds = [self.converged]
            return
        if awaiting == "seeds":
            return  # seed verifications only prime the archive
        # Episode batch: reward + policy update per episode, in rollout
        # order. The loop may have trimmed the batch against the budget;
        # trimming keeps a prefix, so the zip stays aligned.
        episodes, self._pending_episodes = self._pending_episodes, []
        for obs, episode in zip(observations, episodes):
            self.trainer.finish_episode(
                episode, float(obs.evaluation.ipc), self._ipc_h0
            )

    # ------------------------------------------------------------------
    def result(self, loop: SearchLoop) -> ExplorationResult:
        return self.explorer.hf_result(loop)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        fnn = self.explorer.fnn
        return {
            "phase": self._phase,
            "converged": (
                None if self.converged is None
                else [int(v) for v in self.converged]
            ),
            "ipc_h0": self._ipc_h0,
            "h0_cpi": self.h0_cpi,
            "seeds": [[int(v) for v in levels] for levels in self._seeds],
            "lf_best": [[int(v) for v in levels] for levels in self._lf_best],
            "guard": self._guard,
            "fnn": {
                "consequents": fnn.consequents.tolist(),
                "centers": fnn.centers.tolist(),
            },
            "trainer": self.trainer.state_dict(),
            "rng": rng_state_to_json(self.rng),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._phase = state["phase"]
        self._awaiting = None
        self.converged = (
            None if state["converged"] is None
            else np.asarray(state["converged"], dtype=np.int64)
        )
        self._ipc_h0 = (
            None if state["ipc_h0"] is None else float(state["ipc_h0"])
        )
        self.h0_cpi = None if state["h0_cpi"] is None else float(state["h0_cpi"])
        self._seeds = [
            np.asarray(levels, dtype=np.int64) for levels in state["seeds"]
        ]
        self._lf_best = [
            np.asarray(levels, dtype=np.int64) for levels in state["lf_best"]
        ]
        self._guard = int(state["guard"])
        self._pending_episodes = []
        self.explorer.fnn.load_state_dict(
            {
                "consequents": np.asarray(
                    state["fnn"]["consequents"], dtype=np.float64
                ),
                "centers": np.asarray(state["fnn"]["centers"], dtype=np.float64),
            }
        )
        self.trainer.load_state_dict(state["trainer"])
        rng_state_from_json(self.rng, state["rng"])
