"""Policy-gradient training of the FNN (paper Sec. 3, ref [14]).

Plain episodic REINFORCE: the CPI-derived reward of an episode's *final*
design scales the summed log-policy gradients of every action taken in the
episode ("The CPI of the final design of an episode is the reward of all
actions in this episode").

The reward is the paper's aggressive form (eq. 3 / eq. 4):

``reward = IPC - IPC_ref + eps``

where ``IPC_ref`` is the running best IPC in the LF phase (eq. 3) or the
HF IPC of the LF-converged design in the HF phase (eq. 4), and
``eps = 0.05`` guarantees the incumbent optimum still earns a positive
reward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.fnn.network import FuzzyNeuralNetwork
from repro.core.mfrl.env import DseEnvironment, Episode

#: The paper's epsilon ("In all our experiments, eps is 0.05").
EPSILON = 0.05


@dataclass(frozen=True)
class TrainerConfig:
    """REINFORCE hyper-parameters.

    Attributes:
        lr_consequents: Learning rate of the TS consequent matrix.
        lr_centers: Learning rate of the trainable MF centers.
        temperature: Policy softmax temperature during training.
        epsilon: Reward offset (eq. 3/4).
        max_steps: Episode length bound.
    """

    lr_consequents: float = 1.0
    lr_centers: float = 0.05
    temperature: float = 1.0
    epsilon: float = EPSILON
    max_steps: int = 256

    def __post_init__(self) -> None:
        if self.lr_consequents < 0 or self.lr_centers < 0:
            raise ValueError("learning rates must be non-negative")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")


@dataclass
class EpisodeRecord:
    """Per-episode training telemetry (drives Figs. 6 and 7)."""

    episode: int
    final_levels: np.ndarray
    final_cpi: float
    reward: float
    centers: np.ndarray


class ReinforceTrainer:
    """Episodic REINFORCE over a :class:`DseEnvironment`.

    The trainer is reward-source agnostic: the caller supplies a function
    mapping an episode's final levels to IPC, so the same loop trains the
    LF phase (analytical IPC) and the HF phase (simulated IPC).
    """

    def __init__(
        self,
        env: DseEnvironment,
        fnn: FuzzyNeuralNetwork,
        config: TrainerConfig = TrainerConfig(),
    ):
        self.env = env
        self.fnn = fnn
        self.config = config
        self.history: List[EpisodeRecord] = []
        self._episode_counter = 0

    # ------------------------------------------------------------------
    def update_from_episode(self, episode: Episode, reward: float) -> None:
        """Apply one REINFORCE step from a finished, rewarded episode."""
        if not episode.steps:
            return
        d_w = np.zeros_like(self.fnn.consequents)
        d_c = np.zeros(self.fnn.num_inputs)
        for step in episode.steps:
            grad = self.fnn.log_policy_gradient(
                step.features,
                step.action,
                mask=step.mask,
                temperature=self.config.temperature,
            )
            d_w += grad.d_consequents
            d_c += grad.d_centers
        # The paper applies the episode reward to *all* actions of the
        # episode (Sec. 3): no per-step averaging.
        scale = reward
        self.fnn.apply_update(
            d_w * scale,
            d_c * scale,
            lr_consequents=self.config.lr_consequents,
            lr_centers=self.config.lr_centers,
        )

    def start_episode(
        self,
        rng: np.random.Generator,
        start_levels: Optional[np.ndarray] = None,
    ) -> Episode:
        """Roll one episode out under the current policy (no update yet).

        The propose half of the propose/observe split: the search loop
        evaluates the episode's final design (batched, budgeted) and
        hands the IPC back through :meth:`finish_episode`.
        """
        return self.env.rollout(
            self.fnn,
            rng,
            start_levels=start_levels,
            temperature=self.config.temperature,
            max_steps=self.config.max_steps,
        )

    def finish_episode(
        self, episode: Episode, ipc: float, ipc_reference: float
    ) -> EpisodeRecord:
        """Reward (eq. 3/4), update, record a rolled-out episode."""
        reward = ipc - ipc_reference + self.config.epsilon
        episode.final_cpi = 1.0 / ipc
        episode.reward = reward
        self.update_from_episode(episode, reward)
        record = EpisodeRecord(
            episode=self._episode_counter,
            final_levels=episode.final_levels.copy(),
            final_cpi=1.0 / ipc,
            reward=reward,
            centers=self.fnn.centers.copy(),
        )
        self._episode_counter += 1
        self.history.append(record)
        return record

    def run_episode(
        self,
        rng: np.random.Generator,
        ipc_of: Callable[[np.ndarray], float],
        ipc_reference: float,
        start_levels: Optional[np.ndarray] = None,
    ) -> EpisodeRecord:
        """Roll out, reward (eq. 3/4), update, record.

        Args:
            rng: Randomness source.
            ipc_of: Final-design IPC evaluator (LF or HF).
            ipc_reference: ``IPC*`` / ``IPC_h0`` in the reward.
            start_levels: Episode seed design.
        """
        episode = self.start_episode(rng, start_levels=start_levels)
        return self.finish_episode(
            episode, ipc_of(episode.final_levels), ipc_reference
        )

    # ------------------------------------------------------------------
    # Checkpointing (the FNN's weights are snapshotted separately)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the trainer's bookkeeping."""
        return {
            "episode_counter": self._episode_counter,
            "history": [
                {
                    "episode": int(record.episode),
                    "final_levels": [int(v) for v in record.final_levels],
                    "final_cpi": float(record.final_cpi),
                    "reward": float(record.reward),
                    "centers": [float(v) for v in record.centers],
                }
                for record in self.history
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`."""
        self._episode_counter = int(state["episode_counter"])
        self.history = [
            EpisodeRecord(
                episode=int(entry["episode"]),
                final_levels=np.asarray(entry["final_levels"], dtype=np.int64),
                final_cpi=float(entry["final_cpi"]),
                reward=float(entry["reward"]),
                centers=np.asarray(entry["centers"], dtype=np.float64),
            )
            for entry in state["history"]
        ]

    def greedy_design(self, rng: np.random.Generator) -> np.ndarray:
        """Final design of a greedy (argmax) rollout -- convergence probe."""
        episode = self.env.rollout(
            self.fnn, rng, greedy=True, max_steps=self.config.max_steps
        )
        return episode.final_levels
