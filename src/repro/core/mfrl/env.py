"""The DSE episode MDP (paper Sec. 3).

An episode starts from a seed design (the smallest design in the LF
phase; a design sampled from the HF seed set in the HF phase) and
repeatedly picks one parameter to increase until no increase fits the
area budget. Every visited design is therefore valid by construction --
"we enlarge the processor step by step until the area limit is reached so
that all the sampled designs are valid".

The state the FNN sees is (current design metrics, current parameter
values); metrics always come from the cheap analytical model, even during
the HF phase, because per-step HF metrics would blow the simulation
budget -- only the episode *reward* is high-fidelity there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.fnn.inputs import FuzzyInput, extract_features
from repro.core.fnn.network import FuzzyNeuralNetwork
from repro.proxies.interface import Fidelity
from repro.proxies.pool import ProxyPool


@dataclass(frozen=True)
class EpisodeStep:
    """One decision: the observed features, mask, and chosen action."""

    features: np.ndarray
    mask: np.ndarray
    action: int


@dataclass
class Episode:
    """One rollout: the step list plus the final design."""

    steps: List[EpisodeStep]
    final_levels: np.ndarray
    #: Filled in by the trainer once the final design is evaluated.
    final_cpi: Optional[float] = None
    reward: Optional[float] = None

    @property
    def length(self) -> int:
        """Number of increase actions taken."""
        return len(self.steps)


class DseEnvironment:
    """Episode generator bound to a proxy pool and an FNN input layout.

    Args:
        pool: Evaluation frontend (constraint + LF metrics + masks).
        inputs: FNN linguistic input specs (feature extraction).
        use_gradient_mask: When True (the LF phase), the analytical
            model's beneficial-increase mask intersects the feasibility
            mask; if the intersection is empty, the episode ends (the
            model sees no remaining beneficial move). The HF phase runs
            with this off -- "the actions in the HF phase are no longer
            restricted by the analytical model".
        veto_threshold: TS consequents are signed: strongly *negative*
            scores mean the rule base says the parameter should NOT
            increase. Actions whose score falls below this threshold are
            vetoed by the FNN; if every remaining action is vetoed the
            episode ends with budget to spare. This is what lets an
            embedded preference (Sec. 2.3) overrule the gradient mask
            when the mask would otherwise force the un-preferred move.
            Freshly initialised networks have near-zero scores, so the
            veto only activates once the rule base holds strong opinions.
    """

    def __init__(
        self,
        pool: ProxyPool,
        inputs: Sequence[FuzzyInput],
        use_gradient_mask: bool = True,
        veto_threshold: float = -1.0,
    ):
        if veto_threshold >= 0:
            raise ValueError("veto_threshold must be negative")
        self.pool = pool
        self.inputs = tuple(inputs)
        self.use_gradient_mask = use_gradient_mask
        self.veto_threshold = veto_threshold

    # ------------------------------------------------------------------
    def action_mask(self, levels: np.ndarray) -> np.ndarray:
        """Valid increase actions at ``levels`` (may be all-False)."""
        mask = self.pool.feasible_increase_mask(levels)
        if self.use_gradient_mask and mask.any():
            beneficial = self.pool.beneficial_mask(levels)
            combined = mask & beneficial
            if combined.any():
                return combined
            # No model-beneficial move left: the LF episode is done.
            return np.zeros_like(mask)
        return mask

    def features_at(self, levels: np.ndarray) -> np.ndarray:
        """FNN feature vector at ``levels`` (metrics from the LF model)."""
        config = self.pool.space.config(levels)
        metrics = self.pool.evaluate(levels, Fidelity.LOW).metrics
        return extract_features(self.inputs, metrics, config)

    def rollout(
        self,
        fnn: FuzzyNeuralNetwork,
        rng: np.random.Generator,
        start_levels: Optional[Sequence[int]] = None,
        temperature: float = 1.0,
        greedy: bool = False,
        max_steps: int = 256,
    ) -> Episode:
        """Run one episode under the FNN policy.

        Args:
            fnn: The policy network.
            rng: Randomness for action sampling.
            start_levels: Episode seed; defaults to the smallest design.
            temperature: Policy softmax temperature.
            greedy: Take argmax actions (used for convergence probing).
            max_steps: Hard safety bound on episode length.
        """
        space = self.pool.space
        levels = (
            space.smallest()
            if start_levels is None
            else space.validate_levels(start_levels)
        )
        if not self.pool.fits(levels):
            raise ValueError("episode start design violates the area budget")
        steps: List[EpisodeStep] = []
        for __ in range(max_steps):
            mask = self.action_mask(levels)
            if not mask.any():
                break
            features = self.features_at(levels)
            # FNN veto: drop actions the rule base strongly argues against.
            scores = fnn.scores(features)
            mask = mask & (scores > self.veto_threshold)
            if not mask.any():
                break
            action = fnn.act(
                features, rng, mask=mask, temperature=temperature, greedy=greedy
            )
            steps.append(EpisodeStep(features=features, mask=mask, action=action))
            levels = space.increase(levels, action)
        return Episode(steps=steps, final_levels=levels)
