"""Multi-fidelity reinforcement learning (paper Sec. 3)."""

from repro.core.mfrl.env import DseEnvironment, Episode, EpisodeStep
from repro.core.mfrl.reinforce import (
    EPSILON,
    EpisodeRecord,
    ReinforceTrainer,
    TrainerConfig,
)
from repro.core.mfrl.explorer import (
    ExplorerConfig,
    ExplorationResult,
    MultiFidelityExplorer,
)

__all__ = [
    "DseEnvironment",
    "Episode",
    "EpisodeStep",
    "EPSILON",
    "EpisodeRecord",
    "ReinforceTrainer",
    "TrainerConfig",
    "ExplorerConfig",
    "ExplorationResult",
    "MultiFidelityExplorer",
]
