"""The paper's contribution: the FNN search engine and multi-fidelity RL.

- :mod:`repro.core.fnn`  -- the explainable Fuzzy Neural Network (Sec. 2).
- :mod:`repro.core.mfrl` -- the multi-fidelity reinforcement-learning
  trainer and the full DSE explorer (Sec. 3).
"""

from repro.core import fnn, mfrl

__all__ = ["fnn", "mfrl"]
