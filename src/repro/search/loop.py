"""The one budgeted HF-search loop every method runs through.

The loop owns the protocol bookkeeping the four legacy per-method loops
each reimplemented: budget accounting (distinct designs), dedup (repeat
proposals are served from the archive and never burn budget), constraint
filtering (unless the method opts out, SCBO-style) and stall detection.
Each proposal batch is dispatched as **one** ``ProxyPool.evaluate``
call, so multi-design steps (``propose_batch > 1``) ride the
design-batched simulator kernel; at ``propose_batch=1`` the dispatch
sequence is bit-identical to the old sequential loops (locked by the
seed-history regression suite).

``state()`` / ``restore()`` snapshot the loop *and* its method between
steps as plain JSON -- including the evaluations made so far, which are
replayed into a fresh pool's archive on restore. That is what makes a
search resumable mid-run from a campaign checkpoint instead of only at
run granularity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.proxies.interface import Evaluation, Fidelity
from repro.proxies.pool import ProxyPool
from repro.search.base import Observation, SearchMethod, SearchStall

#: Checkpoint layout marker; bump on breaking changes.
STATE_VERSION = 1


class SearchLoop:
    """Batch-first, checkpointable driver of one :class:`SearchMethod`.

    Args:
        pool: Evaluation frontend. The loop assumes it owns every
            evaluation at ``fidelity`` on this pool (all runners build a
            fresh pool per run), so its distinct-design count *is* the
            budget spent.
        method: The stepper to drive; bound to (pool, budget, rng) here.
        hf_budget: Distinct designs the search may evaluate.
        rng: Randomness handed to the method (the loop itself draws
            nothing, keeping q=1 replays bit-identical).
        propose_batch: Target designs per step (q). The method may
            return fewer; overshoot is trimmed against the budget.
        fidelity: Which proxy the loop dispatches to (HF by default).
        stall_limit: Consecutive zero-fresh steps tolerated before
            :class:`SearchStall` is raised; default ``1000 * budget`` --
            a backstop above every method's internal guard, so legacy
            graceful-stop behaviour is preserved while an actually
            spinning method (the old ``driver.py`` hazard) now fails
            loudly instead of looping forever.
        on_step: Callback invoked after every completed step (the
            campaign uses it to persist per-step checkpoints).
    """

    def __init__(
        self,
        pool: ProxyPool,
        method: SearchMethod,
        hf_budget: int,
        rng: Optional[np.random.Generator] = None,
        propose_batch: int = 1,
        fidelity: Fidelity = Fidelity.HIGH,
        stall_limit: Optional[int] = None,
        on_step: Optional[Callable[["SearchLoop"], None]] = None,
    ):
        if propose_batch < 1:
            raise ValueError("propose_batch must be >= 1")
        method.check_budget(hf_budget)
        self.pool = pool
        self.method = method
        self.hf_budget = int(hf_budget)
        self.propose_batch = int(propose_batch)
        self.fidelity = fidelity
        self.stall_limit = (
            int(stall_limit)
            if stall_limit is not None
            else 1000 * max(int(hf_budget), 1)
        )
        self.on_step = on_step
        method.bind(pool, hf_budget, rng if rng is not None else np.random.default_rng())

        #: Distinct designs evaluated (the budget spent so far).
        self.spent = 0
        #: Completed propose/observe steps.
        self.steps = 0
        #: Consecutive steps that produced no fresh design.
        self.stalled = 0
        self.done = False
        self._seen: set = set()
        #: Fresh-design CPI trace, in evaluation order (the per-method
        #: ``history`` every legacy loop recorded).
        self.history: List[float] = []
        #: Fresh level vectors, aligned with :attr:`history`.
        self.evaluated: List[np.ndarray] = []
        #: Fresh evaluations (for checkpoint replay / result assembly).
        self.evaluations: List[Evaluation] = []

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Budget left to spend."""
        return max(self.hf_budget - self.spent, 0)

    def _trim_to_budget(self, proposals: List[np.ndarray]) -> List[np.ndarray]:
        """Longest proposal prefix whose fresh designs fit the budget."""
        space = self.pool.space
        trimmed: List[np.ndarray] = []
        planned: set = set()
        for levels in proposals:
            key = space.flat_index(levels)
            if key not in self._seen and key not in planned:
                if len(planned) >= self.remaining:
                    break
                planned.add(key)
            trimmed.append(levels)
        return trimmed

    def step(self) -> bool:
        """One propose -> dispatch -> observe cycle; False when done."""
        if self.done:
            return False
        k = min(self.propose_batch, self.remaining)
        proposals = self.method.propose(k)
        if not proposals:
            self.done = True
            return False
        space = self.pool.space
        proposals = [space.validate_levels(p) for p in proposals]
        if self.method.filter_invalid:
            keep = self.pool.fits_many(proposals)
            proposals = [p for p, ok in zip(proposals, keep) if ok]
        proposals = self._trim_to_budget(proposals)

        observations: List[Observation] = []
        fresh_any = False
        if proposals:
            evaluations = self.pool.evaluate(proposals, self.fidelity)
            for levels, evaluation in zip(proposals, evaluations):
                key = space.flat_index(levels)
                fresh = key not in self._seen
                if fresh:
                    self._seen.add(key)
                    self.spent += 1
                    self.history.append(evaluation.cpi)
                    self.evaluated.append(levels.copy())
                    self.evaluations.append(evaluation)
                    fresh_any = True
                observations.append(
                    Observation(levels=levels, evaluation=evaluation, fresh=fresh)
                )
        self.method.observe(observations)

        self.steps += 1
        self.stalled = 0 if fresh_any else self.stalled + 1
        if self.stalled >= self.stall_limit:
            raise SearchStall(
                f"{self.method.name}: {self.stalled} consecutive steps "
                f"without a fresh design (budget {self.spent}/{self.hf_budget})"
            )
        if self.spent >= self.hf_budget:
            self.done = True
        if self.on_step is not None:
            self.on_step(self)
        return not self.done

    def run(self):
        """Step until the budget is spent or the method is done."""
        while self.step():
            pass
        return self.method.result(self)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON snapshot of the loop + method at a step boundary."""
        return {
            "version": STATE_VERSION,
            "spent": self.spent,
            "steps": self.steps,
            "stalled": self.stalled,
            "done": self.done,
            "evaluations": [
                {
                    "levels": [int(v) for v in evaluation.levels],
                    "metrics": {
                        k: float(v) for k, v in evaluation.metrics.items()
                    },
                    "tier": evaluation.provenance,
                }
                for evaluation in self.evaluations
            ],
            "method": self.method.state(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild loop + method + pool archive from :meth:`state`.

        The recorded evaluations are replayed into the (fresh) pool's
        archive, so repeat lookups, leaderboards and the MFRL transition
        logic see exactly the pre-interruption world.
        """
        version = state.get("version")
        if version != STATE_VERSION:
            raise ValueError(f"unsupported search checkpoint version: {version!r}")
        space = self.pool.space
        self.spent = int(state["spent"])
        self.steps = int(state["steps"])
        self.stalled = int(state["stalled"])
        self.done = bool(state["done"])
        self._seen = set()
        self.history = []
        self.evaluated = []
        self.evaluations = []
        for entry in state["evaluations"]:
            levels = space.validate_levels(entry["levels"])
            evaluation = Evaluation(
                levels=levels,
                fidelity=self.fidelity,
                metrics=dict(entry["metrics"]),
                # Replayed evaluations keep the provenance they were
                # produced with (pre-provenance checkpoints replay as
                # simulated), so archive consumers and reports never
                # mistake a learned number for a simulated one.
                provenance=entry.get("tier", "simulated"),
            )
            self.pool.archive.record(evaluation)
            self._seen.add(space.flat_index(levels))
            self.history.append(evaluation.cpi)
            self.evaluated.append(levels)
            self.evaluations.append(evaluation)
        self.method.restore(state["method"])
