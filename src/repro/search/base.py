"""The stepper protocol every search method implements.

A method never calls the proxy pool's HF path itself. It *proposes*
level vectors, the :class:`~repro.search.loop.SearchLoop` dispatches
them (batched, budgeted, dedup'd) and hands the evaluations back through
:meth:`SearchMethod.observe`. Splitting the old monolithic ``explore``
loops at this seam is what lets one loop implementation serve every
method, lets q proposals per step ride the design-batched HF kernel,
and makes mid-run checkpointing a method-independent feature.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.proxies.interface import Evaluation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (loop -> base)
    from repro.proxies.pool import ProxyPool
    from repro.search.loop import SearchLoop


class SearchStall(RuntimeError):
    """A search cannot make progress (no fresh candidate found)."""


@dataclass(frozen=True)
class Observation:
    """One evaluated proposal, as delivered back to the method.

    Attributes:
        levels: The proposed level vector (validated copy).
        evaluation: Its evaluation at the loop's fidelity.
        fresh: True when this design was first seen by the loop in this
            step -- only fresh observations consume search budget.
    """

    levels: np.ndarray
    evaluation: Evaluation
    fresh: bool


def rng_state_to_json(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-safe snapshot of a generator's bit-generator state."""
    return copy.deepcopy(rng.bit_generator.state)


def rng_state_from_json(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a generator from :func:`rng_state_to_json` output."""
    rng.bit_generator.state = copy.deepcopy(state)


class SearchMethod:
    """Base class of the propose/observe stepper protocol.

    Lifecycle: the loop calls :meth:`bind` once (context: pool, budget,
    rng), then alternates :meth:`propose` / :meth:`observe` until the
    budget is spent or the method returns an empty proposal (meaning
    "done -- nothing left to try"). :meth:`state` / :meth:`restore`
    snapshot everything between two steps as plain JSON, which is what
    the campaign's per-step checkpoints persist.

    Attributes:
        name: Registry / result label.
        filter_invalid: When True (default) the loop drops proposals
            that violate the area constraint before dispatch. SCBO turns
            this off -- its protocol simulates infeasible designs.
    """

    name: str = "unnamed"
    filter_invalid: bool = True

    def __init__(self) -> None:
        self.pool: Optional["ProxyPool"] = None
        self.budget: int = 0
        self.rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(
        self, pool: "ProxyPool", budget: int, rng: np.random.Generator
    ) -> None:
        """Attach run context and reset mutable per-run state."""
        self.pool = pool
        self.budget = int(budget)
        self.rng = rng
        self.reset()

    def reset(self) -> None:
        """Initialise per-run mutable state (fresh search)."""

    def check_budget(self, hf_budget: int) -> None:
        """Reject budgets the method cannot run with (raise ValueError)."""

    # ------------------------------------------------------------------
    # The stepper protocol
    # ------------------------------------------------------------------
    def propose(self, k: int) -> List[np.ndarray]:
        """Next designs to evaluate; ``[]`` means the method is done.

        ``k`` is the loop's target batch width (``min(propose_batch,
        remaining budget)``). Methods may return fewer -- chain methods
        like annealing always step one design at a time -- or more, e.g.
        a seed batch; the loop trims any overshoot against the budget.
        """
        raise NotImplementedError

    def observe(self, observations: Sequence[Observation]) -> None:
        """Consume the evaluations of the last proposal batch, in order."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot taken at a step boundary."""
        raise NotImplementedError(f"{self.name} does not support checkpointing")

    def restore(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state` (called after :meth:`bind`)."""
        raise NotImplementedError(f"{self.name} does not support checkpointing")

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def result(self, loop: "SearchLoop"):
        """Fold the finished loop into the method's result object.

        Default: a :class:`~repro.baselines.driver.BaselineResult` whose
        best design is the history minimum (what every unconstrained
        minimiser reports); SCBO overrides this with best-feasible.
        """
        from repro.baselines.driver import BaselineResult

        best = int(np.argmin(loop.history))
        return BaselineResult(
            name=self.name,
            best_levels=loop.evaluated[best],
            best_cpi=loop.history[best],
            history=list(loop.history),
            evaluated=list(loop.evaluated),
        )
