"""The unified step-driven search layer (paper Sec. 4.2's shared protocol).

Every method in this repo -- the MFRL explorer's HF phase and all the
Fig.-5 / sanity baselines -- runs the same budgeted HF-simulation loop.
This package is that loop, implemented once:

- :class:`SearchMethod`: the propose/observe stepper protocol a method
  implements (plus ``state()``/``restore()`` for checkpointing).
- :class:`SearchLoop`: the single batch-first driver owning budget
  accounting, dedup, constraint filtering and stall detection; every
  proposal batch goes through ``ProxyPool.evaluate_many`` so q >= 1
  proposals per step ride the design-batched HF kernel.
- the method registry: name-keyed factories consumed by the
  experiments, the campaign runner and the CLI.
"""

from repro.search.base import (
    Observation,
    SearchMethod,
    SearchStall,
    rng_state_to_json,
    rng_state_from_json,
)
from repro.search.loop import SearchLoop
from repro.search.registry import (
    MethodInfo,
    make_method,
    method_names,
    register_method,
    registered_methods,
)

__all__ = [
    "Observation",
    "SearchMethod",
    "SearchStall",
    "SearchLoop",
    "MethodInfo",
    "make_method",
    "method_names",
    "register_method",
    "registered_methods",
    "rng_state_to_json",
    "rng_state_from_json",
]
