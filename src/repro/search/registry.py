"""Name-keyed method registry: every searcher is a one-line lookup.

The experiments, the campaign runner and the CLI all resolve methods
here, so adding a method is one registration call away from riding the
whole stack (budgeted loop, batched HF dispatch, per-step checkpoints,
campaign grids, ``repro methods``).

Two kinds are registered:

- ``"search"``: a plain :class:`~repro.search.base.SearchMethod`
  factory -- :func:`make_method` instantiates it directly.
- ``"explorer"``: the multi-fidelity FNN-MBRL flow, whose LF phase runs
  outside the HF search loop; it is listed (and dispatched by the
  campaign's ``explorer`` executor) but cannot be built by
  :func:`make_method`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.search.base import SearchMethod


@dataclass(frozen=True)
class MethodInfo:
    """One registry entry.

    Attributes:
        name: Registry key (also the method's result label).
        kind: ``"search"`` (plain stepper) or ``"explorer"``.
        factory: Zero-conf constructor (kwargs forwarded).
        description: One line for ``repro methods`` / the README table.
    """

    name: str
    kind: str
    factory: Callable[..., Any]
    description: str


_REGISTRY: Dict[str, MethodInfo] = {}
_BUILTIN_LOADED = False


def register_method(
    name: str,
    factory: Callable[..., Any],
    kind: str = "search",
    description: str = "",
) -> None:
    """Register (or replace) a method factory under ``name``."""
    if kind not in ("search", "explorer"):
        raise ValueError(f"unknown method kind {kind!r}")
    _REGISTRY[name] = MethodInfo(
        name=name, kind=kind, factory=factory, description=description
    )


def _load_builtin() -> None:
    """Populate the registry with the repo's methods (lazy, idempotent)."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    from repro.baselines.adaboost import ActBoostExplorer
    from repro.baselines.bo import BoomExplorerBaseline
    from repro.baselines.gbrt import BagGBRTExplorer
    from repro.baselines.random_forest import RandomForestExplorer
    from repro.baselines.random_search import (
        RandomSearchExplorer,
        SimulatedAnnealingExplorer,
    )
    from repro.baselines.scbo import ScboExplorer

    register_method(
        "random-forest", RandomForestExplorer,
        description="Random-Forest surrogate, greedy on predicted CPI (Fig. 5)",
    )
    register_method(
        "actboost", ActBoostExplorer,
        description="AdaBoost.R2 committee + active learning (Fig. 5)",
    )
    register_method(
        "bag-gbrt", BagGBRTExplorer,
        description="Bagging-ensembled GBRT surrogate (Fig. 5)",
    )
    register_method(
        "boom-explorer", BoomExplorerBaseline,
        description="Deep-kernel GP Bayesian optimisation, EI (Fig. 5)",
    )
    register_method(
        "scbo", ScboExplorer,
        description="Trust-region constrained BO; simulates infeasible "
        "designs (Fig. 5)",
    )
    register_method(
        "random-search", RandomSearchExplorer,
        description="Uniform random valid designs, best-of-budget",
    )
    register_method(
        "annealing", SimulatedAnnealingExplorer,
        description="Metropolis annealing over Hamming-1 moves",
    )

    def _explorer_factory(**kwargs):
        from repro.core.mfrl import MultiFidelityExplorer

        return MultiFidelityExplorer(**kwargs)

    register_method(
        "fnn-mbrl", _explorer_factory, kind="explorer",
        description="The paper's FNN + multi-fidelity RL flow "
        "(LF phase -> transition -> HF search)",
    )


def registered_methods() -> Dict[str, MethodInfo]:
    """All registry entries, keyed by name (builtin methods included)."""
    _load_builtin()
    return dict(_REGISTRY)


def method_names(kind: str = "search") -> List[str]:
    """Registered names of one kind, in registration order."""
    return [n for n, info in registered_methods().items() if info.kind == kind]


def make_method(name: str, **kwargs) -> SearchMethod:
    """Instantiate a registered stepper method by name.

    Raises:
        KeyError: Unknown name (message lists the known ones).
        TypeError: The name resolves to the explorer kind, which cannot
            be driven as a plain stepper (its LF phase runs first).
    """
    methods = registered_methods()
    if name not in methods:
        raise KeyError(
            f"unknown method {name!r}; known: {tuple(methods)}"
        )
    info = methods[name]
    if info.kind != "search":
        raise TypeError(
            f"method {name!r} is kind {info.kind!r}; build it via its own "
            "runner (the campaign's executor or MultiFidelityExplorer)"
        )
    method = info.factory(**kwargs)
    if not isinstance(method, SearchMethod):
        raise TypeError(f"factory for {name!r} did not build a SearchMethod")
    return method
