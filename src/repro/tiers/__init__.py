"""Learned fidelity tiers between the analytical model and the simulator."""

from repro.tiers.costmodel import TIER_MODELS, CostModelTier

__all__ = ["CostModelTier", "TIER_MODELS"]
