"""Learned cost-model fidelity tier: the store's corpus as a surrogate.

The paper trades fidelity for throughput twice (analytical LF model vs
cycle-approximate simulation); this module adds the third rung the
ROADMAP calls for. A :class:`CostModelTier` trains one of the repo's
existing tree ensembles (BagGBRT or random forest, the same machinery as
the Fig.-5 baselines) on the :class:`~repro.store.EvalStore` corpus of a
workload, and answers HIGH-fidelity queries in microseconds *when the
ensemble is confident*: a query is served only if the ensemble's
disagreement (``predict_std``) stays within ``max_rel_std`` of its
prediction. Everything else falls back to the real simulator, so the
tier can only substitute answers it has evidence for.

Provenance rules:

* learned answers are labelled ``tier="learned"`` by the engine and are
  **never written back to the store** -- the corpus stays simulation-only,
  so the model never trains on its own output;
* the tier is off by default everywhere; golden and regression suites
  run with the exact bit-for-bit pipeline they always had.

Models are fitted per ``(space signature, workload tag)`` namespace,
lazily on first query, and refitted when the corpus has doubled since
the last fit. Fits use the ``fast_splits`` tree path and a deterministic
subsample of at most ``train_rows`` corpus rows, keeping fit cost
bounded on large stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Recognised tier model specs ("off" means: build no tier).
TIER_MODELS = ("off", "gbrt", "rf")


@dataclass
class _FittedModel:
    """One namespace's ensemble + the corpus snapshot it was fitted on."""

    model: object = None
    corpus_rows: int = 0  # corpus size at fit time (0 = not fitted yet)


class CostModelTier:
    """Confidence-gated learned tier over an evaluation store.

    Args:
        store: Corpus source (and nothing else: the tier never writes).
        space: Design space (features are ``space.normalized`` levels).
        model: ``"gbrt"`` (bagged GBRT) or ``"rf"`` (random forest).
        min_corpus: Smallest per-namespace corpus worth fitting on.
        max_rel_std: Confidence gate: serve only when the ensemble's
            std is at most this fraction of the predicted CPI.
        train_rows: Deterministic subsample cap per fit.
        seed: Seed for subsampling and ensemble randomness.
    """

    def __init__(
        self,
        store,
        space,
        model: str = "gbrt",
        min_corpus: int = 256,
        max_rel_std: float = 0.02,
        train_rows: int = 1024,
        seed: int = 0,
    ):
        if model not in ("gbrt", "rf"):
            raise ValueError(f"unknown tier model {model!r}; expected gbrt or rf")
        if min_corpus < 2:
            raise ValueError("min_corpus must be >= 2")
        if max_rel_std <= 0:
            raise ValueError("max_rel_std must be > 0")
        self.store = store
        self.space = space
        self.model = model
        self.min_corpus = int(min_corpus)
        self.max_rel_std = float(max_rel_std)
        self.train_rows = int(train_rows)
        self.seed = int(seed)
        self._fitted: Dict[tuple, _FittedModel] = {}
        #: Queries answered by the learned model.
        self.served = 0
        #: Queries declined (low confidence or thin corpus) -> simulator.
        self.fallbacks = 0
        #: Ensemble (re)fits performed.
        self.fits = 0

    # ------------------------------------------------------------------
    def _make_model(self, rng: np.random.Generator):
        if self.model == "rf":
            from repro.baselines.random_forest import RandomForest

            return RandomForest(
                num_trees=24, max_depth=6, rng=rng, fast_splits=True
            )
        from repro.baselines.gbrt import BaggedGBRT

        return BaggedGBRT(
            num_bags=6, num_estimators=16, rng=rng, fast_splits=True
        )

    def _ensure_fitted(self, space_sig: str, tag: str) -> Optional[object]:
        """Fitted ensemble for a namespace, or None if the corpus is thin."""
        entry = self._fitted.setdefault((space_sig, tag), _FittedModel())
        corpus_now = self.store.count(tag)
        if entry.model is not None and corpus_now < 2 * entry.corpus_rows:
            return entry.model
        rows = self.store.records_for(space_sig, tag, "high")
        if len(rows) < self.min_corpus:
            entry.model = None
            entry.corpus_rows = 0
            return None
        # Corpus size *before* subsampling: the refit trigger compares
        # against corpus growth, not against the training-row cap.
        corpus_rows = len(rows)
        rng = np.random.default_rng(self.seed)
        if len(rows) > self.train_rows:
            # Deterministic subsample: store iteration order is stable
            # for a given corpus, so the same corpus fits the same model.
            pick = rng.choice(len(rows), size=self.train_rows, replace=False)
            rows = [rows[i] for i in sorted(pick)]
        x = np.asarray(
            [self.space.normalized(levels) for levels, _ in rows],
            dtype=np.float64,
        )
        y = np.asarray([metrics["cpi"] for _, metrics in rows], dtype=np.float64)
        entry.model = self._make_model(rng).fit(x, y)
        entry.corpus_rows = corpus_rows
        self.fits += 1
        return entry.model

    # ------------------------------------------------------------------
    def serve(
        self,
        space_sig: str,
        tag: str,
        fidelity: str,
        levels_batch: Sequence[Sequence[int]],
    ) -> List[Optional[Dict[str, float]]]:
        """Learned metrics per query, ``None`` where the tier declines.

        Only HIGH-fidelity queries are ever served -- the analytical LF
        model is already microsecond-fast, so learning it would add
        error for no speedup.
        """
        answers: List[Optional[Dict[str, float]]] = [None] * len(levels_batch)
        if not levels_batch:
            return answers
        if fidelity != "high":
            self.fallbacks += len(levels_batch)
            return answers
        ensemble = self._ensure_fitted(space_sig, tag)
        if ensemble is None:
            self.fallbacks += len(levels_batch)
            return answers
        x = np.asarray(
            [self.space.normalized(levels) for levels in levels_batch],
            dtype=np.float64,
        )
        pred = ensemble.predict(x)
        std = ensemble.predict_std(x)
        confident = (pred > 0) & (std <= self.max_rel_std * np.abs(pred))
        for i, ok in enumerate(confident):
            if ok:
                cpi = float(pred[i])
                answers[i] = {"cpi": cpi, "ipc": 1.0 / cpi}
                self.served += 1
            else:
                self.fallbacks += 1
        return answers

    def stats(self) -> Dict[str, int]:
        """Counters for engine summaries (numeric-only)."""
        return {
            "served": self.served,
            "fallbacks": self.fallbacks,
            "fits": self.fits,
            "namespaces": len(self._fitted),
        }
