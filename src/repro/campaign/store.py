"""The run store: one JSON record per run under a campaign directory.

Layout::

    <campaign-dir>/
        runs/
            <run_id>.json      # {"spec": ..., "status": ..., "payload": ...}

Records are written atomically (temp file + rename), so a killed
campaign leaves either a complete record or none -- and anything that
*does* end up unreadable (partial disk, manual truncation) simply reads
as "missing" and gets re-run. A record only counts as complete when its
embedded spec matches the spec being scheduled, so editing a campaign's
budgets or seeds invalidates exactly the records it changes.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.campaign.spec import RunSpec

#: Sub-directory holding the per-run records.
RUNS_DIR = "runs"

#: Completed-run status value.
STATUS_DONE = "done"

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def record_filename(run_id: str) -> str:
    """Filesystem-safe record name for ``run_id``.

    Unsafe characters are replaced and a short hash of the original id is
    appended whenever anything was replaced, so two distinct ids can
    never silently share a record file.
    """
    safe = _SAFE.sub("_", run_id)
    if safe != run_id:
        digest = hashlib.sha256(run_id.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe}-{digest}"
    return f"{safe}.json"


class RunStore:
    """Per-run manifest + result records under one campaign directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.runs_dir = self.root / RUNS_DIR

    # ------------------------------------------------------------------
    def path_for(self, run_id: str) -> Path:
        """Record path for ``run_id``."""
        return self.runs_dir / record_filename(run_id)

    def load(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The record for ``run_id``, or None when missing or corrupt."""
        path = self.path_for(run_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    def write(self, run_id: str, record: Dict[str, Any]) -> Path:
        """Atomically persist ``record`` (temp file + rename)."""
        path = self.path_for(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, separators=(",", ":"), sort_keys=True)
        tmp.replace(path)
        return path

    def delete(self, run_id: str) -> None:
        """Remove a record (missing is fine)."""
        self.path_for(run_id).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def completed(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The finished record answering ``spec``, if one exists.

        A record qualifies only when it is readable, marked done, *and*
        stores the same spec -- a partial write, a failure record, or a
        record from an edited campaign all read as "not completed".
        """
        record = self.load(spec.run_id)
        if record is None or record.get("status") != STATUS_DONE:
            return None
        if record.get("spec") != spec.to_json():
            return None
        return record

    def records(self) -> Dict[str, Dict[str, Any]]:
        """All readable records, keyed by their embedded run id."""
        out: Dict[str, Dict[str, Any]] = {}
        if not self.runs_dir.is_dir():
            return out
        for path in sorted(self.runs_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                run_id = (record.get("spec") or {}).get("run_id")
                if run_id:
                    out[run_id] = record
        return out

    def __len__(self) -> int:
        return len(self.records())
