"""The run store: one JSON record per run under a campaign directory.

Layout::

    <campaign-dir>/
        runs/
            <run_id>.json      # {"spec": ..., "status": ..., "payload": ...}
        checkpoints/
            <run_id>.json      # {"spec": ..., "state": <SearchLoop state>}

Records are written atomically (temp file + rename), so a killed
campaign leaves either a complete record or none -- and anything that
*does* end up unreadable (partial disk, manual truncation) simply reads
as "missing" and gets re-run. A record only counts as complete when its
embedded spec matches the spec being scheduled, so editing a campaign's
budgets or seeds invalidates exactly the records it changes.

Checkpoints are the finer-grained sibling: the search loop writes one
after every propose/observe step, so a killed run resumes *mid-search*
(same guarantees: atomic writes, unreadable reads as missing, a spec
mismatch invalidates). A checkpoint is deleted the moment its run's
final record lands.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.campaign.spec import RunSpec

#: Sub-directory holding the per-run records.
RUNS_DIR = "runs"

#: Sub-directory holding the per-run mid-search checkpoints.
CHECKPOINTS_DIR = "checkpoints"

#: Completed-run status value.
STATUS_DONE = "done"

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def record_filename(run_id: str) -> str:
    """Filesystem-safe record name for ``run_id``.

    Unsafe characters are replaced and a short hash of the original id is
    appended whenever anything was replaced, so two distinct ids can
    never silently share a record file.
    """
    safe = _SAFE.sub("_", run_id)
    if safe != run_id:
        digest = hashlib.sha256(run_id.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe}-{digest}"
    return f"{safe}.json"


class RunStore:
    """Per-run manifest + result records under one campaign directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.runs_dir = self.root / RUNS_DIR
        self.checkpoints_dir = self.root / CHECKPOINTS_DIR

    # ------------------------------------------------------------------
    # Shared atomic-JSON plumbing (records and checkpoints must never
    # diverge in atomicity or corruption handling)
    # ------------------------------------------------------------------
    @staticmethod
    def _write_json(path: Path, payload: Dict[str, Any]) -> Path:
        """Atomically persist ``payload`` at ``path`` (temp + rename)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
        tmp.replace(path)
        return path

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, Any]]:
        """The dict at ``path``, or None when missing or corrupt."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    def path_for(self, run_id: str) -> Path:
        """Record path for ``run_id``."""
        return self.runs_dir / record_filename(run_id)

    def load(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The record for ``run_id``, or None when missing or corrupt."""
        return self._read_json(self.path_for(run_id))

    def write(self, run_id: str, record: Dict[str, Any]) -> Path:
        """Atomically persist ``record`` (temp file + rename)."""
        return self._write_json(self.path_for(run_id), record)

    def delete(self, run_id: str) -> None:
        """Remove a record (missing is fine)."""
        self.path_for(run_id).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Mid-search checkpoints
    # ------------------------------------------------------------------
    def checkpoint_path_for(self, run_id: str) -> Path:
        """Checkpoint path for ``run_id``."""
        return self.checkpoints_dir / record_filename(run_id)

    def write_checkpoint(self, run_id: str, payload: Dict[str, Any]) -> Path:
        """Atomically persist a mid-search checkpoint."""
        return self._write_json(self.checkpoint_path_for(run_id), payload)

    def load_checkpoint(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The checkpoint for ``run_id``, or None when missing/corrupt."""
        return self._read_json(self.checkpoint_path_for(run_id))

    def clear_checkpoint(self, run_id: str) -> None:
        """Remove a checkpoint (missing is fine)."""
        self.checkpoint_path_for(run_id).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def completed(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The finished record answering ``spec``, if one exists.

        A record qualifies only when it is readable, marked done, *and*
        stores the same spec -- a partial write, a failure record, or a
        record from an edited campaign all read as "not completed".
        """
        record = self.load(spec.run_id)
        if record is None or record.get("status") != STATUS_DONE:
            return None
        if record.get("spec") != spec.to_json():
            return None
        return record

    def records(self) -> Dict[str, Dict[str, Any]]:
        """All readable records, keyed by their embedded run id."""
        out: Dict[str, Dict[str, Any]] = {}
        if not self.runs_dir.is_dir():
            return out
        for path in sorted(self.runs_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                run_id = (record.get("spec") or {}).get("run_id")
                if run_id:
                    out[run_id] = record
        return out

    def __len__(self) -> int:
        return len(self.records())


class RunCheckpoint:
    """One run's mid-search checkpoint handle (store + spec binding).

    What an executor threads into its :class:`~repro.search.SearchLoop`:
    ``save`` persists the loop state after every step, ``load`` answers
    only when the stored spec matches (an edited campaign silently
    starts that run over), ``clear`` runs when the final record lands.
    """

    def __init__(self, store: RunStore, spec: RunSpec):
        self.store = store
        self.spec = spec

    def save(self, state: Dict[str, Any]) -> None:
        """Persist a step-boundary search state for this run."""
        self.store.write_checkpoint(
            self.spec.run_id, {"spec": self.spec.to_json(), "state": state}
        )

    def load(self) -> Optional[Dict[str, Any]]:
        """The saved search state, or None (missing/corrupt/spec edit)."""
        payload = self.store.load_checkpoint(self.spec.run_id)
        if payload is None or payload.get("spec") != self.spec.to_json():
            return None
        return payload.get("state")

    def clear(self) -> None:
        """Drop the checkpoint (the run completed)."""
        self.store.clear_checkpoint(self.spec.run_id)
