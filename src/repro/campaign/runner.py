"""Run execution: rebuild the pool from a spec and run it, in-process.

``execute_run`` is the single entry point the scheduler dispatches --
sequentially in the parent, or pickled into pool workers. Everything a
run needs (workload, proxies, explorer, RNG) is rebuilt *inside* the
call from the spec's fields, which keeps worker dispatch cheap (a spec
is a few hundred bytes) and guarantees run independence: two runs can
never share mutable state, so execution order and placement cannot
change results.

Executors are registered per ``spec.kind``; payloads must be
JSON-serialisable because they go straight into the run store.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.campaign.spec import RunSpec, explorer_config_from_dict
from repro.campaign.store import STATUS_DONE, RunCheckpoint, RunStore
from repro.engine.config import EngineConfig

#: spec.workload value selecting the suite-average general-purpose pool.
SUITE_WORKLOAD = "suite"

Executor = Callable[[RunSpec, Any, Optional[RunCheckpoint]], Dict[str, Any]]

_EXECUTORS: Dict[str, Executor] = {}


def executor(kind: str) -> Callable[[Executor], Executor]:
    """Register an executor for one spec kind."""

    def register(fn: Executor) -> Executor:
        _EXECUTORS[kind] = fn
        return fn

    return register


def _resolve_engine_config(
    engine_config,
    cache_dir,
    engine_workers: int,
    hf_backend,
    hf_batch,
) -> EngineConfig:
    """The one :class:`EngineConfig` a run executes under.

    ``engine_config`` may be the dataclass itself or its ``to_json()``
    dict (the form the scheduler ships across the process boundary);
    when absent, the legacy loose kwargs are folded into one.
    """
    if isinstance(engine_config, EngineConfig):
        return engine_config
    if engine_config is not None:
        return EngineConfig.from_json(engine_config)
    return EngineConfig(
        workers=engine_workers,
        cache_dir=None if cache_dir is None else str(cache_dir),
        hf_backend=hf_backend,
        hf_batch=hf_batch,
    )


def build_pool_for(
    spec: RunSpec,
    cache_dir=None,
    engine_workers: int = 0,
    hf_backend=None,
    hf_batch=None,
    engine_config=None,
):
    """The proxy pool a spec's run evaluates against.

    Built from the spec exactly like the sequential experiment loops
    built theirs, so a ``workers=0`` campaign is bit-identical to the
    pre-campaign code path. ``engine_config`` (an
    :class:`EngineConfig` or its JSON dict) supersedes the loose kwargs.
    """
    from repro.experiments.common import (
        GENERAL_PURPOSE_LIMIT,
        build_pool,
        build_suite_pool,
    )

    config = _resolve_engine_config(
        engine_config, cache_dir, engine_workers, hf_backend, hf_batch
    )
    if spec.workload == SUITE_WORKLOAD:
        return build_suite_pool(
            area_limit_mm2=(
                GENERAL_PURPOSE_LIMIT
                if spec.area_limit_mm2 is None
                else spec.area_limit_mm2
            ),
            scale=spec.scale,
            workload_seed=spec.workload_seed,
            engine=config,
        )
    return build_pool(
        spec.workload,
        area_limit_mm2=spec.area_limit_mm2,
        data_size=spec.data_size,
        workload_seed=spec.workload_seed,
        engine=config,
    )


def execute_run(
    spec: RunSpec,
    cache_dir=None,
    engine_workers: int = 0,
    hf_backend=None,
    hf_batch=None,
    store: Optional[RunStore] = None,
    engine_config=None,
) -> Dict[str, Any]:
    """Execute one spec; returns its completed store record.

    When a ``store`` is given, search-driven kinds persist a per-step
    checkpoint under it and resume mid-search from any matching
    checkpoint left by a killed campaign; the checkpoint is cleared once
    the run's payload is complete.

    ``engine_config`` is the per-run evaluation config -- an
    :class:`EngineConfig` or its ``to_json()`` dict (what the scheduler
    sends across the process boundary). The loose kwargs remain as a
    deprecated-in-spirit compatibility path and are ignored when it is
    given. The resolved config is embedded in the record under
    ``"engine_config"`` so reports can tell tiered runs apart.
    """
    fn = _EXECUTORS.get(spec.kind)
    if fn is None:
        raise ValueError(
            f"unknown run kind {spec.kind!r}; known: {sorted(_EXECUTORS)}"
        )
    config = _resolve_engine_config(
        engine_config, cache_dir, engine_workers, hf_backend, hf_batch
    )
    start = time.perf_counter()
    pool = build_pool_for(spec, engine_config=config)
    checkpoint = RunCheckpoint(store, spec) if store is not None else None
    payload = fn(spec, pool, checkpoint)
    if checkpoint is not None:
        checkpoint.clear()
    return {
        "spec": spec.to_json(),
        "status": STATUS_DONE,
        "payload": payload,
        "engine": {
            k: v for k, v in pool.summary().items() if isinstance(v, (int, float))
        },
        "engine_config": config.to_json(),
        "elapsed_s": time.perf_counter() - start,
    }


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _levels(levels) -> list:
    return [int(v) for v in levels]


def _drive_loop(loop, checkpoint: Optional[RunCheckpoint]):
    """Run a search loop to completion, checkpointing every step.

    A matching checkpoint (same spec) restores the loop mid-search
    first, so a killed campaign run resumes at the step boundary it
    died on instead of starting over.
    """
    if checkpoint is not None:
        state = checkpoint.load()
        if state is not None:
            loop.restore(state)
        loop.on_step = lambda lp: checkpoint.save(lp.state())
    return loop.run()


@executor("baseline")
def _run_baseline(
    spec: RunSpec, pool, checkpoint: Optional[RunCheckpoint] = None
) -> Dict[str, Any]:
    """One Fig.-5 baseline run (``spec.method`` names the searcher)."""
    from repro.search.loop import SearchLoop
    from repro.search.registry import make_method

    if spec.hf_budget is None:
        raise ValueError(f"baseline spec {spec.run_id!r} needs hf_budget")
    rng = np.random.default_rng(spec.params.get("rng_seed", spec.seed))
    loop = SearchLoop(
        pool,
        make_method(spec.method),
        spec.hf_budget,
        rng=rng,
        propose_batch=int(spec.params.get("propose_batch", 1)),
    )
    result = _drive_loop(loop, checkpoint)
    return {
        "best_cpi": float(result.best_cpi),
        "best_levels": _levels(result.best_levels),
        "history": [float(v) for v in result.history],
    }


@executor("explorer")
def _run_explorer(
    spec: RunSpec, pool, checkpoint: Optional[RunCheckpoint] = None
) -> Dict[str, Any]:
    """One full multi-fidelity explorer run (LF -> transition -> HF).

    A matching mid-HF checkpoint skips the LF phase entirely: the
    converged design, seed set and FNN weights are restored from the
    checkpoint, and the HF search continues where it stopped.
    """
    from repro.core.mfrl import MultiFidelityExplorer

    config = explorer_config_from_dict(spec.explorer)
    explorer = MultiFidelityExplorer(pool, config=config, seed=spec.seed)
    propose_batch = int(spec.params.get("propose_batch", 1))
    state = checkpoint.load() if checkpoint is not None else None
    if state is not None:
        loop = explorer.hf_loop(propose_batch=propose_batch)
        loop.restore(state)
    else:
        lf_trainer = explorer.run_lf_phase()
        loop = explorer.hf_loop(lf_trainer, propose_batch=propose_batch)
    if checkpoint is not None:
        loop.on_step = lambda lp: checkpoint.save(lp.state())
    result = loop.run()
    return {
        "lf_hf_cpi": float(result.lf_hf_cpi),
        "best_hf_cpi": float(result.best_hf_cpi),
        "lf_levels": _levels(result.lf_levels),
        "best_levels": _levels(result.best_levels),
        "best_area_mm2": float(pool.area(result.best_levels)),
        "area_limit_mm2": float(pool.constraint.limit_mm2),
        "hf_simulations": int(result.hf_simulations),
    }


@executor("table2")
def _run_table2(
    spec: RunSpec, pool, checkpoint: Optional[RunCheckpoint] = None
) -> Dict[str, Any]:
    """Explorer run plus the sampled-optimum estimate on the same pool."""
    from repro.experiments.regret import estimate_optimum

    payload = _run_explorer(spec, pool, checkpoint)
    # Fallback mirrors table2_specs' default, so a hand-authored spec
    # without the param behaves like an emitted one.
    opt = estimate_optimum(
        pool,
        np.random.default_rng(spec.seed + 1),
        num_samples=int(spec.params.get("optimum_samples", 300)),
    )
    payload["sampled_optimum_cpi"] = float(opt.cpi)
    return payload


@executor("lf-trace")
def _run_lf_trace(
    spec: RunSpec, pool, checkpoint: Optional[RunCheckpoint] = None
) -> Dict[str, Any]:
    """LF-phase-only run recording per-episode telemetry (Figs. 6/7).

    Spends no HF budget, so there is nothing to checkpoint mid-run.

    ``params`` may carry an MF-center initialisation (``l1_center`` /
    ``l2_center``) and/or a decode-width preference to embed before
    training.
    """
    from repro.core.fnn import (
        FuzzyNeuralNetwork,
        decode_width_preference,
        default_inputs,
        embed_preference,
    )
    from repro.core.mfrl import MultiFidelityExplorer

    centers = {
        key: float(spec.params[key])
        for key in ("l1_center", "l2_center")
        if key in spec.params
    }
    inputs = default_inputs(**centers)
    fnn = None
    if spec.params.get("with_preference"):
        fnn = FuzzyNeuralNetwork(
            inputs, pool.space.names, rng=np.random.default_rng(spec.seed)
        )
        embed_preference(
            fnn,
            decode_width_preference(
                int(spec.params["target_decode"]),
                float(spec.params["preference_strength"]),
            ),
        )
    elif "target_decode" in spec.params:
        # Fig.-7 control run: same explicit FNN construction as the
        # preference run so the two differ only by the embedded rules.
        fnn = FuzzyNeuralNetwork(
            inputs, pool.space.names, rng=np.random.default_rng(spec.seed)
        )
    explorer = MultiFidelityExplorer(
        pool,
        inputs=inputs,
        config=explorer_config_from_dict(spec.explorer),
        seed=spec.seed,
        fnn=fnn,
    )
    trainer = explorer.run_lf_phase()
    trajectories: Dict[str, list] = {name: [] for name in pool.space.names}
    for record in trainer.history:
        for name, value in zip(
            pool.space.names, pool.space.values(record.final_levels)
        ):
            trajectories[name].append(int(value))
    return {
        "episode_cpi": [float(r.final_cpi) for r in trainer.history],
        "trajectories": trajectories,
    }
