"""Campaign progress/summary reporting: aggregate counters across runs.

Every completed record carries the run's engine counters (computed LF/HF
evaluations, persistent-cache hits, ...). Summed over a campaign they
answer the questions that matter at grid scale: how many simulations the
grid actually paid for, and how many the shared cache absorbed.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.campaign.scheduler import CampaignResult

#: Counter keys surfaced in the one-line summary (record key -> label).
HEADLINE_COUNTERS = (
    ("engine_computed_low", "computed LF"),
    ("engine_computed_high", "computed HF"),
    ("engine_cache_hits", "cache hits"),
    # Learned-tier efficacy: queries answered by the cost model vs
    # queries that fell back to the simulator (zero unless --tier is on).
    ("engine_tier_served", "tier served"),
    ("engine_tier_fallback", "tier fallback"),
    # Phase-1 memo efficacy: how many simulator pre-passes were replayed
    # from the memo instead of rebuilt (per run, summed over the grid).
    ("engine_prepass_hits", "prepass hits"),
    ("engine_prepass_misses", "prepass builds"),
    # Kernel provenance: which timing kernel actually ran each HF
    # evaluation (compiled C extension / pure Python / design-batched
    # numpy lockstep). A campaign silently falling back to the Python
    # kernel shows up here, not just as a slow wall clock.
    ("engine_kernel_compiled_evals", "compiled-kernel evals"),
    ("engine_kernel_python_evals", "python-kernel evals"),
    ("engine_kernel_batched_evals", "batched-kernel evals"),
)


def aggregate_engine_counters(
    records: Mapping[str, Dict[str, Any]],
) -> Dict[str, float]:
    """Sum the numeric engine counters of every record."""
    totals: Dict[str, float] = {}
    for record in records.values():
        for key, value in (record.get("engine") or {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
    return totals


def render_campaign_summary(result: CampaignResult) -> str:
    """Human-readable wrap-up of one scheduler invocation."""
    counters = aggregate_engine_counters(result.records)
    run_time = sum(
        record.get("elapsed_s", 0.0) for record in result.records.values()
    )
    lines = [
        "campaign summary:",
        f"  runs      {len(result.records)} total, "
        f"{len(result.executed)} executed, {len(result.skipped)} resumed",
        f"  wall      {result.elapsed_s:.1f}s this invocation "
        f"({run_time:.1f}s of run time)",
    ]
    parts = [
        f"{label} {int(counters[key])}"
        for key, label in HEADLINE_COUNTERS
        if key in counters
    ]
    if parts:
        lines.append("  engine    " + ", ".join(parts))
    return "\n".join(lines)
