"""Run specifications: the serialisable unit of campaign work.

A :class:`RunSpec` describes *one* independent explorer or baseline run
-- method, seed, workload, area budget and explorer configuration -- in
plain JSON-serialisable fields. Specs are what experiments *emit* (a
Fig.-5 grid is seeds x methods of them), what the scheduler fans out
over a process pool, and what the run store persists next to each run's
result record so a resumed campaign can tell whether a record still
matches the work it claims to answer.

The spec is deliberately declarative: no callables, no live pools. The
executor registry in :mod:`repro.campaign.runner` maps ``spec.kind`` to
the code that rebuilds the proxy pool *inside* the worker process and
runs it -- which is also what makes a spec picklable and a future RPC
backend possible (ship the spec, not the objects).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.core.mfrl import ExplorerConfig
from repro.core.mfrl.reinforce import TrainerConfig


@dataclass(frozen=True)
class RunSpec:
    """One independent run of a campaign grid.

    Attributes:
        run_id: Campaign-unique identifier (doubles as the record name).
        kind: Executor registry key (``"explorer"``, ``"baseline"``, ...).
        method: Method label the reducers group by (baseline name or
            ``"fnn-mbrl"``).
        seed: Master seed of the run.
        workload: Benchmark name, or ``"suite"`` for the suite-average
            general-purpose pool.
        area_limit_mm2: Area budget; ``None`` uses the workload's
            Table-2 default.
        scale: Suite problem-size scale (suite pools only).
        data_size: Problem-size override (single-benchmark pools only).
        workload_seed: Workload-content seed.
        hf_budget: HF-simulation budget for baseline runs.
        explorer: Serialised :class:`ExplorerConfig` (see
            :func:`explorer_config_to_dict`); ``None`` means defaults.
        params: Kind-specific extras (e.g. MF-center initialisation,
            preference settings, optimum sample count).
    """

    run_id: str
    kind: str
    method: str
    seed: int
    workload: str
    area_limit_mm2: Optional[float] = None
    scale: float = 1.0
    data_size: Optional[int] = None
    workload_seed: int = 0
    hf_budget: Optional[int] = None
    explorer: Optional[Dict[str, Any]] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """JSON-canonical dict (tuples become lists, keys become str).

        The round trip through ``json`` matters: a spec freshly built in
        memory must compare equal to one read back from a manifest, so
        resume checks are value checks, not format checks.
        """
        return json.loads(json.dumps(asdict(self)))

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls(**data)


def explorer_config_to_dict(config: Optional[ExplorerConfig]) -> Optional[Dict[str, Any]]:
    """Serialise an :class:`ExplorerConfig` (trainer included) to JSON."""
    if config is None:
        return None
    return asdict(config)


def explorer_config_from_dict(data: Optional[Dict[str, Any]]) -> ExplorerConfig:
    """Rebuild an :class:`ExplorerConfig` from :func:`explorer_config_to_dict`."""
    if data is None:
        return ExplorerConfig()
    kwargs = dict(data)
    trainer = kwargs.pop("trainer", None)
    if trainer is not None:
        kwargs["trainer"] = TrainerConfig(**trainer)
    return ExplorerConfig(**kwargs)
