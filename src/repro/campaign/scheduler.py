"""The campaign scheduler: fan independent runs out, resumably.

``CampaignScheduler.run(specs)`` executes every spec not already
answered by the run store and returns all records. Two execution modes:

- ``workers=0`` (or 1): a plain in-order loop in the calling process --
  the reference semantics. Because each run rebuilds its own pool and
  RNG from the spec, this path is bit-identical to the sequential
  experiment loops it replaced.
- ``workers>=2``: a ``concurrent.futures`` process pool over the pending
  specs. Runs are independent by construction, so placement changes
  wall-clock, never values.

Resume is a store property, not scheduler state: a record counts only if
it is readable, marked done and its embedded spec matches (see
:meth:`repro.campaign.store.RunStore.completed`), so deleting half the
records -- or editing the campaign -- re-executes exactly the missing or
changed runs.

All runs share one persistent ``cache_dir``, so designs revisited across
methods and seeds simulate once; worker pools inside a run are disabled
(``engine_workers=0`` by default) because the campaign already owns the
process-level parallelism.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.runner import execute_run
from repro.campaign.spec import RunSpec
from repro.campaign.store import RunStore
from repro.engine.config import EngineConfig


@dataclass
class CampaignResult:
    """Everything a reducer needs from one scheduler invocation.

    Attributes:
        records: Completed record per run id (executed or resumed).
        executed: Run ids computed in this invocation, in spec order.
        skipped: Run ids answered by the store, in spec order.
        elapsed_s: Wall-clock of this invocation.
    """

    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    def payload(self, run_id: str) -> Dict[str, Any]:
        """The result payload of one run."""
        return self.records[run_id]["payload"]


def make_scheduler(
    workers: int = 0,
    cache_dir=None,
    campaign_dir=None,
    resume: bool = True,
    hf_backend=None,
    hf_batch=None,
    engine: Optional[EngineConfig] = None,
) -> "CampaignScheduler":
    """The scheduler an experiment runner builds when none was injected.

    One place for the store/cache wiring every ``run_*`` entry point
    shares; ``campaign_dir=None`` keeps records in memory only. An
    explicit ``engine`` config supersedes the loose evaluation kwargs
    (``cache_dir`` / ``hf_backend`` / ``hf_batch``).
    """
    return CampaignScheduler(
        workers=workers,
        store=RunStore(campaign_dir) if campaign_dir is not None else None,
        cache_dir=cache_dir,
        resume=resume,
        hf_backend=hf_backend,
        hf_batch=hf_batch,
        engine_config=engine,
    )


class CampaignScheduler:
    """Parallel, resumable execution of independent run specs.

    Args:
        workers: Process-pool size across runs; 0/1 executes sequentially
            in-process (the reference path).
        store: Run store for persistence/resume; ``None`` keeps records
            in memory only.
        cache_dir: Persistent evaluation-cache directory shared by every
            run of the campaign.
        resume: Reuse completed store records instead of re-running.
        progress: Optional sink for one human-readable line per run.
        engine_workers: Process-pool size *inside* each run's evaluation
            engine (default 0: the campaign level owns parallelism).
        hf_backend: Execution-backend spec for each run's engine (see
            :func:`repro.engine.make_backend`; None = auto).
        hf_batch: Designs per design-batched simulator walk inside each
            run (None = kernel default).
        engine_config: The full per-run :class:`EngineConfig` (store
            backend, learned tier, ...). Supersedes ``cache_dir`` /
            ``engine_workers`` / ``hf_backend`` / ``hf_batch``, which are
            folded into one when it is absent.
    """

    def __init__(
        self,
        workers: int = 0,
        store: Optional[RunStore] = None,
        cache_dir=None,
        resume: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        engine_workers: int = 0,
        hf_backend=None,
        hf_batch=None,
        engine_config: Optional[EngineConfig] = None,
    ):
        self.workers = max(int(workers), 0)
        self.store = store
        self.resume = resume
        self.progress = progress
        if engine_config is None:
            engine_config = EngineConfig(
                workers=engine_workers,
                cache_dir=None if cache_dir is None else str(cache_dir),
                hf_backend=hf_backend,
                hf_batch=hf_batch,
            )
        #: Per-run evaluation config, shipped to workers as plain JSON.
        self.engine_config = engine_config
        # Legacy attribute views, derived from the config.
        self.cache_dir = engine_config.cache_dir
        self.engine_workers = engine_config.workers
        self.hf_backend = engine_config.hf_backend
        self.hf_batch = engine_config.hf_batch
        #: The most recent :class:`CampaignResult` (for summary printing).
        self.last: Optional[CampaignResult] = None

    # ------------------------------------------------------------------
    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _record_done(self, spec: RunSpec, record: Dict[str, Any]) -> None:
        if self.store is not None:
            self.store.write(spec.run_id, record)

    def _record_failed(self, spec: RunSpec, error: BaseException) -> None:
        if self.store is not None:
            self.store.write(
                spec.run_id,
                {"spec": spec.to_json(), "status": "failed", "error": repr(error)},
            )

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> CampaignResult:
        """Execute (or resume) every spec; returns all records."""
        specs = list(specs)
        seen = set()
        for spec in specs:
            if spec.run_id in seen:
                raise ValueError(f"duplicate run id {spec.run_id!r}")
            seen.add(spec.run_id)

        start = time.perf_counter()
        result = CampaignResult()
        pending: List[RunSpec] = []
        for spec in specs:
            record = (
                self.store.completed(spec)
                if (self.resume and self.store is not None)
                else None
            )
            if record is not None:
                result.records[spec.run_id] = record
                result.skipped.append(spec.run_id)
            else:
                pending.append(spec)
        if result.skipped:
            self._note(
                f"resume: {len(result.skipped)}/{len(specs)} runs already "
                "complete, skipping"
            )

        if self.workers >= 2 and len(pending) >= 2:
            self._run_parallel(pending, result)
        else:
            self._run_sequential(pending, result)

        result.elapsed_s = time.perf_counter() - start
        self.last = result
        return result

    # ------------------------------------------------------------------
    def _finish(
        self,
        spec: RunSpec,
        record: Dict[str, Any],
        result: CampaignResult,
        total: int,
    ) -> None:
        self._record_done(spec, record)
        result.records[spec.run_id] = record
        result.executed.append(spec.run_id)
        done = len(result.records)
        self._note(
            f"[{done}/{total}] {spec.run_id} "
            f"({record.get('elapsed_s', 0.0):.1f}s)"
        )

    def _run_sequential(
        self, pending: Sequence[RunSpec], result: CampaignResult
    ) -> None:
        total = len(result.records) + len(pending)
        for spec in pending:
            try:
                record = execute_run(
                    spec,
                    engine_config=self.engine_config.to_json(),
                    store=self.store,
                )
            except Exception as error:
                self._record_failed(spec, error)
                raise
            self._finish(spec, record, result, total)

    def _run_parallel(
        self, pending: Sequence[RunSpec], result: CampaignResult
    ) -> None:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        total = len(result.records) + len(pending)
        failures: List[str] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending))
        ) as executor:
            futures = {
                executor.submit(
                    execute_run,
                    spec,
                    engine_config=self.engine_config.to_json(),
                    store=self.store,
                ): spec
                for spec in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = futures[future]
                    error = future.exception()
                    if error is not None:
                        self._record_failed(spec, error)
                        failures.append(f"{spec.run_id}: {error!r}")
                        continue
                    self._finish(spec, future.result(), result, total)
        if failures:
            raise RuntimeError(
                f"{len(failures)} campaign run(s) failed:\n  "
                + "\n  ".join(failures)
            )
        # Executed order should read like the plan, not like the race.
        order = {spec.run_id: i for i, spec in enumerate(pending)}
        result.executed.sort(key=order.__getitem__)
