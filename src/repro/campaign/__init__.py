"""Campaign orchestration: parallel, resumable grids of independent runs.

The paper's headline experiments are grids -- seeds x methods x
workloads -- of runs that share nothing but the evaluation cache. This
package turns such a grid into first-class objects:

- :mod:`repro.campaign.spec`      -- :class:`RunSpec`, the serialisable
  description of one run (and the seam a future RPC backend ships
  across hosts).
- :mod:`repro.campaign.runner`    -- the executor registry that rebuilds
  a pool from a spec inside the worker and runs it.
- :mod:`repro.campaign.store`     -- :class:`RunStore`, one atomic JSON
  record per run under a campaign directory plus per-step search
  checkpoints; the resume source of truth at run *and* step granularity.
- :mod:`repro.campaign.scheduler` -- :class:`CampaignScheduler`, the
  sequential-reference / process-pool fan-out over pending specs.
- :mod:`repro.campaign.report`    -- aggregated engine counters and the
  campaign summary.

Experiments *emit* specs and *reduce* records; ``workers=0`` reproduces
their pre-campaign sequential results bit-for-bit.
"""

from repro.campaign.report import (
    aggregate_engine_counters,
    render_campaign_summary,
)
from repro.campaign.runner import build_pool_for, execute_run
from repro.campaign.scheduler import (
    CampaignResult,
    CampaignScheduler,
    make_scheduler,
)
from repro.campaign.spec import (
    RunSpec,
    explorer_config_from_dict,
    explorer_config_to_dict,
)
from repro.campaign.store import RunCheckpoint, RunStore

__all__ = [
    "CampaignResult",
    "CampaignScheduler",
    "RunCheckpoint",
    "RunSpec",
    "RunStore",
    "aggregate_engine_counters",
    "build_pool_for",
    "execute_run",
    "explorer_config_from_dict",
    "explorer_config_to_dict",
    "make_scheduler",
    "render_campaign_summary",
]
