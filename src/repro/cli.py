"""Command-line interface: ``python -m repro <command>``.

One subcommand per paper artefact plus a quick end-to-end run:

- ``table1``   print the design space.
- ``table2``   application-specific regrets (LF vs HF per benchmark).
- ``fig5``     baseline comparison (mean best CPI, bar chart).
- ``fig6``     MF-center initialisation sweep (line plot).
- ``fig7``     preference embedding (trajectory view).
- ``rules``    train and print the extracted rule base.
- ``explore``  one search run on a chosen benchmark (any registered
  method via ``--method``; default: the paper's multi-fidelity flow).
- ``methods``  list the registered search methods.
- ``kernels``  report which timing kernels run on this host (compiled C
  extension vs pure Python vs design-batched numpy) + micro-bench.
- ``sweep``    area-budget frontier of the explorer.
- ``campaign`` parallel, resumable runs of a whole experiment grid.
- ``store``    inspect/compact/merge/migrate a persistent evaluation
  store (the ``--cache-dir`` of the simulating commands).

All commands accept ``--fast`` to shrink budgets/problem sizes for smoke
runs, and print to stdout (pipe to a file to archive results). Commands
that simulate (``table2``, ``fig5``, ``explore``, ``sweep``,
``campaign``) share one set of evaluation flags, parsed **once** into an
:class:`~repro.engine.EngineConfig`: ``--workers N`` (process-pool size:
across runs for the grid commands, across high-fidelity batches for
``explore``), ``--cache-dir DIR`` (persistent cross-run evaluation
store), ``--store-backend {auto,sharded,sqlite}`` (store layout),
``--hf-backend {auto,batched,process,serial}`` (how HF batches execute;
the default engages the design-batched simulator kernel for wide
batches), ``--hf-batch N`` (designs per batched walk), ``--hf-kernel
{auto,compiled,python}`` (which serial timing kernel runs each HF
evaluation; auto picks the compiled C extension when it builds),
``--propose-batch Q`` (designs each search proposes per step -- every
proposal batch is one HF dispatch; 1 reproduces the sequential paper
protocol exactly) and ``--tier {off,gbrt,rf}`` (learned cost-model
fidelity tier over the store corpus; off by default, so results stay
bit-identical to the simulator pipeline). ``campaign`` additionally
takes ``--campaign-dir DIR`` (one JSON record per run plus per-step
search checkpoints), ``--resume`` (skip completed runs and continue
interrupted ones mid-search) and ``--merge-store DIR`` (fold another
host's evaluation store into ``--cache-dir`` before scheduling).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import viz
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.workloads import BENCHMARK_NAMES

#: --fast problem sizes (seconds-per-command territory).
FAST_SIZES = {
    "dijkstra": 96,
    "mm": 14,
    "fp-vvadd": 768,
    "quicksort": 192,
    "fft": 128,
    "ss": 768,
}


def _fast_config() -> ExplorerConfig:
    return ExplorerConfig(lf_episodes=100, lf_min_episodes=60, hf_budget=6,
                          hf_seed_designs=2)


def _engine_config(args: argparse.Namespace, engine_workers=None):
    """The one ``EngineConfig`` a command builds from its parsed flags.

    Grid commands pass ``engine_workers=0``: there ``--workers`` sizes
    the *campaign* process pool, and the engine inside each run stays
    serial (the campaign level owns parallelism).
    """
    from dataclasses import replace

    from repro.engine import EngineConfig

    config = EngineConfig.from_args(args)
    if engine_workers is not None and engine_workers != config.workers:
        config = replace(config, workers=engine_workers)
    return config


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    print(run_table1())
    return 0


def cmd_table2(args: argparse.Namespace, scheduler=None) -> int:
    from repro.experiments.table2 import render_table2, run_table2

    rows = run_table2(
        benchmarks=args.benchmarks or BENCHMARK_NAMES,
        seed=args.seed,
        explorer_config=_fast_config() if args.fast else None,
        optimum_samples=60 if args.fast else 500,
        data_sizes=FAST_SIZES if args.fast else None,
        propose_batch=args.propose_batch,
        workers=args.workers,
        engine=_engine_config(args, engine_workers=0),
        scheduler=scheduler,
    )
    print(render_table2(rows))
    return 0


def cmd_fig5(args: argparse.Namespace, scheduler=None) -> int:
    from repro.experiments.fig5 import run_fig5

    result = run_fig5(
        seeds=tuple(range(args.seeds)),
        explorer_config=_fast_config() if args.fast else None,
        scale=0.25 if args.fast else 1.0,
        propose_batch=args.propose_batch,
        workers=args.workers,
        engine=_engine_config(args, engine_workers=0),
        scheduler=scheduler,
    )
    print("Fig. 5 -- mean best CPI (lower is better):")
    print(viz.bar_chart(result.mean_cpi, highlight="fnn-mbrl-hf"))
    return 0


def cmd_fig6(args: argparse.Namespace, scheduler=None) -> int:
    from repro.experiments.fig6 import PAPER_CENTER_PAIRS, render_fig6, run_fig6

    traces = run_fig6(
        center_pairs=PAPER_CENTER_PAIRS,
        episodes=100 if args.fast else 250,
        seed=args.seed,
        scheduler=scheduler,
    )
    print(render_fig6(traces))
    print()
    print(viz.line_plot(
        {f"{t.l1_center:.0f}/{t.l2_center:.0f}": t.episode_cpi for t in traces}
    ))
    return 0


def cmd_fig7(args: argparse.Namespace, scheduler=None) -> int:
    from repro.experiments.fig7 import render_fig7, run_fig7

    result = run_fig7(
        episodes=80 if args.fast else 250,
        seed=args.seed,
        data_size=1024 if args.fast else None,
        scheduler=scheduler,
    )
    print(render_fig7(result))
    print()
    print("with preference:")
    print(viz.trajectory_plot(result.with_preference, focus="decode_width"))
    print()
    print("without preference:")
    print(viz.trajectory_plot(result.without_preference, focus="decode_width"))
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    from repro.core.fnn import render_rule_base
    from repro.experiments.rules import run_rules_demo

    rules, __ = run_rules_demo(
        benchmark=args.benchmark,
        episodes=100 if args.fast else 260,
        seed=args.seed,
        data_size=FAST_SIZES.get(args.benchmark) if args.fast else None,
    )
    print(render_rule_base(rules))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.experiments.common import build_pool, run_search

    pool = build_pool(
        args.benchmark,
        data_size=FAST_SIZES.get(args.benchmark) if args.fast else None,
        engine=_engine_config(args),
    )
    space = pool.space
    print(f"benchmark: {args.benchmark}  "
          f"(area limit {pool.constraint.limit_mm2} mm^2)")
    if args.method == "fnn-mbrl":
        config = _fast_config() if args.fast else ExplorerConfig()
        if args.hf_budget is not None:
            from dataclasses import replace

            config = replace(config, hf_budget=args.hf_budget)
        explorer = MultiFidelityExplorer(pool, config=config, seed=args.seed)
        result = explorer.hf_loop(
            explorer.run_lf_phase(), propose_batch=args.propose_batch
        ).run()
        print(f"LF design:   {space.config(result.lf_levels).describe()}")
        print(f"  HF CPI {result.lf_hf_cpi:.4f}, "
              f"area {pool.area(result.lf_levels):.2f} mm^2")
        print(f"best design: {space.config(result.best_levels).describe()}")
        print(f"  HF CPI {result.best_hf_cpi:.4f}, "
              f"area {pool.area(result.best_levels):.2f} mm^2")
        print(f"HF simulations: {result.hf_simulations}")
        return 0
    budget = args.hf_budget if args.hf_budget is not None else (6 if args.fast else 10)
    result = run_search(
        pool,
        args.method,
        budget,
        rng=np.random.default_rng(args.seed),
        propose_batch=args.propose_batch,
    )
    print(f"method: {result.name}  (budget {budget}, "
          f"propose batch {args.propose_batch})")
    print(f"best design: {space.config(result.best_levels).describe()}")
    print(f"  HF CPI {result.best_cpi:.4f}, "
          f"area {pool.area(result.best_levels):.2f} mm^2")
    print(f"HF simulations: {len(result.history)}")
    return 0


def cmd_methods(args: argparse.Namespace) -> int:
    from repro.search import registered_methods

    methods = registered_methods()
    width = max(len(name) for name in methods)
    print(f"{'method':<{width}}  kind      description")
    print("-" * (width + 50))
    for name, info in methods.items():
        print(f"{name:<{width}}  {info.kind:<8}  {info.description}")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    """Report which timing kernels run on this host, and how fast.

    The triage table for "why is this host slow": a missing compiled
    kernel (toolchain problem) silently costs ~an order of magnitude on
    every serial HF evaluation.
    """
    import os

    from repro.simulator.kernels import (
        FORCE_PY_ENV,
        KERNEL_COMPILED,
        KERNEL_PYTHON,
        compiled_available,
        compiled_build_error,
        kernel_microbench,
        select_kernel,
    )

    available = {
        KERNEL_COMPILED: compiled_available(),
        KERNEL_PYTHON: True,
        "batched": True,
    }
    timings = {} if args.no_bench else kernel_microbench()
    selected = select_kernel(None)
    print(f"{'kernel':<10} {'available':<10} {'evals/s':<10} note")
    print("-" * 60)
    for name in (KERNEL_COMPILED, KERNEL_PYTHON, "batched"):
        rate = timings.get(name)
        note = ""
        if name == selected:
            note = "selected (auto)"
        if name == KERNEL_COMPILED and not available[name]:
            note = compiled_build_error() or "unavailable"
        print(f"{name:<10} {'yes' if available[name] else 'no':<10} "
              f"{f'{rate:.1f}' if rate else '-':<10} {note}")
    if os.environ.get(FORCE_PY_ENV, "") not in ("", "0"):
        print(f"note: {FORCE_PY_ENV} is set; the python kernel is forced")
    return 0


def cmd_sweep(args: argparse.Namespace, scheduler=None) -> int:
    from repro.experiments.sweep import frontier_knee, render_sweep, run_area_sweep

    points = run_area_sweep(
        args.benchmark,
        area_limits=tuple(args.limits) if args.limits else (5.0, 6.0, 7.5, 9.0, 11.0),
        seed=args.seed,
        explorer_config=_fast_config() if args.fast else None,
        data_size=FAST_SIZES.get(args.benchmark) if args.fast else None,
        propose_batch=args.propose_batch,
        workers=args.workers,
        engine=_engine_config(args, engine_workers=0),
        scheduler=scheduler,
    )
    print(render_sweep(points))
    knee = frontier_knee(points)
    print(f"knee: {knee.area_limit_mm2:.1f} mm^2 "
          f"(best CPI {knee.best_hf_cpi:.4f})")
    return 0


#: Experiments the ``campaign`` subcommand can orchestrate. Delegating
#: to the plain subcommand implementations keeps the two entry points
#: running the *same* experiment -- only the scheduler differs.
CAMPAIGN_EXPERIMENTS = {
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "table2": cmd_table2,
    "sweep": cmd_sweep,
}


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro import campaign

    if args.merge_store:
        if args.cache_dir is None:
            print("--merge-store requires --cache-dir (the merge target)",
                  file=sys.stderr)
            return 2
        from repro.store import EvalStore

        target = EvalStore(args.cache_dir, backend=args.store_backend)
        for source in args.merge_store:
            report = target.merge(source)
            print(f"merged {source}: +{report['added']} records "
                  f"({report['duplicates']} duplicates)")

    scheduler = campaign.CampaignScheduler(
        workers=args.workers,
        store=(
            campaign.RunStore(args.campaign_dir)
            if args.campaign_dir is not None
            else None
        ),
        resume=args.resume,
        progress=print,
        engine_config=_engine_config(args, engine_workers=0),
    )
    code = CAMPAIGN_EXPERIMENTS[args.experiment](args, scheduler=scheduler)
    print()
    print(campaign.render_campaign_summary(scheduler.last))
    return code


def cmd_store(args: argparse.Namespace) -> int:
    from repro.store import EvalStore, StoreError

    try:
        store = EvalStore(args.store_dir, backend=args.backend)
        if args.action == "stats":
            stats = store.stats()
            print(f"store: {args.store_dir} (backend {store.backend_name})")
            for key in sorted(stats):
                print(f"  {key:<18} {stats[key]}")
            for tag in store.tags():
                print(f"  tag {tag!r}: ~{store.count(tag)} records")
        elif args.action == "compact":
            before = store.stats()
            store.compact()
            print(f"compacted {args.store_dir}: {before['entries']} entries, "
                  f"{store.stats()['compactions']} compaction pass(es)")
        elif args.action == "merge":
            if not args.source:
                print("store merge requires at least one --source DIR",
                      file=sys.stderr)
                return 2
            for source in args.source:
                report = store.merge(source)
                print(f"merged {source}: +{report['added']} records "
                      f"({report['duplicates']} duplicates, "
                      f"{report['tags']} tag(s))")
        elif args.action == "migrate":
            # Opening the store already migrated any legacy flat
            # ``evaluations.jsonl`` into the sharded layout; --into
            # additionally converts between store backends in place.
            migrated = store.stats().get("migrated_records", 0)
            if migrated:
                print(f"migrated {migrated} legacy records")
            if args.into and args.into != store.backend_name:
                dest = EvalStore(args.store_dir, backend=args.into)
                report = dest.merge(store)
                print(f"converted to {args.into}: +{report['added']} records "
                      f"({report['duplicates']} already present)")
            print(f"store: {args.store_dir} (backend "
                  f"{store.backend_name}, {len(store)} entries)")
    except StoreError as error:
        print(f"store error: {error}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FNN + multi-fidelity-RL micro-architecture DSE "
        "(DAC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--fast", action="store_true",
                       help="reduced budgets/problem sizes")

    def engine_flags(p):
        p.add_argument("--workers", type=int, default=0,
                       help="process-pool size (0/1 = serial): across runs "
                       "for grid commands, across HF batches for explore")
        p.add_argument("--cache-dir", default=None,
                       help="persistent evaluation-cache directory "
                       "(shared across runs)")
        p.add_argument("--hf-backend", default="auto",
                       choices=["auto", "batched", "process", "serial"],
                       help="how HF batches execute: 'batched' = the "
                       "design-batched simulator kernel in-process, "
                       "'process' = worker pool, 'serial' = plain loop; "
                       "'auto' picks batched (process when --workers > 1)")
        p.add_argument("--hf-batch", type=int, default=None,
                       help="designs per batched simulator walk (default "
                       "256); values >= 2 also engage the batched "
                       "kernel at that width; 1 disables it")
        p.add_argument("--hf-kernel", default="auto",
                       choices=["auto", "compiled", "python"],
                       help="serial timing kernel: 'compiled' = the C "
                       "extension (error if it cannot build), 'python' "
                       "= the pure-Python walk; 'auto' picks compiled "
                       "when available (default); see `repro kernels`")
        p.add_argument("--propose-batch", type=int, default=1,
                       help="designs each search proposes per step (q); "
                       "every batch is one HF dispatch; 1 = the paper's "
                       "sequential protocol (default)")
        p.add_argument("--store-backend", default="auto",
                       choices=["auto", "sharded", "sqlite"],
                       help="layout of the --cache-dir evaluation store: "
                       "'sharded' = per-workload JSONL shards with a lazy "
                       "index, 'sqlite' = one database file; 'auto' "
                       "detects an existing store (default sharded)")
        p.add_argument("--tier", default="off",
                       choices=["off", "gbrt", "rf"],
                       help="learned cost-model fidelity tier trained on "
                       "the store corpus; serves HF queries when the "
                       "ensemble is confident, falls back to the "
                       "simulator otherwise (off = bit-identical "
                       "simulator pipeline, the default)")
        p.add_argument("--tier-min-corpus", type=int, default=256,
                       help="smallest store corpus the tier will fit on")
        p.add_argument("--tier-max-rel-std", type=float, default=0.02,
                       help="tier confidence gate: serve only when the "
                       "ensemble's relative std is below this")
        p.add_argument("--tier-train-rows", type=int, default=1024,
                       help="subsample cap per tier fit")

    p = sub.add_parser("table1", help="print the Table-1 design space")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="application-specific DSE regrets")
    common(p)
    engine_flags(p)
    p.add_argument("--benchmarks", nargs="*", choices=BENCHMARK_NAMES)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("fig5", help="baseline comparison")
    common(p)
    engine_flags(p)
    p.add_argument("--seeds", type=int, default=5)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("fig6", help="MF-center initialisation sweep")
    common(p)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("fig7", help="preference-embedding demo")
    common(p)
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("rules", help="extract the learned rule base")
    common(p)
    p.add_argument("--benchmark", default="mm", choices=BENCHMARK_NAMES)
    p.set_defaults(func=cmd_rules)

    p = sub.add_parser("explore", help="one search run on a benchmark")
    common(p)
    engine_flags(p)
    p.add_argument("--benchmark", default="mm", choices=BENCHMARK_NAMES)
    p.add_argument("--method", default="fnn-mbrl",
                   help="registered search method (see 'repro methods'); "
                   "default: the paper's multi-fidelity flow")
    p.add_argument("--hf-budget", type=int, default=None,
                   help="distinct HF simulations (default: method's own)")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("methods", help="list the registered search methods")
    p.set_defaults(func=cmd_methods)

    p = sub.add_parser(
        "kernels",
        help="report importable timing kernels + micro-bench timings",
    )
    p.add_argument("--no-bench", action="store_true",
                   help="skip the one-shot micro-bench (just availability)")
    p.set_defaults(func=cmd_kernels)

    p = sub.add_parser("sweep", help="area-budget frontier sweep")
    common(p)
    engine_flags(p)
    p.add_argument("--benchmark", default="mm", choices=BENCHMARK_NAMES)
    p.add_argument("--limits", nargs="*", type=float,
                   help="area budgets to sweep (mm^2)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="parallel, resumable runs of a whole experiment grid",
        description="Fan an experiment's independent runs (seeds x "
        "methods x workloads) out over a process pool, persisting one "
        "record per run so a killed campaign resumes where it stopped.",
    )
    common(p)
    engine_flags(p)
    p.add_argument("experiment", choices=sorted(CAMPAIGN_EXPERIMENTS))
    p.add_argument("--campaign-dir", default=None,
                   help="directory for per-run manifests/results "
                   "(enables resume)")
    p.add_argument("--resume", action="store_true",
                   help="skip runs already completed in --campaign-dir")
    p.add_argument("--seeds", type=int, default=5, help="fig5: seed count")
    p.add_argument("--benchmarks", nargs="*", choices=BENCHMARK_NAMES,
                   help="table2: benchmark subset")
    p.add_argument("--benchmark", default="mm", choices=BENCHMARK_NAMES,
                   help="sweep: which kernel")
    p.add_argument("--limits", nargs="*", type=float,
                   help="sweep: area budgets (mm^2)")
    p.add_argument("--merge-store", action="append", default=None,
                   metavar="DIR",
                   help="evaluation store(s) from other hosts to fold "
                   "into --cache-dir before scheduling (repeatable; "
                   "refuses on conflicting records)")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "store",
        help="inspect/maintain a persistent evaluation store",
        description="Operate on the evaluation store behind --cache-dir: "
        "print stats, compact away dead shard lines, merge stores "
        "produced on other hosts (refusing on conflicts), or migrate "
        "legacy flat caches / convert between backends.",
    )
    p.add_argument("action", choices=["stats", "compact", "merge", "migrate"])
    p.add_argument("store_dir", help="store directory (--cache-dir of runs)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "sharded", "sqlite"],
                   help="force the store backend (default: auto-detect)")
    p.add_argument("--source", action="append", default=None, metavar="DIR",
                   help="merge: source store directory (repeatable)")
    p.add_argument("--into", default=None, choices=["sharded", "sqlite"],
                   help="migrate: convert the store to this backend "
                   "in place")
    p.set_defaults(func=cmd_store)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
