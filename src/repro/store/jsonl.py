"""Sharded JSON-lines store backend: one shard file per workload tag.

Layout::

    <root>/
        store.json                  # manifest: shard file -> tag + line/byte index
        shards/<tag-slug>-<hash>.jsonl
        evaluations.jsonl           # legacy flat cache (migrated on open)

The manifest is the *lazy index*: opening a store reads it (plus one
``stat`` per shard) and parses **zero** records -- a shard's records are
only parsed on the first lookup that touches its tag. A manifest that
has fallen behind its shard files (appends from a killed process or a
concurrent writer never rewrite it) is resynced at open by counting the
appended tail *lines* from the indexed byte offset -- still no record
parsing. The manifest is purely advisory: correctness always comes from
the shard files themselves.

Appends are single ``O_APPEND`` writes exactly like the legacy flat
cache, so concurrent campaign workers sharing one store directory
interleave at line granularity. Compaction (rewriting a shard without
duplicate or corrupt lines) assumes a single writer -- run it from the
``repro store compact`` CLI or the facade's opt-in auto-compaction, not
while another process appends.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.base import (
    StoreKey,
    decode_record,
    encode_record,
    shard_name,
    store_key,
)

#: Manifest file name inside a store directory.
MANIFEST_FILE = "store.json"

#: Sub-directory holding the per-tag shard files.
SHARDS_DIR = "shards"

#: Legacy flat-cache file name (auto-migrated to shards on open).
LEGACY_FILE = "evaluations.jsonl"

#: Suffix the legacy file is renamed to after migration.
MIGRATED_SUFFIX = ".migrated"

#: Manifest layout marker.
MANIFEST_VERSION = 1

#: Within-shard key: (space signature, fidelity, levels tuple).
RestKey = Tuple[str, str, Tuple[int, ...]]


def _rest(key: StoreKey) -> RestKey:
    return (key[0], key[2], key[3])


@dataclass
class _Shard:
    """Index entry + (lazily loaded) in-memory records of one shard."""

    tag: str
    filename: str
    lines: int = 0          # physical lines at last index time
    bytes: int = 0          # file size at last index time
    records: Optional[Dict[RestKey, Dict[str, float]]] = None
    dead: int = 0           # duplicate/corrupt lines seen at load time
    appended: int = 0       # records appended by this process
    torn_tail: bool = False  # file ends mid-line (crashed append)

    @property
    def loaded(self) -> bool:
        return self.records is not None

    def entry_count(self) -> int:
        """Exact entries when loaded, indexed line count otherwise."""
        return len(self.records) if self.loaded else self.lines


class ShardedJsonlStore:
    """Sharded JSONL backend with a manifest index and lazy shard loads."""

    backend_name = "sharded"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.shards_dir = self.root / SHARDS_DIR
        self._shards: Dict[str, _Shard] = {}  # tag -> shard
        #: Records JSON-parsed since open (the lazy-index figure of merit:
        #: stays 0 across open + stats on an already-sharded store).
        self.parsed_records = 0
        #: Undecodable lines skipped while loading shards.
        self.corrupt_lines = 0
        #: Records moved out of a legacy flat cache at open, if any.
        self.migrated_records = 0
        self._open()

    # ------------------------------------------------------------------
    # Open / index
    # ------------------------------------------------------------------
    def _open(self) -> None:
        legacy = self.root / LEGACY_FILE
        manifest = self._read_manifest()
        dirty = False
        for filename, entry in manifest.items():
            shard = _Shard(
                tag=str(entry["tag"]),
                filename=str(filename),
                lines=int(entry.get("lines", 0)),
                bytes=int(entry.get("bytes", 0)),
            )
            dirty |= self._stat_resync(shard)
            self._shards[shard.tag] = shard
        # Shard files the manifest does not know (crashed merge, files
        # copied in by hand): adopt them by reading just enough to learn
        # their tag (the first decodable record).
        if self.shards_dir.is_dir():
            known = {shard.filename for shard in self._shards.values()}
            for path in sorted(self.shards_dir.glob("*.jsonl")):
                if path.name in known:
                    continue
                tag = self._peek_tag(path)
                if tag is None or tag in self._shards:
                    continue
                shard = _Shard(tag=tag, filename=path.name)
                self._stat_resync(shard)
                self._shards[tag] = shard
                dirty = True
        if legacy.exists():
            self._migrate(legacy)
            dirty = True
        if dirty:
            self._write_manifest()

    def _read_manifest(self) -> Dict[str, Dict]:
        try:
            with open(self.root / MANIFEST_FILE, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(payload, dict):
            return {}
        shards = payload.get("shards")
        return shards if isinstance(shards, dict) else {}

    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "shards": {
                shard.filename: {
                    "tag": shard.tag,
                    "lines": shard.lines,
                    "bytes": shard.bytes,
                }
                for shard in self._shards.values()
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / (MANIFEST_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
        tmp.replace(self.root / MANIFEST_FILE)

    def _stat_resync(self, shard: _Shard) -> bool:
        """Refresh a shard's line/byte index from the file on disk.

        Counts only the *tail* beyond the already-indexed byte offset --
        newline counting, no JSON parsing -- so resync stays O(appended),
        not O(corpus). Returns True when the index changed.
        """
        path = self.shards_dir / shard.filename
        try:
            size = path.stat().st_size
        except OSError:
            changed = shard.lines != 0 or shard.bytes != 0
            shard.lines = 0
            shard.bytes = 0
            return changed
        if size == shard.bytes:
            return False
        if size < shard.bytes:
            # Truncated behind the index (manual edit): re-count whole file.
            shard.lines = 0
            shard.bytes = 0
        with open(path, "rb") as fh:
            fh.seek(shard.bytes)
            tail = fh.read()
        shard.lines += tail.count(b"\n")
        shard.bytes = size
        return True

    def _peek_tag(self, path: Path) -> Optional[str]:
        """Tag of a shard file, from its first decodable record."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    decoded = decode_record(line)
                    self.parsed_records += 1
                    if decoded is not None:
                        return decoded[0][1]
                    self.corrupt_lines += 1
        except OSError:
            return None
        return None

    def _migrate(self, legacy: Path) -> None:
        """Move a legacy flat ``evaluations.jsonl`` into the shard layout.

        The one unavoidable whole-corpus parse; afterwards the file is
        renamed (not deleted) so the migration is inspectable, and every
        later open is back to O(index).
        """
        with open(legacy, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                decoded = decode_record(line)
                self.parsed_records += 1
                if decoded is None:
                    self.corrupt_lines += 1
                    continue
                key, metrics = decoded
                if self.put(key, metrics):
                    self.migrated_records += 1
        legacy.replace(legacy.with_name(legacy.name + MIGRATED_SUFFIX))

    # ------------------------------------------------------------------
    # Shard loading
    # ------------------------------------------------------------------
    def _load(self, shard: _Shard) -> Dict[RestKey, Dict[str, float]]:
        if shard.records is not None:
            return shard.records
        records: Dict[RestKey, Dict[str, float]] = {}
        path = self.shards_dir / shard.filename
        lines = 0
        size = 0
        if path.exists():
            with open(path, "rb") as fh:
                raw = fh.read()
            size = len(raw)
            shard.torn_tail = bool(raw) and not raw.endswith(b"\n")
            for encoded in raw.split(b"\n"):
                encoded = encoded.strip()
                if not encoded:
                    continue
                lines += 1
                decoded = decode_record(encoded.decode("utf-8", "replace"))
                self.parsed_records += 1
                if decoded is None:
                    self.corrupt_lines += 1
                    shard.dead += 1
                    continue
                key, metrics = decoded
                if key[1] != shard.tag:
                    # A foreign tag inside a shard is corruption, not
                    # data: count it and keep it out of the memo.
                    self.corrupt_lines += 1
                    shard.dead += 1
                    continue
                rest = _rest(key)
                if rest in records:
                    shard.dead += 1
                records[rest] = metrics  # last write wins, like the flat cache
        shard.records = records
        shard.lines = lines
        shard.bytes = size
        return records

    # ------------------------------------------------------------------
    # Store interface
    # ------------------------------------------------------------------
    def get(self, key: StoreKey) -> Optional[Dict[str, float]]:
        shard = self._shards.get(key[1])
        if shard is None:
            return None
        return self._load(shard).get(_rest(key))

    def put(self, key: StoreKey, metrics: Dict[str, float]) -> bool:
        tag = key[1]
        shard = self._shards.get(tag)
        if shard is None:
            shard = _Shard(tag=tag, filename=shard_name(tag), records={})
            self._shards[tag] = shard
            self._write_manifest()
        records = self._load(shard)
        rest = _rest(key)
        if rest in records:
            return False
        line = (encode_record(key, metrics) + "\n").encode("utf-8")
        if shard.torn_tail:
            # The file ends mid-record (a crashed append): close that
            # line first, so the torn fragment stays one dead line
            # instead of swallowing this record.
            line = b"\n" + line
            shard.torn_tail = False
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        # One O_APPEND write per record (see module docstring).
        fd = os.open(
            self.shards_dir / shard.filename,
            os.O_WRONLY | os.O_APPEND | os.O_CREAT,
            0o644,
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        records[rest] = dict(metrics)
        shard.lines += 1
        shard.bytes += len(line)
        shard.appended += 1
        return True

    def tags(self) -> List[str]:
        return sorted(self._shards)

    def count(self, tag: Optional[str] = None) -> int:
        """Indexed entries (exact for loaded shards, line count otherwise)."""
        if tag is not None:
            shard = self._shards.get(tag)
            return shard.entry_count() if shard is not None else 0
        return sum(shard.entry_count() for shard in self._shards.values())

    def dead(self, tag: str) -> int:
        """Known-dead (duplicate/corrupt) lines of one shard."""
        shard = self._shards.get(tag)
        return shard.dead if shard is not None else 0

    def iter_tag(self, tag: str) -> Iterator[Tuple[StoreKey, Dict[str, float]]]:
        shard = self._shards.get(tag)
        if shard is None:
            return
        for (space, fidelity, levels), metrics in self._load(shard).items():
            yield store_key(space, tag, fidelity, levels), metrics

    def shard_map(self) -> Dict[str, str]:
        """``{shard filename: tag}`` (merge-time conflict checks)."""
        return {shard.filename: shard.tag for shard in self._shards.values()}

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, tag: Optional[str] = None) -> int:
        """Rewrite shard(s) without duplicate/corrupt lines.

        Returns the number of live entries written. Atomic per shard
        (temp file + rename); single-writer only.
        """
        targets = [tag] if tag is not None else self.tags()
        written = 0
        changed = False
        for target in targets:
            shard = self._shards.get(target)
            if shard is None:
                continue
            records = self._load(shard)
            path = self.shards_dir / shard.filename
            self.shards_dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                for (space, fidelity, levels), metrics in records.items():
                    fh.write(
                        encode_record(
                            store_key(space, target, fidelity, levels), metrics
                        )
                        + "\n"
                    )
            tmp.replace(path)
            shard.lines = len(records)
            shard.bytes = path.stat().st_size
            shard.dead = 0
            written += len(records)
            changed = True
        if changed:
            self._write_manifest()
        return written

    def flush_index(self) -> None:
        """Rewrite the manifest from the in-memory index."""
        self._write_manifest()
