"""Store plumbing shared by every backend: keys, records, errors.

An evaluation store holds one metrics dict per

``(space signature, workload tag, fidelity, levels tuple)``

key -- the same namespace the legacy :class:`repro.engine.cache.ResultCache`
used, so a store can answer any cache lookup the engine makes. The
workload *tag* is the sharding axis: it pins the workload identity, the
machine timing constants and the metrics schema (see
``SimulationProxy.cache_tag``), so all records under one tag share one
metrics schema by construction -- which is exactly what merge-time
conflict detection protects.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, Optional, Sequence, Tuple

#: Store key: (space signature, workload tag, fidelity value, levels).
StoreKey = Tuple[str, str, str, Tuple[int, ...]]


class StoreError(Exception):
    """Base class for evaluation-store failures."""


class StoreConflictError(StoreError):
    """A merge found records that must not be mixed.

    Raised -- instead of silently overwriting or interleaving -- when two
    stores disagree: same key with different metrics, one shard file
    claiming two different workload tags, or two metrics schemas under
    one tag.
    """


def store_key(
    space_sig: str, workload_tag: str, fidelity: str, levels: Sequence[int]
) -> StoreKey:
    """Build a store key from its components."""
    return (
        str(space_sig),
        str(workload_tag),
        str(fidelity),
        tuple(int(v) for v in levels),
    )


def encode_record(key: StoreKey, metrics: Dict[str, float]) -> str:
    """One JSONL line for ``(key, metrics)`` (no trailing newline).

    The line layout is the legacy ``ResultCache`` record layout, so a
    sharded store's shard files stay readable by every tool that read
    ``evaluations.jsonl``.
    """
    record = {
        "space": key[0],
        "workload": key[1],
        "fidelity": key[2],
        "levels": list(key[3]),
        "metrics": {k: float(v) for k, v in metrics.items()},
    }
    return json.dumps(record, separators=(",", ":"))


def decode_record(line: str) -> Optional[Tuple[StoreKey, Dict[str, float]]]:
    """Parse one JSONL line; ``None`` for corrupt/truncated lines."""
    try:
        record = json.loads(line)
        key = store_key(
            record["space"],
            record["workload"],
            record["fidelity"],
            record["levels"],
        )
        metrics = {str(k): float(v) for k, v in record["metrics"].items()}
    except (json.JSONDecodeError, KeyError, TypeError, ValueError, AttributeError):
        return None
    return key, metrics


_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def shard_name(workload_tag: str) -> str:
    """Deterministic, filesystem-safe shard file name for one tag.

    A readable sanitised prefix plus a hash of the exact tag: two
    distinct tags can never share a shard file, and the file name alone
    identifies its tag's fingerprint for merge-time cross-checks.
    """
    digest = hashlib.sha256(workload_tag.encode("utf-8")).hexdigest()[:12]
    prefix = _SAFE.sub("_", workload_tag)[:48].strip("_") or "shard"
    return f"{prefix}-{digest}.jsonl"
