"""`EvalStore`: the engine-facing evaluation store facade.

Drop-in successor of :class:`repro.engine.cache.ResultCache`: same key
namespace, same ``get``/``put``/``stats``/``compact`` surface, same
hit/miss counters -- but backed by a pluggable backend (sharded JSONL or
sqlite, see :mod:`repro.store.jsonl` / :mod:`repro.store.sqlite`) with a
lazy index, per-tag corpus scans for the learned cost-model tier, and
cross-host merge with conflict *refusal* instead of silent mixing.

Backend selection (``backend="auto"``): a directory that already holds
``store.sqlite`` opens as sqlite, anything else as sharded JSONL -- so a
store directory always reopens as whatever it already is. A legacy flat
``evaluations.jsonl`` in the directory is migrated into the sharded
layout on first open (renamed to ``.migrated``, never deleted).

Compaction is opt-in: pass ``auto_compact_dead=N`` to rewrite a shard in
a background thread once it accumulates ``N`` dead (duplicate/corrupt)
lines, or call :meth:`compact` explicitly (the ``repro store compact``
CLI). Auto-compaction assumes this process is the only writer.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.store.base import StoreConflictError, StoreKey, store_key
from repro.store.jsonl import ShardedJsonlStore
from repro.store.sqlite import SQLITE_FILE, SqliteStore

#: Recognised backend spec strings.
BACKENDS = ("auto", "sharded", "sqlite", "memory")


class _MemoryStore:
    """Dict-backed backend for path-less (test) stores."""

    backend_name = "memory"

    def __init__(self) -> None:
        self._memo: Dict[StoreKey, Dict[str, float]] = {}
        self.parsed_records = 0
        self.corrupt_lines = 0
        self.migrated_records = 0

    def get(self, key: StoreKey) -> Optional[Dict[str, float]]:
        return self._memo.get(key)

    def put(self, key: StoreKey, metrics: Dict[str, float]) -> bool:
        if key in self._memo:
            return False
        self._memo[key] = dict(metrics)
        return True

    def tags(self) -> List[str]:
        return sorted({key[1] for key in self._memo})

    def count(self, tag: Optional[str] = None) -> int:
        if tag is None:
            return len(self._memo)
        return sum(1 for key in self._memo if key[1] == tag)

    def dead(self, tag: str) -> int:
        return 0

    def iter_tag(self, tag: str) -> Iterator[Tuple[StoreKey, Dict[str, float]]]:
        for key, metrics in self._memo.items():
            if key[1] == tag:
                yield key, metrics

    def shard_map(self) -> Dict[str, str]:
        return {}

    def compact(self, tag: Optional[str] = None) -> int:
        return self.count(tag)

    def flush_index(self) -> None:
        pass


def _make_backend(path: Union[str, Path, None], backend: str):
    if backend not in BACKENDS:
        raise ValueError(f"unknown store backend {backend!r}; expected {BACKENDS}")
    if path is None or backend == "memory":
        return _MemoryStore()
    root = Path(path)
    if root.suffix == ".jsonl":
        # Legacy ResultCache accepted a file path; the store owns the
        # enclosing directory (and migrates the file if it is the
        # legacy flat cache).
        root = root.parent
    if backend == "auto":
        backend = "sqlite" if (root / SQLITE_FILE).exists() else "sharded"
    if backend == "sqlite":
        return SqliteStore(root)
    return ShardedJsonlStore(root)


class EvalStore:
    """Evaluation store with hit/miss accounting and safe merge.

    Args:
        path: Store directory (created on demand). ``None`` keeps the
            store in memory only.
        backend: ``"auto"`` / ``"sharded"`` / ``"sqlite"`` / ``"memory"``.
        auto_compact_dead: When set, a sharded shard that accumulates
            this many dead lines is compacted in a background thread
            (single-writer processes only). ``None`` (default) disables
            auto-compaction.
    """

    #: ResultCache-compatible key constructor.
    key = staticmethod(store_key)

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        backend: str = "auto",
        auto_compact_dead: Optional[int] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.backend = _make_backend(path, backend)
        self.auto_compact_dead = auto_compact_dead
        self.hits = 0
        self.misses = 0
        self.compactions = 0
        self._lock = threading.Lock()
        self._compaction_threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # ResultCache-compatible surface
    # ------------------------------------------------------------------
    def get(self, key: StoreKey) -> Optional[Dict[str, float]]:
        """Stored metrics for ``key``, or None (counts hits/misses)."""
        with self._lock:
            metrics = self.backend.get(key)
            if metrics is None:
                self.misses += 1
                return None
            self.hits += 1
            return dict(metrics)

    def put(self, key: StoreKey, metrics: Dict[str, float]) -> bool:
        """Insert metrics; returns True when the record was new."""
        with self._lock:
            fresh = self.backend.put(key, metrics)
        if fresh and self.auto_compact_dead is not None:
            self._maybe_auto_compact(key[1])
        return fresh

    def __len__(self) -> int:
        return self.backend.count()

    def __contains__(self, key: StoreKey) -> bool:
        return self.backend.get(key) is not None

    def compact(self, tag: Optional[str] = None) -> int:
        """Rewrite shard(s) without dead lines; returns live entries."""
        with self._lock:
            written = self.backend.compact(tag)
            self.compactions += 1
        return written

    def stats(self) -> Dict[str, int]:
        """Counters for reporting (numeric-only, engine-summary safe)."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_lines": self.backend.corrupt_lines,
            "tags": len(self.backend.tags()),
            "parsed_records": self.backend.parsed_records,
            "migrated_records": self.backend.migrated_records,
            "compactions": self.compactions,
        }

    # ------------------------------------------------------------------
    # Corpus access (the learned tier trains off these)
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self.backend.backend_name

    def tags(self) -> List[str]:
        """All workload tags with records in the store."""
        return self.backend.tags()

    def count(self, tag: Optional[str] = None) -> int:
        """Entries in the store (optionally for one tag)."""
        return self.backend.count(tag)

    def records_for(
        self, space_sig: str, tag: str, fidelity: str
    ) -> List[Tuple[Tuple[int, ...], Dict[str, float]]]:
        """``(levels, metrics)`` corpus rows for one (space, tag, fidelity)."""
        with self._lock:
            return [
                (key[3], dict(metrics))
                for key, metrics in self.backend.iter_tag(tag)
                if key[0] == space_sig and key[2] == fidelity
            ]

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: Union["EvalStore", str, Path]) -> Dict[str, int]:
        """Fold another store's records into this one.

        Refuses (raises :class:`StoreConflictError`) rather than mixing:

        * same key with different metrics (same simulator must give the
          same numbers; a mismatch means the tag under-identifies the
          producing configuration),
        * one shard file name claimed by two different workload tags
          across the merged hosts,
        * two metrics key-sets (schemas) under one tag.

        Returns ``{"added", "duplicates", "tags"}``.
        """
        if not isinstance(other, EvalStore):
            other = EvalStore(other)
        mine = self.backend.shard_map()
        for filename, tag in other.backend.shard_map().items():
            if filename in mine and mine[filename] != tag:
                raise StoreConflictError(
                    f"cache_tag mismatch across merged stores: shard "
                    f"{filename!r} is {mine[filename]!r} here but {tag!r} "
                    f"in the incoming store"
                )
        added = 0
        duplicates = 0
        merged_tags = other.tags()
        with self._lock:
            for tag in merged_tags:
                schema = self._tag_schema(tag)
                for key, metrics in other.backend.iter_tag(tag):
                    keyset = frozenset(metrics)
                    if schema is None:
                        schema = keyset
                    elif keyset != schema:
                        raise StoreConflictError(
                            f"metrics schema mismatch under tag {tag!r}: "
                            f"{sorted(schema)} vs {sorted(keyset)}"
                        )
                    existing = self.backend.get(key)
                    if existing is None:
                        self.backend.put(key, metrics)
                        added += 1
                    elif existing == metrics:
                        duplicates += 1
                    else:
                        raise StoreConflictError(
                            f"conflicting metrics for key {key!r}: "
                            f"{existing} != {metrics}"
                        )
            self.backend.flush_index()
        return {"added": added, "duplicates": duplicates, "tags": len(merged_tags)}

    def _tag_schema(self, tag: str) -> Optional[frozenset]:
        """Metrics key-set of the first local record under ``tag``."""
        for _, metrics in self.backend.iter_tag(tag):
            return frozenset(metrics)
        return None

    # ------------------------------------------------------------------
    # Background compaction
    # ------------------------------------------------------------------
    def _maybe_auto_compact(self, tag: str) -> None:
        if self.backend.dead(tag) < self.auto_compact_dead:
            return
        self._compaction_threads = [
            t for t in self._compaction_threads if t.is_alive()
        ]
        if self._compaction_threads:
            return  # one compaction in flight is enough
        thread = threading.Thread(
            target=self.compact, args=(tag,), daemon=True
        )
        self._compaction_threads.append(thread)
        thread.start()

    def join_compaction(self) -> None:
        """Wait for in-flight background compactions (tests)."""
        for thread in self._compaction_threads:
            thread.join()
        self._compaction_threads = []


def make_store(
    path: Union[str, Path, None],
    backend: str = "auto",
    auto_compact_dead: Optional[int] = None,
) -> EvalStore:
    """Build an :class:`EvalStore` (the one constructor call sites use)."""
    return EvalStore(path, backend=backend, auto_compact_dead=auto_compact_dead)
