"""SQLite store backend: one database file, O(1) open, indexed lookups.

The schema mirrors the store key exactly::

    evaluations(space, tag, fidelity, levels, metrics)
    PRIMARY KEY (space, tag, fidelity, levels)

with ``levels`` and ``metrics`` stored as compact JSON text. Opening the
store parses nothing (the lazy index is the database's own B-tree);
per-key lookups and per-tag scans are SQL queries. Unlike the sharded
backend there are no dead lines to compact -- ``INSERT OR IGNORE`` keeps
the table duplicate-free -- so :meth:`compact` degenerates to VACUUM.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.base import StoreKey, store_key

#: Database file name inside a store directory.
SQLITE_FILE = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS evaluations (
    space    TEXT NOT NULL,
    tag      TEXT NOT NULL,
    fidelity TEXT NOT NULL,
    levels   TEXT NOT NULL,
    metrics  TEXT NOT NULL,
    PRIMARY KEY (space, tag, fidelity, levels)
);
CREATE INDEX IF NOT EXISTS idx_evaluations_tag ON evaluations (tag);
"""


def _levels_text(levels: Tuple[int, ...]) -> str:
    return json.dumps(list(levels), separators=(",", ":"))


class SqliteStore:
    """SQLite-backed evaluation store."""

    backend_name = "sqlite"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / SQLITE_FILE
        self._db = sqlite3.connect(self.path)
        self._db.execute("PRAGMA busy_timeout = 10000")
        self._db.execute("PRAGMA synchronous = NORMAL")
        self._db.executescript(_SCHEMA)
        self._db.commit()
        # Counter parity with the sharded backend (see jsonl.py): sqlite
        # never parses shard lines, so these stay 0 except parsed_records,
        # which counts metrics blobs decoded for lookups/scans.
        self.parsed_records = 0
        self.corrupt_lines = 0
        self.migrated_records = 0

    # ------------------------------------------------------------------
    def get(self, key: StoreKey) -> Optional[Dict[str, float]]:
        row = self._db.execute(
            "SELECT metrics FROM evaluations"
            " WHERE space = ? AND tag = ? AND fidelity = ? AND levels = ?",
            (key[0], key[1], key[2], _levels_text(key[3])),
        ).fetchone()
        if row is None:
            return None
        self.parsed_records += 1
        return {str(k): float(v) for k, v in json.loads(row[0]).items()}

    def put(self, key: StoreKey, metrics: Dict[str, float]) -> bool:
        cursor = self._db.execute(
            "INSERT OR IGNORE INTO evaluations"
            " (space, tag, fidelity, levels, metrics) VALUES (?, ?, ?, ?, ?)",
            (
                key[0],
                key[1],
                key[2],
                _levels_text(key[3]),
                json.dumps(
                    {k: float(v) for k, v in metrics.items()},
                    separators=(",", ":"),
                ),
            ),
        )
        self._db.commit()
        return cursor.rowcount > 0

    def tags(self) -> List[str]:
        rows = self._db.execute(
            "SELECT DISTINCT tag FROM evaluations ORDER BY tag"
        ).fetchall()
        return [row[0] for row in rows]

    def count(self, tag: Optional[str] = None) -> int:
        if tag is not None:
            query = "SELECT COUNT(*) FROM evaluations WHERE tag = ?"
            return int(self._db.execute(query, (tag,)).fetchone()[0])
        return int(
            self._db.execute("SELECT COUNT(*) FROM evaluations").fetchone()[0]
        )

    def dead(self, tag: str) -> int:
        return 0  # INSERT OR IGNORE keeps the table duplicate-free

    def iter_tag(self, tag: str) -> Iterator[Tuple[StoreKey, Dict[str, float]]]:
        rows = self._db.execute(
            "SELECT space, fidelity, levels, metrics FROM evaluations"
            " WHERE tag = ?",
            (tag,),
        )
        for space, fidelity, levels_text, metrics_text in rows:
            self.parsed_records += 1
            yield (
                store_key(space, tag, fidelity, json.loads(levels_text)),
                {str(k): float(v) for k, v in json.loads(metrics_text).items()},
            )

    def shard_map(self) -> Dict[str, str]:
        return {}  # no shard files, nothing to cross-check at merge time

    def compact(self, tag: Optional[str] = None) -> int:
        self._db.execute("VACUUM")
        self._db.commit()
        return self.count(tag)

    def flush_index(self) -> None:
        self._db.commit()

    def close(self) -> None:
        self._db.close()
