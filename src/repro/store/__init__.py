"""Persistent evaluation store: sharded/sqlite backends behind EvalStore."""

from repro.store.base import (
    StoreConflictError,
    StoreError,
    StoreKey,
    decode_record,
    encode_record,
    shard_name,
    store_key,
)
from repro.store.evalstore import BACKENDS, EvalStore, make_store

__all__ = [
    "BACKENDS",
    "EvalStore",
    "StoreConflictError",
    "StoreError",
    "StoreKey",
    "decode_record",
    "encode_record",
    "make_store",
    "shard_name",
    "store_key",
]
