"""The design space: level-vector algebra over the Table-1 parameters.

All search algorithms in this repo (the FNN/MFRL core and every baseline)
operate on *level vectors* -- integer numpy arrays where entry ``i`` indexes
into parameter ``i``'s candidate list. This module provides the conversions,
sampling, neighbourhood and enumeration utilities they share.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.designspace.config import MicroArchConfig
from repro.designspace.parameters import DesignParameter, TABLE1_PARAMETERS


class DesignSpace:
    """An ordered collection of :class:`DesignParameter` axes.

    The default instance (:func:`default_design_space`) is the paper's
    Table 1 (3 * 4 * 5 * 4 * 5 * 5 * 5 * 2 * 5 * 2 * 5 = 3,000,000 points;
    the paper rounds this to "3 million").
    """

    def __init__(self, parameters: Sequence[DesignParameter] = TABLE1_PARAMETERS):
        if not parameters:
            raise ValueError("design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        self._parameters: Tuple[DesignParameter, ...] = tuple(parameters)
        self._index: Dict[str, int] = {p.name: i for i, p in enumerate(parameters)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> Tuple[DesignParameter, ...]:
        """The axes, in level-vector order."""
        return self._parameters

    @property
    def names(self) -> List[str]:
        """Parameter names in level-vector order."""
        return [p.name for p in self._parameters]

    @property
    def num_parameters(self) -> int:
        """Dimensionality of a level vector."""
        return len(self._parameters)

    @property
    def num_levels(self) -> np.ndarray:
        """Per-parameter level counts, shape ``(num_parameters,)``."""
        return np.array([p.num_levels for p in self._parameters], dtype=np.int64)

    @property
    def max_levels(self) -> np.ndarray:
        """Per-parameter maximum level index."""
        return self.num_levels - 1

    @property
    def size(self) -> int:
        """Total number of design points."""
        return int(np.prod(self.num_levels))

    def index_of(self, name: str) -> int:
        """Position of parameter ``name`` in the level vector."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise KeyError(f"unknown parameter {name!r}") from exc

    def parameter(self, name: str) -> DesignParameter:
        """The :class:`DesignParameter` called ``name``."""
        return self._parameters[self.index_of(name)]

    def groups(self) -> Dict[str, List[str]]:
        """Mapping of merge-group name to member parameter names."""
        out: Dict[str, List[str]] = {}
        for p in self._parameters:
            out.setdefault(p.group, []).append(p.name)
        return out

    # ------------------------------------------------------------------
    # Level-vector <-> config conversions
    # ------------------------------------------------------------------
    def validate_levels(self, levels: Sequence[int]) -> np.ndarray:
        """Check shape and bounds; returns a defensive int64 copy."""
        arr = np.asarray(levels, dtype=np.int64)
        if arr.shape != (self.num_parameters,):
            raise ValueError(
                f"level vector must have shape ({self.num_parameters},), "
                f"got {arr.shape}"
            )
        if np.any(arr < 0) or np.any(arr > self.max_levels):
            bad = [
                f"{p.name}={arr[i]} (max {p.max_level})"
                for i, p in enumerate(self._parameters)
                if not 0 <= arr[i] <= p.max_level
            ]
            raise ValueError("levels out of range: " + ", ".join(bad))
        return arr.copy()

    def values(self, levels: Sequence[int]) -> np.ndarray:
        """Concrete candidate values for a level vector."""
        arr = self.validate_levels(levels)
        return np.array(
            [p.value(int(arr[i])) for i, p in enumerate(self._parameters)],
            dtype=np.int64,
        )

    def values_batch(self, levels_block: Sequence[Sequence[int]]) -> np.ndarray:
        """Concrete values for a whole block of level vectors at once.

        Vectorised :meth:`values`: validates the block, then resolves
        every axis with one fancy-indexed candidate-table lookup.
        Returns shape ``(len(levels_block), num_parameters)``.
        """
        block = np.asarray(levels_block, dtype=np.int64)
        if block.ndim != 2 or block.shape[1] != self.num_parameters:
            raise ValueError(
                f"levels block must have shape (N, {self.num_parameters}), "
                f"got {block.shape}"
            )
        if block.size and (np.any(block < 0) or np.any(block > self.max_levels)):
            raise ValueError("levels out of range in block")
        out = np.empty_like(block)
        for i, p in enumerate(self._parameters):
            out[:, i] = np.asarray(p.candidates, dtype=np.int64)[block[:, i]]
        return out

    def config(self, levels: Sequence[int]) -> MicroArchConfig:
        """Build a :class:`MicroArchConfig` from a level vector."""
        vals = self.values(levels)
        return MicroArchConfig(**dict(zip(self.names, (int(v) for v in vals))))

    def levels_of(self, config: MicroArchConfig) -> np.ndarray:
        """Inverse of :meth:`config`."""
        data = config.as_dict()
        return np.array(
            [p.level_of(data[p.name]) for p in self._parameters], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Canonical points & ordering
    # ------------------------------------------------------------------
    def smallest(self) -> np.ndarray:
        """The all-zero level vector (paper: the episode start design)."""
        return np.zeros(self.num_parameters, dtype=np.int64)

    def largest(self) -> np.ndarray:
        """The all-max level vector."""
        return self.max_levels.copy()

    def flat_index(self, levels: Sequence[int]) -> int:
        """Row-major rank of a level vector (stable hashing/archiving key)."""
        arr = self.validate_levels(levels)
        idx = 0
        for level, n in zip(arr, self.num_levels):
            idx = idx * int(n) + int(level)
        return idx

    def from_flat_index(self, index: int) -> np.ndarray:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= index < self.size:
            raise ValueError(f"flat index {index} outside 0..{self.size - 1}")
        out = np.zeros(self.num_parameters, dtype=np.int64)
        for i in range(self.num_parameters - 1, -1, -1):
            n = int(self.num_levels[i])
            out[i] = index % n
            index //= n
        return out

    # ------------------------------------------------------------------
    # Sampling / neighbourhoods
    # ------------------------------------------------------------------
    def sample(
        self, rng: np.random.Generator, count: Optional[int] = None
    ) -> np.ndarray:
        """Uniform random level vector(s).

        Returns shape ``(num_parameters,)`` when ``count`` is None, else
        ``(count, num_parameters)``.
        """
        shape = (self.num_parameters,) if count is None else (count, self.num_parameters)
        return rng.integers(0, self.num_levels, size=shape, dtype=np.int64)

    def increase(self, levels: Sequence[int], name_or_index) -> np.ndarray:
        """Return a copy with one parameter's level incremented.

        Raises ``ValueError`` when the parameter is already at its maximum;
        this is what makes DSE episodes terminate cleanly at space edges.
        """
        arr = self.validate_levels(levels)
        i = (
            self.index_of(name_or_index)
            if isinstance(name_or_index, str)
            else int(name_or_index)
        )
        if arr[i] >= self.max_levels[i]:
            raise ValueError(
                f"{self._parameters[i].name} already at max level {arr[i]}"
            )
        arr[i] += 1
        return arr

    def increasable(self, levels: Sequence[int]) -> np.ndarray:
        """Boolean mask of parameters not yet at their maximum level."""
        arr = self.validate_levels(levels)
        return arr < self.max_levels

    def neighbors(self, levels: Sequence[int]) -> Iterator[np.ndarray]:
        """All Hamming-1 neighbours (each parameter +/-1 where valid)."""
        arr = self.validate_levels(levels)
        for i in range(self.num_parameters):
            for delta in (-1, 1):
                lvl = arr[i] + delta
                if 0 <= lvl <= self.max_levels[i]:
                    out = arr.copy()
                    out[i] = lvl
                    yield out

    def normalized(self, levels: Sequence[int]) -> np.ndarray:
        """Levels mapped to [0, 1] per axis (for surrogate models)."""
        arr = self.validate_levels(levels).astype(np.float64)
        return arr / self.max_levels.astype(np.float64)

    def table(self) -> str:
        """Render the design space as the paper's Table 1 (text)."""
        rows = ["Parameters | Candidate values", "-" * 48]
        for p in self._parameters:
            rows.append(f"{p.label:<18} | {', '.join(map(str, p.candidates))}")
        rows.append("-" * 48)
        rows.append(f"Design space size: {self.size:,}")
        return "\n".join(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DesignSpace({self.num_parameters} params, {self.size:,} points)"


def default_design_space() -> DesignSpace:
    """The paper's Table-1 design space (3,000,000 points)."""
    return DesignSpace(TABLE1_PARAMETERS)
