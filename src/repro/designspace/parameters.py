"""Design parameter definitions for the Table-1 design space.

Each :class:`DesignParameter` is an ordered, discrete axis of the design
space.  The paper's search moves along these axes one *level* at a time
("at each step the parameter with the highest score from the FNN is
increased by 1"), so ordering of ``candidates`` matters and is always
ascending.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DesignParameter:
    """One ordered, discrete micro-architecture parameter.

    Attributes:
        name: Canonical snake_case identifier (e.g. ``"rob_entries"``).
        label: Human-readable label as printed in the paper's Table 1.
        candidates: Ascending candidate values; a design point stores an
            index (*level*) into this tuple.
        group: Merge group used by the FNN input layer. The paper merges
            related parameters (e.g. cache set & way -> cache size) to keep
            the rule base small; parameters sharing a ``group`` are presented
            to the FNN as one linguistic input.
        description: Short explanation of the hardware meaning.
    """

    name: str
    label: str
    candidates: Tuple[int, ...]
    group: str
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.candidates) < 2:
            raise ValueError(f"parameter {self.name!r} needs >= 2 candidates")
        if list(self.candidates) != sorted(set(self.candidates)):
            raise ValueError(
                f"parameter {self.name!r} candidates must be strictly ascending"
            )

    @property
    def num_levels(self) -> int:
        """Number of candidate values (levels run 0 .. num_levels-1)."""
        return len(self.candidates)

    @property
    def max_level(self) -> int:
        """Highest valid level index."""
        return len(self.candidates) - 1

    def value(self, level: int) -> int:
        """Concrete value at ``level``; raises ``IndexError`` when invalid."""
        if not 0 <= level < len(self.candidates):
            raise IndexError(
                f"{self.name}: level {level} outside 0..{self.max_level}"
            )
        return self.candidates[level]

    def level_of(self, value: int) -> int:
        """Inverse of :meth:`value`; raises ``ValueError`` if not a candidate."""
        try:
            return self.candidates.index(value)
        except ValueError as exc:
            raise ValueError(
                f"{self.name}: {value} not in candidates {self.candidates}"
            ) from exc


#: The paper's Table 1, verbatim. Order defines the level-vector layout.
TABLE1_PARAMETERS: Tuple[DesignParameter, ...] = (
    DesignParameter(
        name="l1_sets",
        label="L1 Cache Set",
        candidates=(16, 32, 64),
        group="l1_cache",
        description="Number of sets in the L1 data cache.",
    ),
    DesignParameter(
        name="l1_ways",
        label="L1 Cache Way",
        candidates=(2, 4, 8, 16),
        group="l1_cache",
        description="Associativity of the L1 data cache.",
    ),
    DesignParameter(
        name="l2_sets",
        label="L2 Cache Set",
        candidates=(128, 256, 512, 1024, 2048),
        group="l2_cache",
        description="Number of sets in the unified L2 cache.",
    ),
    DesignParameter(
        name="l2_ways",
        label="L2 Cache Way",
        candidates=(2, 4, 8, 16),
        group="l2_cache",
        description="Associativity of the unified L2 cache.",
    ),
    DesignParameter(
        name="n_mshr",
        label="nMSHR",
        candidates=(2, 4, 6, 8, 10),
        group="mshr",
        description="Miss status holding registers of the L1 data cache.",
    ),
    DesignParameter(
        name="decode_width",
        label="Decode Width",
        candidates=(1, 2, 3, 4, 5),
        group="decode",
        description="Instructions decoded (and renamed) per cycle.",
    ),
    DesignParameter(
        name="rob_entries",
        label="ROB Entry",
        candidates=(32, 64, 96, 128, 160),
        group="rob",
        description="Reorder-buffer capacity.",
    ),
    DesignParameter(
        name="mem_fu",
        label="Mem FU",
        candidates=(1, 2),
        group="fu",
        description="Load/store address-generation units.",
    ),
    DesignParameter(
        name="int_fu",
        label="Int FU",
        candidates=(1, 2, 3, 4, 5),
        group="fu",
        description="Integer ALUs.",
    ),
    DesignParameter(
        name="fp_fu",
        label="FP FU",
        candidates=(1, 2),
        group="fu",
        description="Floating-point units.",
    ),
    DesignParameter(
        name="iq_entries",
        label="Issue Queue Entry",
        candidates=(2, 4, 8, 16, 24),
        group="iq",
        description="Unified issue-queue (scheduler) capacity.",
    ),
)


_BY_NAME = {p.name: p for p in TABLE1_PARAMETERS}


def parameter_by_name(name: str) -> DesignParameter:
    """Look up a Table-1 parameter by canonical name."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown parameter {name!r}; known: {sorted(_BY_NAME)}"
        ) from exc
