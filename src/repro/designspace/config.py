"""Concrete micro-architecture configuration.

A :class:`MicroArchConfig` carries the *values* of the 11 Table-1 parameters
plus a handful of derived quantities (cache capacities in bytes, total FU
count) used by the proxies and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Iterator, Tuple

#: Cache line size, bytes. Fixed across the space (BOOM uses 64B lines).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class MicroArchConfig:
    """One concrete design point (values, not levels).

    Construct via :meth:`repro.designspace.space.DesignSpace.config` rather
    than by hand when starting from a level vector.
    """

    l1_sets: int
    l1_ways: int
    l2_sets: int
    l2_ways: int
    n_mshr: int
    decode_width: int
    rob_entries: int
    mem_fu: int
    int_fu: int
    fp_fu: int
    iq_entries: int

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def l1_bytes(self) -> int:
        """L1 data-cache capacity in bytes."""
        return self.l1_sets * self.l1_ways * CACHE_LINE_BYTES

    @property
    def l2_bytes(self) -> int:
        """L2 cache capacity in bytes."""
        return self.l2_sets * self.l2_ways * CACHE_LINE_BYTES

    @property
    def l1_kib(self) -> float:
        """L1 capacity in KiB."""
        return self.l1_bytes / 1024.0

    @property
    def l2_kib(self) -> float:
        """L2 capacity in KiB."""
        return self.l2_bytes / 1024.0

    @property
    def total_fu(self) -> int:
        """Total functional units across classes."""
        return self.mem_fu + self.int_fu + self.fp_fu

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        """Plain ``{name: value}`` mapping in Table-1 order."""
        return asdict(self)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(name, value)`` pairs in Table-1 order."""
        return iter(self.as_dict().items())

    def replace(self, **changes: int) -> "MicroArchConfig":
        """Return a copy with ``changes`` applied (values, not levels)."""
        data = self.as_dict()
        for key, val in changes.items():
            if key not in data:
                raise KeyError(f"unknown parameter {key!r}")
            data[key] = val
        return MicroArchConfig(**data)

    def describe(self) -> str:
        """One-line human-readable summary used in logs and examples."""
        return (
            f"L1 {self.l1_sets}s/{self.l1_ways}w ({self.l1_kib:.0f}KiB) | "
            f"L2 {self.l2_sets}s/{self.l2_ways}w ({self.l2_kib:.0f}KiB) | "
            f"MSHR {self.n_mshr} | decode {self.decode_width} | "
            f"ROB {self.rob_entries} | FU {self.mem_fu}m/{self.int_fu}i/"
            f"{self.fp_fu}f | IQ {self.iq_entries}"
        )
