"""Micro-architecture design space (paper Table 1).

The space has 11 parameters; each takes a small ordered list of candidate
values. A design point is represented either as a
:class:`~repro.designspace.config.MicroArchConfig` (concrete values) or as a
vector of integer *levels* (indices into each candidate list), which is the
representation the search algorithms operate on.
"""

from repro.designspace.parameters import (
    DesignParameter,
    TABLE1_PARAMETERS,
    parameter_by_name,
)
from repro.designspace.config import MicroArchConfig
from repro.designspace.space import DesignSpace, default_design_space
from repro.designspace.constraints import AreaConstraint, ConstraintViolation

__all__ = [
    "DesignParameter",
    "TABLE1_PARAMETERS",
    "parameter_by_name",
    "MicroArchConfig",
    "DesignSpace",
    "default_design_space",
    "AreaConstraint",
    "ConstraintViolation",
]
