"""Validity constraints on design points.

The paper's only constraint is the area budget ("optimize processor
performance within limited chip areas"); episodes enlarge the design until
the limit would be exceeded. The constraint is expressed against any
callable area model so the analytical model in :mod:`repro.proxies.area`
plugs in directly.
"""

from __future__ import annotations

from typing import Callable


from repro.designspace.config import MicroArchConfig


class ConstraintViolation(Exception):
    """Raised when a design point violates a hard constraint."""


class AreaConstraint:
    """Upper bound on estimated chip area.

    Args:
        area_model: Callable mapping :class:`MicroArchConfig` to mm^2.
        limit_mm2: Budget; designs with area strictly above it are invalid.
    """

    def __init__(
        self, area_model: Callable[[MicroArchConfig], float], limit_mm2: float
    ):
        if limit_mm2 <= 0:
            raise ValueError("area limit must be positive")
        self._area_model = area_model
        self.limit_mm2 = float(limit_mm2)

    def area(self, config: MicroArchConfig) -> float:
        """Estimated area of ``config`` in mm^2."""
        return float(self._area_model(config))

    def is_satisfied(self, config: MicroArchConfig) -> bool:
        """True when ``config`` fits the budget."""
        return self.area(config) <= self.limit_mm2

    def headroom(self, config: MicroArchConfig) -> float:
        """Remaining budget (negative when violated)."""
        return self.limit_mm2 - self.area(config)

    def check(self, config: MicroArchConfig) -> None:
        """Raise :class:`ConstraintViolation` when the budget is exceeded."""
        area = self.area(config)
        if area > self.limit_mm2:
            raise ConstraintViolation(
                f"area {area:.3f} mm^2 exceeds limit {self.limit_mm2:.3f} mm^2"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AreaConstraint(limit={self.limit_mm2} mm^2)"
