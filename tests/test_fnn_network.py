"""Tests for the five-layer FNN: forward pass, policy, gradients."""

import numpy as np
import pytest

from repro.core.fnn import FuzzyNeuralNetwork, default_inputs
from repro.designspace import default_design_space

SPACE = default_design_space()
INPUTS = default_inputs()
OUTPUTS = tuple(SPACE.names)


def make_fnn(seed=0, scale=0.1):
    return FuzzyNeuralNetwork(
        INPUTS, OUTPUTS, rng=np.random.default_rng(seed), consequent_scale=scale
    )


def random_features(rng):
    return np.array(
        [rng.uniform(inp.lo, inp.hi) for inp in INPUTS], dtype=np.float64
    )


class TestStructure:
    def test_rule_count_is_three_times_two_to_the_params(self):
        # 1 metric (3 categories) x 7 params (2 categories each)
        assert make_fnn().num_rules == 3 * 2**7

    def test_rule_grid_covers_all_combinations(self):
        fnn = make_fnn()
        unique = {tuple(row) for row in fnn.rule_grid}
        assert len(unique) == fnn.num_rules

    def test_consequent_shape(self):
        fnn = make_fnn()
        assert fnn.consequents.shape == (fnn.num_rules, 11)

    def test_metric_centers_frozen_param_centers_trainable(self):
        fnn = make_fnn()
        assert not fnn.trainable[0]          # CPI
        assert fnn.trainable[1:].all()       # all merged params

    def test_category_names(self):
        fnn = make_fnn()
        assert fnn.category_names(0) == ("low", "avg", "high")
        assert fnn.category_names(1) == ("low", "enough")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            FuzzyNeuralNetwork((), OUTPUTS)

    def test_empty_outputs_rejected(self):
        with pytest.raises(ValueError):
            FuzzyNeuralNetwork(INPUTS, ())


class TestForward:
    def test_normalized_firing_sums_to_one(self, rng):
        fnn = make_fnn()
        cache = fnn.forward(random_features(rng))
        assert cache.normalized.sum() == pytest.approx(1.0)
        assert np.all(cache.normalized >= 0)

    def test_scores_are_convex_combination_of_consequents(self, rng):
        fnn = make_fnn()
        cache = fnn.forward(random_features(rng))
        lo = fnn.consequents.min(axis=0)
        hi = fnn.consequents.max(axis=0)
        assert np.all(cache.scores >= lo - 1e-9)
        assert np.all(cache.scores <= hi + 1e-9)

    def test_wrong_feature_shape_rejected(self):
        with pytest.raises(ValueError):
            make_fnn().forward(np.zeros(3))

    def test_deterministic(self, rng):
        fnn = make_fnn()
        x = random_features(rng)
        assert np.array_equal(fnn.scores(x), fnn.scores(x))

    def test_zero_consequents_zero_scores(self, rng):
        fnn = make_fnn(scale=0.0)
        assert np.allclose(fnn.scores(random_features(rng)), 0.0)


class TestPolicy:
    def test_probs_sum_to_one(self, rng):
        fnn = make_fnn()
        probs, __ = fnn.policy(random_features(rng))
        assert probs.sum() == pytest.approx(1.0)

    def test_mask_zeroes_invalid(self, rng):
        fnn = make_fnn()
        mask = np.zeros(11, dtype=bool)
        mask[3] = mask[7] = True
        probs, __ = fnn.policy(random_features(rng), mask=mask)
        assert probs[~mask].sum() == 0.0
        assert probs[mask].sum() == pytest.approx(1.0)

    def test_all_masked_raises(self, rng):
        fnn = make_fnn()
        with pytest.raises(ValueError):
            fnn.policy(random_features(rng), mask=np.zeros(11, dtype=bool))

    def test_temperature_sharpens(self, rng):
        fnn = make_fnn(scale=1.0)
        x = random_features(rng)
        hot, __ = fnn.policy(x, temperature=10.0)
        cold, __ = fnn.policy(x, temperature=0.05)
        assert cold.max() > hot.max()

    def test_invalid_temperature(self, rng):
        with pytest.raises(ValueError):
            make_fnn().policy(random_features(rng), temperature=0.0)

    def test_act_respects_mask(self, rng):
        fnn = make_fnn()
        mask = np.zeros(11, dtype=bool)
        mask[5] = True
        for __ in range(10):
            assert fnn.act(random_features(rng), rng, mask=mask) == 5

    def test_greedy_act_is_argmax(self, rng):
        fnn = make_fnn(scale=1.0)
        x = random_features(rng)
        probs, __ = fnn.policy(x)
        assert fnn.act(x, rng, greedy=True) == int(np.argmax(probs))


class TestPolicyGradient:
    def test_consequent_gradient_matches_finite_difference(self, rng):
        fnn = make_fnn(scale=0.5)
        x = random_features(rng)
        action = 2
        grad = fnn.log_policy_gradient(x, action)
        h = 1e-6
        # check a handful of entries
        check = [(0, 0), (10, 2), (100, 5), (383, 10)]
        for r, k in check:
            fnn.consequents[r, k] += h
            up = np.log(fnn.policy(x)[0][action])
            fnn.consequents[r, k] -= 2 * h
            down = np.log(fnn.policy(x)[0][action])
            fnn.consequents[r, k] += h
            numeric = (up - down) / (2 * h)
            assert grad.d_consequents[r, k] == pytest.approx(numeric, abs=1e-4)

    def test_center_gradient_matches_finite_difference(self, rng):
        fnn = make_fnn(scale=0.5)
        x = random_features(rng)
        action = 4
        grad = fnn.log_policy_gradient(x, action)
        h = 1e-6
        for i in range(fnn.num_inputs):
            if not fnn.trainable[i]:
                continue
            fnn.centers[i] += h
            up = np.log(fnn.policy(x)[0][action])
            fnn.centers[i] -= 2 * h
            down = np.log(fnn.policy(x)[0][action])
            fnn.centers[i] += h
            numeric = (up - down) / (2 * h)
            assert grad.d_centers[i] == pytest.approx(numeric, abs=1e-4)

    def test_frozen_metric_center_gets_zero_gradient(self, rng):
        fnn = make_fnn(scale=0.5)
        grad = fnn.log_policy_gradient(random_features(rng), 0)
        assert grad.d_centers[0] == 0.0

    def test_masked_action_raises(self, rng):
        fnn = make_fnn()
        mask = np.ones(11, dtype=bool)
        mask[2] = False
        with pytest.raises(ValueError):
            fnn.log_policy_gradient(random_features(rng), 2, mask=mask)

    def test_log_prob_consistent_with_policy(self, rng):
        fnn = make_fnn(scale=0.5)
        x = random_features(rng)
        probs, __ = fnn.policy(x)
        grad = fnn.log_policy_gradient(x, 3)
        assert grad.log_prob == pytest.approx(float(np.log(probs[3])))


class TestUpdates:
    def test_update_moves_policy_toward_action(self, rng):
        fnn = make_fnn(scale=0.1)
        x = random_features(rng)
        action = 6
        before = fnn.policy(x)[0][action]
        for __ in range(20):
            grad = fnn.log_policy_gradient(x, action)
            fnn.apply_update(grad.d_consequents, grad.d_centers, 0.5, 0.05)
        after = fnn.policy(x)[0][action]
        assert after > before

    def test_centers_clipped_to_scale(self, rng):
        fnn = make_fnn()
        huge = np.full(fnn.num_inputs, 1e6)
        fnn.apply_update(np.zeros_like(fnn.consequents), huge, 0.0, 1.0)
        for i, inp in enumerate(fnn.inputs):
            assert inp.lo <= fnn.centers[i] <= inp.hi

    def test_gradient_shape_checked(self):
        fnn = make_fnn()
        with pytest.raises(ValueError):
            fnn.apply_update(np.zeros((2, 2)), np.zeros(fnn.num_inputs), 0.1, 0.1)

    def test_state_dict_roundtrip(self, rng):
        fnn = make_fnn(seed=1, scale=0.5)
        state = fnn.state_dict()
        other = make_fnn(seed=2, scale=0.5)
        other.load_state_dict(state)
        x = random_features(rng)
        assert np.allclose(fnn.scores(x), other.scores(x))

    def test_state_dict_is_a_copy(self):
        fnn = make_fnn()
        state = fnn.state_dict()
        state["consequents"][0, 0] = 999.0
        assert fnn.consequents[0, 0] != 999.0

    def test_clone_weights(self, rng):
        a = make_fnn(seed=1, scale=0.5)
        b = make_fnn(seed=2, scale=0.5)
        b.clone_weights_from(a)
        x = random_features(rng)
        assert np.allclose(a.scores(x), b.scores(x))
