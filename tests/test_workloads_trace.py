"""Unit + property tests for the trace builder and container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.isa import OpClass
from repro.workloads.trace import (
    InstructionTrace,
    TraceBuilder,
    NO_DEP,
    MEM_DEP_GRANULE,
)


def build_tiny():
    tb = TraceBuilder("tiny")
    a = tb.int_op()
    b = tb.int_op(a)
    addr = tb.alloc(64)
    s = tb.store(addr, b)
    ld = tb.load(addr)
    tb.branch(ld, taken=True)
    return tb.build()


class TestTraceBuilder:
    def test_length(self):
        assert len(build_tiny()) == 5

    def test_dependencies_recorded(self):
        trace = build_tiny()
        assert trace.src_a[1] == 0  # b depends on a
        assert trace.src_a[2] == 1  # store value is b

    def test_store_to_load_dependency(self):
        trace = build_tiny()
        assert trace.mem_dep[3] == 2  # load sees the store

    def test_loads_without_prior_store_have_no_mem_dep(self):
        tb = TraceBuilder("t")
        addr = tb.alloc(8)
        tb.load(addr)
        trace = tb.build()
        assert trace.mem_dep[0] == NO_DEP

    def test_mem_dep_granularity(self):
        tb = TraceBuilder("t")
        base = tb.alloc(64)
        tb.store(base)
        tb.load(base + MEM_DEP_GRANULE)  # adjacent granule: no dep
        trace = tb.build()
        assert trace.mem_dep[1] == NO_DEP

    def test_literal_operands_have_no_dependency(self):
        tb = TraceBuilder("t")
        tb.int_op(5, 7)  # plain ints are literals
        trace = tb.build()
        assert trace.src_a[0] == NO_DEP
        assert trace.src_b[0] == NO_DEP

    def test_alloc_is_monotonic_and_aligned(self):
        tb = TraceBuilder("t")
        a = tb.alloc(100)
        b = tb.alloc(10)
        assert b >= a + 100
        assert a % 64 == 0 and b % 64 == 0

    def test_alloc_rejects_non_positive(self):
        tb = TraceBuilder("t")
        with pytest.raises(ValueError):
            tb.alloc(0)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder("t").build()

    def test_branch_outcome_recorded(self):
        tb = TraceBuilder("t")
        tb.branch(taken=True)
        tb.branch(taken=False)
        trace = tb.build()
        assert trace.taken.tolist() == [True, False]


class TestInstructionTrace:
    def test_op_counts(self):
        counts = build_tiny().op_counts()
        assert counts[OpClass.INT_ALU] == 2
        assert counts[OpClass.STORE] == 1
        assert counts[OpClass.LOAD] == 1
        assert counts[OpClass.BRANCH] == 1

    def test_memory_indices(self):
        assert build_tiny().memory_indices().tolist() == [2, 3]

    def test_line_addresses(self):
        trace = build_tiny()
        lines = trace.line_addresses(64)
        assert len(lines) == 2
        assert lines[0] == lines[1]  # same address, same line

    def test_forward_dependency_rejected(self):
        with pytest.raises(ValueError):
            InstructionTrace(
                name="bad",
                op=np.array([0, 0], dtype=np.int8),
                src_a=np.array([1, NO_DEP]),  # points forward
                src_b=np.array([NO_DEP, NO_DEP]),
                mem_dep=np.array([NO_DEP, NO_DEP]),
                address=np.zeros(2, dtype=np.int64),
                taken=np.zeros(2, dtype=bool),
            )

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError):
            InstructionTrace(
                name="bad",
                op=np.array([0], dtype=np.int8),
                src_a=np.array([0]),
                src_b=np.array([NO_DEP]),
                mem_dep=np.array([NO_DEP]),
                address=np.zeros(1, dtype=np.int64),
                taken=np.zeros(1, dtype=bool),
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InstructionTrace(
                name="bad",
                op=np.array([0, 0], dtype=np.int8),
                src_a=np.array([NO_DEP]),
                src_b=np.array([NO_DEP, NO_DEP]),
                mem_dep=np.array([NO_DEP, NO_DEP]),
                address=np.zeros(2, dtype=np.int64),
                taken=np.zeros(2, dtype=bool),
            )


class TestSlice:
    def test_slice_clips_dangling_dependencies(self):
        trace = build_tiny()
        sub = trace.slice(1, 5)
        assert len(sub) == 4
        # instruction 1 depended on 0, which is outside the window
        assert sub.src_a[0] == NO_DEP
        # store->load dep (2->3 originally) survives, shifted
        assert sub.mem_dep[2] == 1

    @given(st.integers(0, 4), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_slice_always_valid(self, start, length):
        trace = build_tiny()
        stop = min(start + length, len(trace))
        if stop <= start:
            return
        sub = trace.slice(start, stop)  # constructor re-validates deps
        assert len(sub) == stop - start
