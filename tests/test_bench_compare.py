"""Tests for the CI perf gate (benchmarks/compare_baseline.py).

The gate script lives next to the benchmarks it reads (not in the
package), so it is loaded here by path.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_baseline.py"
spec = importlib.util.spec_from_file_location("compare_baseline", _SCRIPT)
compare_baseline = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_baseline)


def smoke_json(**extra_info):
    return {
        "benchmarks": [
            {"name": "test_bench_engine_throughput", "extra_info": extra_info}
        ]
    }


def baseline_json(value=2.0, band=0.5, key="lf_vector_speedup"):
    return {
        "metrics": {
            f"test_bench_engine_throughput:{key}": {
                "value": value,
                "min_fraction": band,
            }
        }
    }


class TestCompare:
    def test_within_band_passes(self):
        failures = compare_baseline.compare(
            smoke_json(lf_vector_speedup=1.2), baseline_json(2.0, 0.5)
        )
        assert failures == []

    def test_below_band_fails(self):
        failures = compare_baseline.compare(
            smoke_json(lf_vector_speedup=0.9), baseline_json(2.0, 0.5)
        )
        assert len(failures) == 1
        assert "below floor" in failures[0]

    def test_missing_benchmark_fails(self):
        failures = compare_baseline.compare(
            {"benchmarks": []}, baseline_json()
        )
        assert len(failures) == 1
        assert "not in smoke JSON" in failures[0]

    def test_missing_metric_fails(self):
        failures = compare_baseline.compare(
            smoke_json(other=1.0), baseline_json()
        )
        assert len(failures) == 1
        assert "missing from extra_info" in failures[0]

    def test_parametrized_names_collapse(self):
        smoke = {
            "benchmarks": [
                {
                    "name": "test_bench_engine_throughput[fast]",
                    "extra_info": {"lf_vector_speedup": 3.0},
                }
            ]
        }
        assert compare_baseline.compare(smoke, baseline_json()) == []

    def test_update_refreshes_values_keeps_bands(self):
        refreshed = compare_baseline.update_baseline(
            smoke_json(lf_vector_speedup=4.5), baseline_json(2.0, 0.5)
        )
        gate = refreshed["metrics"]["test_bench_engine_throughput:lf_vector_speedup"]
        assert gate["value"] == 4.5
        assert gate["min_fraction"] == 0.5

    def test_committed_baseline_gates_real_metrics(self):
        """The committed baseline must reference metrics the benches
        actually record, so the gate can never silently pass on a key
        typo."""
        baseline = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_baseline.json")
            .read_text()
        )
        recorded = {
            "test_bench_engine_throughput": {
                "hf_batched_speedup", "lf_vector_speedup", "simulator_mips",
                "hf_serial_evals_per_sec", "hf_batched_evals_per_sec",
                "trace_instructions",
                "search_loop_q1_evals_per_sec", "search_loop_q8_evals_per_sec",
                "search_loop_batch_speedup",
                "hf_serial_python_evals_per_sec", "hf_cold_python_speedup",
                "kernel_auto_evals_per_sec", "kernel_python_evals_per_sec",
                "compiled_kernel_speedup",
            },
            "test_bench_simulator_batched": {
                "serial_evals_per_sec", "serial_python_evals_per_sec",
                *(f"batched_speedup_{n}" for n in (1, 4, 16, 64, 256)),
                *(f"batched_evals_per_sec_{n}" for n in (1, 4, 16, 64, 256)),
                *(f"lockstep_speedup_{n}" for n in (1, 4, 16, 64, 256)),
                *(f"lockstep_evals_per_sec_{n}" for n in (1, 4, 16, 64, 256)),
            },
            "test_bench_store_startup": {
                "store_records", "store_open_s",
                "store_open_records_per_sec",
                "store_parsed_at_open", "store_parsed_after_get",
            },
            "test_bench_learned_tier": {
                "tier_corpus_records", "tier_fit_s",
                "hf_serial_ms_per_eval", "tier_us_per_query",
                "tier_speedup", "tier_hit_rate", "tier_fallback_rate",
            },
        }
        assert baseline["metrics"], "baseline must gate something"
        for key in baseline["metrics"]:
            bench, _, metric = key.partition(":")
            assert bench in recorded, f"unknown benchmark in baseline: {bench}"
            assert metric in recorded[bench], (
                f"baseline gates unrecorded metric {key}"
            )

    def test_main_exit_codes(self, tmp_path):
        smoke = tmp_path / "smoke.json"
        base = tmp_path / "base.json"
        smoke.write_text(json.dumps(smoke_json(lf_vector_speedup=1.2)))
        base.write_text(json.dumps(baseline_json(2.0, 0.5)))
        assert compare_baseline.main([str(smoke), str(base)]) == 0
        smoke.write_text(json.dumps(smoke_json(lf_vector_speedup=0.2)))
        assert compare_baseline.main([str(smoke), str(base)]) == 1
        assert compare_baseline.main([]) == 2  # usage error
