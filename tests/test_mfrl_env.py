"""Tests for the DSE episode environment."""

import numpy as np
import pytest

from repro.core.fnn import FuzzyNeuralNetwork, default_inputs
from repro.core.mfrl import DseEnvironment
from repro.designspace import default_design_space

SPACE = default_design_space()
INPUTS = default_inputs()


@pytest.fixture()
def fnn():
    return FuzzyNeuralNetwork(INPUTS, SPACE.names, rng=np.random.default_rng(0))


class TestActionMask:
    def test_lf_mask_is_subset_of_feasible(self, mm_pool):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=True)
        levels = SPACE.smallest()
        lf_mask = env.action_mask(levels)
        feasible = mm_pool.feasible_increase_mask(levels)
        assert np.all(~lf_mask | feasible)  # lf -> feasible

    def test_hf_mask_equals_feasible(self, mm_pool):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        levels = SPACE.smallest()
        assert np.array_equal(
            env.action_mask(levels), mm_pool.feasible_increase_mask(levels)
        )

    def test_lf_mask_empty_when_no_beneficial_move(self, mm_pool):
        """When the model sees no beneficial increase the LF episode must
        end even though feasible moves remain."""
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=True)
        # find a design where the model's beneficial set is empty but
        # feasible moves exist: near the area budget this happens;
        # fabricate it by monkeypatching the beneficial mask.
        mm_pool.analytical.beneficial_mask = lambda levels, **kw: np.zeros(
            11, dtype=bool
        )
        mask = env.action_mask(SPACE.smallest())
        assert not mask.any()


class TestRollout:
    def test_episode_ends_within_budget(self, mm_pool, fnn, rng):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng)
        assert mm_pool.fits(episode.final_levels)
        assert not env.action_mask(episode.final_levels).any()

    def test_episode_starts_at_smallest_by_default(self, mm_pool, fnn, rng):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng, max_steps=0)
        assert np.array_equal(episode.final_levels, SPACE.smallest())

    def test_steps_match_level_distance(self, mm_pool, fnn, rng):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng)
        assert episode.length == int(episode.final_levels.sum())

    def test_custom_start(self, mm_pool, fnn, rng):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        start = SPACE.smallest()
        start[SPACE.index_of("decode_width")] = 2
        episode = env.rollout(fnn, rng, start_levels=start)
        assert episode.final_levels[SPACE.index_of("decode_width")] >= 2

    def test_infeasible_start_rejected(self, mm_pool, fnn, rng):
        env = DseEnvironment(mm_pool, INPUTS)
        with pytest.raises(ValueError):
            env.rollout(fnn, rng, start_levels=SPACE.largest())

    def test_greedy_rollout_deterministic(self, mm_pool, fnn):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        a = env.rollout(fnn, np.random.default_rng(0), greedy=True)
        b = env.rollout(fnn, np.random.default_rng(99), greedy=True)
        assert np.array_equal(a.final_levels, b.final_levels)

    def test_max_steps_bounds_episode(self, mm_pool, fnn, rng):
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng, max_steps=3)
        assert episode.length <= 3

    def test_all_visited_designs_valid(self, mm_pool, fnn, rng):
        """Paper: 'all the sampled designs are valid'. Replay the actions
        and check the area constraint at every step."""
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng)
        levels = SPACE.smallest()
        for step in episode.steps:
            levels = SPACE.increase(levels, step.action)
            assert mm_pool.fits(levels)

    def test_features_include_lf_cpi(self, mm_pool):
        env = DseEnvironment(mm_pool, INPUTS)
        features = env.features_at(SPACE.smallest())
        expected_cpi = mm_pool.evaluate_low(SPACE.smallest()).cpi
        assert features[0] == pytest.approx(expected_cpi)
        assert len(features) == len(INPUTS)
