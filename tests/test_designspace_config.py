"""Unit tests for MicroArchConfig derived quantities."""

import pytest

from repro.designspace import default_design_space

SPACE = default_design_space()
SMALL = SPACE.config(SPACE.smallest())
LARGE = SPACE.config(SPACE.largest())


class TestDerivedQuantities:
    def test_l1_bytes_smallest(self):
        # 16 sets * 2 ways * 64B lines
        assert SMALL.l1_bytes == 16 * 2 * 64

    def test_l1_kib_largest(self):
        assert LARGE.l1_kib == 64.0  # 64*16*64 B

    def test_l2_bytes(self):
        assert SMALL.l2_bytes == 128 * 2 * 64
        assert LARGE.l2_bytes == 2048 * 16 * 64

    def test_total_fu(self):
        assert SMALL.total_fu == 3
        assert LARGE.total_fu == 9


class TestConversions:
    def test_as_dict_order(self):
        keys = list(SMALL.as_dict().keys())
        assert keys == SPACE.names

    def test_items_matches_dict(self):
        assert dict(SMALL.items()) == SMALL.as_dict()

    def test_replace(self):
        bigger = SMALL.replace(decode_width=4)
        assert bigger.decode_width == 4
        assert bigger.l1_sets == SMALL.l1_sets
        assert SMALL.decode_width == 1  # original untouched

    def test_replace_unknown_key_raises(self):
        with pytest.raises(KeyError):
            SMALL.replace(bogus=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            SMALL.decode_width = 5  # type: ignore[misc]

    def test_describe_mentions_key_values(self):
        text = LARGE.describe()
        assert "decode 5" in text
        assert "ROB 160" in text
