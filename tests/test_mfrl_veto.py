"""Tests for the FNN veto in the episode loop.

The veto lets strongly negative consequents ("should NOT increase")
terminate growth early -- the mechanism behind Fig. 7's preference cap.
"""

import numpy as np
import pytest

from repro.core.fnn import FuzzyNeuralNetwork, default_inputs
from repro.core.mfrl import DseEnvironment
from repro.designspace import default_design_space

SPACE = default_design_space()
INPUTS = default_inputs()


def neutral_fnn():
    return FuzzyNeuralNetwork(
        INPUTS, SPACE.names, rng=np.random.default_rng(0), consequent_scale=0.0
    )


class TestVetoConfiguration:
    def test_nonnegative_threshold_rejected(self, mm_pool):
        with pytest.raises(ValueError):
            DseEnvironment(mm_pool, INPUTS, veto_threshold=0.0)

    def test_default_threshold_negative(self, mm_pool):
        assert DseEnvironment(mm_pool, INPUTS).veto_threshold < 0


class TestVetoBehaviour:
    def test_neutral_network_is_never_vetoed(self, mm_pool, rng):
        """Zero consequents -> scores 0 > threshold -> episodes fill the
        budget exactly as without the veto."""
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(neutral_fnn(), rng)
        assert not mm_pool.feasible_increase_mask(episode.final_levels).any()

    def test_universally_negative_network_refuses_to_grow(self, mm_pool, rng):
        fnn = neutral_fnn()
        fnn.consequents[:, :] = -5.0  # "nothing should increase"
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng)
        assert episode.length == 0
        assert np.array_equal(episode.final_levels, SPACE.smallest())

    def test_single_vetoed_parameter_never_chosen(self, mm_pool, rng):
        fnn = neutral_fnn()
        decode_idx = SPACE.index_of("decode_width")
        fnn.consequents[:, decode_idx] = -5.0
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=False)
        episode = env.rollout(fnn, rng)
        assert episode.final_levels[decode_idx] == 0
        # other parameters still grow to the budget
        assert episode.length > 0

    def test_threshold_boundary(self, mm_pool, rng):
        """Scores above the threshold survive; below it they are vetoed."""
        fnn = neutral_fnn()
        decode_idx = SPACE.index_of("decode_width")
        env = DseEnvironment(
            mm_pool, INPUTS, use_gradient_mask=False, veto_threshold=-1.0
        )
        fnn.consequents[:, decode_idx] = -0.5  # above -1: allowed
        episode = env.rollout(fnn, rng)
        grew_mildly_negative = episode.final_levels[decode_idx]
        fnn.consequents[:, decode_idx] = -1.5  # below -1: vetoed
        episode = env.rollout(fnn, rng)
        assert episode.final_levels[decode_idx] == 0
        # the mild case is merely *unlikely*, not forbidden
        assert grew_mildly_negative >= 0
