"""Unit tests for the Table-1 parameter definitions."""

import pytest

from repro.designspace import DesignParameter, TABLE1_PARAMETERS, parameter_by_name


class TestTable1Definitions:
    def test_eleven_parameters(self):
        assert len(TABLE1_PARAMETERS) == 11

    def test_names_unique(self):
        names = [p.name for p in TABLE1_PARAMETERS]
        assert len(set(names)) == len(names)

    @pytest.mark.parametrize(
        "name, candidates",
        [
            ("l1_sets", (16, 32, 64)),
            ("l1_ways", (2, 4, 8, 16)),
            ("l2_sets", (128, 256, 512, 1024, 2048)),
            ("l2_ways", (2, 4, 8, 16)),
            ("n_mshr", (2, 4, 6, 8, 10)),
            ("decode_width", (1, 2, 3, 4, 5)),
            ("rob_entries", (32, 64, 96, 128, 160)),
            ("mem_fu", (1, 2)),
            ("int_fu", (1, 2, 3, 4, 5)),
            ("fp_fu", (1, 2)),
            ("iq_entries", (2, 4, 8, 16, 24)),
        ],
    )
    def test_candidates_match_paper(self, name, candidates):
        assert parameter_by_name(name).candidates == candidates

    def test_total_space_is_three_million(self):
        size = 1
        for p in TABLE1_PARAMETERS:
            size *= p.num_levels
        assert size == 3_000_000

    def test_groups_merge_cache_set_and_way(self):
        assert parameter_by_name("l1_sets").group == parameter_by_name("l1_ways").group
        assert parameter_by_name("l2_sets").group == parameter_by_name("l2_ways").group

    def test_fu_parameters_share_group(self):
        groups = {parameter_by_name(n).group for n in ("mem_fu", "int_fu", "fp_fu")}
        assert len(groups) == 1


class TestDesignParameter:
    def test_value_level_roundtrip(self):
        p = parameter_by_name("rob_entries")
        for level in range(p.num_levels):
            assert p.level_of(p.value(level)) == level

    def test_value_out_of_range_raises(self):
        p = parameter_by_name("l1_sets")
        with pytest.raises(IndexError):
            p.value(3)
        with pytest.raises(IndexError):
            p.value(-1)

    def test_level_of_unknown_value_raises(self):
        with pytest.raises(ValueError):
            parameter_by_name("l1_sets").level_of(48)

    def test_max_level(self):
        p = parameter_by_name("decode_width")
        assert p.max_level == 4

    def test_requires_two_candidates(self):
        with pytest.raises(ValueError):
            DesignParameter("x", "X", (1,), "g")

    def test_requires_ascending_candidates(self):
        with pytest.raises(ValueError):
            DesignParameter("x", "X", (2, 1), "g")

    def test_rejects_duplicate_candidates(self):
        with pytest.raises(ValueError):
            DesignParameter("x", "X", (1, 1, 2), "g")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            parameter_by_name("nonexistent")
