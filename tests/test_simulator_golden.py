"""Golden equivalence suite: two-phase kernel vs the seed reference.

The production simulator (``repro.simulator.core``) must be
**bit-identical** to the single-phase reference
(``repro.simulator.reference``): every ``SimulationResult`` field equal,
for any config and any trace. These tests sweep randomized
``MicroArchConfig``s -- including the degenerate corners that stress the
pre-pass split (1-way caches, ``n_mshr=1``, tiny ROB/IQ, prefetch
on/off) -- across all six workloads, always comparing against the
reference run fresh.

One simulator instance is reused across every comparison on purpose:
that exercises the pre-pass memo (hits must be as correct as misses,
across workloads and geometries).

The shared fixtures are parametrized over both serial timing kernels
(pure Python and the compiled C extension), so every sweep in this file
pins each kernel to the reference independently. When the extension
cannot be built the compiled lane is skipped with the build error as
the reason; under ``REPRO_FORCE_PY_KERNEL=1`` it collapses to the
Python lane only (requesting ``compiled`` there would silently re-test
Python -- the env knob wins over explicit requests by design).
"""

import pickle
import random

import pytest

from repro.designspace import MicroArchConfig
from repro.simulator import (
    GsharePredictor,
    OutOfOrderSimulator,
    PrepassMemo,
    SetAssociativeCache,
    SimulatorParams,
    branch_prepass,
    l1_prepass,
    l2_prepass,
    reference_simulate,
)
from repro.simulator.kernels import (
    KERNEL_COMPILED,
    KERNEL_PYTHON,
    _force_python,
    compiled_available,
    compiled_build_error,
)
from repro.simulator.batched import _lockstep_walk, run_batch
from repro.workloads import get_workload
from repro.workloads.trace import TraceBuilder

#: Small problem sizes: full six-benchmark coverage in seconds.
SUITE_SIZES = {
    "dijkstra": 48,
    "mm": 8,
    "fp-vvadd": 128,
    "quicksort": 64,
    "fft": 32,
    "ss": 128,
}


def random_config(rng: random.Random) -> MicroArchConfig:
    """A randomized design point biased toward structural edge cases."""
    return MicroArchConfig(
        l1_sets=rng.choice([16, 32, 64]),
        l1_ways=rng.choice([1, 2, 8]),
        l2_sets=rng.choice([128, 512]),
        l2_ways=rng.choice([1, 4]),
        n_mshr=rng.choice([1, 2, 8]),
        decode_width=rng.choice([1, 2, 4, 5]),
        rob_entries=rng.choice([8, 32, 160]),
        mem_fu=rng.choice([1, 2]),
        int_fu=rng.choice([1, 2, 4]),
        fp_fu=rng.choice([1, 2]),
        iq_entries=rng.choice([2, 4, 24]),
    )


EDGE_CONFIGS = [
    # 1-way everything, single MSHR, tiny window: maximal structural stall
    MicroArchConfig(l1_sets=16, l1_ways=1, l2_sets=128, l2_ways=1, n_mshr=1,
                    decode_width=1, rob_entries=8, mem_fu=1, int_fu=1, fp_fu=1,
                    iq_entries=2),
    # wide machine, tiny caches: mispredicts + misses under high ILP
    MicroArchConfig(l1_sets=16, l1_ways=2, l2_sets=128, l2_ways=2, n_mshr=2,
                    decode_width=5, rob_entries=160, mem_fu=2, int_fu=4, fp_fu=2,
                    iq_entries=24),
    # big caches, single-entry-ish queues
    MicroArchConfig(l1_sets=64, l1_ways=8, l2_sets=512, l2_ways=4, n_mshr=8,
                    decode_width=4, rob_entries=32, mem_fu=1, int_fu=2, fp_fu=1,
                    iq_entries=2),
]


def kernel_params():
    """Both serial kernels; compiled skips (with the build error as the
    reason) when unavailable, and the whole axis collapses to Python
    under the forced-fallback env knob."""
    if _force_python():
        return [KERNEL_PYTHON]
    if compiled_available():
        return [KERNEL_PYTHON, KERNEL_COMPILED]
    return [
        KERNEL_PYTHON,
        pytest.param(
            KERNEL_COMPILED,
            marks=pytest.mark.skip(
                reason=f"compiled kernel unavailable: {compiled_build_error()}"
            ),
        ),
    ]


@pytest.fixture(scope="module", params=kernel_params())
def simulator(request):
    """One shared simulator per kernel: comparisons run through a warm
    memo, on both the Python and the compiled timing kernel."""
    return OutOfOrderSimulator(kernel=request.param)


@pytest.fixture(scope="module", params=kernel_params())
def prefetch_simulator(request):
    return OutOfOrderSimulator(
        SimulatorParams(next_line_prefetch=True), kernel=request.param
    )


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", sorted(SUITE_SIZES))
    def test_randomized_configs_all_workloads(self, simulator, name):
        trace = get_workload(name, data_size=SUITE_SIZES[name]).trace
        rng = random.Random(f"golden-{name}")
        for __ in range(6):
            config = random_config(rng)
            assert simulator.run(trace, config) == reference_simulate(
                trace, config
            ), f"divergence on {name} at {config.describe()}"

    @pytest.mark.parametrize("config", EDGE_CONFIGS, ids=["tiny", "wide", "queues"])
    @pytest.mark.parametrize("name", ["mm", "quicksort"])
    def test_edge_configs(self, simulator, name, config):
        trace = get_workload(name, data_size=SUITE_SIZES[name]).trace
        assert simulator.run(trace, config) == reference_simulate(trace, config)

    @pytest.mark.parametrize("name", ["mm", "dijkstra", "ss"])
    def test_prefetch_on(self, prefetch_simulator, name):
        """Prefetch disables the L1 pre-pass; the live path must match too."""
        trace = get_workload(name, data_size=SUITE_SIZES[name]).trace
        params = SimulatorParams(next_line_prefetch=True)
        rng = random.Random(f"prefetch-{name}")
        for __ in range(3):
            config = random_config(rng)
            assert prefetch_simulator.run(trace, config) == reference_simulate(
                trace, config, params
            )

    def test_synthetic_mshr_merge_storm(self, simulator):
        """Same-line miss bursts: the MSHR merge path, both formulations."""
        tb = TraceBuilder("merge-storm")
        base = tb.alloc(64 * 64)
        v = None
        for i in range(300):
            v = tb.load(base + (i % 7) * 64, addr_dep=v if i % 3 else None)
            if i % 5 == 0:
                tb.store(base + (i % 11) * 64, v)
        trace = tb.build()
        for config in EDGE_CONFIGS:
            assert simulator.run(trace, config) == reference_simulate(trace, config)

    def test_branch_only_trace(self, simulator):
        rng = random.Random(3)
        tb = TraceBuilder("branches")
        for __ in range(500):
            tb.branch(taken=rng.random() < 0.5)
        trace = tb.build()
        for config in EDGE_CONFIGS:
            assert simulator.run(trace, config) == reference_simulate(trace, config)


#: Configs that provably trigger MSHR merges (found by instrumenting the
#: reference): tiny direct-mapped L1s re-missing a line within its miss
#: latency. These force the L2-prepass merge fallback on both kernels.
MERGE_CASES = [
    ("dijkstra", 48, MicroArchConfig(
        l1_sets=16, l1_ways=1, l2_sets=128, l2_ways=1, n_mshr=2,
        decode_width=5, rob_entries=32, mem_fu=2, int_fu=1, fp_fu=2,
        iq_entries=4)),
    ("mm", 8, MicroArchConfig(
        l1_sets=16, l1_ways=1, l2_sets=512, l2_ways=1, n_mshr=1,
        decode_width=1, rob_entries=160, mem_fu=2, int_fu=2, fp_fu=1,
        iq_entries=24)),
    ("fp-vvadd", 128, MicroArchConfig(
        l1_sets=16, l1_ways=1, l2_sets=128, l2_ways=1, n_mshr=8,
        decode_width=1, rob_entries=32, mem_fu=2, int_fu=4, fp_fu=1,
        iq_entries=24)),
]


class TestL2Prepass:
    def test_l2_prepass_matches_cache_replay(self):
        import numpy as np

        rng = random.Random(9)
        lines = np.array(
            [rng.randrange(4096) for __ in range(1500)], dtype=np.int64
        )
        pre = l2_prepass(lines, 128, 2)
        cache = SetAssociativeCache(128, 2)
        flags = [cache.access(int(line)) for line in lines]
        assert pre.hit == flags
        assert (pre.hits, pre.misses) == (cache.hits, cache.misses)

    @pytest.mark.parametrize("name,size,config", MERGE_CASES,
                             ids=[c[0] for c in MERGE_CASES])
    def test_merge_fallback_is_exact(self, simulator, name, size, config):
        """Runs that hit an MSHR merge must replay on the live-L2 path
        and still match the reference bit-for-bit."""
        trace = get_workload(name, data_size=size).trace
        assert simulator.run(trace, config) == reference_simulate(trace, config)

    def test_merge_raises_inside_prepass_kernel(self, simulator):
        """The no-merge L2 stream must be abandoned the moment a merge
        happens -- silently continuing would desynchronise the stream."""
        from repro.simulator.core import MshrMergeDetected, _timing_kernel

        name, size, config = MERGE_CASES[1]
        trace = get_workload(name, data_size=size).trace
        p = simulator.params
        bp = simulator.branch_prepass_for(trace)
        l1pre = simulator.l1_prepass_for(trace, config.l1_sets, config.l1_ways)
        l2pre = simulator.l2_prepass_for(trace, config, l1pre)
        line_shift = p.line_bytes.bit_length() - 1
        with pytest.raises(MshrMergeDetected):
            _timing_kernel(
                trace.kernel_view, config, p, bp, l1pre, line_shift, l2pre
            )


class TestBatchedKernel:
    """The design-batched lockstep kernel vs the single-phase reference."""

    @pytest.mark.parametrize("name", sorted(SUITE_SIZES))
    def test_heterogeneous_batches_all_workloads(self, simulator, name):
        """Mixed cache/predictor geometries and widths in one walk."""
        trace = get_workload(name, data_size=SUITE_SIZES[name]).trace
        rng = random.Random(f"batched-{name}")
        configs = [random_config(rng) for __ in range(10)]
        results = _lockstep_walk(simulator, trace, configs)
        for config, result in zip(configs, results):
            assert result == reference_simulate(trace, config), (
                f"batched divergence on {name} at {config.describe()}"
            )

    def test_batch_of_one(self, simulator):
        trace = get_workload("mm", data_size=SUITE_SIZES["mm"]).trace
        for config in EDGE_CONFIGS:
            (result,) = _lockstep_walk(simulator, trace, [config])
            assert result == reference_simulate(trace, config)

    def test_run_batch_chunks_and_serial_tail(self, simulator):
        """run_batch must be exact across chunk boundaries and for the
        ragged tail it hands to the serial kernel."""
        trace = get_workload("quicksort", data_size=SUITE_SIZES["quicksort"]).trace
        rng = random.Random("chunks")
        configs = [random_config(rng) for __ in range(11)]
        results = run_batch(
            simulator, trace, configs, min_designs=2, max_designs=4
        )
        for config, result in zip(configs, results):
            assert result == reference_simulate(trace, config)

    def test_explicit_walk_width_engages_below_default_crossover(
        self, simulator, monkeypatch
    ):
        """``--hf-batch 8`` means "batch at width 8", not "stay serial
        because 8 < the default crossover"; width 1 still disables."""
        import repro.simulator.batched as batched_mod

        calls = []
        orig = batched_mod._lockstep_walk

        def counting(sim, trace, configs):
            calls.append(len(configs))
            return orig(sim, trace, configs)

        monkeypatch.setattr(batched_mod, "_lockstep_walk", counting)
        trace = get_workload("mm", data_size=SUITE_SIZES["mm"]).trace
        rng = random.Random("width")
        configs = [random_config(rng) for __ in range(8)]
        results = batched_mod.run_batch(
            simulator, trace, configs, max_designs=8
        )
        assert calls == [8]
        for config, result in zip(configs, results):
            assert result == reference_simulate(trace, config)
        calls.clear()
        batched_mod.run_batch(simulator, trace, configs, max_designs=1)
        assert calls == []

    def test_small_batches_fall_back_to_serial(self, simulator):
        """Below the crossover the walk must not engage (same results,
        and the serial path is the faster one there)."""
        trace = get_workload("mm", data_size=SUITE_SIZES["mm"]).trace
        results = run_batch(simulator, trace, EDGE_CONFIGS)  # 3 < default
        for config, result in zip(EDGE_CONFIGS, results):
            assert result == simulator.run(trace, config)

    def test_prefetch_on_delegates_serially(self, prefetch_simulator):
        """Prefetch makes L1/L2 timing-dependent: the batch entry point
        must still be exact (it delegates design-by-design)."""
        params = SimulatorParams(next_line_prefetch=True)
        trace = get_workload("dijkstra", data_size=SUITE_SIZES["dijkstra"]).trace
        results = run_batch(
            prefetch_simulator, trace, EDGE_CONFIGS, min_designs=1
        )
        for config, result in zip(EDGE_CONFIGS, results):
            assert result == reference_simulate(trace, config, params)

    def test_merge_designs_fall_back_within_batch(self, simulator):
        """A batch mixing merge-prone and clean designs: the merge lanes
        replay serially, the rest stay on the lockstep walk -- all must
        match the reference."""
        name, size, merge_config = MERGE_CASES[1]
        trace = get_workload(name, data_size=size).trace
        rng = random.Random("merge-batch")
        configs = [random_config(rng) for __ in range(6)]
        configs.insert(2, merge_config)
        results = _lockstep_walk(simulator, trace, configs)
        for config, result in zip(configs, results):
            assert result == reference_simulate(trace, config)

    def test_mshr_merge_storm_trace(self, simulator):
        tb = TraceBuilder("merge-storm-batched")
        base = tb.alloc(64 * 64)
        v = None
        for i in range(300):
            v = tb.load(base + (i % 7) * 64, addr_dep=v if i % 3 else None)
            if i % 5 == 0:
                tb.store(base + (i % 11) * 64, v)
        trace = tb.build()
        results = _lockstep_walk(simulator, trace, EDGE_CONFIGS * 2)
        for config, result in zip(EDGE_CONFIGS * 2, results):
            assert result == reference_simulate(trace, config)

    def test_unpipelined_and_branch_mix(self, simulator):
        """Divides (unpipelined FU hogging) and mispredict bursts."""
        rng = random.Random(17)
        tb = TraceBuilder("div-branch-mix")
        v = None
        for i in range(400):
            r = rng.random()
            if r < 0.2:
                v = tb.int_div(v)
            elif r < 0.35:
                v = tb.fp_div(v)
            elif r < 0.55:
                v = tb.load(0x1000 + (i % 37) * 64, addr_dep=v)
            elif r < 0.65:
                tb.store(0x1000 + (i % 23) * 64, v)
            elif r < 0.85:
                tb.branch(taken=rng.random() < 0.5)
            else:
                v = tb.fp_add(v)
        trace = tb.build()
        rng = random.Random(18)
        configs = [random_config(rng) for __ in range(8)]
        results = _lockstep_walk(simulator, trace, configs)
        for config, result in zip(configs, results):
            assert result == reference_simulate(trace, config)

    def test_pickled_simulator_runs_batches(self):
        """Workers receive simulators cold (no memo) and must produce
        the same batch results after warming their own."""
        sim = OutOfOrderSimulator()
        trace = get_workload("mm", data_size=SUITE_SIZES["mm"]).trace
        rng = random.Random("pickle-batch")
        configs = [random_config(rng) for __ in range(5)]
        expected = run_batch(sim, trace, configs, min_designs=2)
        clone = pickle.loads(pickle.dumps(sim))
        assert len(clone.prepass_memo) == 0
        assert run_batch(clone, trace, configs, min_designs=2) == expected


class TestPrepassUnits:
    def test_branch_prepass_matches_predictor(self):
        rng = random.Random(11)
        outcomes = [rng.random() < 0.6 for __ in range(800)]
        import numpy as np

        pre = branch_prepass(np.array(outcomes, dtype=np.int64), 10, 8)
        predictor = GsharePredictor(10, 8)
        flags = [predictor.predict_and_update(t) for t in outcomes]
        assert pre.mispredict == flags
        assert pre.predictions == predictor.predictions
        assert pre.mispredictions == predictor.mispredictions
        assert pre.mispredict_rate == predictor.mispredict_rate

    def test_branch_prepass_short_stream(self):
        """history_bits longer than the stream must not wrap the slice."""
        import numpy as np

        pre = branch_prepass(np.array([1, 0], dtype=np.int64), 10, 8)
        predictor = GsharePredictor(10, 8)
        flags = [predictor.predict_and_update(bool(t)) for t in (1, 0)]
        assert pre.mispredict == flags

    def test_branch_prepass_empty(self):
        import numpy as np

        pre = branch_prepass(np.array([], dtype=np.int64), 10, 8)
        assert pre.predictions == 0
        assert pre.mispredict_rate == 0.0

    def test_l1_prepass_matches_cache(self):
        import numpy as np

        rng = random.Random(5)
        lines = np.array([rng.randrange(512) for __ in range(2000)], dtype=np.int64)
        pre = l1_prepass(lines, 16, 2)
        cache = SetAssociativeCache(16, 2)
        flags = [cache.access(int(line)) for line in lines]
        assert pre.hit == flags
        assert (pre.hits, pre.misses) == (cache.hits, cache.misses)


class TestPrepassMemo:
    def test_bounded_lru_eviction(self):
        memo = PrepassMemo(max_entries=2)
        trace = object.__new__(OutOfOrderSimulator)  # any weakref-able object
        memo.get(trace, "a", 1, lambda: "A")
        memo.get(trace, "b", 2, lambda: "B")
        memo.get(trace, "a", 1, lambda: "A2")  # refresh A
        memo.get(trace, "c", 3, lambda: "C")  # evicts B
        assert memo.get(trace, "a", 1, lambda: "A3") == "A"
        assert memo.get(trace, "b", 2, lambda: "B2") == "B2"
        assert len(memo) == 2

    def test_entries_purged_when_trace_dies(self):
        memo = PrepassMemo()
        trace = object.__new__(OutOfOrderSimulator)
        memo.get(trace, "a", 1, lambda: "A")
        assert len(memo) == 1
        del trace
        assert len(memo) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            PrepassMemo(max_entries=0)

    def test_finalizer_does_not_keep_memo_alive(self):
        """Trace finalizers must hold the memo weakly: workload traces
        are process-lifetime, so a strong callback would leak every
        discarded simulator's memo."""
        import gc
        import weakref

        trace = get_workload("mm", data_size=8).trace
        sim = OutOfOrderSimulator()
        sim.run(trace, EDGE_CONFIGS[0])
        memo_ref = weakref.ref(sim.prepass_memo)
        del sim
        gc.collect()
        assert memo_ref() is None

    def test_invalid_predictor_geometry_rejected_like_reference(self):
        """The pre-pass path must reject what GsharePredictor rejects."""
        with pytest.raises(ValueError):
            OutOfOrderSimulator(SimulatorParams(history_bits=31))
        with pytest.raises(ValueError):
            OutOfOrderSimulator(SimulatorParams(gshare_bits=25))
        import numpy as np

        with pytest.raises(ValueError):
            branch_prepass(np.array([1], dtype=np.int64), 25, 8)
        with pytest.raises(ValueError):
            branch_prepass(np.array([1], dtype=np.int64), 10, 0)

    def test_memo_counts_hits(self):
        sim = OutOfOrderSimulator()
        trace = get_workload("mm", data_size=8).trace
        config = EDGE_CONFIGS[0]
        sim.run(trace, config)
        misses_after_first = sim.prepass_memo.misses
        sim.run(trace, config)
        assert sim.prepass_memo.misses == misses_after_first
        assert sim.prepass_memo.hits >= 2  # branch + L1 reused


class TestPickling:
    def test_simulator_pickles_without_memo(self):
        sim = OutOfOrderSimulator()
        trace = get_workload("mm", data_size=8).trace
        config = EDGE_CONFIGS[1]
        expected = sim.run(trace, config)
        clone = pickle.loads(pickle.dumps(sim))
        assert len(clone.prepass_memo) == 0
        assert clone.params == sim.params
        assert clone.run(trace, config) == expected

    def test_trace_pickles_without_kernel_view(self):
        trace = get_workload("mm", data_size=8).trace
        trace.kernel_view  # materialise the cache
        clone = pickle.loads(pickle.dumps(trace))
        assert "kernel_view" not in clone.__dict__
        config = EDGE_CONFIGS[2]
        assert reference_simulate(clone, config) == reference_simulate(trace, config)
        assert OutOfOrderSimulator().run(clone, config) == OutOfOrderSimulator().run(
            trace, config
        )
