"""Workload scaling properties: the paper's data-size knob must act on
the quantities the DSE cares about (footprint, miss curves, trace size).
"""

import pytest

from repro.workloads import get_workload
SMALL = {"dijkstra": 32, "mm": 8, "fp-vvadd": 128, "quicksort": 64,
         "fft": 32, "ss": 512}
LARGE = {"dijkstra": 128, "mm": 16, "fp-vvadd": 512, "quicksort": 256,
         "fft": 128, "ss": 2048}


@pytest.mark.parametrize("name", sorted(SMALL))
class TestScaling:
    def test_footprint_grows_with_data_size(self, name):
        small = get_workload(name, data_size=SMALL[name]).profile
        large = get_workload(name, data_size=LARGE[name]).profile
        assert large.footprint_lines > small.footprint_lines

    def test_miss_curve_shifts_right(self, name):
        """A larger working set needs a larger cache for the same miss
        rate: at the small workload's half-footprint size, the large
        workload must miss at least as often."""
        small = get_workload(name, data_size=SMALL[name]).profile
        large = get_workload(name, data_size=LARGE[name]).profile
        probe = max(small.footprint_lines // 2, 2)
        assert large.miss_curve.rate(probe) >= small.miss_curve.rate(probe) - 0.05

    def test_mix_is_size_stable(self, name):
        """Scaling data must not change what the kernel *is*: FU-class
        fractions stay within a few points."""
        small = get_workload(name, data_size=SMALL[name]).profile
        large = get_workload(name, data_size=LARGE[name]).profile
        assert small.frac_mem == pytest.approx(large.frac_mem, abs=0.12)
        assert small.frac_fp == pytest.approx(large.frac_fp, abs=0.12)


class TestScalingShiftsOptima:
    def test_bigger_data_wants_bigger_caches(self):
        """The paper scales data sizes 'to avoid the optimal results
        being concentrated on smaller designs': with a bigger working
        set, the analytical model must reward cache growth more."""
        from repro.designspace import default_design_space
        from repro.proxies import AnalyticalModel

        space = default_design_space()
        small = AnalyticalModel(
            get_workload("dijkstra", data_size=48).profile, space
        )
        large = AnalyticalModel(
            get_workload("dijkstra", data_size=384).profile, space
        )
        base = space.config(space.smallest())
        grown = base.replace(l1_sets=64, l1_ways=16, l2_sets=2048, l2_ways=16)
        gain_small = small.cpi(base) - small.cpi(grown)
        gain_large = large.cpi(base) - large.cpi(grown)
        assert gain_large > gain_small
