"""Tests for FNN JSON serialisation."""

import json

import numpy as np
import pytest

from repro.core.fnn import (
    FuzzyNeuralNetwork,
    default_inputs,
    fnn_from_dict,
    fnn_to_dict,
    load_fnn,
    save_fnn,
)
from repro.designspace import default_design_space

SPACE = default_design_space()


def trained_like_fnn(seed=0):
    fnn = FuzzyNeuralNetwork(
        default_inputs(), SPACE.names, rng=np.random.default_rng(seed),
        consequent_scale=0.3,
    )
    fnn.centers[3] = 7.0  # pretend training moved a center
    return fnn


class TestRoundTrip:
    def test_dict_roundtrip_preserves_scores(self, rng):
        fnn = trained_like_fnn()
        restored = fnn_from_dict(fnn_to_dict(fnn))
        x = np.array([1.4, 7.0, 11.0, 6.0, 3.0, 3.0, 6.0, 12.0])
        assert np.allclose(fnn.scores(x), restored.scores(x))

    def test_dict_roundtrip_preserves_centers(self):
        fnn = trained_like_fnn()
        restored = fnn_from_dict(fnn_to_dict(fnn))
        assert np.allclose(fnn.centers, restored.centers)

    def test_file_roundtrip(self, tmp_path):
        fnn = trained_like_fnn()
        path = tmp_path / "fnn.json"
        save_fnn(fnn, path)
        restored = load_fnn(path)
        assert np.allclose(fnn.consequents, restored.consequents)

    def test_saved_file_is_plain_json(self, tmp_path):
        path = tmp_path / "fnn.json"
        save_fnn(trained_like_fnn(), path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert len(data["output_names"]) == 11


class TestValidation:
    def test_wrong_version_rejected(self):
        data = fnn_to_dict(trained_like_fnn())
        data["format_version"] = 99
        with pytest.raises(ValueError):
            fnn_from_dict(data)

    def test_unknown_input_rejected(self):
        data = fnn_to_dict(trained_like_fnn())
        data["inputs"][0]["name"] = "mystery"
        with pytest.raises(ValueError):
            fnn_from_dict(data)

    def test_consequent_shape_checked(self):
        data = fnn_to_dict(trained_like_fnn())
        data["consequents"] = data["consequents"][:5]
        with pytest.raises(ValueError):
            fnn_from_dict(data)

    def test_preference_survives_roundtrip(self):
        from repro.core.fnn import decode_width_preference, embed_preference

        fnn = trained_like_fnn()
        embed_preference(fnn, decode_width_preference(4, strength=2.0))
        restored = fnn_from_dict(fnn_to_dict(fnn))
        decode_idx = [i.name for i in fnn.inputs].index("decode")
        assert restored.centers[decode_idx] == pytest.approx(3.5)
