"""Tests for negative ("hold") rule extraction."""

import numpy as np
import pytest

from repro.core.fnn import (
    FuzzyNeuralNetwork,
    decode_width_preference,
    default_inputs,
    embed_preference,
    extract_rules,
)
from repro.designspace import default_design_space

SPACE = default_design_space()


def fresh_fnn():
    return FuzzyNeuralNetwork(
        default_inputs(), SPACE.names, rng=np.random.default_rng(0),
        consequent_scale=0.0,
    )


class TestHoldRules:
    def test_negative_cells_become_hold_rules(self):
        fnn = fresh_fnn()
        fnn.consequents[0, 3] = -1.0
        rules = extract_rules(fnn, direction="hold")
        assert len(rules) == 1
        assert rules[0].direction == "hold"
        assert rules[0].weight == pytest.approx(-1.0)
        assert "should NOT increase" in rules[0].render()

    def test_directions_do_not_mix(self):
        fnn = fresh_fnn()
        fnn.consequents[0, 3] = -1.0
        fnn.consequents[1, 4] = +1.0
        increase = extract_rules(fnn, direction="increase")
        hold = extract_rules(fnn, direction="hold")
        assert {r.output for r in increase} == {SPACE.names[4]}
        assert {r.output for r in hold} == {SPACE.names[3]}

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            extract_rules(fresh_fnn(), direction="sideways")

    def test_hold_rules_sorted_by_magnitude(self):
        fnn = fresh_fnn()
        fnn.consequents[0, 3] = -0.5
        fnn.consequents[1, 4] = -2.0
        rules = extract_rules(fnn, direction="hold")
        assert abs(rules[0].weight) >= abs(rules[1].weight)

    def test_preference_produces_hold_rules(self):
        """The Fig.-7 preference must be visible as hold knowledge: past
        the target width, decode should NOT increase."""
        fnn = fresh_fnn()
        embed_preference(fnn, decode_width_preference(4, strength=2.0))
        hold = extract_rules(fnn, direction="hold")
        decode_hold = [r for r in hold if r.output == "decode_width"]
        assert decode_hold
        assert ("decode", "enough") in decode_hold[0].antecedents
