"""Tests for the learned cost-model fidelity tier and its engine wiring."""

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.engine import EvaluationEngine
from repro.proxies import AnalyticalModel, Fidelity, SimulationProxy
from repro.store import EvalStore, store_key
from repro.tiers import TIER_MODELS, CostModelTier
from repro.workloads import get_workload

SPACE = default_design_space()
SIG = "testsig"
TAG = "hf:test"


def smooth_cpi(levels) -> float:
    """Deterministic, smooth target over the normalized feature vector."""
    x = SPACE.normalized(levels)
    return float(1.0 + 0.5 * x.sum() / len(x) + 0.25 * x[0])


def warm_store(count, seed=0, tag=TAG):
    store = EvalStore(None)
    rng = np.random.default_rng(seed)
    for levels in SPACE.sample(rng, count=count):
        cpi = smooth_cpi(levels)
        store.put(
            store_key(SIG, tag, "high", levels), {"cpi": cpi, "ipc": 1.0 / cpi}
        )
    return store


def queries(count, seed=123):
    return list(SPACE.sample(np.random.default_rng(seed), count=count))


# ----------------------------------------------------------------------
# Construction / gating
# ----------------------------------------------------------------------
def test_tier_models_registry():
    assert TIER_MODELS == ("off", "gbrt", "rf")


def test_tier_rejects_bad_params():
    store = EvalStore(None)
    with pytest.raises(ValueError, match="unknown tier model"):
        CostModelTier(store, SPACE, model="bogus")
    with pytest.raises(ValueError, match="min_corpus"):
        CostModelTier(store, SPACE, min_corpus=1)
    with pytest.raises(ValueError, match="max_rel_std"):
        CostModelTier(store, SPACE, max_rel_std=0.0)


def test_cold_corpus_falls_back():
    tier = CostModelTier(warm_store(10), SPACE, min_corpus=64)
    answers = tier.serve(SIG, TAG, "high", queries(5))
    assert answers == [None] * 5
    assert tier.stats()["fallbacks"] == 5
    assert tier.stats()["fits"] == 0


def test_low_fidelity_never_served():
    tier = CostModelTier(warm_store(200), SPACE, min_corpus=64, max_rel_std=10.0)
    assert tier.serve(SIG, TAG, "low", queries(4)) == [None] * 4
    assert tier.stats()["served"] == 0


@pytest.mark.parametrize("model", ["gbrt", "rf"])
def test_warm_corpus_serves_accurately(model):
    tier = CostModelTier(
        warm_store(400), SPACE, model=model, min_corpus=64, max_rel_std=0.2
    )
    batch = queries(32)
    answers = tier.serve(SIG, TAG, "high", batch)
    served = [(lv, a) for lv, a in zip(batch, answers) if a is not None]
    assert len(served) >= 16  # smooth target: the ensemble is confident
    for levels, metrics in served:
        assert metrics["cpi"] > 0
        assert metrics["ipc"] == pytest.approx(1.0 / metrics["cpi"])
        assert metrics["cpi"] == pytest.approx(smooth_cpi(levels), rel=0.2)
    stats = tier.stats()
    assert stats["served"] == len(served)
    assert stats["served"] + stats["fallbacks"] == len(batch)
    assert stats["fits"] == 1
    assert stats["namespaces"] == 1


def test_strict_gate_declines_everything():
    tier = CostModelTier(
        warm_store(300), SPACE, min_corpus=64, max_rel_std=1e-12
    )
    assert tier.serve(SIG, TAG, "high", queries(8)) == [None] * 8
    assert tier.stats()["fits"] == 1  # fitted, but never confident


def test_refit_only_when_corpus_doubles():
    store = warm_store(64)
    tier = CostModelTier(store, SPACE, min_corpus=32, max_rel_std=10.0)
    tier.serve(SIG, TAG, "high", queries(2))
    assert tier.stats()["fits"] == 1
    # Small growth: same model answers.
    rng = np.random.default_rng(7)
    for levels in SPACE.sample(rng, count=20):
        cpi = smooth_cpi(levels)
        store.put(store_key(SIG, TAG, "high", levels),
                  {"cpi": cpi, "ipc": 1.0 / cpi})
    tier.serve(SIG, TAG, "high", queries(2))
    assert tier.stats()["fits"] == 1
    # Corpus doubled: refit.
    for levels in SPACE.sample(rng, count=80):
        cpi = smooth_cpi(levels)
        store.put(store_key(SIG, TAG, "high", levels),
                  {"cpi": cpi, "ipc": 1.0 / cpi})
    tier.serve(SIG, TAG, "high", queries(2))
    assert tier.stats()["fits"] == 2


def test_subsampled_fit_does_not_refit_every_query():
    # Corpus far above train_rows: the refit trigger must compare
    # against the corpus size, not the subsample size.
    tier = CostModelTier(
        warm_store(120), SPACE, min_corpus=32, max_rel_std=10.0, train_rows=16
    )
    tier.serve(SIG, TAG, "high", queries(2))
    tier.serve(SIG, TAG, "high", queries(2, seed=9))
    assert tier.stats()["fits"] == 1


# ----------------------------------------------------------------------
# Engine integration: provenance + corpus hygiene
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def warm_engine_setup():
    """A store warmed by real simulations, plus the proxies that made it."""
    workload = get_workload("mm", data_size=12)
    analytical = AnalyticalModel(workload.profile, SPACE)
    proxy = SimulationProxy(workload, SPACE)
    store = EvalStore(None)
    engine = EvaluationEngine(
        SPACE, analytical=analytical, high_fidelity=proxy, cache=store
    )
    designs = list(SPACE.sample(np.random.default_rng(0), count=48))
    engine.evaluate_many(designs, Fidelity.HIGH)
    return workload, analytical, proxy, store, designs


def tiered_engine(setup, **tier_kwargs):
    __, analytical, proxy, store, __ = setup
    kwargs = dict(min_corpus=16, max_rel_std=10.0)
    kwargs.update(tier_kwargs)
    tier = CostModelTier(store, SPACE, **kwargs)
    return (
        EvaluationEngine(
            SPACE,
            analytical=analytical,
            high_fidelity=proxy,
            cache=store,
            tier=tier,
        ),
        store,
    )


def test_engine_serves_learned_with_provenance(warm_engine_setup):
    engine, store = tiered_engine(warm_engine_setup)
    before = len(store)
    fresh = list(SPACE.sample(np.random.default_rng(99), count=6))
    evaluations = engine.evaluate_many(fresh, Fidelity.HIGH)
    assert engine.tier_served == 6
    assert engine.computed["high"] == 0
    assert all(e.provenance == "learned" for e in evaluations)
    assert all(e.cpi > 0 for e in evaluations)
    # Corpus hygiene: learned answers are never persisted.
    assert len(store) == before
    summary = engine.summary()
    assert summary["tier_served"] == 6
    assert summary["tier_fallback"] == 0
    assert summary["tier_fits"] == 1


def test_engine_cache_beats_tier(warm_engine_setup):
    engine, __ = tiered_engine(warm_engine_setup)
    designs = warm_engine_setup[4]
    evaluations = engine.evaluate_many(designs[:4], Fidelity.HIGH)
    assert all(e.provenance == "cached" for e in evaluations)
    assert engine.tier_served == 0


def test_engine_falls_back_to_simulator_when_unconfident(warm_engine_setup):
    engine, store = tiered_engine(warm_engine_setup, max_rel_std=1e-12)
    before = len(store)
    fresh = list(SPACE.sample(np.random.default_rng(1234), count=3))
    evaluations = engine.evaluate_many(fresh, Fidelity.HIGH)
    assert engine.tier_fallback == 3
    assert engine.computed["high"] == 3
    assert all(e.provenance == "simulated" for e in evaluations)
    # Simulated fallbacks ARE persisted: the corpus keeps growing.
    assert len(store) == before + 3


def test_tier_off_is_untouched_pipeline(warm_engine_setup):
    __, analytical, proxy, store, __ = warm_engine_setup
    engine = EvaluationEngine(
        SPACE, analytical=analytical, high_fidelity=proxy, cache=store
    )
    fresh = list(SPACE.sample(np.random.default_rng(555), count=2))
    evaluations = engine.evaluate_many(fresh, Fidelity.HIGH)
    assert all(e.provenance == "simulated" for e in evaluations)
    assert "tier_served" not in engine.summary()


# ----------------------------------------------------------------------
# Checkpoint provenance round-trip
# ----------------------------------------------------------------------
def test_search_checkpoint_preserves_provenance():
    from repro.proxies import ProxyPool
    from repro.search import SearchLoop, make_method

    def fresh_pool():
        workload = get_workload("mm", data_size=12)
        return ProxyPool(
            SPACE,
            AnalyticalModel(workload.profile, SPACE),
            SimulationProxy(workload, SPACE),
            area_limit_mm2=7.5,
        )

    loop = SearchLoop(
        fresh_pool(), make_method("random-search"), 3,
        rng=np.random.default_rng(0),
    )
    loop.run()
    state = loop.state()
    assert [e["tier"] for e in state["evaluations"]] == ["simulated"] * 3

    # A tier-served evaluation keeps its label through the round-trip;
    # a pre-provenance checkpoint entry defaults to simulated.
    state["evaluations"][0]["tier"] = "learned"
    del state["evaluations"][1]["tier"]
    restored = SearchLoop(
        fresh_pool(), make_method("random-search"), 3,
        rng=np.random.default_rng(0),
    )
    restored.restore(state)
    assert [e.provenance for e in restored.evaluations] == [
        "learned", "simulated", "simulated"
    ]
