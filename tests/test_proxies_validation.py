"""Tests for the fidelity-gap analysis module."""

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, SimulationProxy, measure_fidelity_gap
from repro.proxies.validation import _spearman
from repro.workloads import get_workload

SPACE = default_design_space()


class TestSpearman:
    def test_perfect_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, a * 10 + 5) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = np.array([1.0, 2.0, 3.0])
        assert _spearman(a, -a) == pytest.approx(-1.0)

    def test_constant_series(self):
        assert _spearman(np.ones(5), np.arange(5.0)) == 0.0


class TestFidelityGap:
    @pytest.fixture(scope="class")
    def gap(self):
        workload = get_workload("mm", data_size=10)
        analytical = AnalyticalModel(workload.profile, SPACE)
        proxy = SimulationProxy(workload, SPACE)
        return measure_fidelity_gap(
            analytical, proxy, SPACE, np.random.default_rng(0),
            num_designs=15, mask_probes=3,
        )

    def test_correlation_positive_on_compute_bound(self, gap):
        assert gap.rank_correlation > 0.2

    def test_error_stats_finite(self, gap):
        assert np.isfinite(gap.mean_absolute_error)
        assert np.isfinite(gap.mean_bias)
        assert gap.mean_absolute_error >= abs(gap.mean_bias) - 1e-12

    def test_mask_precision_in_unit_interval(self, gap):
        assert 0.0 <= gap.mask_precision <= 1.0

    def test_mask_precision_reasonable(self, gap):
        """Most LF-claimed-beneficial moves must not hurt the HF proxy --
        otherwise the LF phase would actively mislead."""
        assert gap.mask_precision >= 0.5

    def test_render(self, gap):
        text = gap.render()
        assert "rank=" in text and "mask-precision=" in text

    def test_too_few_designs_rejected(self):
        workload = get_workload("mm", data_size=10)
        analytical = AnalyticalModel(workload.profile, SPACE)
        proxy = SimulationProxy(workload, SPACE)
        with pytest.raises(ValueError):
            measure_fidelity_gap(
                analytical, proxy, SPACE, np.random.default_rng(0), num_designs=2
            )
