"""End-to-end tests for all five baseline DSE explorers."""

import numpy as np
import pytest

from repro.baselines import ALL_BASELINES, make_baseline
from repro.designspace import default_design_space
from repro.proxies import Fidelity

SPACE = default_design_space()
BUDGET = 7


class TestFactory:
    def test_all_five_constructible(self):
        for name in ALL_BASELINES:
            explorer = make_baseline(name)
            assert explorer.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_baseline("gpt-dse")

    def test_fig5_set_matches_paper(self):
        assert set(ALL_BASELINES) == {
            "random-forest", "actboost", "bag-gbrt", "boom-explorer", "scbo"
        }


@pytest.mark.parametrize("name", ALL_BASELINES)
class TestProtocol:
    def test_budget_respected_and_best_consistent(self, name, mm_pool, rng):
        result = make_baseline(name).explore(mm_pool, BUDGET, rng)
        assert mm_pool.archive.count(Fidelity.HIGH) <= BUDGET
        assert len(result.history) <= BUDGET
        if name == "scbo":
            # SCBO reports the best *feasible* design; history may hold a
            # lower CPI at an infeasible point.
            feasible = [
                cpi
                for cpi, levels in zip(result.history, result.evaluated)
                if mm_pool.fits(levels)
            ]
            if feasible:
                assert result.best_cpi == pytest.approx(min(feasible))
        else:
            assert result.best_cpi == pytest.approx(min(result.history))

    def test_best_levels_were_evaluated(self, name, mm_pool, rng):
        result = make_baseline(name).explore(mm_pool, BUDGET, rng)
        keys = {SPACE.flat_index(l) for l in result.evaluated}
        assert SPACE.flat_index(result.best_levels) in keys

    def test_reproducible_with_seed(self, name, small_mm):
        from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy

        outcomes = []
        for __ in range(2):
            pool = ProxyPool(
                SPACE,
                AnalyticalModel(small_mm.profile, SPACE),
                SimulationProxy(small_mm, SPACE),
                area_limit_mm2=7.5,
            )
            result = make_baseline(name).explore(
                pool, BUDGET, np.random.default_rng(42)
            )
            outcomes.append((tuple(result.best_levels), result.best_cpi))
        assert outcomes[0] == outcomes[1]


class TestConstraintHandling:
    @pytest.mark.parametrize(
        "name", [n for n in ALL_BASELINES if n != "scbo"]
    )
    def test_non_scbo_never_simulates_invalid(self, name, mm_pool, rng):
        result = make_baseline(name).explore(mm_pool, BUDGET, rng)
        for levels in result.evaluated:
            assert mm_pool.fits(levels)

    def test_scbo_may_simulate_invalid(self, mm_pool, rng):
        """SCBO's protocol difference: infeasible designs burn budget."""
        result = make_baseline("scbo").explore(mm_pool, BUDGET, rng)
        # its *reported* best must still be feasible when any feasible
        # design was seen
        if any(mm_pool.fits(l) for l in result.evaluated):
            assert mm_pool.fits(result.best_levels)

    def test_driver_initial_count_validation(self):
        from repro.baselines import RandomForestExplorer

        with pytest.raises(ValueError):
            RandomForestExplorer(num_initial=1)

    def test_budget_must_exceed_initial(self, mm_pool, rng):
        explorer = make_baseline("random-forest")
        with pytest.raises(ValueError):
            explorer.explore(mm_pool, hf_budget=explorer.num_initial, rng=rng)


class TestBoomExplorerInitialisation:
    def test_initial_designs_stratified_over_decode(self, mm_pool, rng):
        explorer = make_baseline("boom-explorer", num_initial=4)
        designs = explorer.initial_designs(mm_pool, rng)
        decode_idx = SPACE.index_of("decode_width")
        decode_levels = {int(l[decode_idx]) for l in designs}
        assert len(decode_levels) >= 3  # spread across strata

    def test_initial_designs_valid(self, mm_pool, rng):
        explorer = make_baseline("boom-explorer", num_initial=4)
        for levels in explorer.initial_designs(mm_pool, rng):
            assert mm_pool.fits(levels)
