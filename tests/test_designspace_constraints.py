"""Unit tests for the area constraint."""

import pytest

from repro.designspace import AreaConstraint, ConstraintViolation, default_design_space
from repro.proxies import AreaModel

SPACE = default_design_space()
MODEL = AreaModel()


class TestAreaConstraint:
    def test_smallest_design_fits_paper_budgets(self):
        constraint = AreaConstraint(MODEL, 6.0)  # tightest Table-2 budget
        assert constraint.is_satisfied(SPACE.config(SPACE.smallest()))

    def test_largest_design_violates_paper_budgets(self):
        constraint = AreaConstraint(MODEL, 10.0)  # loosest Table-2 budget
        assert not constraint.is_satisfied(SPACE.config(SPACE.largest()))

    def test_headroom_sign(self):
        constraint = AreaConstraint(MODEL, 8.0)
        assert constraint.headroom(SPACE.config(SPACE.smallest())) > 0
        assert constraint.headroom(SPACE.config(SPACE.largest())) < 0

    def test_check_raises_on_violation(self):
        constraint = AreaConstraint(MODEL, 3.0)
        with pytest.raises(ConstraintViolation):
            constraint.check(SPACE.config(SPACE.largest()))

    def test_check_passes_within_budget(self):
        constraint = AreaConstraint(MODEL, 30.0)
        constraint.check(SPACE.config(SPACE.largest()))  # must not raise

    def test_non_positive_limit_rejected(self):
        with pytest.raises(ValueError):
            AreaConstraint(MODEL, 0.0)

    def test_area_matches_model(self):
        constraint = AreaConstraint(MODEL, 8.0)
        config = SPACE.config(SPACE.smallest())
        assert constraint.area(config) == pytest.approx(MODEL.area(config))
