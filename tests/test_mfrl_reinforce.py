"""Tests for the REINFORCE trainer and the reward shaping."""

import numpy as np
import pytest

from repro.core.fnn import FuzzyNeuralNetwork, default_inputs
from repro.core.mfrl import DseEnvironment, ReinforceTrainer, TrainerConfig, EPSILON
from repro.designspace import default_design_space

SPACE = default_design_space()
INPUTS = default_inputs()


@pytest.fixture()
def trainer(mm_pool):
    fnn = FuzzyNeuralNetwork(INPUTS, SPACE.names, rng=np.random.default_rng(0))
    env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=True)
    return ReinforceTrainer(env, fnn, TrainerConfig())


class TestConfig:
    def test_epsilon_matches_paper(self):
        assert EPSILON == 0.05
        assert TrainerConfig().epsilon == 0.05

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            TrainerConfig(lr_consequents=-1.0)
        with pytest.raises(ValueError):
            TrainerConfig(temperature=0.0)


class TestRewardShaping:
    def test_reward_formula(self, trainer, rng, mm_pool):
        record = trainer.run_episode(
            rng,
            ipc_of=lambda levels: mm_pool.evaluate_low(levels).ipc,
            ipc_reference=0.7,
        )
        ipc = 1.0 / record.final_cpi
        assert record.reward == pytest.approx(ipc - 0.7 + EPSILON)

    def test_incumbent_gets_positive_reward(self, trainer, rng, mm_pool):
        """eq. 3: with reference = own IPC, reward = eps > 0."""
        def ipc_of(levels):
            return mm_pool.evaluate_low(levels).ipc

        record = trainer.run_episode(rng, ipc_of, ipc_reference=0.0)
        ipc = 1.0 / record.final_cpi
        record2 = trainer.run_episode(rng, ipc_of, ipc_reference=ipc)
        # reward of a design no better than the reference stays near eps
        assert record2.reward <= (1.0 / record2.final_cpi) - ipc + EPSILON + 1e-9


class TestTrainingDynamics:
    def test_history_grows(self, trainer, rng, mm_pool):
        for __ in range(3):
            trainer.run_episode(
                rng, lambda l: mm_pool.evaluate_low(l).ipc, ipc_reference=0.0
            )
        assert len(trainer.history) == 3
        assert [r.episode for r in trainer.history] == [0, 1, 2]

    def test_weights_change_with_nonzero_reward(self, trainer, rng, mm_pool):
        before = trainer.fnn.consequents.copy()
        trainer.run_episode(
            rng, lambda l: mm_pool.evaluate_low(l).ipc, ipc_reference=0.0
        )
        assert not np.allclose(trainer.fnn.consequents, before)

    def test_empty_episode_is_noop(self, trainer):
        from repro.core.mfrl.env import Episode

        before = trainer.fnn.consequents.copy()
        trainer.update_from_episode(
            Episode(steps=[], final_levels=SPACE.smallest()), reward=5.0
        )
        assert np.allclose(trainer.fnn.consequents, before)

    def test_training_improves_final_design(self, mm_pool):
        """Over a short LF run the best-so-far analytical CPI must drop
        below the first episode's result."""
        rng = np.random.default_rng(7)
        fnn = FuzzyNeuralNetwork(INPUTS, SPACE.names, rng=rng)
        env = DseEnvironment(mm_pool, INPUTS, use_gradient_mask=True)
        trainer = ReinforceTrainer(env, fnn, TrainerConfig())
        best = np.inf
        first = None
        for __ in range(30):
            reference = 1.0 / best if np.isfinite(best) else 0.0
            record = trainer.run_episode(
                rng, lambda l: mm_pool.evaluate_low(l).ipc, reference
            )
            if first is None:
                first = record.final_cpi
            best = min(best, record.final_cpi)
        assert best <= first

    def test_greedy_design_valid(self, trainer, rng, mm_pool):
        levels = trainer.greedy_design(rng)
        assert mm_pool.fits(levels)

    def test_centers_recorded_in_history(self, trainer, rng, mm_pool):
        trainer.run_episode(
            rng, lambda l: mm_pool.evaluate_low(l).ipc, ipc_reference=0.0
        )
        record = trainer.history[-1]
        assert record.centers.shape == (len(INPUTS),)
