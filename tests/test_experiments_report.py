"""Tests for the reproduction-report writer."""

import json


from repro.experiments.report import render_markdown, write_report


SYNTHETIC = {
    "fast": True,
    "seed": 0,
    "table2": [
        {
            "benchmark": "mm",
            "area_limit_mm2": 7.5,
            "lf_regret": 0.5,
            "hf_regret": 0.1,
            "improvement": 5.0,
            "lf_cpi": 1.5,
            "hf_cpi": 1.1,
        },
        {
            "benchmark": "fft",
            "area_limit_mm2": 8.0,
            "lf_regret": 0.2,
            "hf_regret": 0.0,
            "improvement": 1e9,
            "lf_cpi": 1.2,
            "hf_cpi": 1.0,
        },
    ],
    "fig5_mean_cpi": {"random-forest": 1.5, "fnn-mbrl-hf": 1.2},
    "fig5_per_seed": {"random-forest": [1.5], "fnn-mbrl-hf": [1.2]},
    "fig6": [
        {"l1_center": 6.0, "l2_center": 10.0, "best_cpi": 0.8,
         "converged_by": 90, "episode_cpi": [0.9, 0.8]},
    ],
    "fig7": {
        "decode_with_preference": 4,
        "decode_without_preference": 5,
        "with_trajectory": [4, 4],
        "without_trajectory": [5, 5],
    },
    "rules": ["IF L1 is low THEN rob_entries can increase  [w=+0.3]"],
}


class TestRenderMarkdown:
    def test_sections_present(self):
        md = render_markdown(SYNTHETIC)
        for section in ("## Table 2", "## Fig. 5", "## Fig. 6", "## Fig. 7",
                        "## Extracted rules"):
            assert section in md

    def test_exact_optimum_rendered_unbounded(self):
        md = render_markdown(SYNTHETIC)
        assert ">999x" in md      # the fft row
        assert "5.00x" in md      # the mm row

    def test_fig5_sorted_best_first(self):
        md = render_markdown(SYNTHETIC)
        assert md.index("fnn-mbrl-hf") < md.index("random-forest")

    def test_preference_values_rendered(self):
        md = render_markdown(SYNTHETIC)
        assert "with preference: 4" in md
        assert "without preference: 5" in md


class TestWriteReport:
    def test_writes_both_files(self, tmp_path, monkeypatch):
        # patch run_all so the smoke test stays fast
        import repro.experiments.report as report

        monkeypatch.setattr(report, "run_all", lambda fast, seed: SYNTHETIC)
        results = write_report(tmp_path / "out", fast=True, seed=0)
        assert (tmp_path / "out" / "report.json").exists()
        assert (tmp_path / "out" / "report.md").exists()
        loaded = json.loads((tmp_path / "out" / "report.json").read_text())
        assert loaded == results
