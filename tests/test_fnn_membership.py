"""Unit + property tests for the membership functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fnn import (
    Bell,
    InverseSigmoid,
    Sigmoid,
    metric_membership,
    param_membership,
)
from repro.core.fnn.membership import EPS

finite_floats = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
centers = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


class TestRanges:
    @given(finite_floats, centers)
    @settings(max_examples=60, deadline=None)
    def test_sigmoid_in_unit_interval(self, x, c):
        mu = float(Sigmoid(c, 1.0).value(x))
        assert EPS <= mu <= 1.0

    @given(finite_floats, centers)
    @settings(max_examples=60, deadline=None)
    def test_inverse_sigmoid_in_unit_interval(self, x, c):
        mu = float(InverseSigmoid(c, 1.0).value(x))
        assert EPS <= mu <= 1.0

    @given(finite_floats, centers)
    @settings(max_examples=60, deadline=None)
    def test_bell_in_unit_interval(self, x, c):
        mu = float(Bell(c, 1.0).value(x))
        assert EPS <= mu <= 1.0

    def test_extreme_inputs_do_not_overflow(self):
        for mf in (Sigmoid(0.0, 5.0), InverseSigmoid(0.0, 5.0), Bell(0.0)):
            assert np.isfinite(mf.value(1e9))
            assert np.isfinite(mf.value(-1e9))


class TestShapes:
    def test_sigmoid_is_high_detector(self):
        mf = Sigmoid(center=3.0, slope=2.0)
        assert mf.value(5.0) > 0.9
        assert mf.value(1.0) < 0.1
        assert mf.value(3.0) == pytest.approx(0.5)

    def test_inverse_sigmoid_is_low_detector(self):
        mf = InverseSigmoid(center=3.0, slope=2.0)
        assert mf.value(1.0) > 0.9
        assert mf.value(5.0) < 0.1

    def test_sigmoid_pair_complementary(self):
        lo, hi = param_membership(center=3.0, slope=2.0)
        for x in (0.0, 1.5, 3.0, 4.5, 6.0):
            assert float(lo.value(x)) + float(hi.value(x)) == pytest.approx(
                1.0, abs=2 * EPS
            )

    def test_bell_peaks_at_center(self):
        mf = Bell(center=2.0, width=1.0)
        assert mf.value(2.0) == pytest.approx(1.0)
        assert mf.value(2.0) > mf.value(2.5) > mf.value(4.0)

    def test_bell_symmetric(self):
        mf = Bell(center=2.0, width=1.5)
        assert mf.value(0.5) == pytest.approx(float(mf.value(3.5)))

    def test_monotonicity_of_sigmoid(self):
        mf = Sigmoid(center=0.0, slope=1.0)
        xs = np.linspace(-5, 5, 30)
        mus = mf.value(xs)
        assert np.all(np.diff(mus) >= 0)


class TestDerivatives:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda c: Sigmoid(c, 1.3),
            lambda c: InverseSigmoid(c, 1.3),
            lambda c: Bell(c, 1.2),
        ],
    )
    @pytest.mark.parametrize("x", [-2.0, 0.3, 1.7, 4.0])
    def test_d_center_matches_finite_difference(self, factory, x):
        c, h = 1.0, 1e-6
        analytic = float(factory(c).d_center(x))
        numeric = (
            float(factory(c + h).value(x)) - float(factory(c - h).value(x))
        ) / (2 * h)
        assert analytic == pytest.approx(numeric, abs=1e-4)

    def test_sigmoid_d_center_sign(self):
        # raising the 'high' threshold lowers membership
        assert Sigmoid(1.0, 1.0).d_center(1.0) < 0

    def test_inverse_sigmoid_d_center_sign(self):
        # raising the 'low' threshold raises membership
        assert InverseSigmoid(1.0, 1.0).d_center(1.0) > 0

    def test_bell_d_center_zero_at_peak(self):
        assert Bell(2.0, 1.0).d_center(2.0) == pytest.approx(0.0)


class TestBuilders:
    def test_metric_membership_layout(self):
        low, avg, high = metric_membership(center=1.5, spread=0.5)
        assert isinstance(low, InverseSigmoid)
        assert isinstance(avg, Bell)
        assert isinstance(high, Sigmoid)
        assert low.center == 1.0 and avg.center == 1.5 and high.center == 2.0

    def test_param_membership_layout(self):
        low, enough = param_membership(center=3.0)
        assert isinstance(low, InverseSigmoid)
        assert isinstance(enough, Sigmoid)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Sigmoid(0.0, slope=0.0)
        with pytest.raises(ValueError):
            Bell(0.0, width=0.0)
        with pytest.raises(ValueError):
            metric_membership(1.0, spread=0.0)
