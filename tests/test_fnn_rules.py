"""Tests for rule extraction and pruning."""

import numpy as np
import pytest

from repro.core.fnn import (
    FuzzyNeuralNetwork,
    default_inputs,
    extract_rules,
    render_rule_base,
    rules_mentioning,
)
from repro.core.fnn.rules import ANY, _merge_patterns
from repro.designspace import default_design_space

SPACE = default_design_space()
INPUTS = default_inputs()


def fresh_fnn():
    return FuzzyNeuralNetwork(
        INPUTS, SPACE.names, rng=np.random.default_rng(0), consequent_scale=0.0
    )


def rule_index(fnn, **categories):
    """Index of the rule whose grid matches the given categories
    (input-name -> category-index); unspecified inputs must be 0."""
    pattern = [0] * fnn.num_inputs
    names = [inp.name for inp in fnn.inputs]
    for name, cat in categories.items():
        pattern[names.index(name)] = cat
    for r in range(fnn.num_rules):
        if list(fnn.rule_grid[r]) == pattern:
            return r
    raise AssertionError("rule not found")


class TestMergePatterns:
    def test_merge_binary_pair(self):
        # (0,) and (1,) over one binary input collapse to ANY
        merged = _merge_patterns([(0,), (1,)], [2])
        assert merged == [(ANY,)]

    def test_no_merge_when_partial(self):
        merged = _merge_patterns([(0, 0), (1, 1)], [2, 2])
        assert (ANY, 0) not in merged and (0, ANY) not in merged

    def test_merge_requires_all_categories(self):
        # ternary input: two of three categories do not collapse
        merged = _merge_patterns([(0,), (1,)], [3])
        assert merged == [(0,), (1,)]
        merged = _merge_patterns([(0,), (1,), (2,)], [3])
        assert merged == [(ANY,)]

    def test_cascading_merges(self):
        patterns = [(0, 0), (0, 1), (1, 0), (1, 1)]
        merged = _merge_patterns(patterns, [2, 2])
        assert merged == [(ANY, ANY)]


class TestExtraction:
    def test_empty_network_yields_no_rules(self):
        assert extract_rules(fresh_fnn()) == []

    def test_single_strong_cell_becomes_one_rule(self):
        fnn = fresh_fnn()
        r = rule_index(fnn, decode=0)  # "decode is low", everything else cat 0
        k = SPACE.index_of("decode_width")
        fnn.consequents[r, k] = 1.0
        rules = extract_rules(fnn)
        assert len(rules) == 1
        rule = rules[0]
        assert rule.output == "decode_width"
        assert ("decode", "low") in rule.antecedents
        assert rule.weight == pytest.approx(1.0)

    def test_redundant_antecedent_pruned(self):
        """'X is low' and 'X is high' both claiming increase -> X dropped."""
        fnn = fresh_fnn()
        k = SPACE.index_of("iq_entries")
        r_low = rule_index(fnn, IQ=0)
        r_high = rule_index(fnn, IQ=1)
        fnn.consequents[r_low, k] = 1.0
        fnn.consequents[r_high, k] = 1.0
        rules = extract_rules(fnn)
        assert len(rules) == 1
        names = [name for name, __ in rules[0].antecedents]
        assert "IQ" not in names

    def test_below_threshold_ignored(self):
        fnn = fresh_fnn()
        fnn.consequents[0, 0] = 0.01  # below the default 0.05
        assert extract_rules(fnn) == []

    def test_negative_consequents_never_reported_as_increase(self):
        fnn = fresh_fnn()
        fnn.consequents[:, 3] = -1.0
        assert extract_rules(fnn) == []

    def test_norm_prune_drops_dead_rules(self):
        fnn = fresh_fnn()
        fnn.consequents[5, 2] = 1.0
        rules_loose = extract_rules(fnn, norm_threshold=1e-3)
        rules_tight = extract_rules(fnn, norm_threshold=10.0)
        assert len(rules_loose) == 1
        assert rules_tight == []

    def test_top_k(self):
        fnn = fresh_fnn()
        for r in range(6):
            fnn.consequents[r, r % 3] = 1.0 + r
        rules = extract_rules(fnn, top_k=2)
        assert len(rules) == 2
        assert rules[0].weight >= rules[1].weight

    def test_rules_sorted_by_weight(self):
        fnn = fresh_fnn()
        fnn.consequents[0, 0] = 0.5
        fnn.consequents[1, 1] = 2.0
        rules = extract_rules(fnn)
        weights = [r.weight for r in rules]
        assert weights == sorted(weights, reverse=True)


class TestRendering:
    def test_render_mentions_antecedents_and_output(self):
        fnn = fresh_fnn()
        r = rule_index(fnn, L1=1)
        fnn.consequents[r, SPACE.index_of("int_fu")] = 1.0
        rules = extract_rules(fnn)
        text = rules[0].render()
        assert "IF" in text and "THEN int_fu can increase" in text
        assert "L1 is enough" in text

    def test_render_rule_base_truncates(self):
        fnn = fresh_fnn()
        for k in range(6):  # distinct outputs cannot merge together
            fnn.consequents[k, k] = 1.0 + 0.01 * k
        rules = extract_rules(fnn)
        assert len(rules) == 6
        text = render_rule_base(rules, max_rules=2)
        assert "4 more" in text

    def test_rules_mentioning_filters(self):
        fnn = fresh_fnn()
        fnn.consequents[0, SPACE.index_of("int_fu")] = 1.0
        fnn.consequents[1, SPACE.index_of("fp_fu")] = 1.0
        rules = extract_rules(fnn)
        assert all(r.output == "int_fu" for r in rules_mentioning(rules, "int_fu"))
        assert len(rules_mentioning(rules, "int_fu")) == 1


class TestTrainedNetworkRules:
    def test_trained_fnn_yields_interpretable_rules(self, mm_pool):
        """After a short LF training run the rule base must be non-empty
        and mention real parameters -- the paper's Sec.-4.3 workflow."""
        from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer

        explorer = MultiFidelityExplorer(
            mm_pool, config=ExplorerConfig(lf_episodes=40), seed=0
        )
        explorer.run_lf_phase()
        rules = extract_rules(explorer.fnn, weight_threshold=0.01)
        assert rules, "training left no extractable rules"
        outputs = {r.output for r in rules}
        assert outputs <= set(SPACE.names)
