"""Tests for the terminal visualisation helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import viz


class TestSparkline:
    def test_empty(self):
        assert viz.sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(viz.sparkline([1, 2, 3, 4])) == 4

    def test_constant_series_uses_lowest_glyph(self):
        assert viz.sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = viz.sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_fixed_scale(self):
        # with lo/hi fixed, the same value maps to the same glyph
        a = viz.sparkline([5], lo=0, hi=10)
        b = viz.sparkline([5, 0, 10], lo=0, hi=10)
        assert a[0] == b[0]

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_glyphs(self, values):
        line = viz.sparkline(values)
        assert len(line) == len(values)
        assert all(c in "▁▂▃▄▅▆▇█" for c in line)


class TestBarChart:
    def test_empty(self):
        assert viz.bar_chart({}) == "(empty)"

    def test_rows_match_entries(self):
        chart = viz.bar_chart({"a": 1.0, "b": 2.0})
        assert len(chart.splitlines()) == 2

    def test_largest_value_gets_full_width(self):
        chart = viz.bar_chart({"a": 1.0, "b": 2.0}, width=10)
        rows = chart.splitlines()
        assert "=" * 10 in rows[1]
        assert "=" * 10 not in rows[0]

    def test_highlight_uses_distinct_fill(self):
        chart = viz.bar_chart({"a": 1.0, "b": 1.0}, highlight="b")
        rows = chart.splitlines()
        assert "#" in rows[1] and "#" not in rows[0]

    def test_values_printed(self):
        chart = viz.bar_chart({"x": 1.2345})
        assert "1.2345" in chart

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            viz.bar_chart({"a": -1.0})

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            viz.bar_chart({"a": 1.0}, width=0)

    def test_all_zero_values(self):
        chart = viz.bar_chart({"a": 0.0, "b": 0.0})
        assert "=" not in chart


class TestLinePlot:
    def test_empty(self):
        assert viz.line_plot({}) == "(empty)"

    def test_dimensions(self):
        plot = viz.line_plot({"s": [1, 2, 3]}, height=6, width=20)
        lines = plot.splitlines()
        assert len(lines) == 6 + 1  # rows + legend

    def test_legend_mentions_series(self):
        plot = viz.line_plot({"alpha": [1, 2], "beta": [2, 1]})
        assert "1=alpha" in plot and "2=beta" in plot

    def test_scale_labels_present(self):
        plot = viz.line_plot({"s": [1.0, 3.0]})
        assert "3.000" in plot and "1.000" in plot

    def test_constant_series_handled(self):
        plot = viz.line_plot({"s": [2.0, 2.0, 2.0]})
        assert "2.000" in plot

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            viz.line_plot({"s": [1, 2]}, height=1)
        with pytest.raises(ValueError):
            viz.line_plot({"s": [1, 2]}, width=1)


class TestTrajectoryPlot:
    def test_focus_first(self):
        plot = viz.trajectory_plot(
            {"decode_width": [1, 2, 3], "rob_entries": [32, 64, 96]},
            focus="decode_width",
        )
        lines = plot.splitlines()
        assert lines[0].startswith("decode_width")
        assert len(lines) == 2

    def test_unknown_focus_rejected(self):
        with pytest.raises(KeyError):
            viz.trajectory_plot({"a": [1]}, focus="b")
