"""Tests for the ensemble surrogates: random forest, AdaBoost.R2, GBRT."""

import numpy as np
import pytest

from repro.baselines import AdaBoostR2, BaggedGBRT, GradientBoostedTrees, RandomForest


def regression_data(n=60, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, 4))
    y = 2 * x[:, 0] - x[:, 2] + noise * rng.normal(size=n)
    return x, y


class TestRandomForest:
    def test_fits_signal(self):
        x, y = regression_data()
        forest = RandomForest(num_trees=20, rng=np.random.default_rng(0)).fit(x, y)
        pred = forest.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.9

    def test_predict_std_nonnegative(self):
        x, y = regression_data()
        forest = RandomForest(num_trees=10, rng=np.random.default_rng(0)).fit(x, y)
        assert np.all(forest.predict_std(x) >= 0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 4)))
        with pytest.raises(RuntimeError):
            RandomForest().predict_std(np.zeros((1, 4)))

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            RandomForest(num_trees=0)

    def test_seeded_reproducibility(self):
        x, y = regression_data()
        a = RandomForest(num_trees=5, rng=np.random.default_rng(3)).fit(x, y)
        b = RandomForest(num_trees=5, rng=np.random.default_rng(3)).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))


class TestAdaBoostR2:
    def test_fits_signal(self):
        x, y = regression_data()
        model = AdaBoostR2(num_estimators=15, rng=np.random.default_rng(0)).fit(x, y)
        pred = model.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.85

    def test_perfect_fit_early_stop(self):
        x = np.arange(10, dtype=float)[:, None]
        y = (x[:, 0] > 4).astype(float)
        model = AdaBoostR2(num_estimators=50, rng=np.random.default_rng(0)).fit(x, y)
        assert len(model._trees) < 50

    def test_committee_std_nonnegative(self):
        x, y = regression_data()
        model = AdaBoostR2(rng=np.random.default_rng(0)).fit(x, y)
        assert np.all(model.committee_std(x) >= 0)

    def test_weighted_median_within_member_range(self):
        x, y = regression_data()
        model = AdaBoostR2(rng=np.random.default_rng(0)).fit(x, y)
        preds = model._member_predictions(x)
        combined = model.predict(x)
        assert np.all(combined >= preds.min(axis=0) - 1e-12)
        assert np.all(combined <= preds.max(axis=0) + 1e-12)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            AdaBoostR2(num_estimators=0)


class TestGBRT:
    def test_boosting_reduces_training_error(self):
        x, y = regression_data(noise=0.0)
        weak = GradientBoostedTrees(num_estimators=1, rng=np.random.default_rng(0)).fit(x, y)
        strong = GradientBoostedTrees(num_estimators=40, rng=np.random.default_rng(0)).fit(x, y)
        err_weak = np.mean((weak.predict(x) - y) ** 2)
        err_strong = np.mean((strong.predict(x) - y) ** 2)
        assert err_strong < err_weak

    def test_subsampling_supported(self):
        x, y = regression_data()
        model = GradientBoostedTrees(
            subsample=0.7, rng=np.random.default_rng(0)
        ).fit(x, y)
        assert np.corrcoef(model.predict(x), y)[0, 1] > 0.8

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=1.5)

    def test_constant_target(self):
        x = np.random.default_rng(0).random((10, 2))
        y = np.full(10, 7.0)
        model = GradientBoostedTrees(rng=np.random.default_rng(0)).fit(x, y)
        assert np.allclose(model.predict(x), 7.0)


class TestBaggedGBRT:
    def test_fits_signal(self):
        x, y = regression_data()
        model = BaggedGBRT(num_bags=4, rng=np.random.default_rng(0)).fit(x, y)
        assert np.corrcoef(model.predict(x), y)[0, 1] > 0.85

    def test_std_nonnegative(self):
        x, y = regression_data()
        model = BaggedGBRT(num_bags=4, rng=np.random.default_rng(0)).fit(x, y)
        assert np.all(model.predict_std(x) >= 0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BaggedGBRT().predict(np.zeros((1, 4)))

    def test_invalid_bags_rejected(self):
        with pytest.raises(ValueError):
            BaggedGBRT(num_bags=0)
