"""Unit + property tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator import SetAssociativeCache


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(sets=4, ways=2)
        assert cache.access(10) is False
        assert cache.access(10) is True

    def test_capacity(self):
        assert SetAssociativeCache(16, 4).capacity_lines == 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache(4, 0)

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 0 is now MRU
        cache.access(2)      # evicts 1 (LRU)
        assert cache.probe(0)
        assert not cache.probe(1)
        assert cache.probe(2)

    def test_conflict_misses_across_sets(self):
        cache = SetAssociativeCache(sets=2, ways=1)
        cache.access(0)  # set 0
        cache.access(1)  # set 1 -- different set, no conflict
        assert cache.probe(0) and cache.probe(1)
        cache.access(2)  # set 0 -- evicts 0
        assert not cache.probe(0)

    def test_probe_does_not_touch_stats_or_lru(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.access(0)
        cache.access(1)
        cache.probe(0)       # must NOT refresh 0's recency
        cache.access(2)      # evicts 0, the true LRU
        assert not cache.probe(0)
        assert cache.accesses == 3

    def test_warm_installs_without_stats(self):
        cache = SetAssociativeCache(sets=2, ways=2)
        cache.warm(5)
        assert cache.accesses == 0
        assert cache.access(5) is True

    def test_warm_existing_line_is_noop(self):
        cache = SetAssociativeCache(sets=1, ways=2)
        cache.warm(1)
        cache.warm(1)
        assert cache.probe(1)

    def test_reset_stats_keeps_contents(self):
        cache = SetAssociativeCache(sets=2, ways=2)
        cache.access(3)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.access(3) is True

    def test_miss_rate_empty_cache(self):
        assert SetAssociativeCache(2, 2).miss_rate == 0.0


class TestWorkingSetBehaviour:
    def test_working_set_within_capacity_all_hits_after_warmup(self):
        cache = SetAssociativeCache(sets=8, ways=2)
        lines = list(range(16))
        for line in lines:       # warmup pass
            cache.access(line)
        cache.reset_stats()
        for __ in range(3):
            for line in lines:
                assert cache.access(line) is True

    def test_cyclic_overflow_thrashes_lru(self):
        # classic LRU pathology: loop over capacity+1 distinct lines
        # mapping to the same set -> zero hits
        cache = SetAssociativeCache(sets=1, ways=4)
        for __ in range(5):
            for line in range(5):
                cache.access(line)
        assert cache.hits == 0

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_bigger_cache_never_misses_more(self, addrs):
        """LRU inclusion property: more ways -> subset of misses."""
        small = SetAssociativeCache(sets=4, ways=2)
        big = SetAssociativeCache(sets=4, ways=8)
        for addr in addrs:
            small.access(addr)
            big.access(addr)
        assert big.misses <= small.misses

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_stats_are_consistent(self, addrs):
        cache = SetAssociativeCache(sets=4, ways=2)
        for addr in addrs:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addrs)
        assert 0.0 <= cache.miss_rate <= 1.0
