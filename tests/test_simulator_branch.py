"""Unit tests for the gshare branch predictor."""

import numpy as np
import pytest

from repro.simulator import GsharePredictor


class TestGshare:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=0)
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=31)

    def test_all_taken_learns_quickly(self):
        predictor = GsharePredictor()
        for __ in range(200):
            predictor.predict_and_update(True)
        assert predictor.mispredict_rate < 0.1

    def test_alternating_pattern_learned_via_history(self):
        predictor = GsharePredictor()
        for i in range(400):
            predictor.predict_and_update(i % 2 == 0)
        # gshare keys on history, so the strict alternation becomes
        # predictable after warmup
        assert predictor.mispredict_rate < 0.2

    def test_short_period_pattern_learned(self):
        pattern = [True, True, False]
        predictor = GsharePredictor()
        for i in range(600):
            predictor.predict_and_update(pattern[i % 3])
        assert predictor.mispredict_rate < 0.2

    def test_random_stream_mispredicts_heavily(self):
        rng = np.random.default_rng(0)
        predictor = GsharePredictor()
        for outcome in rng.random(2000) < 0.5:
            predictor.predict_and_update(bool(outcome))
        assert predictor.mispredict_rate > 0.35

    def test_counters_saturate(self):
        predictor = GsharePredictor(table_bits=2, history_bits=1)
        for __ in range(50):
            predictor.predict_and_update(True)
        # one not-taken after heavy training should still predict taken next
        predictor.predict_and_update(False)
        mis_before = predictor.mispredictions
        predictor.predict_and_update(True)
        # at most one extra mispredict from the perturbation
        assert predictor.mispredictions - mis_before <= 1

    def test_rate_before_any_prediction(self):
        assert GsharePredictor().mispredict_rate == 0.0

    def test_prediction_counters(self):
        predictor = GsharePredictor()
        for __ in range(17):
            predictor.predict_and_update(True)
        assert predictor.predictions == 17
        assert 0 <= predictor.mispredictions <= 17
