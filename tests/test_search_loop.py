"""Unit tests for the unified search layer: loop, protocol, registry."""

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.experiments.common import run_search
from repro.proxies import Fidelity
from repro.search import (
    SearchLoop,
    SearchMethod,
    SearchStall,
    make_method,
    method_names,
    registered_methods,
)

SPACE = default_design_space()


class ScriptedMethod(SearchMethod):
    """Proposes pre-scripted batches; records everything it observes."""

    name = "scripted"

    def __init__(self, script, filter_invalid=True):
        super().__init__()
        self.script = [
            [np.asarray(levels, dtype=np.int64) for levels in batch]
            for batch in script
        ]
        self.filter_invalid = filter_invalid

    def reset(self):
        self._next = 0
        self.observed = []

    def propose(self, k):
        if self._next >= len(self.script):
            return []
        batch = self.script[self._next]
        self._next += 1
        return list(batch)

    def observe(self, observations):
        self.observed.append(list(observations))

    def result(self, loop):
        return loop


def tiny_designs(count):
    """Distinct small (area-valid) designs: smallest plus one +1 bump."""
    out = [SPACE.smallest()]
    for i in range(count - 1):
        levels = SPACE.smallest()
        levels[i % SPACE.num_parameters] += 1
        if not any(np.array_equal(levels, seen) for seen in out):
            out.append(levels)
    return out[:count]


class TestLoopProtocol:
    def test_budget_accounting_and_history(self, mm_pool):
        designs = tiny_designs(4)
        method = ScriptedMethod([[d] for d in designs])
        loop = SearchLoop(mm_pool, method, hf_budget=3)
        loop.run()
        assert loop.spent == 3
        assert loop.done
        assert len(loop.history) == 3
        assert [tuple(l) for l in loop.evaluated] == [
            tuple(d) for d in designs[:3]
        ]
        assert mm_pool.archive.count(Fidelity.HIGH) == 3

    def test_duplicates_do_not_burn_budget(self, mm_pool):
        a, b = tiny_designs(2)
        method = ScriptedMethod([[a], [a], [b]])
        loop = SearchLoop(mm_pool, method, hf_budget=2)
        loop.run()
        assert loop.spent == 2
        # the repeat was still observed (methods may need its CPI), just
        # not fresh
        assert method.observed[1][0].fresh is False
        assert method.observed[0][0].fresh is True
        assert mm_pool.hf_evaluations == 2  # archive served the repeat

    def test_constraint_filtering_drops_invalid(self, mm_pool):
        valid = SPACE.smallest()
        invalid = SPACE.largest()  # ~25 mm^2 >> the 7.5 budget
        method = ScriptedMethod([[invalid, valid]])
        loop = SearchLoop(mm_pool, method, hf_budget=2)
        loop.step()
        assert loop.spent == 1
        assert [tuple(l) for l in loop.evaluated] == [tuple(valid)]

    def test_filter_opt_out_simulates_invalid(self, mm_pool):
        invalid = SPACE.largest()
        method = ScriptedMethod([[invalid]], filter_invalid=False)
        loop = SearchLoop(mm_pool, method, hf_budget=1)
        loop.run()
        assert loop.spent == 1
        assert not mm_pool.fits(loop.evaluated[0])

    def test_overshoot_trimmed_to_budget(self, mm_pool):
        designs = tiny_designs(5)
        method = ScriptedMethod([designs])  # one batch of 5, budget 3
        loop = SearchLoop(mm_pool, method, hf_budget=3)
        loop.run()
        assert loop.spent == 3
        assert [tuple(l) for l in loop.evaluated] == [
            tuple(d) for d in designs[:3]
        ]

    def test_empty_proposal_ends_run(self, mm_pool):
        method = ScriptedMethod([[SPACE.smallest()]])  # script runs dry
        loop = SearchLoop(mm_pool, method, hf_budget=5)
        loop.run()
        assert loop.done
        assert loop.spent == 1

    def test_stalled_steps_raise(self, mm_pool):
        seen = SPACE.smallest()
        method = ScriptedMethod([[seen]] * 50)
        loop = SearchLoop(mm_pool, method, hf_budget=2, stall_limit=3)
        with pytest.raises(SearchStall, match="consecutive steps"):
            loop.run()

    def test_on_step_fires_each_step(self, mm_pool):
        steps = []
        method = ScriptedMethod([[d] for d in tiny_designs(3)])
        loop = SearchLoop(
            mm_pool, method, hf_budget=3, on_step=lambda lp: steps.append(lp.spent)
        )
        loop.run()
        assert steps == [1, 2, 3]

    def test_propose_batch_rejects_zero(self, mm_pool):
        with pytest.raises(ValueError):
            SearchLoop(mm_pool, ScriptedMethod([]), hf_budget=1, propose_batch=0)


class TestBatchedProposals:
    @pytest.mark.parametrize("name", ["random-search", "random-forest", "scbo"])
    def test_methods_honour_propose_batch(self, name, mm_pool, rng):
        result = run_search(mm_pool, name, 8, rng=rng, propose_batch=4)
        assert len(result.history) == 8
        # Batched steps mean strictly fewer dispatches than evaluations.
        assert mm_pool.archive.count(Fidelity.HIGH) >= 8

    def test_chain_method_steps_single(self, mm_pool, rng):
        # Annealing is a chain: a batch hint must not break the chain
        # semantics (it just proposes one design per step).
        result = run_search(mm_pool, "annealing", 5, rng=rng, propose_batch=4)
        assert len(result.history) == 5


class TestSurrogateStallGuard:
    def test_widened_pool_then_raise(self, mm_pool, rng):
        method = make_method("random-forest", num_initial=2)
        loop = SearchLoop(mm_pool, method, hf_budget=4, rng=rng)
        loop.step()  # seed batch
        pinned = loop.evaluated[0].copy()
        sizes = []

        def stuck_sample(pool, rng, count, max_tries=50):
            sizes.append(count)
            return np.array([pinned])

        method._sample_valid = stuck_sample
        with pytest.raises(SearchStall, match="no unseen valid candidate"):
            loop.step()
        # each retry doubled the candidate pool before giving up
        assert sizes == [2000 * 2 ** i for i in range(method.MAX_STALL_RETRIES)]


class TestRegistry:
    def test_all_stock_methods_listed(self):
        assert set(method_names()) == {
            "random-forest", "actboost", "bag-gbrt", "boom-explorer",
            "scbo", "random-search", "annealing",
        }
        assert method_names("explorer") == ["fnn-mbrl"]

    def test_descriptions_present(self):
        for info in registered_methods().values():
            assert info.description

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown method"):
            make_method("gpt-dse")

    def test_explorer_kind_not_instantiable_as_stepper(self):
        with pytest.raises(TypeError, match="kind 'explorer'"):
            make_method("fnn-mbrl")

    def test_factory_kwargs_forwarded(self):
        method = make_method("random-forest", num_initial=3, pool_size=50)
        assert method.num_initial == 3
        assert method.pool_size == 50


class TestVectorisedConstraint:
    def test_fits_many_matches_scalar_exactly(self, mm_pool, rng):
        block = np.vstack(
            [SPACE.sample(rng, count=500), SPACE.smallest(), SPACE.largest()]
        )
        scalar_area = np.array([mm_pool.area(levels) for levels in block])
        assert (mm_pool.area_many(block) == scalar_area).all()
        scalar_fits = np.array([mm_pool.fits(levels) for levels in block])
        assert (mm_pool.fits_many(block) == scalar_fits).all()

    def test_empty_block(self, mm_pool):
        assert mm_pool.fits_many(np.zeros((0, SPACE.num_parameters))).shape == (0,)
        # a plain empty list must behave the same (an annealing step with
        # no valid neighbours produces exactly this)
        assert mm_pool.fits_many([]).shape == (0,)
        assert mm_pool.area_many([]).shape == (0,)

    def test_values_batch_matches_scalar(self, rng):
        block = SPACE.sample(rng, count=64)
        batch = SPACE.values_batch(block)
        for row, levels in zip(batch, block):
            assert (row == SPACE.values(levels)).all()

    def test_values_batch_validates(self):
        with pytest.raises(ValueError, match="shape"):
            SPACE.values_batch(np.zeros((3, 2), dtype=np.int64))
        bad = np.zeros((1, SPACE.num_parameters), dtype=np.int64)
        bad[0, 0] = 99
        with pytest.raises(ValueError, match="out of range"):
            SPACE.values_batch(bad)


class TestRunSearchHelper:
    def test_accepts_name_and_int_seed(self, mm_pool):
        result = run_search(mm_pool, "random-search", 3, rng=7)
        assert result.name == "random-search"
        assert len(result.history) == 3

    def test_accepts_method_instance(self, mm_pool, rng):
        method = make_method("random-search")
        result = run_search(mm_pool, method, 3, rng=rng)
        assert len(result.history) == 3
