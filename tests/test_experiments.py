"""Tests for the experiment runners (tiny budgets; shapes, not numbers)."""

import numpy as np
import pytest

from repro.core.mfrl import ExplorerConfig
from repro.experiments import (
    AREA_LIMITS,
    build_pool,
    build_suite_pool,
    estimate_optimum,
    run_fig5,
    run_fig6,
    run_fig7,
    run_rules_demo,
    run_table2,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import render_table2
from repro.experiments.fig5 import render_fig5
from repro.experiments.fig6 import render_fig6, Fig6Trace
from repro.experiments.fig7 import render_fig7

TINY = ExplorerConfig(lf_episodes=30, hf_budget=4, hf_seed_designs=1)


class TestCommon:
    def test_area_limits_match_paper(self):
        assert AREA_LIMITS == {
            "dijkstra": 10.0,
            "mm": 7.5,
            "fp-vvadd": 6.0,
            "quicksort": 7.5,
            "fft": 8.0,
            "ss": 6.0,
        }

    def test_build_pool_uses_table2_limit(self):
        pool = build_pool("fft", data_size=32)
        assert pool.constraint.limit_mm2 == 8.0

    def test_build_suite_pool_averages(self):
        pool = build_suite_pool(scale=0.1)
        evaluation = pool.evaluate_high(pool.space.smallest())
        per_bench = [v for k, v in evaluation.metrics.items() if k.startswith("cpi_")]
        assert len(per_bench) == 6
        assert evaluation.cpi == pytest.approx(float(np.mean(per_bench)))

    def test_suite_profile_is_average(self):
        pool = build_suite_pool(scale=0.1)
        assert pool.analytical.profile.name == "suite-average"


class TestTable1:
    def test_lists_space(self):
        text = run_table1()
        assert "3,000,000" in text
        assert "Decode Width" in text


class TestOptimumEstimation:
    def test_optimum_is_feasible_and_best_seen(self):
        pool = build_pool("mm", data_size=10)
        opt = estimate_optimum(
            pool, np.random.default_rng(0), num_samples=15, hill_climb_starts=1,
            max_climb_steps=5,
        )
        assert pool.fits(opt.levels)
        from repro.proxies import Fidelity

        cpis = [e.cpi for e in pool.archive.all_evaluations(Fidelity.HIGH)]
        assert opt.cpi == pytest.approx(min(cpis))

    def test_hill_climbing_never_worse_than_sampling(self):
        pool = build_pool("mm", data_size=10)
        rng = np.random.default_rng(0)
        sampled_only = estimate_optimum(
            pool, rng, num_samples=10, hill_climb_starts=1, max_climb_steps=0
        )
        pool2 = build_pool("mm", data_size=10)
        climbed = estimate_optimum(
            pool2, np.random.default_rng(0), num_samples=10,
            hill_climb_starts=1, max_climb_steps=10,
        )
        assert climbed.cpi <= sampled_only.cpi + 1e-12


class TestTable2:
    def test_rows_have_expected_shape(self):
        rows = run_table2(
            benchmarks=["mm"],
            explorer_config=TINY,
            optimum_samples=10,
            data_sizes={"mm": 10},
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.benchmark == "mm"
        assert row.hf_regret <= row.lf_regret + 1e-12  # HF never worse
        assert row.lf_regret >= 0 and row.hf_regret >= 0

    def test_render(self):
        rows = run_table2(
            benchmarks=["mm"], explorer_config=TINY, optimum_samples=10,
            data_sizes={"mm": 10},
        )
        text = render_table2(rows)
        assert "mm" in text and "Imp." in text


class TestFig5:
    def test_shapes_and_budget(self):
        result = run_fig5(
            seeds=(0,),
            baseline_budget=6,
            our_budget=5,
            baselines=("random-forest",),
            explorer_config=ExplorerConfig(lf_episodes=25, hf_budget=5, hf_seed_designs=1),
            scale=0.1,
        )
        assert set(result.mean_cpi) == {"random-forest", "fnn-mbrl-lf", "fnn-mbrl-hf"}
        assert result.mean_cpi["fnn-mbrl-hf"] <= result.mean_cpi["fnn-mbrl-lf"] + 1e-12
        text = render_fig5(result)
        assert "fnn-mbrl-hf" in text

    def test_ranking_sorted(self):
        result = run_fig5(
            seeds=(0,),
            baseline_budget=6,
            our_budget=5,
            baselines=("random-forest",),
            explorer_config=ExplorerConfig(lf_episodes=25, hf_budget=5, hf_seed_designs=1),
            scale=0.1,
        )
        ranking = result.ranking()
        cpis = [result.mean_cpi[name] for name in ranking]
        assert cpis == sorted(cpis)


class TestFig6:
    def test_traces_cover_requested_inits(self):
        traces = run_fig6(
            center_pairs=((6.0, 10.0), (9.0, 13.0)),
            episodes=15,
            data_size=96,
        )
        assert len(traces) == 2
        assert all(len(t.episode_cpi) == 15 for t in traces)
        assert "6/10" in render_fig6(traces)

    def test_best_so_far_monotone(self):
        trace = Fig6Trace(6.0, 10.0, [2.0, 1.5, 1.8, 1.2])
        assert trace.best_so_far() == [2.0, 1.5, 1.5, 1.2]

    def test_episodes_to_within(self):
        trace = Fig6Trace(6.0, 10.0, [2.0, 1.5, 1.2, 1.2])
        assert trace.episodes_to_within(0.01) == 2

    def test_episodes_to_within_flat_trace(self):
        trace = Fig6Trace(6.0, 10.0, [1.0, 1.0, 1.0])
        assert trace.episodes_to_within() == 0

    def test_episodes_to_within_late_spike(self):
        trace = Fig6Trace(6.0, 10.0, [1.0, 1.0, 2.0, 1.0])
        assert trace.episodes_to_within(0.01) == 3


class TestFig7:
    def test_preference_run_shapes(self):
        result = run_fig7(episodes=20, data_size=256)
        assert len(result.with_preference["decode_width"]) == 20
        assert len(result.without_preference["decode_width"]) == 20
        text = render_fig7(result)
        assert "with preference" in text

    def test_final_decode_width_is_mode_of_tail(self):
        from repro.experiments.fig7 import Fig7Result

        result = Fig7Result(
            without_preference={"decode_width": [1] * 5 + [3] * 15},
            with_preference={"decode_width": [1] * 5 + [4] * 15},
        )
        assert result.final_decode_width(False) == 3
        assert result.final_decode_width(True) == 4


class TestRulesDemo:
    def test_returns_rules(self):
        rules, explorer = run_rules_demo(
            benchmark="mm", episodes=40, data_size=10, top_k=5
        )
        assert len(rules) <= 5
        assert explorer.fnn is not None
