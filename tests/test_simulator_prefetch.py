"""Tests for the next-line prefetcher option."""

import numpy as np
import pytest

from repro.designspace import MicroArchConfig
from repro.simulator import SimulatorParams, simulate
from repro.workloads.trace import TraceBuilder


def small_config():
    return MicroArchConfig(
        l1_sets=16, l1_ways=2, l2_sets=128, l2_ways=2, n_mshr=4,
        decode_width=2, rob_entries=64, mem_fu=1, int_fu=2, fp_fu=1,
        iq_entries=8,
    )


def streaming_trace(lines=256):
    tb = TraceBuilder("stream")
    base = tb.alloc(lines * 64)
    for i in range(lines):
        tb.load(base + i * 64)
    return tb.build()


def pointer_chase_trace(n=256, seed=0):
    rng = np.random.default_rng(seed)
    tb = TraceBuilder("chase")
    base = tb.alloc(64 * 4096)
    v = None
    for line in rng.permutation(4096)[:n]:
        v = tb.load(base + int(line) * 64, addr_dep=v)
    return tb.build()


class TestNextLinePrefetch:
    def test_streaming_benefits(self):
        trace = streaming_trace()
        off = simulate(trace, small_config(), SimulatorParams())
        on = simulate(
            trace, small_config(), SimulatorParams(next_line_prefetch=True)
        )
        assert on.l1_miss_rate < off.l1_miss_rate / 1.5
        assert on.cycles < off.cycles

    def test_pointer_chasing_barely_changes(self):
        trace = pointer_chase_trace()
        off = simulate(trace, small_config(), SimulatorParams())
        on = simulate(
            trace, small_config(), SimulatorParams(next_line_prefetch=True)
        )
        # random lines: next-line prefetch is useless (it may even pollute)
        assert on.l1_miss_rate == pytest.approx(off.l1_miss_rate, abs=0.1)

    def test_default_is_off(self):
        assert SimulatorParams().next_line_prefetch is False

    def test_prefetch_never_breaks_determinism(self):
        trace = streaming_trace()
        params = SimulatorParams(next_line_prefetch=True)
        a = simulate(trace, small_config(), params)
        b = simulate(trace, small_config(), params)
        assert a.cycles == b.cycles
