"""Tests for the evaluation store: backends, corruption, merge safety."""

import json
import sqlite3

import pytest

from repro.store import (
    EvalStore,
    StoreConflictError,
    encode_record,
    make_store,
    shard_name,
    store_key,
)
from repro.store.jsonl import LEGACY_FILE, MANIFEST_FILE, SHARDS_DIR
from repro.store.sqlite import SQLITE_FILE

SPACE = "spacesig"
TAG = "hf:mm:d14:s0:abc:m2"
OTHER_TAG = "hf:fft:d64:s0:def:m2"


def key_at(i, tag=TAG, fidelity="high"):
    return store_key(SPACE, tag, fidelity, (i, i + 1, i + 2))


def metrics_at(i):
    return {"cpi": 1.0 + i / 100.0, "ipc": 1.0 / (1.0 + i / 100.0)}


def fill(store, count, tag=TAG, start=0):
    for i in range(start, start + count):
        store.put(key_at(i, tag=tag), metrics_at(i))


# ----------------------------------------------------------------------
# Round-trip + counters
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["sharded", "sqlite", "memory"])
def test_put_get_roundtrip(tmp_path, backend):
    path = None if backend == "memory" else tmp_path
    store = EvalStore(path, backend=backend)
    assert store.get(key_at(0)) is None
    assert store.put(key_at(0), metrics_at(0))
    assert not store.put(key_at(0), metrics_at(0))  # duplicate insert
    assert store.get(key_at(0)) == metrics_at(0)
    assert store.stats()["hits"] == 1
    assert store.stats()["misses"] == 1
    assert key_at(0) in store
    assert len(store) == 1
    assert store.backend_name == backend


def test_reopen_persists_and_resyncs(tmp_path):
    fill(EvalStore(tmp_path, backend="sharded"), 5)
    store = EvalStore(tmp_path, backend="sharded")
    assert store.count(TAG) == 5
    assert store.get(key_at(3)) == metrics_at(3)


def test_records_for_filters_fidelity_and_space(tmp_path):
    store = EvalStore(tmp_path, backend="sharded")
    fill(store, 4)
    store.put(key_at(90, fidelity="low"), metrics_at(90))
    store.put(store_key("otherspace", TAG, "high", (1, 2, 3)), metrics_at(0))
    rows = store.records_for(SPACE, TAG, "high")
    assert len(rows) == 4
    assert all(len(levels) == 3 for levels, _ in rows)


# ----------------------------------------------------------------------
# Lazy index: startup must not parse the corpus
# ----------------------------------------------------------------------
def test_open_is_lazy_and_load_is_on_demand(tmp_path):
    fill(EvalStore(tmp_path, backend="sharded"), 50)
    fill(EvalStore(tmp_path, backend="sharded"), 50, tag=OTHER_TAG)

    store = EvalStore(tmp_path, backend="sharded")
    assert store.stats()["parsed_records"] == 0  # manifest only
    assert store.count(TAG) == 50  # line counts, still no parse
    assert store.stats()["parsed_records"] == 0
    assert store.get(key_at(7)) == metrics_at(7)
    # Only the touched tag's shard was parsed.
    assert store.stats()["parsed_records"] == 50


def test_appended_lines_resync_without_manifest_rewrite(tmp_path):
    fill(EvalStore(tmp_path, backend="sharded"), 3)
    # A second writer appends behind the manifest's back.
    shard = tmp_path / SHARDS_DIR / shard_name(TAG)
    with shard.open("a") as fh:
        fh.write(encode_record(key_at(77), metrics_at(77)) + "\n")
    store = EvalStore(tmp_path, backend="sharded")
    assert store.count(TAG) == 4
    assert store.get(key_at(77)) == metrics_at(77)


# ----------------------------------------------------------------------
# Corruption tolerance
# ----------------------------------------------------------------------
def test_truncated_shard_line_is_skipped(tmp_path):
    fill(EvalStore(tmp_path, backend="sharded"), 4)
    shard = tmp_path / SHARDS_DIR / shard_name(TAG)
    content = shard.read_text()
    # Simulate a crash mid-append: last record is cut in half.
    shard.write_text(content[: len(content) - len(content.splitlines()[-1]) // 2 - 1])

    store = EvalStore(tmp_path, backend="sharded")
    assert store.get(key_at(0)) == metrics_at(0)
    assert store.get(key_at(3)) is None  # the truncated record
    assert store.stats()["corrupt_lines"] == 1
    # The next write after the torn tail must still produce valid lines.
    store.put(key_at(3), metrics_at(3))
    reopened = EvalStore(tmp_path, backend="sharded")
    assert reopened.get(key_at(3)) == metrics_at(3)


def test_compact_drops_dead_lines(tmp_path):
    store = EvalStore(tmp_path, backend="sharded")
    fill(store, 4)
    shard = tmp_path / SHARDS_DIR / shard_name(TAG)
    with shard.open("a") as fh:
        fh.write("{torn\n")  # corrupt tail
        fh.write(encode_record(key_at(0), metrics_at(0)) + "\n")  # duplicate
    store = EvalStore(tmp_path, backend="sharded")
    assert store.count(TAG) == 6  # line estimate includes dead lines
    assert store.compact() == 4
    assert shard.read_text().count("\n") == 4
    assert EvalStore(tmp_path).count(TAG) == 4


def test_auto_compaction_thread(tmp_path):
    store = EvalStore(tmp_path, backend="sharded", auto_compact_dead=2)
    fill(store, 3)
    shard = tmp_path / SHARDS_DIR / shard_name(TAG)
    with shard.open("a") as fh:
        fh.write("{torn\n{torn\n")
    store = EvalStore(tmp_path, backend="sharded", auto_compact_dead=2)
    assert store.get(key_at(0)) == metrics_at(0)  # load counts the dead lines
    store.put(key_at(50), metrics_at(50))  # put triggers the background pass
    store.join_compaction()
    assert store.compactions == 1
    assert shard.read_text().count("\n") == 4


# ----------------------------------------------------------------------
# Legacy migration
# ----------------------------------------------------------------------
def test_legacy_flat_cache_migrates_on_open(tmp_path):
    legacy = tmp_path / LEGACY_FILE
    with legacy.open("w") as fh:
        for i in range(6):
            fh.write(encode_record(key_at(i), metrics_at(i)) + "\n")
        fh.write("{torn\n")

    store = EvalStore(tmp_path, backend="sharded")
    assert store.stats()["migrated_records"] == 6
    assert store.get(key_at(5)) == metrics_at(5)
    assert not legacy.exists()
    assert (tmp_path / (LEGACY_FILE + ".migrated")).exists()
    # Reopen: migration ran once, records live in the sharded layout.
    reopened = EvalStore(tmp_path, backend="sharded")
    assert reopened.stats()["migrated_records"] == 0
    assert reopened.count(TAG) == 6


def test_legacy_file_path_opens_enclosing_store(tmp_path):
    # ResultCache accepted DIR/evaluations.jsonl; EvalStore maps that
    # spelling onto the directory store.
    store = EvalStore(tmp_path / LEGACY_FILE)
    store.put(key_at(0), metrics_at(0))
    assert EvalStore(tmp_path).get(key_at(0)) == metrics_at(0)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_auto_detects_existing_sqlite(tmp_path):
    fill(EvalStore(tmp_path, backend="sqlite"), 3)
    store = EvalStore(tmp_path)  # auto
    assert store.backend_name == "sqlite"
    assert store.get(key_at(1)) == metrics_at(1)
    assert (tmp_path / SQLITE_FILE).exists()
    assert not (tmp_path / MANIFEST_FILE).exists()


def test_sqlite_roundtrip_and_tags(tmp_path):
    store = EvalStore(tmp_path, backend="sqlite")
    fill(store, 3)
    fill(store, 2, tag=OTHER_TAG)
    assert store.tags() == sorted([TAG, OTHER_TAG])
    assert store.count(OTHER_TAG) == 2
    assert len(store.records_for(SPACE, TAG, "high")) == 3


def test_make_store_rejects_unknown_backend(tmp_path):
    with pytest.raises(ValueError, match="unknown store backend"):
        make_store(tmp_path, backend="bogus")


# ----------------------------------------------------------------------
# Merge: additive cases and the three refusal rules
# ----------------------------------------------------------------------
def test_merge_adds_and_counts_duplicates(tmp_path):
    a = EvalStore(tmp_path / "a", backend="sharded")
    b = EvalStore(tmp_path / "b", backend="sharded")
    fill(a, 4)
    fill(b, 4, start=2)  # overlap on 2, 3
    report = a.merge(b)
    assert report == {"added": 2, "duplicates": 2, "tags": 1}
    assert a.count(TAG) == 6
    # Merge persists: a fresh open sees the merged records.
    assert EvalStore(tmp_path / "a").get(key_at(5)) == metrics_at(5)


def test_merge_by_path_and_across_backends(tmp_path):
    a = EvalStore(tmp_path / "a", backend="sqlite")
    b = EvalStore(tmp_path / "b", backend="sharded")
    fill(b, 3)
    report = a.merge(tmp_path / "b")
    assert report["added"] == 3
    assert a.get(key_at(2)) == metrics_at(2)


def test_merge_refuses_conflicting_metrics(tmp_path):
    a = EvalStore(tmp_path / "a")
    b = EvalStore(tmp_path / "b")
    a.put(key_at(0), {"cpi": 1.0, "ipc": 1.0})
    b.put(key_at(0), {"cpi": 2.0, "ipc": 0.5})
    with pytest.raises(StoreConflictError, match="conflicting metrics"):
        a.merge(b)


def test_merge_refuses_schema_mismatch_under_one_tag(tmp_path):
    a = EvalStore(tmp_path / "a")
    b = EvalStore(tmp_path / "b")
    a.put(key_at(0), {"cpi": 1.0, "ipc": 1.0})
    b.put(key_at(1), {"cpi": 1.0})  # missing ipc: different producer
    with pytest.raises(StoreConflictError, match="schema mismatch"):
        a.merge(b)


def test_merge_refuses_shard_claimed_by_two_tags(tmp_path):
    a = EvalStore(tmp_path / "a")
    fill(a, 2)
    # Forge an incoming store whose shard file name (the merge-time
    # fingerprint) belongs to a *different* tag -- e.g. hosts running
    # divergent tag schemes.
    b_dir = tmp_path / "b"
    (b_dir / SHARDS_DIR).mkdir(parents=True)
    filename = shard_name(TAG)
    (b_dir / SHARDS_DIR / filename).write_text(
        encode_record(key_at(0, tag=OTHER_TAG), metrics_at(0)) + "\n"
    )
    (b_dir / MANIFEST_FILE).write_text(json.dumps({
        "version": 1,
        "shards": {filename: {"tag": OTHER_TAG, "lines": 1, "bytes": 1}},
    }))
    with pytest.raises(StoreConflictError, match="cache_tag mismatch"):
        a.merge(EvalStore(b_dir))


# ----------------------------------------------------------------------
# sqlite specifics
# ----------------------------------------------------------------------
def test_sqlite_survives_concurrent_duplicate_insert(tmp_path):
    store = EvalStore(tmp_path, backend="sqlite")
    assert store.put(key_at(0), metrics_at(0))
    # A second process wrote the same key between our get and put.
    other = sqlite3.connect(tmp_path / SQLITE_FILE)
    assert not store.put(key_at(0), metrics_at(0))
    other.close()
    assert store.count() == 1
