"""Behavioural tests for the out-of-order timing model.

Synthetic traces pin down each structural constraint (width, ROB, IQ,
FUs, cache, MSHR, branch redirect); real kernels check end-to-end
monotonicity in the Table-1 parameters.
"""

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.simulator import SimulatorParams, simulate
from repro.workloads import get_workload
from repro.workloads.trace import TraceBuilder

SPACE = default_design_space()


def config(**overrides):
    """Mid-size baseline config with keyword overrides (values)."""
    base = dict(
        l1_sets=64, l1_ways=8, l2_sets=512, l2_ways=8, n_mshr=8,
        decode_width=4, rob_entries=128, mem_fu=2, int_fu=4, fp_fu=2,
        iq_entries=24,
    )
    base.update(overrides)
    from repro.designspace import MicroArchConfig

    return MicroArchConfig(**base)


def independent_ints(n=400):
    tb = TraceBuilder("ind")
    for __ in range(n):
        tb.int_op()
    return tb.build()


def serial_chain(n=400):
    tb = TraceBuilder("chain")
    v = tb.int_op()
    for __ in range(n - 1):
        v = tb.int_op(v)
    return tb.build()


class TestWidthAndDependencies:
    def test_serial_chain_cpi_near_one(self):
        result = simulate(serial_chain(), config())
        assert result.cpi == pytest.approx(1.0, rel=0.05)

    def test_serial_chain_insensitive_to_width(self):
        narrow = simulate(serial_chain(), config(decode_width=1))
        wide = simulate(serial_chain(), config(decode_width=5))
        assert wide.cycles == pytest.approx(narrow.cycles, rel=0.02)

    def test_independent_ops_scale_with_width(self):
        w1 = simulate(independent_ints(), config(decode_width=1, int_fu=5))
        w4 = simulate(independent_ints(), config(decode_width=4, int_fu=5))
        assert w1.cpi == pytest.approx(1.0, rel=0.1)
        assert w4.cpi == pytest.approx(0.25, rel=0.2)

    def test_cycles_lower_bound_is_commit_width(self):
        result = simulate(independent_ints(400), config(decode_width=4, int_fu=5))
        assert result.cycles >= 400 / 4

    def test_ipc_is_reciprocal_cpi(self):
        result = simulate(independent_ints(), config())
        assert result.ipc == pytest.approx(1.0 / result.cpi)


class TestFunctionalUnits:
    def test_int_fu_contention(self):
        one = simulate(independent_ints(), config(int_fu=1, decode_width=4))
        four = simulate(independent_ints(), config(int_fu=4, decode_width=4))
        assert one.cpi > 2.5 * four.cpi

    def test_fp_pipelining(self):
        # independent FP adds: 1 pipelined FPU sustains 1/cycle
        tb = TraceBuilder("fp")
        for __ in range(300):
            tb.fp_add()
        result = simulate(tb.build(), config(fp_fu=1, decode_width=1))
        assert result.cpi == pytest.approx(1.0, rel=0.1)

    def test_divides_are_unpipelined(self):
        tb = TraceBuilder("div")
        for __ in range(60):
            tb.int_div()
        result = simulate(tb.build(), config(int_fu=1, decode_width=4))
        # each divide occupies the unit for its full 12-cycle latency
        assert result.cpi > 10.0

    def test_more_int_fu_helps_divides(self):
        tb = TraceBuilder("div")
        for __ in range(60):
            tb.int_div()
        one = simulate(tb.build(), config(int_fu=1))
        five = simulate(tb.build(), config(int_fu=5))
        assert five.cycles < one.cycles / 2

    def test_fu_issue_counts(self):
        tb = TraceBuilder("mix")
        addr = tb.alloc(64)
        tb.int_op()
        tb.fp_add()
        tb.load(addr)
        tb.store(addr)
        tb.branch(taken=True)
        result = simulate(tb.build(), config())
        assert result.fu_issue_counts == {"int": 2, "mem": 2, "fp": 1}


class TestWindowLimits:
    def _latency_shadow_trace(self):
        """A long-latency divide followed by many independent ops."""
        tb = TraceBuilder("shadow")
        for __ in range(20):
            tb.fp_div()          # 10-cycle unpipelined stalls commit
            for ___ in range(40):
                tb.int_op()
        return tb.build()

    def test_bigger_rob_hides_latency(self):
        small = simulate(self._latency_shadow_trace(), config(rob_entries=32))
        large = simulate(self._latency_shadow_trace(), config(rob_entries=160))
        assert large.cycles < small.cycles

    def test_bigger_iq_helps_when_tiny(self):
        trace = self._latency_shadow_trace()
        tiny = simulate(trace, config(iq_entries=2))
        big = simulate(trace, config(iq_entries=24))
        assert big.cycles < tiny.cycles


class TestMemoryHierarchy:
    def _streaming_loads(self, lines=256, line_bytes=64):
        tb = TraceBuilder("stream")
        base = tb.alloc(lines * line_bytes)
        for i in range(lines):
            tb.load(base + i * line_bytes)
        return tb.build()

    def test_l1_hits_are_cheap(self):
        tb = TraceBuilder("hits")
        addr = tb.alloc(64)
        for __ in range(200):
            tb.load(addr)
        result = simulate(tb.build(), config())
        assert result.l1_miss_rate < 0.02
        assert result.cpi < 1.5

    def test_streaming_misses_cost_memory_latency(self):
        result = simulate(
            self._streaming_loads(),
            config(l1_sets=16, l1_ways=2, l2_sets=128, l2_ways=2, n_mshr=2),
        )
        assert result.l1_miss_rate > 0.9
        assert result.cpi > 10

    def test_more_mshrs_overlap_misses(self):
        trace = self._streaming_loads()
        few = simulate(trace, config(n_mshr=2, rob_entries=160, iq_entries=24))
        many = simulate(trace, config(n_mshr=10, rob_entries=160, iq_entries=24))
        assert many.cycles < few.cycles
        assert many.mshr_stall_cycles < few.mshr_stall_cycles

    def test_same_line_misses_merge_in_mshr(self):
        tb = TraceBuilder("merge")
        base = tb.alloc(64)
        for __ in range(8):
            tb.load(base)  # one line, 8 loads -> 1 miss + merged/hit
        result = simulate(tb.build(), config())
        assert result.l1_miss_rate <= 1 / 8 + 1e-9

    def test_bigger_l1_reduces_misses(self):
        w = get_workload("dijkstra", data_size=48)
        small = simulate(w.trace, config(l1_sets=16, l1_ways=2))
        big = simulate(w.trace, config(l1_sets=64, l1_ways=16))
        assert big.l1_miss_rate <= small.l1_miss_rate

    def test_l2_catches_l1_victims(self):
        result = simulate(
            self._streaming_loads(512),
            config(l1_sets=16, l1_ways=2, l2_sets=2048, l2_ways=16),
        )
        repeat = self._streaming_loads(512)
        # second pass through the same footprint: L2 should hit
        tb = TraceBuilder("two-pass")
        base = tb.alloc(512 * 64)
        for __ in range(2):
            for i in range(512):
                tb.load(base + i * 64)
        two_pass = simulate(
            tb.build(), config(l1_sets=16, l1_ways=2, l2_sets=2048, l2_ways=16)
        )
        assert two_pass.l2_miss_rate < 0.7


class TestBranches:
    def test_random_branches_slower_than_biased(self):
        rng = np.random.default_rng(0)

        def branch_trace(outcomes):
            tb = TraceBuilder("br")
            for outcome in outcomes:
                v = tb.int_op()
                tb.branch(v, taken=bool(outcome))
            return tb.build()

        biased = simulate(branch_trace(np.ones(500, bool)), config())
        random = simulate(branch_trace(rng.random(500) < 0.5), config())
        assert random.cycles > 1.2 * biased.cycles
        assert random.branch_mispredict_rate > biased.branch_mispredict_rate


class TestEndToEndMonotonicity:
    @pytest.mark.parametrize(
        "name",
        ["n_mshr", "decode_width", "rob_entries", "int_fu", "mem_fu", "iq_entries"],
    )
    def test_structural_params_never_hurt_much(self, name):
        """Raising a queue/width/FU parameter must not degrade CPI
        beyond noise (cache geometry is excluded: set-mapping changes can
        legitimately go either way)."""
        w = get_workload("mm", data_size=10)
        lo = SPACE.smallest()
        hi = lo.copy()
        hi[SPACE.index_of(name)] = SPACE.max_levels[SPACE.index_of(name)]
        cpi_lo = simulate(w.trace, SPACE.config(lo)).cpi
        cpi_hi = simulate(w.trace, SPACE.config(hi)).cpi
        assert cpi_hi <= cpi_lo * 1.02

    def test_largest_design_dominates_smallest(self):
        for name in ("mm", "fp-vvadd", "quicksort"):
            w = get_workload(name, data_size={"mm": 10, "fp-vvadd": 256, "quicksort": 64}[name])
            small = simulate(w.trace, SPACE.config(SPACE.smallest())).cpi
            large = simulate(w.trace, SPACE.config(SPACE.largest())).cpi
            assert large < small

    def test_deterministic(self):
        w = get_workload("mm", data_size=10)
        cfg = SPACE.config(SPACE.smallest())
        assert simulate(w.trace, cfg).cycles == simulate(w.trace, cfg).cycles


class TestValidation:
    def test_empty_trace_rejected(self):
        tb = TraceBuilder("x")
        tb.int_op()
        trace = tb.build()
        with pytest.raises(ValueError):
            trace.slice(0, 0)  # empty traces cannot exist

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SimulatorParams(l1_hit_cycles=0).validate()
        with pytest.raises(ValueError):
            SimulatorParams(line_bytes=48).validate()
