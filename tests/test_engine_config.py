"""Tests for EngineConfig and the unified ProxyPool.evaluate surface."""

import argparse
from dataclasses import replace

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.engine import EngineConfig, normalize_hf_backend
from repro.proxies import AnalyticalModel, Fidelity, ProxyPool, SimulationProxy
from repro.store import EvalStore
from repro.tiers import CostModelTier
from repro.workloads import get_workload

SPACE = default_design_space()
WORKLOAD = get_workload("mm", data_size=12)


def make_pool(**kwargs):
    return ProxyPool(
        SPACE,
        AnalyticalModel(WORKLOAD.profile, SPACE),
        SimulationProxy(WORKLOAD, SPACE),
        area_limit_mm2=7.5,
        **kwargs,
    )


# ----------------------------------------------------------------------
# EngineConfig
# ----------------------------------------------------------------------
def test_json_roundtrip_exact():
    config = EngineConfig(
        workers=3, cache_dir="/tmp/x", store_backend="sqlite",
        hf_backend="batched", hf_batch=64, propose_batch=4,
        tier="rf", tier_min_corpus=10, tier_max_rel_std=0.5,
        tier_train_rows=99,
    )
    assert EngineConfig.from_json(config.to_json()) == config
    assert EngineConfig.from_json(None) == EngineConfig()
    # Unknown keys (newer writer) are ignored, not fatal.
    payload = dict(config.to_json(), future_knob=1)
    assert EngineConfig.from_json(payload) == config


def test_from_args_defaults_missing_flags():
    assert EngineConfig.from_args(argparse.Namespace()) == EngineConfig()
    args = argparse.Namespace(
        workers=2, cache_dir="store", store_backend="sharded",
        hf_backend="serial", hf_batch=8, propose_batch=2, tier="gbrt",
        tier_min_corpus=32, tier_max_rel_std=0.1, tier_train_rows=256,
    )
    config = EngineConfig.from_args(args)
    assert config.workers == 2
    assert config.cache_dir == "store"
    assert config.tier == "gbrt"
    assert config.tier_min_corpus == 32


def test_normalize_hf_backend():
    assert normalize_hf_backend(None) is None
    assert normalize_hf_backend("auto") is None
    assert normalize_hf_backend("batched") == "batch"
    assert normalize_hf_backend("process") == "process"
    assert normalize_hf_backend("serial") == "serial"


def test_build_store(tmp_path):
    assert EngineConfig().build_store() is None
    store = EngineConfig(cache_dir=str(tmp_path)).build_store()
    assert isinstance(store, EvalStore)
    assert store.backend_name == "sharded"
    sqlite_store = EngineConfig(
        cache_dir=str(tmp_path / "s"), store_backend="sqlite"
    ).build_store()
    assert sqlite_store.backend_name == "sqlite"


def test_build_tier(tmp_path):
    config = EngineConfig(cache_dir=str(tmp_path), tier="gbrt")
    store = config.build_store()
    assert EngineConfig().build_tier(store, SPACE) is None
    tier = config.build_tier(store, SPACE)
    assert isinstance(tier, CostModelTier)
    assert tier.model == "gbrt"
    with pytest.raises(ValueError, match="persistent store"):
        config.build_tier(None, SPACE)


def test_pool_built_from_config_wires_store_and_tier(tmp_path):
    config = EngineConfig(cache_dir=str(tmp_path), tier="gbrt")
    pool = make_pool(config=config)
    assert isinstance(pool.engine.cache, EvalStore)
    assert isinstance(pool.engine.tier, CostModelTier)
    # Legacy kwargs fold into the same construction path: cache_dir now
    # builds an EvalStore (lazy index), not the legacy flat cache.
    legacy = make_pool(cache_dir=tmp_path)
    assert isinstance(legacy.engine.cache, EvalStore)
    assert legacy.engine.tier is None


def test_pool_config_tier_off_matches_legacy(tmp_path):
    pool = make_pool(config=EngineConfig())
    assert pool.engine.cache is None
    assert pool.engine.tier is None


# ----------------------------------------------------------------------
# Unified ProxyPool.evaluate
# ----------------------------------------------------------------------
def sample(count, seed=0):
    return list(SPACE.sample(np.random.default_rng(seed), count=count))


def test_evaluate_scalar_equals_batch_of_one():
    levels = sample(1)[0]
    a = make_pool().evaluate(levels, Fidelity.HIGH)
    b = make_pool().evaluate([levels], Fidelity.HIGH)
    assert isinstance(b, list) and len(b) == 1
    assert a.metrics == b[0].metrics
    assert a.provenance == "simulated"


def test_evaluate_defaults_to_high():
    pool = make_pool()
    levels = sample(1)[0]
    evaluation = pool.evaluate(levels)
    assert evaluation.fidelity is Fidelity.HIGH
    assert pool.hf_evaluations == 1
    assert pool.evaluate(levels, Fidelity.LOW).fidelity is Fidelity.LOW
    assert pool.lf_evaluations == 1


def test_evaluate_batch_counters_match_scalar_loop():
    batch = sample(5, seed=3)
    batched = make_pool()
    looped = make_pool()
    results = batched.evaluate(batch, Fidelity.HIGH)
    singles = [looped.evaluate(levels, Fidelity.HIGH) for levels in batch]
    assert [r.cpi for r in results] == [s.cpi for s in singles]
    assert batched.summary()["hf_evaluations"] == looped.summary()["hf_evaluations"]


@pytest.mark.parametrize(
    "name,call",
    [
        ("evaluate_low", lambda p, b: p.evaluate_low(b[0])),
        ("evaluate_high", lambda p, b: p.evaluate_high(b[0])),
        ("evaluate_many", lambda p, b: p.evaluate_many(b, Fidelity.HIGH)),
        ("evaluate_many_low", lambda p, b: p.evaluate_many_low(b)),
        ("evaluate_many_high", lambda p, b: p.evaluate_many_high(b)),
    ],
)
def test_legacy_evaluate_shims_warn_and_delegate(name, call):
    pool = make_pool()
    batch = sample(2, seed=4)
    with pytest.warns(DeprecationWarning, match=f"ProxyPool.{name}"):
        result = call(pool, batch)
    evaluations = result if isinstance(result, list) else [result]
    assert all(e.metrics["cpi"] > 0 for e in evaluations)


def test_config_replace_for_campaign_engine():
    # The campaign layer zeroes engine workers while keeping everything
    # else; replace() on the frozen dataclass is the supported spelling.
    config = EngineConfig(workers=8, tier="rf")
    engine_side = replace(config, workers=0)
    assert engine_side.workers == 0
    assert engine_side.tier == "rf"
    assert config.workers == 8
