"""Tests for the trace profiler (analytical-model inputs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.generators import GENERATORS
from repro.workloads.profiler import (
    MissRateCurve,
    _branch_mispredict_rate,
    _stack_distances,
    profile_trace,
)
from repro.workloads.trace import TraceBuilder


@pytest.fixture(scope="module")
def vvadd_profile():
    trace = GENERATORS["fp-vvadd"](data_size=256, seed=0)
    return profile_trace(trace)


@pytest.fixture(scope="module")
def mm_profile():
    trace = GENERATORS["mm"](data_size=8, seed=0)
    return profile_trace(trace)


class TestMix:
    def test_mix_sums_to_one(self, vvadd_profile):
        assert sum(vvadd_profile.mix.values()) == pytest.approx(1.0)

    def test_fu_fractions_partition(self, vvadd_profile):
        p = vvadd_profile
        assert p.frac_int + p.frac_fp + p.frac_mem == pytest.approx(1.0)

    def test_vvadd_memory_heavy(self, vvadd_profile):
        assert vvadd_profile.frac_mem > 0.4


class TestIlpTable:
    def test_monotone_in_window(self, mm_profile):
        ipcs = list(mm_profile.ilp_ipc)
        assert all(b >= a - 1e-9 for a, b in zip(ipcs, ipcs[1:]))

    def test_interpolation_between_anchors(self, mm_profile):
        w0, w1 = mm_profile.ilp_windows[2], mm_profile.ilp_windows[3]
        mid = mm_profile.ilp_at((w0 + w1) / 2)
        assert min(mm_profile.ilp_at(w0), mm_profile.ilp_at(w1)) - 1e-9 <= mid
        assert mid <= max(mm_profile.ilp_at(w0), mm_profile.ilp_at(w1)) + 1e-9

    def test_slope_nonnegative(self, mm_profile):
        for w in (20, 48, 100, 140):
            assert mm_profile.ilp_slope(w) >= 0.0

    def test_slope_zero_outside_range(self, mm_profile):
        assert mm_profile.ilp_slope(1) == 0.0
        assert mm_profile.ilp_slope(10_000) == 0.0

    def test_serial_chain_has_unit_ilp(self):
        tb = TraceBuilder("chain")
        v = tb.int_op()
        for __ in range(200):
            v = tb.int_op(v)
        profile = profile_trace(tb.build())
        # fully serial: IPC ~= 1/latency = 1.0 for INT_ALU
        assert profile.ilp_at(160) == pytest.approx(1.0, abs=0.05)

    def test_independent_ops_have_high_ilp(self):
        tb = TraceBuilder("parallel")
        for __ in range(200):
            tb.int_op()
        profile = profile_trace(tb.build())
        assert profile.ilp_at(160) > 20


class TestStackDistances:
    def test_first_access_is_cold(self):
        dist = _stack_distances(np.array([1, 2, 3]))
        assert (dist == -1).all()

    def test_immediate_reuse_distance_zero(self):
        dist = _stack_distances(np.array([5, 5]))
        assert dist[1] == 0

    def test_classic_pattern(self):
        # a b c a : the second 'a' has stack distance 2 (b, c in between)
        dist = _stack_distances(np.array([1, 2, 3, 1]))
        assert dist[3] == 2

    def test_repeated_interleave(self):
        dist = _stack_distances(np.array([1, 2, 1, 2]))
        assert dist[2] == 1 and dist[3] == 1

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_distance_bounded_by_unique_lines(self, addrs):
        arr = np.array(addrs)
        dist = _stack_distances(arr)
        n_unique = len(np.unique(arr))
        assert np.all(dist[dist >= 0] < n_unique)


class TestMissRateCurve:
    def test_monotone_nonincreasing(self, vvadd_profile):
        curve = vvadd_profile.miss_curve
        rates = list(curve.miss_rates)
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_rate_bounds(self, vvadd_profile):
        curve = vvadd_profile.miss_curve
        for size in (1, 10, 1000, 10**6):
            assert 0.0 <= curve.rate(size) <= 1.0

    def test_large_cache_only_cold_misses(self, vvadd_profile):
        curve = vvadd_profile.miss_curve
        footprint = vvadd_profile.footprint_lines
        # beyond the footprint, only cold misses remain
        cold = curve.rate(4 * footprint)
        assert cold > 0
        assert cold == pytest.approx(curve.rate(8 * footprint), abs=1e-9)

    def test_slope_nonpositive_inside(self, vvadd_profile):
        curve = vvadd_profile.miss_curve
        for size in (8, 64, 512):
            assert curve.slope(size) <= 0.0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            MissRateCurve(np.array([1, 2, 4]), np.array([1.0, 0.5]))

    def test_non_ascending_sizes_rejected(self):
        with pytest.raises(ValueError):
            MissRateCurve(np.array([4, 2]), np.array([1.0, 0.5]))


class TestBranchPredictorProfile:
    def test_all_taken_predicts_well(self):
        taken = np.ones(500, dtype=bool)
        assert _branch_mispredict_rate(taken) < 0.02

    def test_alternating_confuses_two_bit_counter(self):
        taken = np.tile([True, False], 250).astype(bool)
        assert _branch_mispredict_rate(taken) > 0.3

    def test_empty_stream(self):
        assert _branch_mispredict_rate(np.array([], dtype=bool)) == 0.0

    def test_rate_in_unit_interval(self):
        rng = np.random.default_rng(0)
        taken = rng.random(300) < 0.5
        rate = _branch_mispredict_rate(taken)
        assert 0.0 <= rate <= 1.0


class TestProfileAggregates:
    def test_footprint_positive(self, vvadd_profile):
        assert vvadd_profile.footprint_lines > 0

    def test_vvadd_footprint_matches_arrays(self, vvadd_profile):
        # 3 arrays * 256 doubles = 6 KiB -> ~96 lines
        assert 80 <= vvadd_profile.footprint_lines <= 120

    def test_mlp_supply_at_least_one(self, vvadd_profile, mm_profile):
        assert vvadd_profile.mlp_supply >= 1.0
        assert mm_profile.mlp_supply >= 1.0

    def test_vvadd_streaming_mlp(self, vvadd_profile):
        # streaming kernels expose multiple concurrent miss lines
        assert vvadd_profile.mlp_supply > 1.5
