"""Tests for the campaign orchestrator: specs, store, scheduler, resume."""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignScheduler,
    RunSpec,
    RunStore,
    aggregate_engine_counters,
    execute_run,
    explorer_config_from_dict,
    explorer_config_to_dict,
    render_campaign_summary,
)
from repro.campaign.store import record_filename
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.core.mfrl.reinforce import TrainerConfig
from repro.experiments import fig5_reduce, fig5_specs, run_fig5
from repro.experiments.common import build_suite_pool

TINY = ExplorerConfig(lf_episodes=25, hf_budget=5, hf_seed_designs=1)

#: One tiny Fig.-5 grid shared by the scheduler tests.
GRID = dict(
    seeds=(0, 1),
    baseline_budget=6,
    our_budget=5,
    baselines=("random-forest",),
    explorer_config=TINY,
    scale=0.1,
)


def tiny_specs():
    return fig5_specs(**GRID)


@pytest.fixture(scope="module")
def sequential_grid():
    """The tiny grid's sequential (workers=0) result, computed once."""
    return run_fig5(**GRID)


class TestRunSpec:
    def test_json_round_trip(self):
        spec = RunSpec(
            run_id="r1",
            kind="explorer",
            method="fnn-mbrl",
            seed=3,
            workload="suite",
            area_limit_mm2=8.0,
            explorer=explorer_config_to_dict(TINY),
            params={"rng_seed": 1003},
        )
        assert RunSpec.from_json(spec.to_json()) == spec
        # and the round trip is JSON-stable (tuples normalised away)
        assert json.loads(json.dumps(spec.to_json())) == spec.to_json()

    def test_explorer_config_round_trip(self):
        config = ExplorerConfig(
            lf_episodes=42, hf_budget=7, trainer=TrainerConfig(temperature=0.5)
        )
        assert explorer_config_from_dict(explorer_config_to_dict(config)) == config

    def test_none_config_means_defaults(self):
        assert explorer_config_to_dict(None) is None
        assert explorer_config_from_dict(None) == ExplorerConfig()


class TestRunStore:
    def test_write_load_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        record = {"spec": {"run_id": "a"}, "status": "done", "payload": {"x": 1}}
        store.write("a", record)
        assert store.load("a") == record
        assert store.records() == {"a": record}

    def test_missing_and_corrupt_read_as_none(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.load("missing") is None
        store.write("a", {"spec": {"run_id": "a"}, "status": "done"})
        store.path_for("a").write_text('{"truncated": ')
        assert store.load("a") is None

    def test_completed_requires_done_and_matching_spec(self, tmp_path):
        store = RunStore(tmp_path)
        spec = RunSpec(run_id="a", kind="explorer", method="m", seed=0,
                       workload="mm")
        assert store.completed(spec) is None
        store.write("a", {"spec": spec.to_json(), "status": "failed"})
        assert store.completed(spec) is None
        store.write("a", {"spec": spec.to_json(), "status": "done",
                          "payload": {}})
        assert store.completed(spec) is not None
        # an edited campaign (different seed) invalidates the record
        changed = RunSpec(run_id="a", kind="explorer", method="m", seed=1,
                          workload="mm")
        assert store.completed(changed) is None

    def test_record_filenames_are_safe_and_collision_free(self):
        assert record_filename("fig5-s0-random-forest") == \
            "fig5-s0-random-forest.json"
        weird_a, weird_b = record_filename("a/b"), record_filename("a:b")
        assert "/" not in weird_a and ":" not in weird_b
        assert weird_a != weird_b


class TestExecuteRun:
    def test_unknown_kind_raises(self):
        spec = RunSpec(run_id="x", kind="nope", method="m", seed=0,
                       workload="mm")
        with pytest.raises(ValueError, match="unknown run kind"):
            execute_run(spec)

    def test_explorer_record_matches_direct_run(self):
        spec = RunSpec(
            run_id="x", kind="explorer", method="fnn-mbrl", seed=0,
            workload="suite", scale=0.1,
            explorer=explorer_config_to_dict(TINY),
        )
        record = execute_run(spec)
        pool = build_suite_pool(scale=0.1)
        direct = MultiFidelityExplorer(pool, config=TINY, seed=0).explore()
        assert record["status"] == "done"
        assert record["payload"]["best_hf_cpi"] == direct.best_hf_cpi
        assert record["payload"]["lf_hf_cpi"] == direct.lf_hf_cpi
        assert record["engine"]["engine_computed_high"] > 0
        # the record is what the store persists: it must be pure JSON
        json.dumps(record)


class TestSchedulerSequential:
    def test_workers0_reproduces_legacy_sequential_loop(self, sequential_grid):
        """The acceptance bar: the scheduler at workers=0 must equal the
        pre-campaign per-seed loop bit for bit."""
        from repro.baselines import make_baseline

        result = sequential_grid

        legacy = {"random-forest": [], "fnn-mbrl-lf": [], "fnn-mbrl-hf": []}
        for seed in GRID["seeds"]:
            pool = build_suite_pool(scale=GRID["scale"])
            rng = np.random.default_rng(1000 + seed)
            baseline = make_baseline("random-forest").explore(
                pool, GRID["baseline_budget"], rng
            )
            legacy["random-forest"].append(baseline.best_cpi)
            pool = build_suite_pool(scale=GRID["scale"])
            ours = MultiFidelityExplorer(pool, config=TINY, seed=seed).explore()
            legacy["fnn-mbrl-lf"].append(ours.lf_hf_cpi)
            legacy["fnn-mbrl-hf"].append(ours.best_hf_cpi)

        assert result.per_seed_cpi == legacy

    def test_engine_counters_aggregated(self, sequential_grid):
        assert sequential_grid.engine_counters["engine_computed_high"] > 0
        assert sequential_grid.engine_counters["engine_computed_low"] > 0

    def test_duplicate_run_ids_rejected(self):
        spec = tiny_specs()[0]
        with pytest.raises(ValueError, match="duplicate run id"):
            CampaignScheduler().run([spec, spec])


class TestResume:
    def test_resume_skips_completed_and_reruns_missing(self, tmp_path):
        specs = tiny_specs()
        store = RunStore(tmp_path)
        scheduler = CampaignScheduler(store=store, resume=True)
        first = scheduler.run(specs)
        assert sorted(first.executed) == sorted(s.run_id for s in specs)

        # kill half the campaign: delete every other record
        deleted = [s.run_id for s in specs[::2]]
        for run_id in deleted:
            store.delete(run_id)

        second = CampaignScheduler(store=store, resume=True).run(specs)
        assert sorted(second.executed) == sorted(deleted)
        assert sorted(second.skipped) == sorted(
            s.run_id for s in specs if s.run_id not in deleted
        )
        # identical reduced results either way: runs are independent
        assert fig5_reduce(specs, second.records).per_seed_cpi == \
            fig5_reduce(specs, first.records).per_seed_cpi

    def test_partial_or_corrupt_manifest_is_rerun(self, tmp_path):
        specs = tiny_specs()[:2]
        store = RunStore(tmp_path)
        CampaignScheduler(store=store, resume=True).run(specs)
        store.path_for(specs[0].run_id).write_text('{"spec": {"run_i')
        again = CampaignScheduler(store=store, resume=True).run(specs)
        assert again.executed == [specs[0].run_id]
        assert again.skipped == [specs[1].run_id]

    def test_resume_false_reruns_everything(self, tmp_path):
        specs = tiny_specs()[:2]
        store = RunStore(tmp_path)
        CampaignScheduler(store=store, resume=True).run(specs)
        again = CampaignScheduler(store=store, resume=False).run(specs)
        assert sorted(again.executed) == sorted(s.run_id for s in specs)

    def test_failed_sequential_run_leaves_failure_record(self, tmp_path):
        store = RunStore(tmp_path)
        bad = RunSpec(run_id="bad", kind="baseline", method="random-forest",
                      seed=0, workload="mm", data_size=10, hf_budget=None)
        with pytest.raises(ValueError, match="needs hf_budget"):
            CampaignScheduler(store=store).run([bad])
        record = store.load("bad")
        assert record["status"] == "failed"
        assert store.completed(bad) is None


class TestParallelIdentity:
    def test_workers2_matches_workers0_exactly(self, sequential_grid):
        """Fig.-5 means must be identical whether runs execute
        sequentially or across a 2-process pool (fixed seeds)."""
        parallel = run_fig5(**GRID, workers=2)
        assert parallel.per_seed_cpi == sequential_grid.per_seed_cpi
        assert parallel.mean_cpi == sequential_grid.mean_cpi

    def test_parallel_shared_cache_dir(self, tmp_path, sequential_grid):
        """Worker processes sharing one cache directory stay correct and
        the second campaign is answered from the cache."""
        first = run_fig5(**GRID, workers=2, cache_dir=tmp_path)
        assert first.per_seed_cpi == sequential_grid.per_seed_cpi
        second = run_fig5(**GRID, workers=0, cache_dir=tmp_path)
        assert second.per_seed_cpi == sequential_grid.per_seed_cpi
        assert second.engine_counters["engine_cache_hits"] > 0
        assert second.engine_counters["engine_computed_high"] == 0


class TestReport:
    def test_aggregate_ignores_non_numeric(self):
        records = {
            "a": {"engine": {"engine_computed_high": 3, "backend": "serial"}},
            "b": {"engine": {"engine_computed_high": 4, "flag": True}},
            "c": {},
        }
        totals = aggregate_engine_counters(records)
        assert totals == {"engine_computed_high": 7}

    def test_render_summary_mentions_counts(self, tmp_path):
        specs = tiny_specs()[:2]
        scheduler = CampaignScheduler(store=RunStore(tmp_path))
        scheduler.run(specs)
        text = render_campaign_summary(scheduler.last)
        assert "2 total, 2 executed, 0 resumed" in text
        assert "computed HF" in text

    def test_summary_surfaces_prepass_memo_efficacy(self, tmp_path):
        """Per-run pre-pass counters must aggregate into the campaign
        report, so memo efficacy is visible per grid, not only in
        ad-hoc benchmarks."""
        specs = tiny_specs()[:2]
        scheduler = CampaignScheduler(store=RunStore(tmp_path))
        result = scheduler.run(specs)
        totals = aggregate_engine_counters(result.records)
        assert totals.get("engine_prepass_misses", 0) >= 1
        text = render_campaign_summary(scheduler.last)
        assert "prepass hits" in text


class TestEngineConfigThreading:
    """The per-run EngineConfig travels spec-side through the campaign."""

    SPEC = RunSpec(run_id="ec1", kind="baseline", method="random-search",
                   seed=0, workload="mm", data_size=12, hf_budget=3)

    def test_execute_run_records_engine_config(self, tmp_path):
        from repro.campaign.runner import execute_run
        from repro.engine import EngineConfig

        config = EngineConfig(cache_dir=str(tmp_path), store_backend="sqlite")
        record = execute_run(self.SPEC, engine_config=config.to_json())
        assert record["engine_config"] == config.to_json()
        assert (tmp_path / "store.sqlite").exists()
        assert record["engine"]["engine_cache_entries"] == 3

    def test_legacy_kwargs_fold_into_config(self, tmp_path):
        from repro.campaign.runner import execute_run

        record = execute_run(self.SPEC, cache_dir=tmp_path, hf_batch=7)
        assert record["engine_config"]["cache_dir"] == str(tmp_path)
        assert record["engine_config"]["hf_batch"] == 7
        assert record["engine_config"]["tier"] == "off"

    def test_scheduler_ships_config_to_runs(self, tmp_path):
        from repro.engine import EngineConfig

        config = EngineConfig(cache_dir=str(tmp_path / "store"))
        scheduler = CampaignScheduler(engine_config=config)
        assert scheduler.cache_dir == str(tmp_path / "store")  # legacy view
        result = scheduler.run([self.SPEC])
        assert result.records["ec1"]["engine_config"] == config.to_json()

    def test_tier_counters_reach_campaign_summary_keys(self, tmp_path):
        from repro.campaign.report import HEADLINE_COUNTERS

        keys = [key for key, _ in HEADLINE_COUNTERS]
        assert "engine_tier_served" in keys
        assert "engine_tier_fallback" in keys
