"""Tests for the area-budget sweep extension."""

import pytest

from repro.core.mfrl import ExplorerConfig
from repro.experiments.sweep import (
    SweepPoint,
    frontier_knee,
    render_sweep,
    run_area_sweep,
)

FAST = ExplorerConfig(lf_episodes=30, lf_min_episodes=15, hf_budget=4,
                      hf_seed_designs=1)


def make_point(area, cpi):
    return SweepPoint(
        area_limit_mm2=area, best_hf_cpi=cpi, lf_hf_cpi=cpi + 0.1,
        best_area_mm2=area - 0.2, hf_simulations=4,
    )


class TestRunSweep:
    def test_bigger_budgets_never_hurt(self):
        points = run_area_sweep(
            "mm", area_limits=(5.0, 7.5, 10.0), explorer_config=FAST,
            data_size=10,
        )
        assert len(points) == 3
        # monotone frontier within noise: the largest budget's CPI must
        # not exceed the smallest budget's
        assert points[-1].best_hf_cpi <= points[0].best_hf_cpi + 1e-9

    def test_designs_respect_their_budgets(self):
        points = run_area_sweep(
            "mm", area_limits=(6.0, 9.0), explorer_config=FAST, data_size=10
        )
        for p in points:
            assert p.best_area_mm2 <= p.area_limit_mm2 + 1e-9

    def test_empty_limits_rejected(self):
        with pytest.raises(ValueError):
            run_area_sweep("mm", area_limits=())


class TestKnee:
    def test_single_point(self):
        p = make_point(6.0, 1.0)
        assert frontier_knee([p]) is p

    def test_knee_of_elbow_curve(self):
        # steep drop then flat: the knee is where the drop ends
        points = [
            make_point(5.0, 2.0),
            make_point(6.0, 1.0),
            make_point(7.0, 0.95),
            make_point(8.0, 0.93),
        ]
        knee = frontier_knee(points)
        assert knee.area_limit_mm2 == 6.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            frontier_knee([])


class TestRendering:
    def test_render_contains_rows(self):
        points = [make_point(5.0, 2.0), make_point(6.0, 1.5)]
        text = render_sweep(points)
        assert "5.0mm2" in text and "6.0mm2" in text
        assert "2.0000" in text
