"""Generality tests: the machinery works on non-Table-1 design spaces.

A downstream user should be able to define their own parameter axes and
reuse the space algebra, the area constraint, and the baselines' driver
loop. (The default FNN input layout is Table-1-specific by design; these
tests cover the layers below it.)
"""

import numpy as np

from repro.designspace import AreaConstraint, DesignParameter, DesignSpace


CUSTOM = DesignSpace((
    DesignParameter("btb_entries", "BTB Entry", (128, 256, 512), "frontend"),
    DesignParameter("ras_depth", "RAS Depth", (4, 8, 16, 32), "frontend"),
    DesignParameter("lq_entries", "LQ Entry", (8, 16, 24), "lsu"),
))


class TestCustomSpace:
    def test_size(self):
        assert CUSTOM.size == 3 * 4 * 3

    def test_flat_index_roundtrip_exhaustive(self):
        for idx in range(CUSTOM.size):
            levels = CUSTOM.from_flat_index(idx)
            assert CUSTOM.flat_index(levels) == idx

    def test_increase_and_masks(self):
        levels = CUSTOM.smallest()
        assert CUSTOM.increasable(levels).all()
        levels = CUSTOM.increase(levels, "ras_depth")
        assert levels[CUSTOM.index_of("ras_depth")] == 1

    def test_groups(self):
        assert CUSTOM.groups()["frontend"] == ["btb_entries", "ras_depth"]

    def test_table_rendering(self):
        table = CUSTOM.table()
        assert "BTB Entry" in table and "36" in table

    def test_config_requires_table1_fields(self):
        """MicroArchConfig is Table-1-shaped; a custom space exposes
        values() instead."""
        values = CUSTOM.values(CUSTOM.smallest())
        assert values.tolist() == [128, 4, 8]


class TestCustomConstraint:
    def test_area_constraint_with_custom_model(self):
        def custom_area(values) -> float:
            # values here is whatever the caller passes; use a dict
            return 0.001 * values["btb_entries"] + 0.01 * values["ras_depth"]

        constraint = AreaConstraint(
            lambda cfg: custom_area(cfg), limit_mm2=0.5
        )
        assert constraint.is_satisfied({"btb_entries": 128, "ras_depth": 8})
        assert not constraint.is_satisfied({"btb_entries": 512, "ras_depth": 32})


class TestGenericSurrogates:
    def test_trees_work_on_custom_dimensionality(self):
        from repro.baselines import RandomForest

        rng = np.random.default_rng(0)
        x = rng.random((30, 3))  # the custom space's dimensionality
        y = x @ np.array([1.0, -2.0, 0.5])
        model = RandomForest(num_trees=10, rng=rng).fit(x, y)
        assert np.corrcoef(model.predict(x), y)[0, 1] > 0.8

    def test_gp_works_on_custom_dimensionality(self):
        from repro.baselines import GaussianProcess

        rng = np.random.default_rng(0)
        x = rng.random((20, 3))
        y = np.sin(3 * x[:, 0]) + x[:, 2]
        gp = GaussianProcess(noise=1e-5).fit(x, y)
        assert np.allclose(gp.predict(x), y, atol=0.05)
