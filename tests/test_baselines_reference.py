"""Tests for the random-search and annealing reference baselines."""

import numpy as np
import pytest

from repro.baselines import (
    EXTRA_BASELINES,
    RandomSearchExplorer,
    SimulatedAnnealingExplorer,
    make_baseline,
)
from repro.designspace import default_design_space
from repro.proxies import Fidelity

SPACE = default_design_space()


class TestFactory:
    def test_extra_names_constructible(self):
        for name in EXTRA_BASELINES:
            assert make_baseline(name).name == name

    def test_extras_not_in_fig5_lineup(self):
        from repro.baselines import ALL_BASELINES

        assert not set(EXTRA_BASELINES) & set(ALL_BASELINES)


class TestRandomSearch:
    def test_budget_and_validity(self, mm_pool, rng):
        result = RandomSearchExplorer().explore(mm_pool, 6, rng)
        assert len(result.history) == 6
        assert mm_pool.archive.count(Fidelity.HIGH) == 6
        for levels in result.evaluated:
            assert mm_pool.fits(levels)

    def test_best_is_minimum(self, mm_pool, rng):
        result = RandomSearchExplorer().explore(mm_pool, 5, rng)
        assert result.best_cpi == pytest.approx(min(result.history))

    def test_designs_distinct(self, mm_pool, rng):
        result = RandomSearchExplorer().explore(mm_pool, 6, rng)
        keys = {SPACE.flat_index(l) for l in result.evaluated}
        assert len(keys) == 6

    def test_invalid_budget(self, mm_pool, rng):
        with pytest.raises(ValueError):
            RandomSearchExplorer().explore(mm_pool, 0, rng)


class TestAnnealing:
    def test_budget_and_validity(self, mm_pool, rng):
        result = SimulatedAnnealingExplorer().explore(mm_pool, 8, rng)
        assert len(result.history) <= 8
        for levels in result.evaluated:
            assert mm_pool.fits(levels)

    def test_moves_are_hamming_one(self, mm_pool, rng):
        result = SimulatedAnnealingExplorer().explore(mm_pool, 8, rng)
        # consecutive *accepted* designs may skip, but every evaluated
        # design after the first must be a neighbour of some earlier one
        earlier = [result.evaluated[0]]
        for levels in result.evaluated[1:]:
            assert any(np.abs(levels - e).sum() == 1 for e in earlier)
            earlier.append(levels)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingExplorer(initial_temperature=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingExplorer(cooling=1.0)

    def test_seeded_reproducibility(self, small_mm):
        from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy

        outcomes = []
        for __ in range(2):
            pool = ProxyPool(
                SPACE,
                AnalyticalModel(small_mm.profile, SPACE),
                SimulationProxy(small_mm, SPACE),
                area_limit_mm2=7.5,
            )
            result = SimulatedAnnealingExplorer().explore(
                pool, 6, np.random.default_rng(9)
            )
            outcomes.append(tuple(result.best_levels))
        assert outcomes[0] == outcomes[1]


class TestSurrogatesBeatRandomEventually:
    def test_forest_not_catastrophically_worse_than_random(self, small_mm):
        """Sanity anchor: at a tiny budget the surrogate may tie random
        search, but it must stay in the same league (factor 1.5)."""
        from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy

        cpis = {}
        for name in ("random-forest", "random-search"):
            pool = ProxyPool(
                SPACE,
                AnalyticalModel(small_mm.profile, SPACE),
                SimulationProxy(small_mm, SPACE),
                area_limit_mm2=7.5,
            )
            result = make_baseline(name).explore(
                pool, 8, np.random.default_rng(4)
            )
            cpis[name] = result.best_cpi
        assert cpis["random-forest"] <= 1.5 * cpis["random-search"]
