"""Kernel-selection layer: resolution order, provenance, plumbing.

The bit-equality of the compiled kernel itself lives in
``test_simulator_golden.py`` (both serial kernels run the full golden
sweep there). This file covers the machinery around it: the
``select_kernel`` resolution order, the ``REPRO_FORCE_PY_KERNEL`` env
knob, per-kernel provenance counters, the ``EngineConfig.hf_kernel``
knob and CLI flag, pickling semantics, and the batch-crossover routing
(the lockstep walk engages by default over the Python kernel only).
"""

import argparse
import pickle

import numpy as np
import pytest

from repro.designspace import MicroArchConfig, default_design_space
from repro.engine.config import EngineConfig, normalize_hf_kernel
from repro.proxies import SimulationProxy
from repro.simulator import OutOfOrderSimulator
from repro.simulator.kernels import (
    FORCE_PY_ENV,
    KERNEL_COMPILED,
    KERNEL_PYTHON,
    KernelUnavailableError,
    _force_python,
    compiled_available,
    kernel_microbench,
    select_kernel,
)
from repro.workloads import get_workload

needs_compiled = pytest.mark.skipif(
    not compiled_available(), reason="compiled kernel unavailable"
)
#: For tests that need selection to actually *resolve* to compiled
#: (direct `_compiled_kernel` calls bypass selection and stay valid).
needs_compiled_selected = pytest.mark.skipif(
    not compiled_available() or _force_python(),
    reason="compiled kernel unavailable or forced off",
)

SPACE = default_design_space()


def sample_configs(count, seed=0):
    rng = np.random.default_rng(seed)
    return [SPACE.config(levels) for levels in SPACE.sample(rng, count=count)]


# ----------------------------------------------------------------------
# select_kernel resolution order
# ----------------------------------------------------------------------
class TestSelectKernel:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            select_kernel("fortran")

    def test_explicit_python_always_honored(self, monkeypatch):
        monkeypatch.delenv(FORCE_PY_ENV, raising=False)
        assert select_kernel(KERNEL_PYTHON) == KERNEL_PYTHON

    @needs_compiled
    def test_auto_prefers_compiled(self, monkeypatch):
        monkeypatch.delenv(FORCE_PY_ENV, raising=False)
        assert select_kernel(None) == KERNEL_COMPILED
        assert select_kernel("auto") == KERNEL_COMPILED
        assert select_kernel(KERNEL_COMPILED) == KERNEL_COMPILED

    def test_force_env_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv(FORCE_PY_ENV, "1")
        assert select_kernel(None) == KERNEL_PYTHON
        # Even an explicit "compiled" request yields python: the env
        # knob exists to pin the whole process tree to the fallback.
        assert select_kernel(KERNEL_COMPILED) == KERNEL_PYTHON

    def test_force_env_zero_means_unset(self, monkeypatch):
        monkeypatch.delenv(FORCE_PY_ENV, raising=False)
        unset = select_kernel(None)
        monkeypatch.setenv(FORCE_PY_ENV, "0")
        assert select_kernel(None) == unset

    def test_explicit_compiled_raises_when_unavailable(self, monkeypatch):
        import repro.simulator.kernels as kernels_mod

        monkeypatch.delenv(FORCE_PY_ENV, raising=False)
        monkeypatch.setattr(kernels_mod, "compiled_available", lambda: False)
        with pytest.raises(KernelUnavailableError):
            select_kernel(KERNEL_COMPILED)
        # auto degrades silently to python on the same host
        assert select_kernel(None) == KERNEL_PYTHON


# ----------------------------------------------------------------------
# Simulator integration: lazy resolution, counters, pickling
# ----------------------------------------------------------------------
class TestSimulatorKernel:
    def test_invalid_kernel_rejected_at_construction(self):
        with pytest.raises(ValueError):
            OutOfOrderSimulator(kernel="fortran")

    def test_resolution_is_lazy_and_counted(self, hf_kernel):
        sim = OutOfOrderSimulator(kernel=hf_kernel)
        assert sim.resolved_kernel is None  # nothing resolved yet
        trace = get_workload("mm", data_size=8).trace
        (config,) = sample_configs(1)
        sim.run(trace, config)
        sim.run(trace, config)
        assert sim.resolved_kernel == hf_kernel
        assert sim.kernel_counts == {hf_kernel: 2}

    def test_batched_lanes_counted(self):
        sim = OutOfOrderSimulator(kernel=KERNEL_PYTHON)
        trace = get_workload("mm", data_size=8).trace
        configs = sample_configs(6, seed=3)
        sim.run_batch(trace, configs, min_designs=2)
        assert sim.kernel_counts.get("batched") == 6

    def test_pickle_keeps_request_drops_resolution(self, hf_kernel):
        sim = OutOfOrderSimulator(kernel=hf_kernel)
        trace = get_workload("mm", data_size=8).trace
        (config,) = sample_configs(1)
        expected = sim.run(trace, config)
        clone = pickle.loads(pickle.dumps(sim))
        # The *request* travels; resolution and counters are per-process.
        assert clone.kernel == hf_kernel
        assert clone.resolved_kernel is None
        assert clone.kernel_counts == {}
        assert clone.run(trace, config) == expected

    @needs_compiled
    def test_compiled_merge_raises_inside_prepass_kernel(self):
        """The compiled kernel must abandon the no-merge L2 stream the
        moment a merge happens, exactly like the Python kernel."""
        from repro.simulator.core import MshrMergeDetected, _compiled_kernel

        sim = OutOfOrderSimulator()
        trace = get_workload("mm", data_size=8).trace
        # A config known to trigger an MSHR merge on mm@8 (golden
        # suite's MERGE_CASES): tiny direct-mapped L1, single MSHR.
        config = MicroArchConfig(
            l1_sets=16, l1_ways=1, l2_sets=512, l2_ways=1, n_mshr=1,
            decode_width=1, rob_entries=160, mem_fu=2, int_fu=2, fp_fu=1,
            iq_entries=24)
        p = sim.params
        bp = sim.branch_prepass_for(trace)
        l1pre = sim.l1_prepass_for(trace, config.l1_sets, config.l1_ways)
        l2pre = sim.l2_prepass_for(trace, config, l1pre)
        line_shift = p.line_bytes.bit_length() - 1
        with pytest.raises(MshrMergeDetected):
            _compiled_kernel(
                trace.kernel_view, config, p, bp, l1pre, line_shift, l2pre
            )


# ----------------------------------------------------------------------
# Provenance through the proxy layer
# ----------------------------------------------------------------------
class TestProvenance:
    def test_proxy_reports_kernel_and_counts(self, hf_kernel):
        proxy = SimulationProxy(
            get_workload("mm", data_size=8), SPACE, kernel=hf_kernel
        )
        stats = proxy.prepass_stats()
        assert "hf_kernel" not in stats  # unresolved until the first run
        rng = np.random.default_rng(7)
        proxy.evaluate(SPACE.sample(rng))
        stats = proxy.prepass_stats()
        assert stats["hf_kernel"] == hf_kernel
        assert stats[f"kernel_{hf_kernel}_evals"] == 1

    def test_proxy_reports_batched_lanes(self):
        proxy = SimulationProxy(
            get_workload("mm", data_size=8), SPACE,
            hf_batch=4, kernel=KERNEL_PYTHON,
        )
        rng = np.random.default_rng(11)
        proxy.evaluate_many(list(SPACE.sample(rng, count=4)))
        stats = proxy.prepass_stats()
        assert stats["kernel_batched_evals"] == 4


# ----------------------------------------------------------------------
# Batch-crossover routing
# ----------------------------------------------------------------------
class TestCrossoverRouting:
    def _count_walks(self, monkeypatch):
        import repro.simulator.batched as batched_mod

        calls = []
        orig = batched_mod._lockstep_walk

        def counting(sim, trace, configs):
            calls.append(len(configs))
            return orig(sim, trace, configs)

        monkeypatch.setattr(batched_mod, "_lockstep_walk", counting)
        return calls

    def test_python_kernel_engages_lockstep_at_crossover(self, monkeypatch):
        from repro.simulator.batched import BATCH_MIN_DESIGNS

        calls = self._count_walks(monkeypatch)
        sim = OutOfOrderSimulator(kernel=KERNEL_PYTHON)
        trace = get_workload("mm", data_size=8).trace
        configs = sample_configs(BATCH_MIN_DESIGNS, seed=5)
        sim.run_batch(trace, configs)
        assert calls == [BATCH_MIN_DESIGNS]

    @needs_compiled_selected
    def test_compiled_kernel_never_engages_by_default(self, monkeypatch):
        from repro.simulator.batched import BATCH_MIN_DESIGNS

        calls = self._count_walks(monkeypatch)
        sim = OutOfOrderSimulator(kernel=KERNEL_COMPILED)
        trace = get_workload("mm", data_size=8).trace
        configs = sample_configs(BATCH_MIN_DESIGNS, seed=5)
        results = sim.run_batch(trace, configs)
        assert calls == []  # compiled serial beats the walk at every width
        # An explicit width is still a request to batch.
        batched = sim.run_batch(trace, configs, max_designs=16)
        assert calls and all(c <= 16 for c in calls)
        assert batched == results


# ----------------------------------------------------------------------
# EngineConfig / CLI plumbing
# ----------------------------------------------------------------------
class TestEngineConfigKernel:
    def test_normalize(self):
        assert normalize_hf_kernel(None) is None
        assert normalize_hf_kernel("auto") is None
        assert normalize_hf_kernel("python") == "python"
        assert normalize_hf_kernel("compiled") == "compiled"

    def test_json_round_trip(self):
        config = EngineConfig(hf_kernel="python")
        assert EngineConfig.from_json(config.to_json()) == config

    def test_from_args(self):
        args = argparse.Namespace(hf_kernel="auto")
        assert EngineConfig.from_args(args).hf_kernel is None
        args = argparse.Namespace(hf_kernel="compiled")
        assert EngineConfig.from_args(args).hf_kernel == "compiled"
        # absent flag defaults cleanly
        assert EngineConfig.from_args(argparse.Namespace()).hf_kernel is None

    def test_cli_flag_parses_and_validates(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["explore", "--hf-kernel", "python"])
        assert args.hf_kernel == "python"
        args = build_parser().parse_args(["explore"])
        assert args.hf_kernel == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--hf-kernel", "gpu"])


# ----------------------------------------------------------------------
# `repro kernels` triage
# ----------------------------------------------------------------------
class TestKernelsCommand:
    def test_no_bench_lists_kernels(self, capsys):
        from repro.cli import main

        assert main(["kernels", "--no-bench"]) == 0
        out = capsys.readouterr().out
        assert "python" in out and "compiled" in out and "batched" in out

    def test_microbench_covers_runnable_kernels(self):
        rates = kernel_microbench(data_size=8, designs=4)
        assert rates[KERNEL_PYTHON] > 0
        assert rates["batched"] > 0
        if compiled_available() and not _force_python():
            assert rates[KERNEL_COMPILED] > 0
        else:
            assert KERNEL_COMPILED not in rates
