"""Shared fixtures: small workloads and pools that keep the suite fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy
from repro.workloads import get_workload


def serial_kernel_params():
    """Parametrization axis over the serial timing kernels.

    Both lanes (python + compiled); the compiled lane is skipped with
    the build error as the reason when the extension cannot be built,
    and the axis collapses to Python under ``REPRO_FORCE_PY_KERNEL=1``
    (the env knob overrides explicit requests, so a "compiled" lane
    would silently re-test Python there).
    """
    from repro.simulator.kernels import (
        KERNEL_COMPILED,
        KERNEL_PYTHON,
        _force_python,
        compiled_available,
        compiled_build_error,
    )

    if _force_python():
        return [KERNEL_PYTHON]
    if compiled_available():
        return [KERNEL_PYTHON, KERNEL_COMPILED]
    return [
        KERNEL_PYTHON,
        pytest.param(
            KERNEL_COMPILED,
            marks=pytest.mark.skip(
                reason=f"compiled kernel unavailable: {compiled_build_error()}"
            ),
        ),
    ]


@pytest.fixture(params=serial_kernel_params())
def hf_kernel(request):
    """Serial timing kernel lane (see :func:`serial_kernel_params`)."""
    return request.param


@pytest.fixture(scope="session")
def space():
    """The Table-1 design space (stateless, safe to share)."""
    return default_design_space()


@pytest.fixture(scope="session")
def small_mm():
    """A tiny mm workload (cached by the suite; ~3k instructions)."""
    return get_workload("mm", data_size=10)


@pytest.fixture(scope="session")
def small_vvadd():
    """A tiny fp-vvadd workload (~2k instructions)."""
    return get_workload("fp-vvadd", data_size=256)


@pytest.fixture(scope="session")
def small_dijkstra():
    """A tiny dijkstra workload."""
    return get_workload("dijkstra", data_size=48)


@pytest.fixture()
def mm_pool(space, small_mm):
    """Fresh proxy pool on the tiny mm workload (per-test archive)."""
    return ProxyPool(
        space,
        AnalyticalModel(small_mm.profile, space),
        SimulationProxy(small_mm, space),
        area_limit_mm2=7.5,
    )


@pytest.fixture()
def mm_pool_factory(space, small_mm):
    """Builds fresh, independent mm pools (for sequential-vs-batched
    comparisons that must not share an archive)."""

    def build(**kwargs):
        return ProxyPool(
            space,
            AnalyticalModel(small_mm.profile, space),
            SimulationProxy(small_mm, space),
            area_limit_mm2=7.5,
            **kwargs,
        )

    return build


@pytest.fixture()
def rng():
    """Deterministic per-test generator."""
    return np.random.default_rng(1234)
