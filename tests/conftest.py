"""Shared fixtures: small workloads and pools that keep the suite fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def space():
    """The Table-1 design space (stateless, safe to share)."""
    return default_design_space()


@pytest.fixture(scope="session")
def small_mm():
    """A tiny mm workload (cached by the suite; ~3k instructions)."""
    return get_workload("mm", data_size=10)


@pytest.fixture(scope="session")
def small_vvadd():
    """A tiny fp-vvadd workload (~2k instructions)."""
    return get_workload("fp-vvadd", data_size=256)


@pytest.fixture(scope="session")
def small_dijkstra():
    """A tiny dijkstra workload."""
    return get_workload("dijkstra", data_size=48)


@pytest.fixture()
def mm_pool(space, small_mm):
    """Fresh proxy pool on the tiny mm workload (per-test archive)."""
    return ProxyPool(
        space,
        AnalyticalModel(small_mm.profile, space),
        SimulationProxy(small_mm, space),
        area_limit_mm2=7.5,
    )


@pytest.fixture()
def mm_pool_factory(space, small_mm):
    """Builds fresh, independent mm pools (for sequential-vs-batched
    comparisons that must not share an archive)."""

    def build(**kwargs):
        return ProxyPool(
            space,
            AnalyticalModel(small_mm.profile, space),
            SimulationProxy(small_mm, space),
            area_limit_mm2=7.5,
            **kwargs,
        )

    return build


@pytest.fixture()
def rng():
    """Deterministic per-test generator."""
    return np.random.default_rng(1234)
