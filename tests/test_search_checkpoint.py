"""Checkpoint determinism: interrupt anywhere, resume, same history.

Two layers are locked here:

- ``SearchLoop.state()``/``restore()``: a run interrupted at *every*
  step boundary -- fresh process simulated by rebuilding the pool, the
  method and the loop from scratch and round-tripping the state through
  JSON -- must reproduce the straight-through history bit-for-bit, for a
  surrogate baseline, SCBO and the MFRL explorer (which additionally
  must not re-run its LF phase on restore).
- the campaign seam: a run killed mid-search leaves a checkpoint in the
  ``RunStore``; re-invoking the scheduler resumes it mid-search and the
  final record equals an uninterrupted run's record exactly.
"""

import json

import numpy as np
import pytest

from repro.campaign import CampaignScheduler, RunSpec, RunStore
from repro.campaign.store import RunCheckpoint
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy
from repro.search import SearchLoop, make_method

SPACE = default_design_space()
BUDGET = 6
TINY = ExplorerConfig(lf_episodes=25, hf_budget=5, hf_seed_designs=2)


def json_round_trip(state):
    """Checkpoints live on disk as JSON; restore from that form only."""
    return json.loads(json.dumps(state))


@pytest.fixture()
def pool_factory(small_mm):
    def build():
        return ProxyPool(
            SPACE,
            AnalyticalModel(small_mm.profile, SPACE),
            SimulationProxy(small_mm, SPACE),
            area_limit_mm2=7.5,
        )

    return build


def outcome(loop):
    return {
        "history": [float(v) for v in loop.history],
        "evaluated": [[int(v) for v in levels] for levels in loop.evaluated],
        "spent": loop.spent,
        "steps": loop.steps,
    }


class TestLoopCheckpointDeterminism:
    @pytest.mark.parametrize("name", ["random-forest", "scbo"])
    def test_interrupt_every_step_matches_straight_run(
        self, name, pool_factory
    ):
        straight = SearchLoop(
            pool_factory(), make_method(name), BUDGET,
            rng=np.random.default_rng(5),
        )
        straight_result = straight.run()

        state = None
        while True:
            # a "fresh process": new pool, new method, new loop
            loop = SearchLoop(
                pool_factory(), make_method(name), BUDGET,
                rng=np.random.default_rng(5),
            )
            if state is not None:
                loop.restore(json_round_trip(state))
            if not loop.step():
                break
            state = loop.state()

        assert outcome(loop) == outcome(straight)
        resumed_result = loop.method.result(loop)
        assert float(resumed_result.best_cpi) == float(straight_result.best_cpi)
        assert list(resumed_result.best_levels) == list(
            straight_result.best_levels
        )

    def test_mfrl_interrupt_every_step_matches_straight_run(
        self, pool_factory
    ):
        explorer = MultiFidelityExplorer(pool_factory(), config=TINY, seed=4)
        straight_loop = explorer.hf_loop(explorer.run_lf_phase())
        straight = straight_loop.run()

        state = None
        lf_runs = 0
        while True:
            resumed_explorer = MultiFidelityExplorer(
                pool_factory(), config=TINY, seed=4
            )
            if state is None:
                lf_runs += 1
                loop = resumed_explorer.hf_loop(resumed_explorer.run_lf_phase())
            else:
                # restore must not need the LF phase at all
                loop = resumed_explorer.hf_loop()
                loop.restore(json_round_trip(state))
            if not loop.step():
                break
            state = loop.state()

        assert lf_runs == 1
        resumed = resumed_explorer.hf_result(loop)
        assert outcome(loop) == outcome(straight_loop)
        assert float(resumed.best_hf_cpi) == float(straight.best_hf_cpi)
        assert list(resumed.best_levels) == list(straight.best_levels)
        assert list(resumed.lf_levels) == list(straight.lf_levels)
        assert float(resumed.lf_hf_cpi) == float(straight.lf_hf_cpi)
        assert resumed.hf_simulations == straight.hf_simulations
        assert [r.final_cpi for r in resumed.hf_history] == [
            r.final_cpi for r in straight.hf_history
        ]

    def test_restore_rebuilds_archive(self, pool_factory):
        loop = SearchLoop(
            pool_factory(), make_method("random-search"), 4,
            rng=np.random.default_rng(2),
        )
        loop.step()
        loop.step()
        state = json_round_trip(loop.state())

        fresh_pool = pool_factory()
        resumed = SearchLoop(
            fresh_pool, make_method("random-search"), 4,
            rng=np.random.default_rng(2),
        )
        resumed.restore(state)
        from repro.proxies import Fidelity

        assert fresh_pool.archive.count(Fidelity.HIGH) == loop.spent
        best = fresh_pool.archive.best(Fidelity.HIGH)
        assert float(best.cpi) == min(loop.history)

    def test_version_mismatch_rejected(self, pool_factory):
        loop = SearchLoop(
            pool_factory(), make_method("random-search"), 3,
            rng=np.random.default_rng(0),
        )
        loop.step()
        state = loop.state()
        state["version"] = 99
        with pytest.raises(ValueError, match="checkpoint version"):
            loop.restore(state)


class _KilledMidRun(Exception):
    """Stands in for a campaign process dying between two steps."""


def _kill_after(monkeypatch, saves):
    """Let the executor checkpoint ``saves`` times, then die."""
    counter = {"n": 0}
    original = RunCheckpoint.save

    def wrapper(self, state):
        original(self, state)
        counter["n"] += 1
        if counter["n"] >= saves:
            raise _KilledMidRun()

    monkeypatch.setattr(RunCheckpoint, "save", wrapper)
    return counter


BASELINE_SPEC = RunSpec(
    run_id="ckpt-baseline",
    kind="baseline",
    method="random-forest",
    seed=0,
    workload="mm",
    data_size=10,
    area_limit_mm2=7.5,
    hf_budget=8,
    params={"rng_seed": 7},
)

EXPLORER_SPEC = RunSpec(
    run_id="ckpt-explorer",
    kind="explorer",
    method="fnn-mbrl",
    seed=1,
    workload="mm",
    data_size=10,
    area_limit_mm2=7.5,
    explorer={
        "lf_episodes": 25, "lf_min_episodes": 120, "lf_check_every": 10,
        "lf_patience": 3, "hf_budget": 5, "hf_seed_designs": 2,
        "trainer": {"lr_consequents": 1.0, "lr_centers": 0.05,
                    "temperature": 1.0, "epsilon": 0.05, "max_steps": 256},
    },
)


class TestCampaignMidRunResume:
    @pytest.mark.parametrize(
        "spec,saves",
        [(BASELINE_SPEC, 2), (EXPLORER_SPEC, 2)],
        ids=["baseline", "explorer"],
    )
    def test_killed_run_resumes_mid_search(
        self, spec, saves, tmp_path, monkeypatch
    ):
        # Reference: the same spec, never interrupted.
        reference = CampaignScheduler(store=RunStore(tmp_path / "ref")).run(
            [spec]
        )
        ref_payload = reference.records[spec.run_id]["payload"]

        store = RunStore(tmp_path / "campaign")
        scheduler = CampaignScheduler(store=store)
        _kill_after(monkeypatch, saves)
        with pytest.raises(_KilledMidRun):
            scheduler.run([spec])
        monkeypatch.undo()

        # The kill left a mid-search checkpoint and no completed record.
        assert store.load_checkpoint(spec.run_id) is not None
        assert store.completed(spec) is None

        resumed = CampaignScheduler(store=store).run([spec])
        assert resumed.records[spec.run_id]["payload"] == ref_payload
        # The finished run cleans its checkpoint up.
        assert store.load_checkpoint(spec.run_id) is None
        # And the resumed process really did only the remaining work:
        # fewer HF simulations than the full budget.
        engine = resumed.records[spec.run_id]["engine"]
        assert engine["hf_evaluations"] < ref_payload_budget(spec)

    def test_checkpoint_invalidated_by_spec_edit(self, tmp_path):
        store = RunStore(tmp_path)
        checkpoint = RunCheckpoint(store, BASELINE_SPEC)
        checkpoint.save({"version": 1, "anything": True})
        assert checkpoint.load() == {"version": 1, "anything": True}
        edited = RunSpec(**{**BASELINE_SPEC.to_json(), "hf_budget": 9})
        assert RunCheckpoint(store, edited).load() is None


def ref_payload_budget(spec):
    if spec.kind == "baseline":
        return spec.hf_budget
    return spec.explorer["hf_budget"]
