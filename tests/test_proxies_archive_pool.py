"""Tests for the design archive and the proxy pool."""

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.proxies import DesignArchive, Evaluation, Fidelity

SPACE = default_design_space()


def make_eval(levels, cpi, fidelity=Fidelity.LOW):
    return Evaluation(
        levels=np.asarray(levels),
        fidelity=fidelity,
        metrics={"cpi": cpi, "ipc": 1.0 / cpi},
    )


class TestArchive:
    def test_lookup_miss_returns_none(self):
        archive = DesignArchive(SPACE)
        assert archive.lookup(SPACE.smallest(), Fidelity.LOW) is None

    def test_record_and_lookup(self):
        archive = DesignArchive(SPACE)
        archive.record(make_eval(SPACE.smallest(), 2.0))
        found = archive.lookup(SPACE.smallest(), Fidelity.LOW)
        assert found is not None and found.cpi == 2.0

    def test_fidelities_are_separate(self):
        archive = DesignArchive(SPACE)
        archive.record(make_eval(SPACE.smallest(), 2.0, Fidelity.LOW))
        assert archive.lookup(SPACE.smallest(), Fidelity.HIGH) is None

    def test_best_tracks_minimum_cpi(self):
        archive = DesignArchive(SPACE)
        rng = np.random.default_rng(0)
        cpis = [3.0, 1.5, 2.5, 1.9]
        for cpi in cpis:
            archive.record(make_eval(SPACE.sample(rng), cpi))
        assert archive.best(Fidelity.LOW).cpi == 1.5

    def test_best_designs_sorted(self):
        archive = DesignArchive(SPACE, keep_best=3)
        rng = np.random.default_rng(0)
        for cpi in (3.0, 1.0, 2.0, 4.0, 1.5):
            archive.record(make_eval(SPACE.sample(rng), cpi))
        board = archive.best_designs(Fidelity.LOW)
        assert [e.cpi for e in board] == [1.0, 1.5, 2.0]

    def test_leaderboard_truncated(self):
        archive = DesignArchive(SPACE, keep_best=2)
        rng = np.random.default_rng(0)
        for cpi in (3.0, 1.0, 2.0):
            archive.record(make_eval(SPACE.sample(rng), cpi))
        assert len(archive.best_designs(Fidelity.LOW)) == 2

    def test_count(self):
        archive = DesignArchive(SPACE)
        rng = np.random.default_rng(0)
        for i, levels in enumerate(SPACE.sample(rng, count=5)):
            archive.record(make_eval(levels, 1.0 + i))
        assert archive.count(Fidelity.LOW) == 5
        assert archive.count(Fidelity.HIGH) == 0

    def test_best_none_when_empty(self):
        assert DesignArchive(SPACE).best(Fidelity.HIGH) is None

    def test_invalid_keep_best(self):
        with pytest.raises(ValueError):
            DesignArchive(SPACE, keep_best=0)


class TestProxyPool:
    def test_low_fidelity_uses_analytical(self, mm_pool):
        evaluation = mm_pool.evaluate_low(SPACE.smallest())
        expected = mm_pool.analytical.cpi(SPACE.config(SPACE.smallest()))
        assert evaluation.cpi == pytest.approx(expected)
        assert evaluation.fidelity is Fidelity.LOW

    def test_high_fidelity_uses_simulator(self, mm_pool):
        evaluation = mm_pool.evaluate_high(SPACE.smallest())
        assert evaluation.fidelity is Fidelity.HIGH
        assert "l1_miss_rate" in evaluation.metrics

    def test_memoisation(self, mm_pool):
        mm_pool.evaluate_high(SPACE.smallest())
        mm_pool.evaluate_high(SPACE.smallest())
        assert mm_pool.hf_evaluations == 1
        assert mm_pool.archive.count(Fidelity.HIGH) == 1

    def test_area_helpers(self, mm_pool):
        assert mm_pool.fits(SPACE.smallest())
        assert not mm_pool.fits(SPACE.largest())
        assert mm_pool.area(SPACE.smallest()) > 0

    def test_feasible_mask_respects_budget(self, mm_pool):
        mask = mm_pool.feasible_increase_mask(SPACE.smallest())
        assert mask.any()  # the smallest design can always grow
        # verify every masked-in move really fits
        for i in np.flatnonzero(mask):
            up = SPACE.increase(SPACE.smallest(), i)
            assert mm_pool.fits(up)

    def test_feasible_mask_empty_near_budget(self, mm_pool):
        """Grow greedily until the mask empties; the final design must be
        within budget and all increases must overflow."""
        levels = SPACE.smallest()
        for __ in range(200):
            mask = mm_pool.feasible_increase_mask(levels)
            if not mask.any():
                break
            levels = SPACE.increase(levels, int(np.flatnonzero(mask)[0]))
        assert mm_pool.fits(levels)
        assert not mm_pool.feasible_increase_mask(levels).any()

    def test_beneficial_mask_delegates_to_analytical(self, mm_pool):
        expected = mm_pool.analytical.beneficial_mask(SPACE.smallest())
        assert np.array_equal(mm_pool.beneficial_mask(SPACE.smallest()), expected)

    def test_summary_counters(self, mm_pool):
        mm_pool.evaluate_low(SPACE.smallest())
        mm_pool.evaluate_high(SPACE.smallest())
        summary = mm_pool.summary()
        assert summary["lf_evaluations"] == 1
        assert summary["hf_evaluations"] == 1
        assert summary["hf_distinct"] == 1
