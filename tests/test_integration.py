"""Cross-module integration tests: the full pipelines users run."""

import numpy as np
import pytest

from repro.core.fnn import extract_rules, load_fnn, save_fnn
from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.designspace import default_design_space
from repro.proxies import AnalyticalModel, Fidelity, ProxyPool, SimulationProxy
from repro.workloads import get_workload

SPACE = default_design_space()
FAST = ExplorerConfig(lf_episodes=40, lf_min_episodes=20, hf_budget=5,
                      hf_seed_designs=2)


def make_pool(name="mm", size=10, limit=7.5):
    workload = get_workload(name, data_size=size)
    return ProxyPool(
        SPACE,
        AnalyticalModel(workload.profile, SPACE),
        SimulationProxy(workload, SPACE),
        area_limit_mm2=limit,
    )


class TestExploreThenInterpret:
    """The quickstart flow: explore -> extract rules -> save -> reload."""

    def test_full_interpretability_pipeline(self, tmp_path):
        pool = make_pool()
        explorer = MultiFidelityExplorer(pool, config=FAST, seed=0)
        result = explorer.explore()

        rules = extract_rules(result.fnn, weight_threshold=0.01)
        assert rules

        path = tmp_path / "trained.json"
        save_fnn(result.fnn, path)
        restored = load_fnn(path)
        restored_rules = extract_rules(restored, weight_threshold=0.01)
        assert [r.render() for r in rules] == [r.render() for r in restored_rules]

    def test_warm_start_from_saved_fnn(self, tmp_path):
        """A rule base trained on one run seeds another explorer."""
        pool1 = make_pool()
        explorer1 = MultiFidelityExplorer(pool1, config=FAST, seed=0)
        explorer1.run_lf_phase()
        path = tmp_path / "warm.json"
        save_fnn(explorer1.fnn, path)

        pool2 = make_pool()
        warm = load_fnn(path)
        explorer2 = MultiFidelityExplorer(
            pool2, inputs=warm.inputs, config=FAST, seed=1, fnn=warm
        )
        result = explorer2.explore()
        assert result.hf_simulations <= FAST.hf_budget


class TestFidelityConsistency:
    """The two proxies must agree with their underlying components."""

    def test_pool_hf_matches_direct_simulation(self):
        from repro.simulator import simulate

        pool = make_pool()
        levels = SPACE.smallest()
        via_pool = pool.evaluate_high(levels).cpi
        direct = simulate(
            get_workload("mm", data_size=10).trace, SPACE.config(levels)
        ).cpi
        assert via_pool == pytest.approx(direct)

    def test_pool_lf_matches_direct_analytical(self):
        pool = make_pool()
        levels = SPACE.smallest()
        assert pool.evaluate_low(levels).cpi == pytest.approx(
            pool.analytical.cpi(SPACE.config(levels))
        )

    def test_explorer_result_cpi_matches_archive(self):
        pool = make_pool()
        result = MultiFidelityExplorer(pool, config=FAST, seed=2).explore()
        cached = pool.archive.lookup(result.best_levels, Fidelity.HIGH)
        assert cached is not None
        assert cached.cpi == pytest.approx(result.best_hf_cpi)


class TestBaselineVsOursProtocol:
    """Fig.-5 fairness: both consume the same kind of budget."""

    def test_equal_footing_on_one_seed(self):
        from repro.baselines import make_baseline

        pool_base = make_pool()
        baseline = make_baseline("random-forest").explore(
            pool_base, hf_budget=6, rng=np.random.default_rng(0)
        )
        pool_ours = make_pool()
        ours = MultiFidelityExplorer(
            pool_ours,
            config=ExplorerConfig(lf_episodes=60, lf_min_episodes=30,
                                  hf_budget=5, hf_seed_designs=2),
            seed=0,
        ).explore()
        # ours uses strictly fewer HF simulations
        assert pool_ours.archive.count(Fidelity.HIGH) < pool_base.archive.count(
            Fidelity.HIGH
        )
        # and both return valid designs
        assert pool_base.fits(baseline.best_levels)
        assert pool_ours.fits(ours.best_levels)


class TestAnalyticalExplain:
    def test_explain_mentions_limiter_and_move(self):
        pool = make_pool()
        text = pool.analytical.explain(SPACE.config(SPACE.smallest()))
        assert "limiter" in text
        assert "best predicted move" in text

    def test_explain_at_top_of_space(self):
        pool = make_pool()
        text = pool.analytical.explain(SPACE.config(SPACE.largest()))
        assert "none" in text  # nothing can increase


class TestDeterminismAcrossModules:
    def test_whole_pipeline_is_seeded(self):
        """Same seeds end-to-end -> byte-identical rule bases."""
        renders = []
        for __ in range(2):
            pool = make_pool()
            explorer = MultiFidelityExplorer(pool, config=FAST, seed=5)
            result = explorer.explore()
            rules = extract_rules(result.fnn, weight_threshold=0.01)
            renders.append("\n".join(r.render() for r in rules))
        assert renders[0] == renders[1]
