"""Tests for the evaluation engine: cache, backends, batch semantics."""

import json

import numpy as np
import pytest

from repro.designspace import default_design_space
from repro.engine import (
    BatchBackend,
    EvaluationEngine,
    ProcessPoolBackend,
    ResultCache,
    make_backend,
    space_signature,
    vectorized_lf_metrics,
)
from repro.proxies import AnalyticalModel, Fidelity, SimulationProxy, SuiteAverageProxy
from repro.workloads import get_workload

SPACE = default_design_space()
WORKLOAD = get_workload("mm", data_size=12)


@pytest.fixture
def engine():
    return EvaluationEngine(
        SPACE,
        analytical=AnalyticalModel(WORKLOAD.profile, SPACE),
        high_fidelity=SimulationProxy(WORKLOAD, SPACE),
    )


def sample_batch(count, seed=0):
    return list(SPACE.sample(np.random.default_rng(seed), count=count))


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_memory_only_round_trip(self):
        cache = ResultCache()
        key = ResultCache.key("sig", "wl", "high", [0, 1, 2])
        assert cache.get(key) is None
        cache.put(key, {"cpi": 1.5, "ipc": 1 / 1.5})
        assert cache.get(key)["cpi"] == 1.5
        assert cache.hits == 1 and cache.misses == 1

    def test_disk_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = ResultCache.key("sig", "wl", "low", [3, 0, 1])
        cache.put(key, {"cpi": 2.0, "ipc": 0.5})
        reloaded = ResultCache(tmp_path)
        assert reloaded.get(key) == {"cpi": 2.0, "ipc": 0.5}
        assert len(reloaded) == 1

    def test_float_precision_survives_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = 1.0 / 3.0 + 1e-16
        key = ResultCache.key("s", "w", "high", [1])
        cache.put(key, {"cpi": value})
        assert ResultCache(tmp_path).get(key)["cpi"] == value

    def test_keys_namespace_by_all_components(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(ResultCache.key("s1", "w", "high", [0]), {"cpi": 1.0})
        assert cache.get(ResultCache.key("s2", "w", "high", [0])) is None
        assert cache.get(ResultCache.key("s1", "x", "high", [0])) is None
        assert cache.get(ResultCache.key("s1", "w", "low", [0])) is None
        assert cache.get(ResultCache.key("s1", "w", "high", [1])) is None

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "evaluations.jsonl"
        good = {
            "space": "s", "workload": "w", "fidelity": "high",
            "levels": [1, 2], "metrics": {"cpi": 1.25},
        }
        path.write_text(
            json.dumps(good) + "\n"
            + "{not json at all\n"
            + '{"space": "s", "workload": "w"}\n'  # missing fields
            + json.dumps(good)[: len(json.dumps(good)) // 2] + "\n"  # truncated
        )
        cache = ResultCache(tmp_path)
        assert cache.corrupt_lines == 3
        assert cache.get(ResultCache.key("s", "w", "high", [1, 2]))["cpi"] == 1.25

    def test_compact_drops_corruption(self, tmp_path):
        path = tmp_path / "evaluations.jsonl"
        path.write_text("garbage\n")
        cache = ResultCache(tmp_path)
        cache.put(ResultCache.key("s", "w", "high", [0]), {"cpi": 1.0})
        assert cache.compact() == 1
        assert ResultCache(tmp_path).corrupt_lines == 0

    def test_space_signature_stability(self):
        assert space_signature(SPACE) == space_signature(default_design_space())

    def test_rejects_plain_file_path(self, tmp_path):
        not_a_dir = tmp_path / "cache"
        not_a_dir.write_text("")
        with pytest.raises(ValueError, match="not a directory"):
            ResultCache(not_a_dir)

    def test_explicit_jsonl_path(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        cache = ResultCache(path)
        cache.put(ResultCache.key("s", "w", "high", [0]), {"cpi": 1.0})
        assert path.exists()
        assert len(ResultCache(path)) == 1

    def test_concurrent_writers_interleave_at_line_granularity(self, tmp_path):
        """Campaign workers share one cache dir: parallel appends from
        several processes must never corrupt each other's records."""
        from concurrent.futures import ProcessPoolExecutor

        writers, per_writer = 4, 50
        with ProcessPoolExecutor(max_workers=writers) as executor:
            list(
                executor.map(
                    _append_cache_entries,
                    [(tmp_path, w, per_writer) for w in range(writers)],
                )
            )
        cache = ResultCache(tmp_path)
        assert cache.corrupt_lines == 0
        assert len(cache) == writers * per_writer
        for w in range(writers):
            for i in range(per_writer):
                key = ResultCache.key("sig", f"writer{w}", "high", [w, i])
                assert cache.get(key) == {"cpi": float(w * per_writer + i)}


def _append_cache_entries(args):
    """Worker for the concurrent-append test (module-level: picklable)."""
    tmp_path, writer, count = args
    cache = ResultCache(tmp_path)
    for i in range(count):
        key = ResultCache.key("sig", f"writer{writer}", "high", [writer, i])
        cache.put(key, {"cpi": float(writer * count + i)})


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_process_pool_matches_serial_bit_identical(self, hf_kernel):
        """Workers re-resolve the kernel per process; results must be
        bit-identical to serial for both serial kernels."""
        batch = sample_batch(8)
        analytical = AnalyticalModel(WORKLOAD.profile, SPACE)
        serial_engine = EvaluationEngine(
            SPACE,
            analytical=analytical,
            high_fidelity=SimulationProxy(WORKLOAD, SPACE, kernel=hf_kernel),
        )
        serial = serial_engine.evaluate_many(batch, Fidelity.HIGH)
        parallel_engine = EvaluationEngine(
            SPACE,
            analytical=analytical,
            high_fidelity=SimulationProxy(WORKLOAD, SPACE, kernel=hf_kernel),
            backend=ProcessPoolBackend(workers=2, chunk_size=3),
        )
        parallel = parallel_engine.evaluate_many(batch, Fidelity.HIGH)
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics  # exact float equality
            assert np.array_equal(a.levels, b.levels)

    def test_process_pool_small_batch_short_circuits(self):
        backend = ProcessPoolBackend(workers=4, min_batch=100)
        out = backend.map_evaluate(lambda lv: {"cpi": float(lv[0])}, sample_batch(3))
        assert len(out) == 3

    def test_chunking_covers_batch(self):
        backend = ProcessPoolBackend(workers=2, chunk_size=3)
        chunks = backend._chunks(sample_batch(8))
        assert [len(c) for c in chunks] == [3, 3, 2]

    def test_batch_backend_vectorises_lf(self, engine):
        batch = sample_batch(16, seed=1)
        scalar = engine.evaluate_many(batch, Fidelity.LOW)
        batch_engine = EvaluationEngine(
            SPACE, analytical=engine.analytical, backend=BatchBackend()
        )
        vectorised = batch_engine.evaluate_many(batch, Fidelity.LOW)
        np.testing.assert_allclose(
            [e.cpi for e in vectorised], [e.cpi for e in scalar], rtol=1e-12
        )

    def test_vectorized_lf_matches_model(self, engine):
        batch = np.array(sample_batch(32, seed=2))
        vec = vectorized_lf_metrics(engine.analytical, SPACE, batch)
        for levels, metrics in zip(batch, vec):
            expected = engine.analytical.cpi(SPACE.config(levels))
            assert metrics["cpi"] == pytest.approx(expected, rel=1e-12)

    def test_batch_backend_hf_bit_identical_to_serial(self, engine):
        """HF batches ride the design-batched kernel via the proxy's
        ``evaluate_many``; results must equal the serial loop exactly."""
        hf_engine = EvaluationEngine(
            SPACE,
            analytical=engine.analytical,
            high_fidelity=engine.high_fidelity,
            backend=BatchBackend(),
        )
        batch = sample_batch(6)
        out = hf_engine.evaluate_many(batch, Fidelity.HIGH)
        reference = engine.evaluate_many(batch, Fidelity.HIGH)
        assert [e.metrics for e in out] == [e.metrics for e in reference]

    def test_batch_backend_falls_back_without_evaluate_many(self, engine):
        """Proxies without a batch entry point still work (fallback)."""

        class ScalarOnlyProxy:
            fidelity = Fidelity.HIGH

            def __init__(self, inner):
                self.inner = inner

            def evaluate(self, levels):
                return self.inner.evaluate(levels)

        hf_engine = EvaluationEngine(
            SPACE,
            analytical=engine.analytical,
            high_fidelity=ScalarOnlyProxy(engine.high_fidelity),
            backend=BatchBackend(),
        )
        batch = sample_batch(2)
        out = hf_engine.evaluate_many(batch, Fidelity.HIGH)
        reference = engine.evaluate_many(batch, Fidelity.HIGH)
        assert [e.metrics for e in out] == [e.metrics for e in reference]

    def test_make_backend(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("process", workers=2).name == "process"
        assert make_backend("batch").name == "batch"
        assert make_backend(None, workers=4).name == "process"
        # Single-process default is the vectorised batch backend (LF
        # numpy model + design-batched HF kernel), bit-identical to
        # serial.
        assert make_backend(None, workers=0).name == "batch"
        with pytest.raises(ValueError):
            make_backend("quantum")

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunk_size=0)


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------
class TestEvaluationEngine:
    def test_results_align_with_inputs(self, engine):
        batch = sample_batch(5)
        out = engine.evaluate_many(batch, Fidelity.LOW)
        for levels, evaluation in zip(batch, out):
            assert np.array_equal(evaluation.levels, levels)

    def test_in_batch_duplicates_computed_once(self, engine):
        base = sample_batch(3)
        batch = base + [base[1].copy(), base[0].copy()]
        out = engine.evaluate_many(batch, Fidelity.HIGH)
        assert engine.computed["high"] == 3
        assert out[3].metrics == out[1].metrics
        assert out[4].metrics == out[0].metrics

    def test_empty_batch(self, engine):
        assert engine.evaluate_many([], Fidelity.LOW) == []

    def test_cache_skips_recompute_across_engines(self, tmp_path):
        analytical = AnalyticalModel(WORKLOAD.profile, SPACE)
        proxy = SimulationProxy(WORKLOAD, SPACE)
        batch = sample_batch(4)
        first = EvaluationEngine(
            SPACE, analytical=analytical, high_fidelity=proxy,
            cache=ResultCache(tmp_path),
        )
        a = first.evaluate_many(batch, Fidelity.HIGH)
        assert first.computed["high"] == 4
        second = EvaluationEngine(
            SPACE, analytical=analytical, high_fidelity=proxy,
            cache=ResultCache(tmp_path),
        )
        b = second.evaluate_many(batch, Fidelity.HIGH)
        assert second.computed["high"] == 0
        assert second.cache_hits == 4
        assert [e.metrics for e in a] == [e.metrics for e in b]

    def test_lf_requires_analytical(self):
        engine = EvaluationEngine(SPACE, high_fidelity=SimulationProxy(WORKLOAD, SPACE))
        with pytest.raises(ValueError):
            engine.evaluate(SPACE.smallest(), Fidelity.LOW)

    def test_hf_requires_proxy(self):
        engine = EvaluationEngine(
            SPACE, analytical=AnalyticalModel(WORKLOAD.profile, SPACE)
        )
        with pytest.raises(ValueError):
            engine.evaluate(SPACE.smallest(), Fidelity.HIGH)

    def test_workload_tags_distinguish_fidelities(self, engine):
        assert engine.workload_tag(Fidelity.LOW) != engine.workload_tag(Fidelity.HIGH)
        assert engine.workload_tag(Fidelity.HIGH).startswith("hf:mm:")

    def test_hf_tag_pins_simulator_params(self):
        from repro.simulator import SimulatorParams

        default = SimulationProxy(WORKLOAD, SPACE)
        slower = SimulationProxy(
            WORKLOAD, SPACE, params=SimulatorParams(mem_cycles=180)
        )
        assert default.cache_tag != slower.cache_tag

    def test_hf_tag_pins_metrics_schema(self):
        """Cache entries written under an older metrics schema must miss
        (otherwise cached designs replay partial metric dicts next to
        fresh full ones)."""
        from repro.proxies.highfidelity import METRICS_SCHEMA

        proxy = SimulationProxy(WORKLOAD, SPACE)
        assert proxy.cache_tag.endswith(f":m{METRICS_SCHEMA}")
        suite = SuiteAverageProxy([WORKLOAD], SPACE)
        assert suite.cache_tag.endswith(f":m{METRICS_SCHEMA}")

    def test_lf_tag_pins_analytical_params(self):
        from repro.proxies import AnalyticalParams

        a = EvaluationEngine(
            SPACE, analytical=AnalyticalModel(WORKLOAD.profile, SPACE)
        )
        b = EvaluationEngine(
            SPACE,
            analytical=AnalyticalModel(
                WORKLOAD.profile, SPACE, params=AnalyticalParams(mem_cycles=180.0)
            ),
        )
        assert a.workload_tag(Fidelity.LOW) != b.workload_tag(Fidelity.LOW)

    def test_process_pool_reuses_executor_across_batches(self, engine):
        backend = ProcessPoolBackend(workers=2, chunk_size=2)
        pooled = EvaluationEngine(
            SPACE,
            analytical=engine.analytical,
            high_fidelity=engine.high_fidelity,
            backend=backend,
        )
        pooled.evaluate_many(sample_batch(4, seed=7), Fidelity.HIGH)
        first = backend._executor
        assert first is not None
        pooled.evaluate_many(sample_batch(4, seed=8), Fidelity.HIGH)
        assert backend._executor is first  # same workers, no respawn
        backend.close()
        assert backend._executor is None

    def test_summary_keys(self, engine):
        engine.evaluate(SPACE.smallest(), Fidelity.LOW)
        summary = engine.summary()
        assert summary["computed_low"] == 1
        assert summary["backend"] == "serial"

    def test_summary_surfaces_prepass_counters(self, engine):
        """Pre-pass memo efficacy must be visible per engine, not only
        in ad-hoc benchmarks."""
        engine.evaluate(SPACE.smallest(), Fidelity.HIGH)
        engine.evaluate(SPACE.largest(), Fidelity.HIGH)
        summary = engine.summary()
        assert summary["prepass_misses"] >= 1
        assert summary["prepass_hits"] >= 1  # shared branch pre-pass
        assert summary["prepass_entries"] >= 1


# ----------------------------------------------------------------------
# HF proxy batch entry points
# ----------------------------------------------------------------------
class TestProxyEvaluateMany:
    def test_simulation_proxy_matches_scalar(self):
        proxy = SimulationProxy(WORKLOAD, SPACE)
        scalar_proxy = SimulationProxy(WORKLOAD, SPACE)
        batch = sample_batch(6, seed=11)
        batched = proxy.evaluate_many(batch)
        scalar = [scalar_proxy.evaluate(levels) for levels in batch]
        assert [e.metrics for e in batched] == [e.metrics for e in scalar]
        assert proxy.num_evaluations == 6

    def test_simulation_proxy_lockstep_path_matches_scalar(self):
        """Force the lockstep kernel (min threshold ignored via a tiny
        hf_batch ceiling is the serial path, so patch the module floor)."""
        from repro.simulator import batched as batched_mod

        proxy = SimulationProxy(WORKLOAD, SPACE)
        batch = sample_batch(8, seed=12)
        old = batched_mod.BATCH_MIN_DESIGNS
        batched_mod.BATCH_MIN_DESIGNS = 2
        try:
            batched = proxy.evaluate_many(batch)
        finally:
            batched_mod.BATCH_MIN_DESIGNS = old
        scalar_proxy = SimulationProxy(WORKLOAD, SPACE)
        scalar = [scalar_proxy.evaluate(levels) for levels in batch]
        assert [e.metrics for e in batched] == [e.metrics for e in scalar]

    def test_suite_proxy_matches_scalar(self):
        workloads = [WORKLOAD, get_workload("fft", data_size=32)]
        proxy = SuiteAverageProxy(workloads, SPACE)
        scalar_proxy = SuiteAverageProxy(workloads, SPACE)
        batch = sample_batch(4, seed=13)
        batched = proxy.evaluate_many(batch)
        scalar = [scalar_proxy.evaluate(levels) for levels in batch]
        assert [e.metrics for e in batched] == [e.metrics for e in scalar]

    def test_hf_batch_of_one_disables_lockstep(self):
        proxy = SimulationProxy(WORKLOAD, SPACE, hf_batch=1)
        batch = sample_batch(3, seed=14)
        batched = proxy.evaluate_many(batch)
        scalar_proxy = SimulationProxy(WORKLOAD, SPACE)
        scalar = [scalar_proxy.evaluate(levels) for levels in batch]
        assert [e.metrics for e in batched] == [e.metrics for e in scalar]

    def test_prepass_stats_shape(self):
        proxy = SimulationProxy(WORKLOAD, SPACE)
        proxy.evaluate(SPACE.smallest())
        stats = proxy.prepass_stats()
        resolved = stats["hf_kernel"]  # whichever kernel this host runs
        assert set(stats) == {
            "prepass_hits", "prepass_misses", "prepass_entries",
            "hf_kernel", f"kernel_{resolved}_evals",
        }
        assert stats["prepass_misses"] >= 1
        assert stats[f"kernel_{resolved}_evals"] == 1


# ----------------------------------------------------------------------
# Pool integration
# ----------------------------------------------------------------------
class TestPoolEvaluateMany:
    def test_archive_consistency_with_duplicates(self, mm_pool):
        base = sample_batch(4, seed=3)
        batch = base + [base[0].copy(), base[2].copy()]
        out = mm_pool.evaluate_many(batch, Fidelity.HIGH)
        # duplicates resolve to the archived evaluation, counters see
        # only distinct designs
        assert mm_pool.hf_evaluations == 4
        assert mm_pool.archive.count(Fidelity.HIGH) == 4
        assert out[4].metrics == out[0].metrics
        assert out[5].metrics == out[2].metrics
        for levels, evaluation in zip(batch, out):
            archived = mm_pool.archive.lookup(levels, Fidelity.HIGH)
            assert archived is not None
            assert archived.metrics == evaluation.metrics

    def test_matches_sequential_evaluate(self, mm_pool, mm_pool_factory):
        batch = sample_batch(5, seed=4)
        sequential = [mm_pool.evaluate_high(levels) for levels in batch]
        other = mm_pool_factory()
        batched = other.evaluate_many(batch, Fidelity.HIGH)
        for a, b in zip(sequential, batched):
            assert a.metrics == b.metrics
        assert other.hf_evaluations == mm_pool.hf_evaluations

    def test_pre_archived_designs_not_recounted(self, mm_pool):
        batch = sample_batch(3, seed=5)
        mm_pool.evaluate_high(batch[0])
        assert mm_pool.hf_evaluations == 1
        mm_pool.evaluate_many(batch, Fidelity.HIGH)
        assert mm_pool.hf_evaluations == 3  # only the two new designs

    def test_leaderboard_matches_sequential(self, mm_pool, mm_pool_factory):
        batch = sample_batch(8, seed=6)
        for levels in batch:
            mm_pool.evaluate_high(levels)
        other = mm_pool_factory()
        other.evaluate_many(batch, Fidelity.HIGH)
        a = [e.cpi for e in mm_pool.archive.best_designs(Fidelity.HIGH)]
        b = [e.cpi for e in other.archive.best_designs(Fidelity.HIGH)]
        assert a == b
