"""Unit + property tests for the DesignSpace level-vector algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.designspace import DesignSpace, default_design_space
from repro.designspace.parameters import TABLE1_PARAMETERS

SPACE = default_design_space()


def level_vectors():
    """Hypothesis strategy: valid level vectors of the Table-1 space."""
    return st.tuples(
        *[st.integers(0, p.max_level) for p in TABLE1_PARAMETERS]
    ).map(lambda t: np.array(t, dtype=np.int64))


class TestBasics:
    def test_size(self):
        assert SPACE.size == 3_000_000

    def test_num_parameters(self):
        assert SPACE.num_parameters == 11

    def test_names_order_matches_parameters(self):
        assert SPACE.names == [p.name for p in TABLE1_PARAMETERS]

    def test_smallest_and_largest(self):
        assert np.all(SPACE.smallest() == 0)
        assert np.all(SPACE.largest() == SPACE.max_levels)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(())

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace((TABLE1_PARAMETERS[0], TABLE1_PARAMETERS[0]))

    def test_groups(self):
        groups = SPACE.groups()
        assert groups["l1_cache"] == ["l1_sets", "l1_ways"]
        assert groups["fu"] == ["mem_fu", "int_fu", "fp_fu"]

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError):
            SPACE.index_of("bogus")

    def test_table_rendering_mentions_every_label(self):
        table = SPACE.table()
        for p in TABLE1_PARAMETERS:
            assert p.label in table
        assert "3,000,000" in table


class TestValidation:
    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            SPACE.validate_levels([0, 0])

    def test_negative_level_rejected(self):
        levels = SPACE.smallest()
        levels[0] = -1
        with pytest.raises(ValueError):
            SPACE.validate_levels(levels)

    def test_overflow_level_rejected(self):
        levels = SPACE.smallest()
        levels[0] = 99
        with pytest.raises(ValueError):
            SPACE.validate_levels(levels)

    def test_validate_returns_copy(self):
        levels = SPACE.smallest()
        out = SPACE.validate_levels(levels)
        out[0] = 1
        assert levels[0] == 0


class TestConversions:
    def test_smallest_config_values(self):
        config = SPACE.config(SPACE.smallest())
        assert config.l1_sets == 16
        assert config.decode_width == 1
        assert config.rob_entries == 32

    def test_largest_config_values(self):
        config = SPACE.config(SPACE.largest())
        assert config.l2_sets == 2048
        assert config.iq_entries == 24

    @given(level_vectors())
    @settings(max_examples=50, deadline=None)
    def test_config_levels_roundtrip(self, levels):
        config = SPACE.config(levels)
        assert np.array_equal(SPACE.levels_of(config), levels)

    @given(level_vectors())
    @settings(max_examples=50, deadline=None)
    def test_flat_index_roundtrip(self, levels):
        idx = SPACE.flat_index(levels)
        assert 0 <= idx < SPACE.size
        assert np.array_equal(SPACE.from_flat_index(idx), levels)

    def test_flat_index_bounds(self):
        assert SPACE.flat_index(SPACE.smallest()) == 0
        assert SPACE.flat_index(SPACE.largest()) == SPACE.size - 1
        with pytest.raises(ValueError):
            SPACE.from_flat_index(SPACE.size)
        with pytest.raises(ValueError):
            SPACE.from_flat_index(-1)

    @given(level_vectors())
    @settings(max_examples=30, deadline=None)
    def test_normalized_in_unit_box(self, levels):
        norm = SPACE.normalized(levels)
        assert np.all(norm >= 0.0) and np.all(norm <= 1.0)


class TestMoves:
    def test_increase_by_name(self):
        out = SPACE.increase(SPACE.smallest(), "decode_width")
        assert out[SPACE.index_of("decode_width")] == 1

    def test_increase_by_index(self):
        out = SPACE.increase(SPACE.smallest(), 0)
        assert out[0] == 1

    def test_increase_at_max_raises(self):
        with pytest.raises(ValueError):
            SPACE.increase(SPACE.largest(), 0)

    def test_increase_does_not_mutate_input(self):
        levels = SPACE.smallest()
        SPACE.increase(levels, 0)
        assert levels[0] == 0

    def test_increasable_mask(self):
        assert SPACE.increasable(SPACE.smallest()).all()
        assert not SPACE.increasable(SPACE.largest()).any()

    @given(level_vectors())
    @settings(max_examples=30, deadline=None)
    def test_neighbors_are_hamming_one(self, levels):
        for neighbor in SPACE.neighbors(levels):
            diff = np.abs(neighbor - levels)
            assert diff.sum() == 1

    def test_neighbor_count_at_corner(self):
        # at the all-zero corner only +1 moves exist
        assert sum(1 for __ in SPACE.neighbors(SPACE.smallest())) == 11

    def test_neighbor_count_interior(self):
        levels = np.array([1, 1, 1, 1, 1, 1, 1, 0, 1, 0, 1])
        count = sum(1 for __ in SPACE.neighbors(levels))
        # 9 interior params have 2 neighbours, mem_fu/fp_fu at 0 have 1
        assert count == 9 * 2 + 2


class TestSampling:
    def test_sample_shapes(self):
        rng = np.random.default_rng(0)
        assert SPACE.sample(rng).shape == (11,)
        assert SPACE.sample(rng, count=7).shape == (7, 11)

    def test_samples_valid(self):
        rng = np.random.default_rng(0)
        for levels in SPACE.sample(rng, count=100):
            SPACE.validate_levels(levels)  # must not raise

    def test_sampling_is_seeded(self):
        a = SPACE.sample(np.random.default_rng(42), count=5)
        b = SPACE.sample(np.random.default_rng(42), count=5)
        assert np.array_equal(a, b)
