"""Tests for the six kernel trace generators."""

import numpy as np
import pytest

from repro.workloads.generators import GENERATORS
from repro.workloads.isa import OpClass

#: Small sizes that still exercise each kernel's full control flow.
SMALL_SIZES = {
    "dijkstra": 24,
    "mm": 6,
    "fp-vvadd": 64,
    "quicksort": 48,
    "fft": 32,
    "ss": 256,
}


@pytest.fixture(scope="module")
def traces():
    return {
        name: gen(data_size=SMALL_SIZES[name], seed=0)
        for name, gen in GENERATORS.items()
    }


class TestAllGenerators:
    def test_six_benchmarks_registered(self):
        assert set(GENERATORS) == {
            "dijkstra", "mm", "fp-vvadd", "quicksort", "fft", "ss"
        }

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_nonempty(self, traces, name):
        assert traces[name].num_instructions > 50

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_deterministic_given_seed(self, name):
        a = GENERATORS[name](data_size=SMALL_SIZES[name], seed=3)
        b = GENERATORS[name](data_size=SMALL_SIZES[name], seed=3)
        assert np.array_equal(a.op, b.op)
        assert np.array_equal(a.address, b.address)
        assert np.array_equal(a.taken, b.taken)

    @pytest.mark.parametrize("name", ["dijkstra", "quicksort", "ss"])
    def test_seed_changes_data_dependent_traces(self, name):
        a = GENERATORS[name](data_size=SMALL_SIZES[name], seed=0)
        b = GENERATORS[name](data_size=SMALL_SIZES[name], seed=1)
        assert (
            a.num_instructions != b.num_instructions
            or not np.array_equal(a.taken, b.taken)
        )

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_bigger_data_means_longer_trace(self, name):
        small = GENERATORS[name](data_size=SMALL_SIZES[name], seed=0)
        big = GENERATORS[name](data_size=SMALL_SIZES[name] * 2, seed=0)
        assert big.num_instructions > small.num_instructions

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_memory_addresses_positive(self, traces, name):
        trace = traces[name]
        mem = trace.memory_indices()
        assert np.all(trace.address[mem] > 0)


class TestKernelSignatures:
    """Each kernel must carry its characteristic instruction mix."""

    def test_vvadd_is_fp_streaming(self, traces):
        counts = traces["fp-vvadd"].op_counts()
        n = traces["fp-vvadd"].num_instructions
        # 2 loads + 1 store per 1 fp-add
        assert counts[OpClass.FP_ADD] > 0
        assert counts[OpClass.LOAD] == pytest.approx(2 * counts[OpClass.FP_ADD], rel=0.1)
        assert (counts[OpClass.LOAD] + counts[OpClass.STORE]) / n > 0.4

    def test_mm_is_multiply_heavy(self, traces):
        counts = traces["mm"].op_counts()
        assert counts[OpClass.FP_MUL] > 0
        # one fp_mul per inner iteration, fp_adds one fewer per dot product
        assert counts[OpClass.FP_MUL] >= counts[OpClass.FP_ADD]

    def test_quicksort_is_branchy_integer(self, traces):
        trace = traces["quicksort"]
        counts = trace.op_counts()
        assert counts[OpClass.FP_ADD] == 0 and counts[OpClass.FP_MUL] == 0
        assert counts[OpClass.BRANCH] / trace.num_instructions > 0.2

    def test_quicksort_branches_are_data_dependent(self, traces):
        taken = traces["quicksort"].taken[
            traces["quicksort"].op == int(OpClass.BRANCH)
        ]
        rate = taken.mean()
        assert 0.2 < rate < 0.8  # neither all-taken nor all-not-taken

    def test_fft_has_complex_multiplies(self, traces):
        counts = traces["fft"].op_counts()
        # 4 multiplies per butterfly
        assert counts[OpClass.FP_MUL] >= counts[OpClass.FP_ADD] / 2

    def test_dijkstra_is_integer_pointer_chasing(self, traces):
        trace = traces["dijkstra"]
        counts = trace.op_counts()
        assert counts[OpClass.FP_ADD] == 0
        assert counts[OpClass.LOAD] / trace.num_instructions > 0.25

    def test_ss_is_load_compare_branch(self, traces):
        trace = traces["ss"]
        counts = trace.op_counts()
        assert counts[OpClass.STORE] / trace.num_instructions < 0.05
        assert counts[OpClass.BRANCH] / trace.num_instructions > 0.2

    def test_fft_requires_power_of_two(self):
        with pytest.raises(ValueError):
            GENERATORS["fft"](data_size=24)

    @pytest.mark.parametrize(
        "name, minimum",
        [("dijkstra", 4), ("mm", 2), ("fp-vvadd", 8), ("quicksort", 4), ("ss", 64)],
    )
    def test_size_floors(self, name, minimum):
        with pytest.raises(ValueError):
            GENERATORS[name](data_size=minimum - 1)
