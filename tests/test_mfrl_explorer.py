"""Integration tests for the multi-fidelity explorer."""

import pytest

from repro.core.mfrl import ExplorerConfig, MultiFidelityExplorer
from repro.designspace import default_design_space
from repro.proxies import Fidelity

SPACE = default_design_space()

FAST = ExplorerConfig(lf_episodes=40, hf_budget=6, hf_seed_designs=2)


class TestConfig:
    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            ExplorerConfig(hf_budget=1)
        with pytest.raises(ValueError):
            ExplorerConfig(hf_seed_designs=0)


class TestFullFlow:
    @pytest.fixture(scope="class")
    def result(self):
        # class-scoped: the flow is the expensive part; assertions share it
        from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy
        from repro.workloads import get_workload

        w = get_workload("mm", data_size=10)
        pool = ProxyPool(
            SPACE,
            AnalyticalModel(w.profile, SPACE),
            SimulationProxy(w, SPACE),
            area_limit_mm2=7.5,
        )
        explorer = MultiFidelityExplorer(pool, config=FAST, seed=3)
        res = explorer.explore()
        return res, pool

    def test_hf_budget_respected(self, result):
        res, pool = result
        assert res.hf_simulations <= FAST.hf_budget
        assert pool.archive.count(Fidelity.HIGH) == res.hf_simulations

    def test_best_not_worse_than_lf(self, result):
        res, __ = result
        assert res.best_hf_cpi <= res.lf_hf_cpi + 1e-12

    def test_designs_fit_budget(self, result):
        res, pool = result
        assert pool.fits(res.lf_levels)
        assert pool.fits(res.best_levels)

    def test_histories_populated(self, result):
        res, __ = result
        assert len(res.lf_history) > 0
        assert len(res.hf_history) > 0

    def test_best_is_archive_minimum(self, result):
        res, pool = result
        cpis = [e.cpi for e in pool.archive.all_evaluations(Fidelity.HIGH)]
        assert res.best_hf_cpi == pytest.approx(min(cpis))

    def test_fnn_returned_for_rule_extraction(self, result):
        res, __ = result
        from repro.core.fnn import FuzzyNeuralNetwork

        assert isinstance(res.fnn, FuzzyNeuralNetwork)


class TestReproducibility:
    def test_same_seed_same_result(self, small_mm):
        from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy

        outcomes = []
        for __ in range(2):
            pool = ProxyPool(
                SPACE,
                AnalyticalModel(small_mm.profile, SPACE),
                SimulationProxy(small_mm, SPACE),
                area_limit_mm2=7.5,
            )
            res = MultiFidelityExplorer(pool, config=FAST, seed=11).explore()
            outcomes.append((tuple(res.best_levels), res.best_hf_cpi))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_allowed_to_differ(self, small_mm):
        """Not an equality assertion -- just that both seeds complete and
        respect the budget (stochastic search may coincide)."""
        from repro.proxies import AnalyticalModel, ProxyPool, SimulationProxy

        for seed in (0, 1):
            pool = ProxyPool(
                SPACE,
                AnalyticalModel(small_mm.profile, SPACE),
                SimulationProxy(small_mm, SPACE),
                area_limit_mm2=7.5,
            )
            res = MultiFidelityExplorer(pool, config=FAST, seed=seed).explore()
            assert res.hf_simulations <= FAST.hf_budget


class TestLfPhase:
    def test_lf_phase_spends_no_hf(self, mm_pool):
        explorer = MultiFidelityExplorer(mm_pool, config=FAST, seed=0)
        explorer.run_lf_phase()
        assert mm_pool.archive.count(Fidelity.HIGH) == 0
        assert mm_pool.archive.count(Fidelity.LOW) > 0

    def test_early_stop_on_converged_probe(self, mm_pool):
        config = ExplorerConfig(
            lf_episodes=200, lf_check_every=5, lf_patience=1, hf_budget=4
        )
        explorer = MultiFidelityExplorer(mm_pool, config=config, seed=0)
        trainer = explorer.run_lf_phase()
        # early stopping must usually kick in well before 200 episodes
        assert len(trainer.history) <= 200
