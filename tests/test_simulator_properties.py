"""Property-based simulator invariants over random synthetic traces.

These pin the structural soundness of the timing model: resources can
only help, timestamps are deterministic, and basic lower bounds hold for
*any* dependency/address pattern -- not just the six kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.designspace import MicroArchConfig
from repro.simulator import simulate
from repro.workloads.trace import TraceBuilder


@st.composite
def random_traces(draw, max_len=120):
    """Random well-formed traces mixing every op class."""
    n = draw(st.integers(10, max_len))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    tb = TraceBuilder("random")
    base = tb.alloc(64 * 64)
    handles = []
    for i in range(n):
        kind = int(rng.integers(0, 6))
        dep = None
        if handles and rng.random() < 0.6:
            dep = handles[int(rng.integers(max(0, len(handles) - 8), len(handles)))]
        if kind == 0:
            handles.append(tb.int_op(dep))
        elif kind == 1:
            handles.append(tb.fp_add(dep))
        elif kind == 2:
            handles.append(tb.fp_mul(dep))
        elif kind == 3:
            addr = base + int(rng.integers(0, 64)) * 64
            handles.append(tb.load(addr, addr_dep=dep))
        elif kind == 4:
            addr = base + int(rng.integers(0, 64)) * 64
            handles.append(tb.store(addr, dep))
        else:
            handles.append(tb.branch(dep, taken=bool(rng.random() < 0.7)))
    return tb.build()


def config(**overrides):
    base = dict(
        l1_sets=16, l1_ways=2, l2_sets=128, l2_ways=2, n_mshr=2,
        decode_width=1, rob_entries=32, mem_fu=1, int_fu=1, fp_fu=1,
        iq_entries=2,
    )
    base.update(overrides)
    return MicroArchConfig(**base)


class TestLowerBounds:
    @given(random_traces())
    @settings(max_examples=25, deadline=None)
    def test_cycles_at_least_width_bound(self, trace):
        for width in (1, 4):
            result = simulate(trace, config(decode_width=width))
            assert result.cycles >= len(trace) / width

    @given(random_traces())
    @settings(max_examples=25, deadline=None)
    def test_cpi_ipc_consistency(self, trace):
        result = simulate(trace, config())
        assert result.cpi > 0
        assert result.cpi * result.ipc == pytest.approx(1.0)
        assert result.instructions == len(trace)


class TestResourceMonotonicity:
    """Adding hardware never makes the machine slower."""

    @given(random_traces())
    @settings(max_examples=20, deadline=None)
    def test_wider_decode_never_slower(self, trace):
        narrow = simulate(trace, config(decode_width=1))
        wide = simulate(trace, config(decode_width=5))
        assert wide.cycles <= narrow.cycles

    @given(random_traces())
    @settings(max_examples=20, deadline=None)
    def test_bigger_rob_never_slower(self, trace):
        small = simulate(trace, config(rob_entries=32))
        big = simulate(trace, config(rob_entries=160))
        assert big.cycles <= small.cycles

    @given(random_traces())
    @settings(max_examples=20, deadline=None)
    def test_bigger_iq_never_slower(self, trace):
        small = simulate(trace, config(iq_entries=2))
        big = simulate(trace, config(iq_entries=24))
        assert big.cycles <= small.cycles

    @given(random_traces())
    @settings(max_examples=20, deadline=None)
    def test_more_fus_never_slower(self, trace):
        few = simulate(trace, config(int_fu=1, fp_fu=1, mem_fu=1))
        many = simulate(trace, config(int_fu=5, fp_fu=2, mem_fu=2))
        assert many.cycles <= few.cycles

    @given(random_traces())
    @settings(max_examples=20, deadline=None)
    def test_more_mshrs_never_slower(self, trace):
        few = simulate(trace, config(n_mshr=2))
        many = simulate(trace, config(n_mshr=10))
        assert many.cycles <= few.cycles


class TestDeterminismAndStats:
    @given(random_traces())
    @settings(max_examples=15, deadline=None)
    def test_repeat_runs_identical(self, trace):
        cfg = config(decode_width=3, int_fu=2)
        a = simulate(trace, cfg)
        b = simulate(trace, cfg)
        assert a.cycles == b.cycles
        assert a.l1_miss_rate == b.l1_miss_rate

    @given(random_traces())
    @settings(max_examples=15, deadline=None)
    def test_rates_in_unit_interval(self, trace):
        result = simulate(trace, config())
        assert 0.0 <= result.l1_miss_rate <= 1.0
        assert 0.0 <= result.l2_miss_rate <= 1.0
        assert 0.0 <= result.branch_mispredict_rate <= 1.0

    @given(random_traces())
    @settings(max_examples=15, deadline=None)
    def test_fu_counts_partition_the_trace(self, trace):
        result = simulate(trace, config())
        assert sum(result.fu_issue_counts.values()) == len(trace)
