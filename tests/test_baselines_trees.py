"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import RegressionTree


def step_data(n=40, threshold=0.5, rng=None):
    rng = rng or np.random.default_rng(0)
    x = rng.random((n, 3))
    y = np.where(x[:, 1] > threshold, 2.0, -1.0)
    return x, y


class TestFitting:
    def test_learns_a_step_function(self):
        x, y = step_data()
        tree = RegressionTree(max_depth=3).fit(x, y)
        pred = tree.predict(x)
        assert np.allclose(pred, y)

    def test_single_leaf_predicts_mean(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, 2.0, 3.0])
        tree = RegressionTree(max_depth=1, min_samples_leaf=3).fit(x, y)
        assert tree.predict(np.array([[5.0]]))[0] == pytest.approx(2.0)

    def test_constant_target_stays_leaf(self):
        x = np.random.default_rng(0).random((10, 2))
        y = np.full(10, 3.0)
        tree = RegressionTree().fit(x, y)
        assert tree.depth == 0
        assert np.allclose(tree.predict(x), 3.0)

    def test_depth_bound_respected(self):
        rng = np.random.default_rng(1)
        x = rng.random((200, 4))
        y = rng.random(200)
        tree = RegressionTree(max_depth=2).fit(x, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        x = np.arange(6, dtype=float)[:, None]
        y = np.array([0, 0, 0, 1, 1, 1], dtype=float)
        tree = RegressionTree(max_depth=5, min_samples_leaf=3).fit(x, y)
        assert tree.depth <= 1  # only the 3|3 split is legal

    def test_sample_weights_bias_the_fit(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        w = np.array([1e-9, 1.0])
        tree = RegressionTree(max_depth=1, min_samples_leaf=2).fit(x, y, w)
        # heavily weighted sample dominates the leaf mean
        assert tree.predict(np.array([[0.5]]))[0] == pytest.approx(10.0, abs=0.1)


class TestValidation:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(
                np.zeros((2, 1)), np.zeros(2), np.array([-1.0, 1.0])
            )

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_single_row_prediction_shape(self):
        x, y = step_data()
        tree = RegressionTree().fit(x, y)
        assert tree.predict(x[0]).shape == (1,)


class TestProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_predictions_within_target_range(self, seed):
        """Leaf values are means, so predictions never leave [min, max]."""
        rng = np.random.default_rng(seed)
        x = rng.random((30, 3))
        y = rng.normal(size=30)
        tree = RegressionTree(max_depth=4, rng=rng).fit(x, y)
        pred = tree.predict(rng.random((20, 3)))
        assert np.all(pred >= y.min() - 1e-12)
        assert np.all(pred <= y.max() + 1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_training_fit_improves_with_depth(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((50, 3))
        y = x[:, 0] * 3 + rng.normal(0, 0.05, 50)
        shallow = RegressionTree(max_depth=1).fit(x, y).predict(x)
        deep = RegressionTree(max_depth=6).fit(x, y).predict(x)
        assert np.mean((deep - y) ** 2) <= np.mean((shallow - y) ** 2) + 1e-12
