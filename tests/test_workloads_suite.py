"""Tests for the workload suite registry."""

import pytest

from repro.workloads import BENCHMARK_NAMES, get_workload, workload_suite
from repro.workloads.suite import DEFAULT_DATA_SIZES


class TestRegistry:
    def test_benchmark_names_match_paper(self):
        assert BENCHMARK_NAMES == ("dijkstra", "mm", "fp-vvadd", "quicksort", "fft", "ss")

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_workload("spec2006")

    def test_default_sizes_cover_all(self):
        assert set(DEFAULT_DATA_SIZES) == set(BENCHMARK_NAMES)

    def test_workload_carries_trace_and_profile(self):
        w = get_workload("mm", data_size=8)
        assert w.trace.num_instructions == w.profile.num_instructions
        assert w.num_instructions > 0

    def test_caching_returns_same_object(self):
        a = get_workload("mm", data_size=8)
        b = get_workload("mm", data_size=8)
        assert a is b

    def test_different_seed_different_object(self):
        a = get_workload("quicksort", data_size=64, seed=0)
        b = get_workload("quicksort", data_size=64, seed=1)
        assert a is not b


class TestSuite:
    def test_suite_contains_all_benchmarks(self):
        suite = workload_suite(scale=0.1)
        assert set(suite) == set(BENCHMARK_NAMES)

    def test_scale_shrinks_problems(self):
        small = workload_suite(scale=0.1)
        for name in ("mm", "fp-vvadd"):
            assert small[name].data_size < DEFAULT_DATA_SIZES[name]

    def test_fft_size_stays_power_of_two(self):
        suite = workload_suite(scale=0.37)
        size = suite["fft"].data_size
        assert size >= 8 and size & (size - 1) == 0

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            workload_suite(scale=0.0)
