"""Package-level consistency checks: exports, version, docs coverage."""

from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_headline_classes_importable_from_top(self):
        assert repro.DesignSpace
        assert repro.FuzzyNeuralNetwork
        assert repro.MultiFidelityExplorer

    @pytest.mark.parametrize(
        "module",
        [
            "repro.designspace",
            "repro.workloads",
            "repro.simulator",
            "repro.proxies",
            "repro.core.fnn",
            "repro.core.mfrl",
            "repro.baselines",
            "repro.search",
            "repro.experiments",
            "repro.campaign",
            "repro.viz",
            "repro.cli",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"


class TestDocsCoverage:
    def test_design_md_lists_every_bench(self):
        """DESIGN.md's experiment index must stay in sync with the
        benchmark files actually present."""
        design = (REPO / "DESIGN.md").read_text()
        for bench in (REPO / "benchmarks").glob("test_bench_*.py"):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_readme_mentions_all_examples(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, f"{example.name} missing from README"

    def test_experiments_md_covers_every_paper_artefact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artefact in ("Table 1", "Table 2", "Fig. 5", "Fig. 6", "Fig. 7",
                         "rule extraction"):
            assert artefact in text, artefact
